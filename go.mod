module genclus

go 1.24
