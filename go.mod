module genclus

go 1.23
