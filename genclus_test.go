package genclus_test

import (
	"errors"
	"math"
	"testing"

	"genclus"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow: build a
// network through the façade, fit, inspect memberships and strengths.
func TestPublicAPIEndToEnd(t *testing.T) {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 10})
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		b.AddObject(id, "doc")
		topic := i / 4
		for w := 0; w < 8; w++ {
			b.AddTermCount(id, "text", topic*5+w%5, 1)
		}
	}
	for i := 0; i < 8; i++ {
		topic := i / 4
		for j := topic * 4; j < topic*4+4; j++ {
			if i != j {
				b.AddLink(string(rune('a'+i)), string(rune('a'+j)), "cites", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := genclus.DefaultOptions(2)
	opts.Seed = 7
	res, err := genclus.Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theta) != net.NumObjects() {
		t.Fatalf("theta rows = %d", len(res.Theta))
	}
	labels := genclus.HardLabels(res.Theta)
	a0, _ := net.IndexOf("a")
	e0, _ := net.IndexOf("e")
	if labels[a0] == labels[e0] {
		t.Error("the two topics should separate")
	}
	if res.Gamma["cites"] < 0 {
		t.Error("strength must be non-negative")
	}
}

func TestPublicGenerators(t *testing.T) {
	wds, err := genclus.GenerateWeather(genclus.WeatherSetting1(40, 20, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if wds.Net.NumObjects() != 60 {
		t.Errorf("weather objects = %d", wds.Net.NumObjects())
	}
	cfg := genclus.DefaultBiblioConfig(genclus.SchemaACP, 3)
	cfg.NumAuthors = 50
	cfg.NumPapers = 80
	cfg.LabeledPapers = 10
	bds, err := genclus.GenerateBibliographic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bds.Net.ObjectsOfType("paper")) != 80 {
		t.Errorf("papers = %d", len(bds.Net.ObjectsOfType("paper")))
	}
}

func TestPublicMetrics(t *testing.T) {
	nmi, err := genclus.NMI([]int{0, 0, 1, 1}, []int{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-12 {
		t.Errorf("NMI = %v", nmi)
	}
	sims := genclus.Similarities()
	if len(sims) != 3 {
		t.Fatal("expected 3 similarity functions")
	}
}

func TestPublicSerializationRoundTrip(t *testing.T) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(20, 10, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/net.json"
	if err := ds.Net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := genclus.LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects() != ds.Net.NumObjects() || back.NumEdges() != ds.Net.NumEdges() {
		t.Error("round trip changed network shape")
	}
	data, err := ds.Net.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := genclus.NetworkFromJSON(data); err != nil {
		t.Fatal(err)
	}
}

func TestPublicLinkPrediction(t *testing.T) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(40, 20, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	opts := genclus.DefaultOptions(4)
	opts.OuterIters = 2
	opts.EMIters = 3
	res, err := genclus.Fit(ds.Net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, sim := range genclus.Similarities() {
		mapv, err := genclus.LinkPredictionMAP(ds.Net, res.Theta, "<T,P>", sim)
		if err != nil {
			t.Fatal(err)
		}
		if mapv < 0 || mapv > 1 {
			t.Errorf("%s MAP = %v", sim.Name, mapv)
		}
	}
}

// TestPublicAssign covers the online-inference surface: AssignObjects
// returns stable copies, a decoded snapshot assigns identically to the
// in-memory model it came from, and the typed errors surface through the
// public aliases.
func TestPublicAssign(t *testing.T) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(40, 20, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	opts := genclus.DefaultOptions(ds.NumClusters)
	opts.Seed = 2
	model, err := genclus.Fit(ds.Net, opts)
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Net.Relations()[0]
	anchor := ds.Net.Object(0).ID
	queries := []genclus.AssignQuery{{
		ID:    "q0",
		Links: []genclus.AssignLink{{Relation: rel, To: anchor, Weight: 1}},
	}}

	out, err := genclus.AssignObjects(model, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Theta) != ds.NumClusters || out[0].ID != "q0" {
		t.Fatalf("assignment shape wrong: %+v", out)
	}
	// AssignObjects results are stable copies: a second call through a
	// fresh engine must not disturb them.
	keep := append([]float64(nil), out[0].Theta...)
	if _, err := genclus.AssignObjects(model, queries); err != nil {
		t.Fatal(err)
	}
	for k := range keep {
		if out[0].Theta[k] != keep[k] {
			t.Fatal("AssignObjects result mutated by a later call")
		}
	}

	// Snapshot round trip: the decoded model assigns bit-identically.
	data, err := genclus.EncodeModel(model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := genclus.DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := genclus.AssignObjects(back, queries)
	if err != nil {
		t.Fatal(err)
	}
	for k := range keep {
		if out2[0].Theta[k] != keep[k] {
			t.Fatalf("snapshot-decoded model assigns differently: %v vs %v", out2[0].Theta, keep)
		}
	}

	// Typed errors through the public aliases.
	var qe *genclus.AssignQueryError
	if _, err := genclus.AssignObjects(model, []genclus.AssignQuery{{Links: []genclus.AssignLink{{Relation: "ghost", To: anchor, Weight: 1}}}}); !errors.As(err, &qe) {
		t.Fatalf("unknown relation: %v, want AssignQueryError", err)
	}
	eng, err := genclus.NewAssigner(model, genclus.AssignOptions{Limits: genclus.AssignLimits{MaxBatch: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var le *genclus.AssignLimitError
	if _, err := eng.AssignBatch(make([]genclus.AssignQuery, 2)); !errors.As(err, &le) {
		t.Fatalf("oversized batch: %v, want AssignLimitError", err)
	}
}
