package genclus_test

import (
	"math"
	"testing"

	"genclus"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow: build a
// network through the façade, fit, inspect memberships and strengths.
func TestPublicAPIEndToEnd(t *testing.T) {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 10})
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		b.AddObject(id, "doc")
		topic := i / 4
		for w := 0; w < 8; w++ {
			b.AddTermCount(id, "text", topic*5+w%5, 1)
		}
	}
	for i := 0; i < 8; i++ {
		topic := i / 4
		for j := topic * 4; j < topic*4+4; j++ {
			if i != j {
				b.AddLink(string(rune('a'+i)), string(rune('a'+j)), "cites", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := genclus.DefaultOptions(2)
	opts.Seed = 7
	res, err := genclus.Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theta) != net.NumObjects() {
		t.Fatalf("theta rows = %d", len(res.Theta))
	}
	labels := genclus.HardLabels(res.Theta)
	a0, _ := net.IndexOf("a")
	e0, _ := net.IndexOf("e")
	if labels[a0] == labels[e0] {
		t.Error("the two topics should separate")
	}
	if res.Gamma["cites"] < 0 {
		t.Error("strength must be non-negative")
	}
}

func TestPublicGenerators(t *testing.T) {
	wds, err := genclus.GenerateWeather(genclus.WeatherSetting1(40, 20, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if wds.Net.NumObjects() != 60 {
		t.Errorf("weather objects = %d", wds.Net.NumObjects())
	}
	cfg := genclus.DefaultBiblioConfig(genclus.SchemaACP, 3)
	cfg.NumAuthors = 50
	cfg.NumPapers = 80
	cfg.LabeledPapers = 10
	bds, err := genclus.GenerateBibliographic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bds.Net.ObjectsOfType("paper")) != 80 {
		t.Errorf("papers = %d", len(bds.Net.ObjectsOfType("paper")))
	}
}

func TestPublicMetrics(t *testing.T) {
	nmi, err := genclus.NMI([]int{0, 0, 1, 1}, []int{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-12 {
		t.Errorf("NMI = %v", nmi)
	}
	sims := genclus.Similarities()
	if len(sims) != 3 {
		t.Fatal("expected 3 similarity functions")
	}
}

func TestPublicSerializationRoundTrip(t *testing.T) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(20, 10, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/net.json"
	if err := ds.Net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := genclus.LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects() != ds.Net.NumObjects() || back.NumEdges() != ds.Net.NumEdges() {
		t.Error("round trip changed network shape")
	}
	data, err := ds.Net.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := genclus.NetworkFromJSON(data); err != nil {
		t.Fatal(err)
	}
}

func TestPublicLinkPrediction(t *testing.T) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(40, 20, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	opts := genclus.DefaultOptions(4)
	opts.OuterIters = 2
	opts.EMIters = 3
	res, err := genclus.Fit(ds.Net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, sim := range genclus.Similarities() {
		mapv, err := genclus.LinkPredictionMAP(ds.Net, res.Theta, "<T,P>", sim)
		if err != nil {
			t.Fatal(err)
		}
		if mapv < 0 || mapv > 1 {
			t.Errorf("%s MAP = %v", sim.Name, mapv)
		}
	}
}
