// Package genclus is a from-scratch Go implementation of GenClus — the
// relation strength-aware clustering algorithm for heterogeneous information
// networks with incomplete attributes (Yizhou Sun, Charu C. Aggarwal, Jiawei
// Han; PVLDB 5(5), VLDB 2012).
//
// GenClus clusters all objects of a typed, link-typed network into one
// shared hidden space using a user-specified subset of attributes, and
// simultaneously learns how much each link type should propagate cluster
// membership. Objects may carry partial or no attribute observations: an
// attribute-free object is clustered purely from its typed neighborhood.
//
// # Quick start
//
//	b := genclus.NewBuilder()
//	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 1000})
//	b.AddObject("paper1", "paper")
//	b.AddObject("alice", "author")
//	b.AddTermCount("paper1", "text", 42, 3)
//	b.AddLink("alice", "paper1", "write", 1)
//	b.AddLink("paper1", "alice", "written_by", 1)
//	net, err := b.Build()
//	...
//	res, err := genclus.Fit(net, genclus.DefaultOptions(4))
//	// res.Theta — soft memberships; res.Gamma — learned link-type strengths.
//
// The subpackages under internal implement the full reproduction of the
// paper: the probabilistic model and the alternating EM / Newton–Raphson
// optimizer (internal/core), the network substrate (internal/hin), the
// numeric substrates (internal/mathx, internal/linalg, internal/stats,
// internal/spatial), the synthetic data generators of §5.1 and Appendix C
// (internal/datagen, internal/textgen), the comparison baselines
// (internal/baselines), the evaluation metrics (internal/eval), and the
// experiment harness that regenerates every table and figure
// (internal/bench, driven by cmd/experiments).
package genclus

import (
	"fmt"
	"os"
	"path/filepath"

	"genclus/internal/core"
	"genclus/internal/datagen"
	"genclus/internal/eval"
	"genclus/internal/hin"
	"genclus/internal/infer"
	"genclus/internal/snapshot"
)

// Network is an immutable heterogeneous information network: typed objects,
// typed weighted directed links, and (possibly incomplete) attribute
// observations. Construct one with NewBuilder or LoadNetwork.
type Network = hin.Network

// Builder incrementally assembles a Network.
type Builder = hin.Builder

// AttrSpec declares an attribute (name, kind, vocabulary size).
type AttrSpec = hin.AttrSpec

// Kind distinguishes categorical (term-count) from numeric attributes.
type Kind = hin.Kind

// Attribute kinds.
const (
	Categorical = hin.Categorical
	Numeric     = hin.Numeric
)

// Edge is a typed weighted directed link between dense object indices.
type Edge = hin.Edge

// TermCount is one entry of a sparse categorical observation.
type TermCount = hin.TermCount

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return hin.NewBuilder() }

// Limits bounds what a decoded network may allocate; see DefaultDecodeLimits.
type Limits = hin.Limits

// LimitError reports input rejected because it exceeded a Limits bound
// (errors.As-distinguishable from malformed-document errors).
type LimitError = hin.LimitError

// DefaultDecodeLimits is the bound NetworkFromJSON and LoadNetwork apply:
// generous enough for any workload this library can actually fit in memory,
// tight enough that a small hostile document cannot force a giant
// allocation (a declared vocabulary size in particular multiplies into
// K×Vocab floats per categorical attribute on every fit). Pass explicit
// Limits — including the zero value for "unlimited" — to
// NetworkFromJSONLimited / LoadNetworkLimited to override.
func DefaultDecodeLimits() Limits {
	return Limits{
		MaxObjects:      50_000_000,
		MaxLinks:        500_000_000,
		MaxAttributes:   1024,
		MaxVocab:        50_000_000,
		MaxObservations: 2_000_000_000,
	}
}

// LoadNetwork reads a network from a JSON file produced by Network.SaveFile
// (or by cmd/datagen), enforcing DefaultDecodeLimits.
func LoadNetwork(path string) (*Network, error) {
	return hin.LoadFileLimited(path, DefaultDecodeLimits())
}

// LoadNetworkLimited is LoadNetwork with caller-chosen bounds. A zero field
// means "no limit" on that dimension; Limits{} disables bounding entirely.
func LoadNetworkLimited(path string, lim Limits) (*Network, error) {
	return hin.LoadFileLimited(path, lim)
}

// NetworkFromJSON parses a serialized network, enforcing
// DefaultDecodeLimits.
func NetworkFromJSON(data []byte) (*Network, error) {
	return hin.FromJSONLimited(data, DefaultDecodeLimits())
}

// NetworkFromJSONLimited is NetworkFromJSON with caller-chosen bounds. A
// zero field means "no limit" on that dimension; Limits{} disables bounding
// entirely.
func NetworkFromJSONLimited(data []byte, lim Limits) (*Network, error) {
	return hin.FromJSONLimited(data, lim)
}

// Options configures a GenClus fit; see DefaultOptions for the
// paper-faithful defaults.
type Options = core.Options

// Precision selects the storage precision of a fit's learned parameters;
// see Options.Precision.
type Precision = core.Precision

// Precision values accepted by Options.Precision and AssignOptions.Precision.
const (
	PrecisionFloat64 = core.PrecisionFloat64
	PrecisionFloat32 = core.PrecisionFloat32
)

// ParsePrecision normalizes a precision name ("" and "float64" mean
// PrecisionFloat64), returning a *core.PrecisionError for anything else.
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// Result is the fitted quantities of a model: soft memberships Θ, learned
// link-type strengths γ, fitted attribute component models, iteration
// counts, and (optionally) per-iteration snapshots.
type Result = core.Result

// Model is a fitted, reusable GenClus model: it embeds the Result and
// retains the source network's object identities so Model.Refit can
// warm-start a later fit on a grown or perturbed network (memberships carry
// over by object ID, strengths by relation name, attribute models by
// attribute name). A refit from a converged model on an unchanged network
// terminates in a couple of EM iterations.
type Model = core.Model

// NewModel reassembles a Model from a Result and the source network's
// object IDs in Theta row order — the rehydration path for fitted state
// that crossed a serialization boundary, e.g. a persisted Result or a
// genclusd job result fetched through the client SDK (client.Result.Model
// does exactly this), so remote fits can seed local Refits.
func NewModel(res *Result, objectIDs []string) (*Model, error) {
	return core.NewModel(res, objectIDs)
}

// Snapshot is one outer-iteration state when Options.TrackHistory is set.
type Snapshot = core.Snapshot

// SnapshotLimits bounds what DecodeModelLimited may allocate while reading
// an untrusted model snapshot; see DefaultSnapshotLimits.
type SnapshotLimits = snapshot.Limits

// SnapshotFormatError reports a model snapshot rejected as malformed —
// wrong magic, truncated sections, checksum mismatch, or out-of-domain
// values (errors.As-distinguishable from SnapshotLimitError).
type SnapshotFormatError = snapshot.FormatError

// SnapshotLimitError reports a model snapshot rejected because a declared
// dimension exceeds a SnapshotLimits bound.
type SnapshotLimitError = snapshot.LimitError

// DefaultSnapshotLimits is the bound DecodeModel and LoadModel apply:
// generous enough for any model this library can fit in memory, tight
// enough that a small hostile file cannot claim giant dimensions.
func DefaultSnapshotLimits() SnapshotLimits { return snapshot.DefaultLimits() }

// EncodeModel serializes a fitted model into the versioned binary snapshot
// format — the portable form of fitted state: byte-identical for identical
// models, self-checksummed, decodable by DecodeModel, importable into a
// genclusd model registry (POST /v1/models/import or client.ImportModel),
// and readable by the genclus CLI (-from-model). The wire layout follows
// the model's fitted storage precision (Options.Precision): a float32 fit
// encodes — and later decodes — as float32. Result.History is not
// persisted.
func EncodeModel(m *Model) ([]byte, error) {
	snap := &snapshot.Snapshot{Model: m}
	if m != nil && m.Result != nil {
		snap.Precision = m.Precision
	}
	return snapshot.Encode(snap)
}

// DecodeModel parses a binary model snapshot (EncodeModel, a genclusd
// export, or the CLI's -save-model), enforcing DefaultSnapshotLimits. The
// returned Model warm-starts refits exactly like the model that produced
// the snapshot: a Refit from it is bitwise-identical to one from the
// original in-memory model.
func DecodeModel(data []byte) (*Model, error) {
	return DecodeModelLimited(data, DefaultSnapshotLimits())
}

// DecodeModelLimited is DecodeModel with caller-chosen bounds. A zero field
// means "no limit" on that dimension.
func DecodeModelLimited(data []byte, lim SnapshotLimits) (*Model, error) {
	snap, err := snapshot.Decode(data, lim)
	if err != nil {
		return nil, err
	}
	return snap.Model, nil
}

// SaveModel writes a model's binary snapshot to a file (see EncodeModel).
// The write is atomic — temp file in the same directory, then rename — so
// a failure (full disk, crash) leaves any previous snapshot at path
// intact rather than truncated.
func SaveModel(path string, m *Model) error {
	data, err := EncodeModel(m)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gcsnap-*")
	if err != nil {
		return fmt.Errorf("genclus: write model %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("genclus: write model %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("genclus: write model %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("genclus: write model %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("genclus: write model %s: %w", path, err)
	}
	return nil
}

// LoadModel reads a binary model snapshot from a file, enforcing
// DefaultSnapshotLimits (see DecodeModel).
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("genclus: read model %s: %w", path, err)
	}
	return DecodeModel(data)
}

// Assigner is the online inference engine: it folds out-of-sample objects
// — links to the model's known objects plus optional partial attribute
// observations — into a fitted model's hidden space without refitting,
// returning soft cluster posteriors and top-k hard assignments computed
// with the same E-step arithmetic as the fit (a missing attribute simply
// contributes no term). Construct one per model with NewAssigner; steady-
// state AssignBatch allocates nothing, but an Assigner is NOT safe for
// concurrent use — create one per goroutine, or let genclusd's
// /v1/models/{id}/assign endpoint do the batching and locking.
type Assigner = infer.Engine

// AssignQuery describes one object to assign: links into the known network
// plus optional partial attribute observations.
type AssignQuery = infer.Query

// AssignLink is one directed link from a query object to a known object.
type AssignLink = infer.Link

// AssignCatObs is a query object's term-count observation of one
// categorical attribute.
type AssignCatObs = infer.CatObs

// AssignNumObs is a query object's observation list of one numeric
// attribute.
type AssignNumObs = infer.NumObs

// Assignment is one query's scored result: hard cluster, soft posterior
// row, top-k list, and the fold-in iteration count. Results returned by an
// Assigner alias its reusable arena and are valid until its next call;
// AssignObjects returns stable copies instead.
type Assignment = infer.Assignment

// ClusterProb is one entry of an assignment's top-k list.
type ClusterProb = infer.ClusterProb

// AssignOptions configures an Assigner (top-k size, fold-in iteration
// budget, epsilon floor, input limits). The zero value takes the defaults.
type AssignOptions = infer.Options

// AssignLimits bounds what one AssignBatch call may process — the assign
// trust boundary (batch size, per-query links and observations).
type AssignLimits = infer.Limits

// AssignQueryError reports a malformed or unresolvable assign query (an
// unknown object, relation or attribute, an out-of-vocabulary term, a
// non-finite number); errors.As-distinguishable from AssignLimitError.
type AssignQueryError = infer.QueryError

// AssignLimitError reports an assign batch rejected because it exceeded an
// AssignLimits bound.
type AssignLimitError = infer.LimitError

// DefaultAssignLimits is the bound serving paths apply to assign batches.
func DefaultAssignLimits() AssignLimits { return infer.DefaultLimits() }

// NewAssigner builds the online inference engine for a fitted model — any
// Model: a local Fit/Refit result, a decoded snapshot (DecodeModel /
// LoadModel), or a rehydrated remote fit (NewModel). The engine
// precomputes the model-derived scoring views once, so it is the right
// shape to keep around when assigning many batches against one model.
func NewAssigner(m *Model, opts AssignOptions) (*Assigner, error) {
	return infer.NewEngine(m, opts)
}

// AssignObjects is the one-call convenience form of online inference: it
// builds a throwaway Assigner with default options and returns stable
// copies of the assignments (safe to retain, unlike an Assigner's
// arena-backed results). Queries are local trusted input, so no
// AssignLimits bounds apply — unlike a genclusd request, any batch size
// goes. For repeated or high-volume assignment, construct one Assigner
// with NewAssigner and reuse it.
func AssignObjects(m *Model, queries []AssignQuery) ([]Assignment, error) {
	eng, err := NewAssigner(m, AssignOptions{Unbounded: true})
	if err != nil {
		return nil, err
	}
	res, err := eng.AssignBatch(queries)
	if err != nil {
		return nil, err
	}
	out := make([]Assignment, len(res))
	for i, a := range res {
		a.Theta = append([]float64(nil), a.Theta...)
		a.Top = append([]ClusterProb(nil), a.Top...)
		out[i] = a
	}
	return out, nil
}

// AttrModel is a fitted per-attribute component model.
type AttrModel = core.AttrModel

// CatParams holds fitted categorical component term distributions.
type CatParams = core.CatParams

// GaussParams holds fitted Gaussian component means and variances.
type GaussParams = core.GaussParams

// DefaultOptions returns the configuration the paper's experiments use:
// σ = 0.1 strength prior, all-ones γ start, best-of-seeds initialization.
func DefaultOptions(k int) Options { return core.DefaultOptions(k) }

// Fit runs GenClus (Algorithm 1 of the paper): alternating cluster
// optimization (EM over Θ and the attribute parameters) and link-type
// strength learning (projected Newton–Raphson over γ). The returned Model
// embeds the Result and can be refitted on an evolved network via
// Model.Refit.
func Fit(net *Network, opts Options) (*Model, error) { return core.Fit(net, opts) }

// NMI computes normalized mutual information between two labelings.
func NMI(pred, truth []int) (float64, error) { return eval.NMI(pred, truth) }

// AdjustedRandIndex computes the chance-corrected Rand index between two
// labelings.
func AdjustedRandIndex(pred, truth []int) (float64, error) {
	return eval.AdjustedRandIndex(pred, truth)
}

// Purity computes the majority-class purity of a clustering against ground
// truth (read together with NMI/ARI — it inflates as clusters split).
func Purity(pred, truth []int) (float64, error) { return eval.Purity(pred, truth) }

// HardLabels converts soft memberships to argmax cluster labels.
func HardLabels(theta [][]float64) []int { return eval.HardLabels(theta) }

// Similarity scores a (query, candidate) membership pair for link
// prediction.
type Similarity = eval.Similarity

// Similarities returns the three membership-similarity functions the paper
// compares: cosine, negative Euclidean distance, and the asymmetric
// negative cross entropy −H(θ_j, θ_i).
func Similarities() []Similarity { return eval.Similarities() }

// LinkPredictionMAP ranks candidate targets of the relation for every
// source object by membership similarity and scores the ranking against the
// observed links with Mean Average Precision (paper §5.2.2).
func LinkPredictionMAP(net *Network, theta [][]float64, relation string, sim Similarity) (float64, error) {
	return eval.LinkPredictionMAP(net, theta, relation, sim)
}

// Dataset bundles a generated synthetic network with its ground truth.
type Dataset = datagen.Dataset

// WeatherConfig parameterizes the Appendix C weather sensor network
// generator.
type WeatherConfig = datagen.WeatherConfig

// WeatherSetting1 is the paper's easy weather configuration (diagonal
// means); WeatherSetting2 the hard one (corner means).
func WeatherSetting1(numT, numP, numObs int, seed int64) WeatherConfig {
	return datagen.WeatherSetting1(numT, numP, numObs, seed)
}

// WeatherSetting2 returns the paper's hard weather configuration.
func WeatherSetting2(numT, numP, numObs int, seed int64) WeatherConfig {
	return datagen.WeatherSetting2(numT, numP, numObs, seed)
}

// GenerateWeather builds a synthetic weather sensor network (Appendix C).
func GenerateWeather(cfg WeatherConfig) (*Dataset, error) { return datagen.Weather(cfg) }

// BiblioConfig parameterizes the DBLP-four-area-style bibliographic network
// generator; Schema selects the AC or ACP projection.
type BiblioConfig = datagen.BiblioConfig

// Schema selects the bibliographic network projection.
type Schema = datagen.Schema

// Bibliographic schemas.
const (
	SchemaAC  = datagen.SchemaAC
	SchemaACP = datagen.SchemaACP
)

// DefaultBiblioConfig returns the harness-scale bibliographic configuration.
func DefaultBiblioConfig(schema Schema, seed int64) BiblioConfig {
	return datagen.DefaultBiblioConfig(schema, seed)
}

// GenerateBibliographic builds a synthetic bibliographic network calibrated
// to the DBLP four-area dataset's schema (see DESIGN.md for the
// substitution rationale).
func GenerateBibliographic(cfg BiblioConfig) (*Dataset, error) { return datagen.Biblio(cfg) }

// SocialConfig parameterizes the YouTube-style social media generator from
// the paper's introduction: users (partially profiled), videos (text +
// clip-length attributes) and attribute-free comments, joined by
// upload/like/post/friendship relations.
type SocialConfig = datagen.SocialConfig

// DefaultSocialConfig returns a moderate-size social network configuration.
func DefaultSocialConfig(seed int64) SocialConfig { return datagen.DefaultSocialConfig(seed) }

// GenerateSocial builds the social media network of the paper's
// introduction — the one scenario that combines categorical and numeric
// attributes, each incomplete on different object types, in a single fit.
func GenerateSocial(cfg SocialConfig) (*Dataset, error) { return datagen.Social(cfg) }

// KScore is one candidate cluster count's model-selection score.
type KScore = core.KScore

// SelectK fits the model for K in [kMin, kMax] and scores each candidate
// with AIC and BIC — the model-selection route the paper defers to for
// choosing the number of clusters (§2.2).
func SelectK(net *Network, opts Options, kMin, kMax int) ([]KScore, error) {
	return core.SelectK(net, opts, kMin, kMax)
}

// BestAIC returns the candidate with the lowest AIC (the better-behaved
// criterion for this model; see EXPERIMENTS.md "selectk").
func BestAIC(scores []KScore) (KScore, error) { return core.BestAIC(scores) }

// BestBIC returns the candidate with the lowest BIC.
func BestBIC(scores []KScore) (KScore, error) { return core.BestBIC(scores) }

// FilterEdges derives a network with a subset of the edges (same objects,
// relations, and observations) — the building block for held-out link
// prediction.
func FilterEdges(n *Network, keep func(Edge) bool) (*Network, error) {
	return hin.FilterEdges(n, keep)
}

// NetworkSchema is the typed structure of a network (the paper's τ/φ
// formalism made checkable).
type NetworkSchema = hin.Schema

// RelationSignature is a relation's (source type, target type) pattern.
type RelationSignature = hin.RelationSignature

// InferSchema derives the schema from a network's edges, failing when a
// relation joins inconsistent type pairs.
func InferSchema(n *Network) (*NetworkSchema, error) { return hin.InferSchema(n) }

// ClusterSummary is the human-readable description of one fitted cluster
// (sizes per type, top terms per categorical attribute, component means).
type ClusterSummary = core.ClusterSummary

// TermWeight is one entry of a cluster's top-term list.
type TermWeight = core.TermWeight

// LinkPredictionMAPHoldout scores out-of-sample link prediction: theta was
// fitted on trainNet (built with FilterEdges); heldOut are the removed
// edges of the relation.
func LinkPredictionMAPHoldout(trainNet *Network, theta [][]float64, relation string, heldOut []Edge, sim Similarity) (float64, error) {
	return eval.LinkPredictionMAPHoldout(trainNet, theta, relation, heldOut, sim)
}
