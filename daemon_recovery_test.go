package genclus_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"genclus"
	"genclus/client"
	"genclus/internal/testutil"
)

// recoveryNetwork builds a small two-topic network through the public API.
func recoveryNetwork(t *testing.T, perTopic int) *genclus.Network {
	t.Helper()
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 20})
	ids := make([]string, 0, 2*perTopic)
	for topic := 0; topic < 2; topic++ {
		for i := 0; i < perTopic; i++ {
			id := fmt.Sprintf("doc%d_%03d", topic, i)
			ids = append(ids, id)
			b.AddObject(id, "doc")
			for w := 0; w < 8; w++ {
				b.AddTermCount(id, "text", topic*10+(i+w)%10, 1)
			}
		}
	}
	for topic := 0; topic < 2; topic++ {
		for i := 0; i < perTopic; i++ {
			b.AddLink(ids[topic*perTopic+i], ids[topic*perTopic+(i+1)%perTopic], "cites", 1)
		}
	}
	nw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestDaemonKillRecover is the acceptance test for crash-safe persistence:
// a real genclusd process fits a network with -data-dir, is killed with
// SIGKILL (no shutdown path runs), and a fresh process on the same data dir
// serves the finished job and model again — byte-identical snapshot export,
// intact result, and a working warm_start_from_model against the recovered
// state. The whole flow drives the daemon exclusively through the client
// SDK, exactly as an external consumer would.
func TestDaemonKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	ctx := context.Background()

	// Phase 1: fit, then SIGKILL.
	d := testutil.StartDaemon(t, testutil.Options{Name: "recovery", DataDir: dataDir})
	c := client.New(d.URL())
	nw := recoveryNetwork(t, 20)
	info, err := c.UploadNetwork(ctx, nw)
	if err != nil {
		t.Fatal(err)
	}
	outer, em, seeds := 3, 5, 2
	var seed int64 = 11
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: &client.JobOptions{
		OuterIters: &outer, EMIters: &em, InitSeeds: &seeds, Seed: &seed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	result1, err := c.WaitForResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.ModelID == "" {
		t.Fatal("finished job reports no model id")
	}
	export1, err := c.ExportModel(ctx, status.ModelID)
	if err != nil {
		t.Fatal(err)
	}

	d.Kill()

	// Phase 2: restart on the same data dir; the fit must still be there.
	d.Restart()

	recovered, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatalf("recovered job status: %v", err)
	}
	if recovered.State != client.StateDone || recovered.ModelID != status.ModelID {
		t.Fatalf("recovered job wrong: %+v", recovered)
	}
	result2, err := c.JobResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if result2.K != result1.K || len(result2.Objects) != len(result1.Objects) ||
		result2.EMIterations != result1.EMIterations {
		t.Fatalf("recovered result differs: %+v vs %+v", result2, result1)
	}
	for i, o := range result1.Objects {
		r := result2.Objects[i]
		if r.ID != o.ID || r.Type != o.Type || r.Cluster != o.Cluster {
			t.Fatalf("recovered object %d differs: %+v vs %+v", i, r, o)
		}
		for k := range o.Theta {
			if r.Theta[k] != o.Theta[k] {
				t.Fatalf("recovered Theta[%d][%d] differs", i, k)
			}
		}
	}

	models, err := c.ListModels(ctx)
	if err != nil || len(models) != 1 || models[0].ID != status.ModelID {
		t.Fatalf("recovered registry: %+v, %v", models, err)
	}
	export2, err := c.ExportModel(ctx, status.ModelID)
	if err != nil || !bytes.Equal(export2, export1) {
		t.Fatalf("recovered export not byte-identical: %d vs %d bytes, %v", len(export2), len(export1), err)
	}

	// warm_start_from_model against the recovered snapshot: networks are
	// not persisted (by design), so re-upload, then warm-start.
	info2, err := c.UploadNetwork(ctx, nw)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info2.ID, WarmStartFromModel: status.ModelID})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := c.WaitForResult(ctx, warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.K != result1.K {
		t.Fatalf("warm start K drifted: %d vs %d", warmRes.K, result1.K)
	}
	if warmRes.EMIterations >= result1.EMIterations {
		t.Fatalf("warm start from recovered model not faster: %d vs %d EM iterations",
			warmRes.EMIterations, result1.EMIterations)
	}

	// The old job id resolving through a client error path still behaves:
	// an unknown id is a plain 404, not ErrJobEvicted.
	if _, err := c.JobStatus(ctx, "job_never_existed"); !client.IsNotFound(err) || errors.Is(err, client.ErrJobEvicted) {
		t.Fatalf("unknown job after recovery: %v", err)
	}

	// Phase 3: SIGKILL mid-mutation-burst. A goroutine streams the burst
	// into the re-uploaded network while the daemon is killed after at
	// least three acks — an acked mutation is durable (the delta log fsyncs
	// before responding), so whatever generation the burst reached must
	// survive verbatim; an unacked in-flight mutation may or may not have
	// landed, and either is fine.
	steps := mutationBurst(c, info2.ID)
	var acked atomic.Int32
	burstDone := make(chan struct{})
	go func() {
		defer close(burstDone)
		for _, step := range steps {
			if err := step(ctx); err != nil {
				return // the kill severed the connection mid-burst
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < 3 {
		time.Sleep(time.Millisecond)
	}
	d.Kill()
	<-burstDone

	// Phase 4: restart again; the delta log replays on top of the network
	// base and the view comes back at the exact durable generation.
	d.Restart()
	st, err := c.SupervisorStatus(ctx, info2.ID)
	if err != nil {
		t.Fatalf("supervisor status after mutation recovery: %v", err)
	}
	gen := st.Generation
	if gen < int(acked.Load()) || gen > len(steps) {
		t.Fatalf("recovered generation %d outside [%d, %d]", gen, acked.Load(), len(steps))
	}
	if st.DeltaLogDepth != gen {
		t.Fatalf("recovered delta log depth %d != generation %d", st.DeltaLogDepth, gen)
	}

	// A refit of the recovered view must be bitwise-identical to a refit of
	// an uninterrupted network that applied the same mutation prefix with
	// no crash in between. Meta (job id, timestamps) legitimately differs,
	// so compare the canonical meta-free encodings of the decoded models.
	info3, err := c.UploadNetwork(ctx, nw)
	if err != nil {
		t.Fatal(err)
	}
	for i, step := range mutationBurst(c, info3.ID)[:gen] {
		if err := step(ctx); err != nil {
			t.Fatalf("uninterrupted burst step %d: %v", i, err)
		}
	}
	canonical := func(networkID string) []byte {
		t.Helper()
		job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: networkID, WarmStartFromModel: status.ModelID})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitForResult(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
		js, err := c.JobStatus(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.ExportModel(ctx, js.ModelID)
		if err != nil {
			t.Fatal(err)
		}
		m, err := genclus.DecodeModel(data)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := genclus.EncodeModel(m)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	recoveredFit := canonical(info2.ID)
	uninterruptedFit := canonical(info3.ID)
	if !bytes.Equal(recoveredFit, uninterruptedFit) {
		t.Fatalf("refit after crash recovery diverges from uninterrupted refit: %d vs %d bytes",
			len(recoveredFit), len(uninterruptedFit))
	}
}

// mutationBurst returns a deterministic mutation sequence against netID,
// each step valid exactly when every earlier step has applied — so any
// prefix of it reproduces the generation a crash truncated the burst at.
func mutationBurst(c *client.Client, netID string) []func(context.Context) error {
	return []func(context.Context) error{
		func(ctx context.Context) error {
			_, err := c.AddObjects(ctx, netID,
				[]client.NewObject{{ID: "m0", Type: "doc", Terms: map[string][]client.TermCount{"text": {{Term: 1, Count: 2}}}}},
				[]client.Edge{{From: "m0", To: "doc0_000", Relation: "cites", Weight: 1}})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.AddEdges(ctx, netID, []client.Edge{{From: "m0", To: "doc1_000", Relation: "cites", Weight: 1}})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.AddObjects(ctx, netID,
				[]client.NewObject{{ID: "m1", Type: "doc"}},
				[]client.Edge{{From: "m1", To: "m0", Relation: "cites", Weight: 2}})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.PatchAttributes(ctx, netID, []client.AttributePatch{
				{ID: "doc0_000", Terms: map[string][]client.TermCount{"text": {{Term: 3, Count: 4}}}},
			})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.RemoveEdges(ctx, netID, []client.EdgeRef{{From: "doc0_000", To: "doc0_001", Relation: "cites"}})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.AddEdges(ctx, netID, []client.Edge{{From: "m1", To: "doc1_005", Relation: "follows", Weight: 1.5}})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.PatchAttributes(ctx, netID, []client.AttributePatch{
				{ID: "doc1_000", Terms: map[string][]client.TermCount{"text": {}}},
			})
			return err
		},
		func(ctx context.Context) error {
			_, err := c.AddObjects(ctx, netID,
				[]client.NewObject{{ID: "m2", Type: "doc", Terms: map[string][]client.TermCount{"text": {{Term: 7, Count: 1}}}}},
				[]client.Edge{{From: "m2", To: "m1", Relation: "follows", Weight: 1}})
			return err
		},
	}
}
