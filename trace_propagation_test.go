package genclus_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"genclus/client"
	"genclus/internal/testutil"
)

// Wire shapes of the trace endpoints, redeclared minimally here: these
// tests exercise real genclusd subprocesses over plain HTTP, exactly as an
// operator's tooling would.
type traceSpanDoc struct {
	Name         string         `json:"name"`
	SpanID       string         `json:"span_id"`
	ParentSpanID string         `json:"parent_span_id"`
	Attrs        map[string]any `json:"attrs"`
}

type traceDoc struct {
	TraceID string         `json:"trace_id"`
	Spans   []traceSpanDoc `json:"spans"`
}

type traceListDoc struct {
	Traces []traceDoc `json:"traces"`
}

// getTrace fetches one node's /v1/traces/{id}; ok=false on 404.
func getTrace(t *testing.T, baseURL, traceID string) (traceDoc, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return traceDoc{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s on %s: %d: %s", traceID, baseURL, resp.StatusCode, body)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return doc, true
}

// listTraces fetches one node's full trace ring.
func listTraces(t *testing.T, baseURL string) []traceDoc {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces on %s: %d: %s", baseURL, resp.StatusCode, body)
	}
	var doc traceListDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Traces
}

// TestTracePropagationAcrossProcesses drives the full propagation chain
// through a real daemon: an SDK caller mints a traceparent, the submitted
// fit's job trace adopts the caller's trace id, and a mutation-triggered
// supervisor refit leaves a supervisor.decision trace whose refit job
// continues the decision's trace id — all observable over the HTTP trace
// surface of the subprocess.
func TestTracePropagationAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	primary := testutil.StartDaemon(t, testutil.Options{
		Name:    "trace-primary",
		DataDir: filepath.Join(t.TempDir(), "primary"),
		Args: []string{
			"-supervisor-max-pending", "1", // first uncovered mutation triggers
			"-supervisor-drift", "-1",
			"-supervisor-interval", "100ms",
		},
	})
	pc := client.New(primary.URL())

	tp := client.NewTraceparent()
	tid := client.TraceIDOf(tp)
	tctx := client.WithTraceparent(ctx, tp)

	info, err := pc.UploadNetwork(tctx, recoveryNetwork(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	outer, em, seeds, seed := 3, 5, 2, int64(7)
	job, err := pc.SubmitJob(tctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: &client.JobOptions{
		OuterIters: &outer, EMIters: &em, InitSeeds: &seeds, Seed: &seed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID != tid {
		t.Fatalf("submitted job trace_id %q, want the SDK caller's %q", job.TraceID, tid)
	}
	if _, err := pc.WaitForResult(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	// The fit's introspection timeline is served under the caller's trace id.
	resp, err := http.Get(primary.URL() + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job trace: %d: %s", resp.StatusCode, body)
	}
	var jt traceDoc
	if err := json.Unmarshal(body, &jt); err != nil {
		t.Fatal(err)
	}
	if jt.TraceID != tid {
		t.Fatalf("job trace id %q, want %q", jt.TraceID, tid)
	}
	var iterations int
	for _, sp := range jt.Spans {
		if sp.Name == "fit.outer_iteration" {
			iterations++
		}
	}
	if iterations == 0 {
		t.Fatalf("job trace has no fit.outer_iteration spans: %s", body)
	}

	// One mutation trips the pending trigger; the supervisor's decision and
	// the refit it schedules share a trace.
	if _, err := pc.AddObjects(ctx, info.ID, []client.NewObject{{ID: "alien", Type: "doc"}}, nil); err != nil {
		t.Fatal(err)
	}
	var decisionID string
	deadline := time.Now().Add(60 * time.Second)
	for decisionID == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no supervisor.decision trace appeared; daemon logs:\n%s", primary.Logs())
		}
		for _, tr := range listTraces(t, primary.URL()) {
			if len(tr.Spans) == 0 || tr.Spans[0].Name != "supervisor.decision" {
				continue
			}
			if r, _ := tr.Spans[0].Attrs["reason"].(string); r != "" && r != "none" {
				decisionID = tr.TraceID
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("refit job trace never continued decision trace %s; logs:\n%s", decisionID, primary.Logs())
		}
		found := false
		for _, tr := range listTraces(t, primary.URL()) {
			if tr.TraceID == decisionID && len(tr.Spans) > 0 && tr.Spans[0].Name == "job.fit" {
				if trg, _ := tr.Spans[0].Attrs["trigger"].(string); trg == "" {
					t.Fatalf("cross-process refit trace lacks trigger attr: %+v", tr.Spans[0].Attrs)
				}
				found = true
				break
			}
		}
		if found {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestMultiEndpointFailoverSharedTrace kills a replica under a MultiEndpoint
// and checks the failover attempts all carry one caller-supplied traceparent:
// the request trace for the assign that succeeded is retrievable by that
// trace id from the surviving replica.
func TestMultiEndpointFailoverSharedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	primary := testutil.StartDaemon(t, testutil.Options{
		Name:    "trace-me-primary",
		DataDir: filepath.Join(t.TempDir(), "primary"),
	})
	rep1 := testutil.StartDaemon(t, testutil.Options{Name: "trace-me-replica1", Args: replicaArgs(primary.URL())})
	rep2 := testutil.StartDaemon(t, testutil.Options{Name: "trace-me-replica2", Args: replicaArgs(primary.URL())})

	pc := client.New(primary.URL())
	modelID, digest := fitModel(t, pc, 31)
	want := map[string]string{modelID: digest}
	waitConverged(t, client.New(rep1.URL()), "replica1", want)
	waitConverged(t, client.New(rep2.URL()), "replica2", want)

	rep1.Kill()

	tp := client.NewTraceparent()
	tid := client.TraceIDOf(tp)
	tctx := client.WithTraceparent(ctx, tp)
	me := client.NewMultiEndpoint(primary.URL(), []string{rep1.URL(), rep2.URL()},
		client.WithQuarantine(50*time.Millisecond, time.Second))
	req := client.AssignRequest{
		TopK:    2,
		Objects: []client.AssignObject{{ID: "q", Links: []client.AssignLink{{Relation: "cites", To: "doc0_000", Weight: 1}}}},
	}
	// Two calls cover both round-robin starting points; with replica1 dead,
	// each must fail over and succeed, reusing the caller's traceparent.
	for i := 0; i < 2; i++ {
		if _, err := me.AssignObjects(tctx, modelID, req); err != nil {
			t.Fatalf("assign %d during replica outage: %v", i, err)
		}
	}

	// The surviving replica served at least one failover attempt, so it holds
	// a request trace under the caller's id; the dead replica obviously holds
	// nothing — the id is the cross-node join key.
	tr, ok := getTrace(t, rep2.URL(), tid)
	if !ok {
		t.Fatalf("replica2 has no trace %s after failover; traces: %+v", tid, listTraces(t, rep2.URL()))
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "POST /v1/models/{id}/assign" {
		t.Fatalf("trace %s root span %+v, want the assign request", tid, tr.Spans)
	}
	if st, _ := tr.Spans[0].Attrs["status"].(float64); st != http.StatusOK {
		t.Fatalf("assign trace status attr %v, want 200", tr.Spans[0].Attrs["status"])
	}
}
