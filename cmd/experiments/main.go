// Command experiments regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact of the evaluation section; see
// DESIGN.md for the index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5 [-scale 1] [-runs 20] [-seed 1]
//	experiments -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"genclus/internal/bench"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		run    = flag.String("run", "", "experiment id to run, or 'all'")
		scale  = flag.Float64("scale", 1, "dataset size multiplier")
		runs   = flag.Int("runs", 20, "random restarts for mean/std experiments")
		seed   = flag.Int64("seed", 1, "base random seed")
		csvDir = flag.String("csv", "", "also write <id>.csv files with the numeric results into this directory")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
			fmt.Printf("  %-16s   %s\n", "", e.Description)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Runs: *runs, Seed: *seed}
	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.Registry()
	} else {
		e, ok := bench.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		targets = []bench.Experiment{e}
	}

	for _, e := range targets {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, rep.ID, rep.Values); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}

// writeCSV emits the report's machine-readable values as "key,value" rows,
// sorted by key for stable diffs.
func writeCSV(dir, id string, values map[string]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("key,value\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s,%g\n", k, values[k])
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(sb.String()), 0o644)
}
