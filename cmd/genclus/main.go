// Command genclus clusters a heterogeneous information network stored as a
// JSON file (the format written by Network.SaveFile / cmd/datagen) and
// writes the soft memberships and learned link-type strengths as JSON.
//
// Usage:
//
//	genclus -in network.json -k 4 [-out result.json] [-attrs text,score]
//	        [-outer 10] [-em 15] [-seed 1] [-parallel 1] [-fixed-gamma]
//	        [-save-model model.gcsnap] [-from-model model.gcsnap]
//	genclus -from-model model.gcsnap -assign queries.json [-out out.json]
//
// -save-model writes the fitted model as a binary snapshot — the portable
// form of fitted state, importable into a genclusd model registry (curl
// --data-binary @model.gcsnap .../v1/models/import) or reloadable here.
// -from-model warm-starts the fit from a snapshot (a previous -save-model,
// or a daemon export from GET /v1/models/{id}/export) instead of starting
// cold: refitting an evolved network this way converges in a fraction of a
// cold start's iterations.
//
// -assign switches to offline online-inference scoring: no network and no
// fit — the snapshot named by -from-model is loaded and every query object
// in the queries file is folded into its hidden space (links to the
// model's known objects plus optional partial attribute observations),
// writing soft posteriors and top-k hard assignments as JSON. The queries
// file uses the same document shape as the daemon's POST
// /v1/models/{id}/assign body:
//
//	{"top_k": 2, "objects": [
//	  {"id": "q1",
//	   "links":   [{"rel": "cites", "to": "paper17", "w": 1}],
//	   "terms":   {"title": [{"t": 3, "c": 2}]},
//	   "numeric": {"score": [0.5]}}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"genclus"
	"genclus/internal/infer"
	"genclus/internal/snapshot"
)

type output struct {
	K          int                `json:"k"`
	Objects    []objectResult     `json:"objects"`
	Gamma      map[string]float64 `json:"gamma"`
	Objective  float64            `json:"objective"`
	Iterations []iterationSummary `json:"iterations,omitempty"`
}

type objectResult struct {
	ID      string    `json:"id"`
	Type    string    `json:"type"`
	Theta   []float64 `json:"theta"`
	Cluster int       `json:"cluster"`
}

type iterationSummary struct {
	Iter  int       `json:"iter"`
	Gamma []float64 `json:"gamma"`
	G1    float64   `json:"g1"`
}

func main() {
	var (
		inPath     = flag.String("in", "", "input network JSON (required)")
		outPath    = flag.String("out", "", "output JSON path (default: stdout)")
		k          = flag.Int("k", 4, "number of clusters")
		attrs      = flag.String("attrs", "", "comma-separated attribute subset (default: all)")
		outer      = flag.Int("outer", 10, "outer iterations (EM + strength learning)")
		em         = flag.Int("em", 15, "EM iterations per outer step")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 1, "EM worker goroutines")
		precision  = flag.String("precision", "", "model storage precision: float64 (default) or float32")
		fixedGamma = flag.Bool("fixed-gamma", false, "freeze link-type strengths at 1 (ablation)")
		history    = flag.Bool("history", false, "include per-iteration summaries in the output")
		summary    = flag.Bool("summary", false, "print per-cluster summaries (sizes, top terms, component means) to stderr")
		saveModel  = flag.String("save-model", "", "write the fitted model as a binary snapshot to this path")
		fromModel  = flag.String("from-model", "", "warm-start the fit from a model snapshot (a -save-model file or a genclusd export)")
		assignPath = flag.String("assign", "", "fold the query objects in this JSON file into the -from-model snapshot (offline scoring; no network, no fit)")
	)
	flag.Parse()
	if *assignPath != "" {
		if *fromModel == "" {
			fmt.Fprintln(os.Stderr, "genclus: -assign requires -from-model")
			flag.Usage()
			os.Exit(2)
		}
		// -assign scores without fitting, so fit-only flags cannot take
		// effect — reject them rather than silently dropping them (the
		// caller may be counting on a -save-model file that would never
		// be written, or a -k the snapshot overrides).
		fitOnly := map[string]bool{
			"in": true, "k": true, "attrs": true, "outer": true, "em": true,
			"seed": true, "parallel": true, "precision": true,
			"fixed-gamma": true, "history": true, "summary": true,
			"save-model": true,
		}
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if fitOnly[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(os.Stderr, "genclus: %s only apply to fits and conflict with -assign\n", strings.Join(conflicts, " "))
			os.Exit(2)
		}
		runAssign(*fromModel, *assignPath, *outPath)
		return
	}
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "genclus: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	net, err := genclus.LoadNetwork(*inPath)
	if err != nil {
		fatal(err)
	}
	opts := genclus.DefaultOptions(*k)
	opts.OuterIters = *outer
	opts.EMIters = *em
	opts.Seed = *seed
	opts.Parallelism = *parallel
	opts.LearnGamma = !*fixedGamma
	opts.TrackHistory = *history
	opts.Precision = genclus.Precision(*precision)
	if *attrs != "" {
		opts.Attributes = strings.Split(*attrs, ",")
	}

	var res *genclus.Model
	if *fromModel != "" {
		prior, err := genclus.LoadModel(*fromModel)
		if err != nil {
			fatal(err)
		}
		kSet := false
		flag.Visit(func(f *flag.Flag) { kSet = kSet || f.Name == "k" })
		if kSet && *k != prior.K {
			fatal(fmt.Errorf("-k %d conflicts with model fitted at K=%d", *k, prior.K))
		}
		opts.K = 0 // inherit the snapshot's K
		res, err = prior.Refit(net, opts)
		if err != nil {
			fatal(err)
		}
		*k = res.K
	} else {
		var err error
		res, err = genclus.Fit(net, opts)
		if err != nil {
			fatal(err)
		}
	}

	if *saveModel != "" {
		if err := genclus.SaveModel(*saveModel, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "genclus: wrote model snapshot %s\n", *saveModel)
	}

	if *summary {
		sums, err := res.Summarize(net, 8)
		if err != nil {
			fatal(err)
		}
		for _, cs := range sums {
			fmt.Fprintf(os.Stderr, "%s\n", cs)
			for attr, terms := range cs.TopTerms {
				fmt.Fprintf(os.Stderr, "  %s top terms:", attr)
				for _, tw := range terms {
					fmt.Fprintf(os.Stderr, " %d(%.3f)", tw.Term, tw.Weight)
				}
				fmt.Fprintln(os.Stderr)
			}
			for attr, mu := range cs.GaussMeans {
				fmt.Fprintf(os.Stderr, "  %s mean: %.4g\n", attr, mu)
			}
		}
	}

	out := output{K: *k, Gamma: res.Gamma, Objective: res.Objective}
	labels := genclus.HardLabels(res.Theta)
	for v := 0; v < net.NumObjects(); v++ {
		obj := net.Object(v)
		out.Objects = append(out.Objects, objectResult{
			ID: obj.ID, Type: obj.Type, Theta: res.Theta[v], Cluster: labels[v],
		})
	}
	for _, snap := range res.History {
		out.Iterations = append(out.Iterations, iterationSummary{Iter: snap.Iter, Gamma: snap.Gamma, G1: snap.G1})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *outPath == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "genclus: wrote %s (%d objects, %d relations)\n", *outPath, net.NumObjects(), net.NumRelations())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genclus:", err)
	os.Exit(1)
}

// ---- offline assignment (-assign) ----

// assignOut is the -assign output document; its assignments are the same
// shared shape the daemon's assign endpoint returns (infer.AssignmentDoc),
// which is what keeps the two surfaces byte-comparable.
type assignOut struct {
	K           int                   `json:"k"`
	Assignments []infer.AssignmentDoc `json:"assignments"`
}

// runAssign loads a model snapshot and folds the query file's objects into
// its hidden space — offline scoring with no network and no fit. The
// queries file is decoded by the same infer.DecodeRequest the daemon's
// assign endpoint uses, and the snapshot's provenance meta (the fit's
// epsilon, when the exporting daemon recorded it) is honored the same way,
// so the output matches the daemon's bit for bit.
func runAssign(modelPath, queriesPath, outPath string) {
	raw, err := os.ReadFile(modelPath)
	if err != nil {
		fatal(err)
	}
	// Decode at the snapshot layer rather than genclus.LoadModel: the
	// provenance meta (epsilon) is needed alongside the model.
	snap, err := snapshot.Decode(raw, snapshot.DefaultLimits())
	if err != nil {
		fatal(fmt.Errorf("%s: %w", modelPath, err))
	}
	model := snap.Model
	data, err := os.ReadFile(queriesPath)
	if err != nil {
		fatal(err)
	}
	doc, queries, err := infer.DecodeRequest(data, 0) // local file: no batch bound
	if err != nil {
		fatal(fmt.Errorf("%s: %w", queriesPath, err))
	}
	// Offline scoring trusts its local input file: no serving limits.
	eng, err := genclus.NewAssigner(model, genclus.AssignOptions{
		TopK:      doc.TopK,
		Epsilon:   snapshot.EpsilonFromMeta(snap.Meta, model.K),
		Precision: snap.Precision,
		Unbounded: true,
	})
	if err != nil {
		fatal(err)
	}
	res, err := eng.AssignBatch(queries)
	if err != nil {
		fatal(err)
	}
	out := assignOut{K: eng.K(), Assignments: infer.AssignmentDocs(res, -1)}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if outPath == "" {
		fmt.Println(string(enc))
		return
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "genclus: wrote %s (%d assignments against K=%d model)\n", outPath, len(out.Assignments), out.K)
}
