// Command genclus clusters a heterogeneous information network stored as a
// JSON file (the format written by Network.SaveFile / cmd/datagen) and
// writes the soft memberships and learned link-type strengths as JSON.
//
// Usage:
//
//	genclus -in network.json -k 4 [-out result.json] [-attrs text,score]
//	        [-outer 10] [-em 15] [-seed 1] [-parallel 1] [-fixed-gamma]
//	        [-save-model model.gcsnap] [-from-model model.gcsnap]
//
// -save-model writes the fitted model as a binary snapshot — the portable
// form of fitted state, importable into a genclusd model registry (curl
// --data-binary @model.gcsnap .../v1/models/import) or reloadable here.
// -from-model warm-starts the fit from a snapshot (a previous -save-model,
// or a daemon export from GET /v1/models/{id}/export) instead of starting
// cold: refitting an evolved network this way converges in a fraction of a
// cold start's iterations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"genclus"
)

type output struct {
	K          int                `json:"k"`
	Objects    []objectResult     `json:"objects"`
	Gamma      map[string]float64 `json:"gamma"`
	Objective  float64            `json:"objective"`
	Iterations []iterationSummary `json:"iterations,omitempty"`
}

type objectResult struct {
	ID      string    `json:"id"`
	Type    string    `json:"type"`
	Theta   []float64 `json:"theta"`
	Cluster int       `json:"cluster"`
}

type iterationSummary struct {
	Iter  int       `json:"iter"`
	Gamma []float64 `json:"gamma"`
	G1    float64   `json:"g1"`
}

func main() {
	var (
		inPath     = flag.String("in", "", "input network JSON (required)")
		outPath    = flag.String("out", "", "output JSON path (default: stdout)")
		k          = flag.Int("k", 4, "number of clusters")
		attrs      = flag.String("attrs", "", "comma-separated attribute subset (default: all)")
		outer      = flag.Int("outer", 10, "outer iterations (EM + strength learning)")
		em         = flag.Int("em", 15, "EM iterations per outer step")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 1, "EM worker goroutines")
		fixedGamma = flag.Bool("fixed-gamma", false, "freeze link-type strengths at 1 (ablation)")
		history    = flag.Bool("history", false, "include per-iteration summaries in the output")
		summary    = flag.Bool("summary", false, "print per-cluster summaries (sizes, top terms, component means) to stderr")
		saveModel  = flag.String("save-model", "", "write the fitted model as a binary snapshot to this path")
		fromModel  = flag.String("from-model", "", "warm-start the fit from a model snapshot (a -save-model file or a genclusd export)")
	)
	flag.Parse()
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "genclus: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	net, err := genclus.LoadNetwork(*inPath)
	if err != nil {
		fatal(err)
	}
	opts := genclus.DefaultOptions(*k)
	opts.OuterIters = *outer
	opts.EMIters = *em
	opts.Seed = *seed
	opts.Parallelism = *parallel
	opts.LearnGamma = !*fixedGamma
	opts.TrackHistory = *history
	if *attrs != "" {
		opts.Attributes = strings.Split(*attrs, ",")
	}

	var res *genclus.Model
	if *fromModel != "" {
		prior, err := genclus.LoadModel(*fromModel)
		if err != nil {
			fatal(err)
		}
		kSet := false
		flag.Visit(func(f *flag.Flag) { kSet = kSet || f.Name == "k" })
		if kSet && *k != prior.K {
			fatal(fmt.Errorf("-k %d conflicts with model fitted at K=%d", *k, prior.K))
		}
		opts.K = 0 // inherit the snapshot's K
		res, err = prior.Refit(net, opts)
		if err != nil {
			fatal(err)
		}
		*k = res.K
	} else {
		var err error
		res, err = genclus.Fit(net, opts)
		if err != nil {
			fatal(err)
		}
	}

	if *saveModel != "" {
		if err := genclus.SaveModel(*saveModel, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "genclus: wrote model snapshot %s\n", *saveModel)
	}

	if *summary {
		sums, err := res.Summarize(net, 8)
		if err != nil {
			fatal(err)
		}
		for _, cs := range sums {
			fmt.Fprintf(os.Stderr, "%s\n", cs)
			for attr, terms := range cs.TopTerms {
				fmt.Fprintf(os.Stderr, "  %s top terms:", attr)
				for _, tw := range terms {
					fmt.Fprintf(os.Stderr, " %d(%.3f)", tw.Term, tw.Weight)
				}
				fmt.Fprintln(os.Stderr)
			}
			for attr, mu := range cs.GaussMeans {
				fmt.Fprintf(os.Stderr, "  %s mean: %.4g\n", attr, mu)
			}
		}
	}

	out := output{K: *k, Gamma: res.Gamma, Objective: res.Objective}
	labels := genclus.HardLabels(res.Theta)
	for v := 0; v < net.NumObjects(); v++ {
		obj := net.Object(v)
		out.Objects = append(out.Objects, objectResult{
			ID: obj.ID, Type: obj.Type, Theta: res.Theta[v], Cluster: labels[v],
		})
	}
	for _, snap := range res.History {
		out.Iterations = append(out.Iterations, iterationSummary{Iter: snap.Iter, Gamma: snap.Gamma, G1: snap.G1})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *outPath == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "genclus: wrote %s (%d objects, %d relations)\n", *outPath, net.NumObjects(), net.NumRelations())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genclus:", err)
	os.Exit(1)
}
