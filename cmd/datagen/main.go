// Command datagen emits the synthetic networks the paper evaluates on —
// the Appendix C weather sensor network and the DBLP-four-area-style
// bibliographic networks — as network JSON plus a ground-truth labels file.
//
// Usage:
//
//	datagen -kind weather  -out net.json [-labels labels.json]
//	        [-setting 1] [-numT 1000] [-numP 250] [-nobs 5] [-seed 1]
//	datagen -kind biblio   -out net.json [-labels labels.json]
//	        [-schema AC|ACP] [-authors 1200] [-papers 1800] [-full-scale]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"genclus"
	"genclus/internal/datagen"
)

func main() {
	var (
		kind    = flag.String("kind", "weather", "dataset kind: weather | biblio")
		outPath = flag.String("out", "", "output network JSON path (required)")
		labels  = flag.String("labels", "", "optional ground-truth labels JSON path")
		seed    = flag.Int64("seed", 1, "random seed")

		setting = flag.Int("setting", 1, "weather pattern setting (1 or 2)")
		numT    = flag.Int("numT", 1000, "weather: temperature sensors")
		numP    = flag.Int("numP", 250, "weather: precipitation sensors")
		nobs    = flag.Int("nobs", 5, "weather: observations per sensor")

		schema    = flag.String("schema", "AC", "biblio: AC | ACP")
		authors   = flag.Int("authors", 1200, "biblio: number of authors")
		papers    = flag.Int("papers", 1800, "biblio: number of papers")
		fullScale = flag.Bool("full-scale", false, "biblio: use the paper's DBLP four-area counts")
	)
	flag.Parse()
	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var ds *genclus.Dataset
	var err error
	switch *kind {
	case "weather":
		var cfg genclus.WeatherConfig
		switch *setting {
		case 1:
			cfg = genclus.WeatherSetting1(*numT, *numP, *nobs, *seed)
		case 2:
			cfg = genclus.WeatherSetting2(*numT, *numP, *nobs, *seed)
		default:
			fatal(fmt.Errorf("unknown weather setting %d", *setting))
		}
		ds, err = genclus.GenerateWeather(cfg)
	case "biblio":
		var sc genclus.Schema
		switch *schema {
		case "AC":
			sc = genclus.SchemaAC
		case "ACP":
			sc = genclus.SchemaACP
		default:
			fatal(fmt.Errorf("unknown schema %q", *schema))
		}
		var cfg genclus.BiblioConfig
		if *fullScale {
			cfg = datagen.FullScaleBiblioConfig(sc, *seed)
		} else {
			cfg = genclus.DefaultBiblioConfig(sc, *seed)
			cfg.NumAuthors = *authors
			cfg.NumPapers = *papers
		}
		ds, err = genclus.GenerateBibliographic(cfg)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}

	if err := ds.Net.SaveFile(*outPath); err != nil {
		fatal(err)
	}
	stats := ds.Net.Stats()
	fmt.Fprintf(os.Stderr, "datagen: wrote %s — %s\n", *outPath, stats)

	if *labels != "" {
		byID := make(map[string]int, len(ds.Labels))
		for v, lab := range ds.Labels {
			byID[ds.Net.Object(v).ID] = lab
		}
		data, err := json.MarshalIndent(map[string]interface{}{
			"k":      ds.NumClusters,
			"labels": byID,
		}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*labels, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %s (%d labeled objects)\n", *labels, len(byID))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
