// Command genclusd is the GenClus clustering service: a long-running HTTP
// daemon that accepts network uploads, fits GenClus models on an async job
// queue with a bounded worker pool, streams fit progress over Server-Sent
// Events (GET /v1/jobs/{id}/events), supports warm-starting a job from a
// finished one (warm_start_from) or from a registered model
// (warm_start_from_model), and serves the fitted results and the
// /v1/models snapshot registry.
//
// Usage:
//
//	genclusd [-addr :8080] [-workers N] [-queue 64] [-ttl 1h]
//	         [-max-body 33554432] [-data-dir DIR] [-max-models 1024]
//	         [-assign-batch-window 2ms] [-assign-max-batch 256]
//	         [-assign-max-queue N] [-assign-max-inflight 1024]
//	         [-assign-rps 0] [-supervisor-max-pending 32]
//	         [-supervisor-drift 0.25] [-supervisor-interval 5s]
//	         [-read-timeout 2m] [-write-timeout 1m]
//	         [-idle-timeout 2m] [-log-format text|json] [-log-level info]
//	         [-replica-of URL] [-sync-interval 2s]
//	         [-max-traces 256] [-trace-slow 1s] [-pprof-addr ""]
//
// With -data-dir, fitted state is durable: every finished fit's model
// snapshot and job record are written crash-safely under DIR before the job
// reports done, and a restarted daemon — including one killed with SIGKILL —
// recovers and serves them again. Without it the daemon is memory-only.
//
// Uploaded networks keep evolving in place through the streaming mutation
// API (POST /v1/networks/{id}/edges, POST /v1/networks/{id}/objects, PATCH
// /v1/networks/{id}/attributes): each mutation is appended to a crash-safe
// per-network delta log (replayed on restart with -data-dir) and published
// as a new immutable view generation, so in-flight fits and assigns are
// never disturbed. A background supervisor watches every mutated network
// and auto-refits it — warm-started from the previous model — when the
// uncovered mutation count reaches -supervisor-max-pending or the fold-in
// drift estimate crosses -supervisor-drift, re-evaluating every
// -supervisor-interval; GET /v1/networks/{id}/supervisor reports its
// progress.
//
// Registered models serve online inference via POST
// /v1/models/{id}/assign: batches of new objects fold into a model's
// hidden space without refitting. -assign-batch-window bounds how long a
// request waits to coalesce with concurrent ones into a shared inference
// pass (0 disables coalescing), and -assign-max-batch caps both a single
// request's batch and a coalesced pass. Admission control sheds overload
// with typed 429 "overloaded" responses: -assign-max-queue bounds the
// query objects queued behind a busy model, -assign-max-inflight caps
// concurrent assign requests globally, and -assign-rps adds an optional
// token-bucket rate limit.
//
// With -replica-of URL the daemon runs as a read-only replica of another
// genclusd: a sync loop mirrors the primary's /v1/models registry by
// snapshot digest (pulling only changed models over /v1/models/{id}/export,
// verified against the advertised SHA-256 before install), /assign and
// every read endpoint serve from the synced registry, and mutating routes
// answer a typed 403 {"code":"read_only_replica"}. -sync-interval sets the
// pull cadence; GET /v1/replication, /healthz and /metrics expose sync lag
// and counters. Combine with -data-dir so a restarted replica resumes from
// its persisted registry instead of re-downloading everything.
//
// GET /metrics serves the full operational instrument inventory in the
// Prometheus text format (see docs/ARCHITECTURE.md, "Operations"),
// including Go runtime telemetry (goroutines, heap, GC), and structured
// logs (slog; -log-format, -log-level) carry per-request and per-job IDs.
//
// Every request is traced: an inbound W3C traceparent header continues the
// caller's trace, the trace id doubles as the request id in logs and error
// bodies, and completed traces — requests, fits with per-iteration
// timelines, supervisor decisions, replica sync passes — are browsable on
// GET /v1/traces (ring bounded by -max-traces) and GET /v1/traces/{id};
// GET /v1/jobs/{id}/trace serves a fit's timeline live. Requests slower
// than -trace-slow are promoted to Warn-level log lines. -pprof-addr
// starts the Go pprof profiling listener on a SEPARATE address (off by
// default; never mounted on the serving mux — bind it to localhost or an
// internal interface only).
//
// The genclus/client package is the typed Go SDK for this daemon; see
// README.md for it and for the raw HTTP API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genclus/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent fit workers (default: number of CPUs)")
		queue     = flag.Int("queue", 64, "job queue depth (submissions beyond it get 503)")
		ttl       = flag.Duration("ttl", time.Hour, "evict finished jobs and idle networks after this long")
		maxBody   = flag.Int64("max-body", 32<<20, "maximum request body size in bytes")
		dataDir   = flag.String("data-dir", "", "persist finished fits (model snapshots + job records) under this directory; empty = memory-only")
		maxModels = flag.Int("max-models", 0, "cap on registered models; oldest evicted beyond it (default 1024)")

		assignWindow   = flag.Duration("assign-batch-window", 2*time.Millisecond, "how long an assign request sleeps to coalesce with concurrent ones into a shared inference pass (a fixed latency floor every request pays); 0s disables coalescing")
		assignMaxBatch = flag.Int("assign-max-batch", 0, "cap on query objects per assign request and per coalesced inference pass (default 256)")
		assignMaxQueue = flag.Int("assign-max-queue", 0, "cap on query objects queued behind one model's dispatcher; overflow is shed with 429 (default 4x assign-max-batch, -1 unbounded)")
		assignInFlight = flag.Int("assign-max-inflight", 0, "global cap on concurrent assign requests; overflow is shed with 429 (default 1024, -1 unbounded)")
		assignRPS      = flag.Float64("assign-rps", 0, "token-bucket rate limit on assign admissions, requests per second (0 disables)")
		assignBurst    = flag.Int("assign-burst", 0, "token-bucket burst for -assign-rps (default: assign-rps rounded up)")
		supPending     = flag.Int("supervisor-max-pending", 0, "mutations a network may accumulate before the supervisor auto-refits it (default 32, -1 disables the pending trigger)")
		supDrift       = flag.Float64("supervisor-drift", 0, "fold-in drift score in [0,1] beyond which the supervisor auto-refits a mutated network (default 0.25, -1 disables the drift trigger)")
		supInterval    = flag.Duration("supervisor-interval", 0, "how often the supervisor re-evaluates drift and pending depth on mutated networks (default 5s)")
		replicaOf      = flag.String("replica-of", "", "run as a read-only replica of the given primary base URL (e.g. http://primary:8080): sync its model registry, serve /assign, refuse writes with 403")
		syncInterval   = flag.Duration("sync-interval", 0, "pause between successful replica sync passes (default 2s; only with -replica-of)")
		readTimeout    = flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout: full-request read budget (0 disables)")
		writeTimeout   = flag.Duration("write-timeout", time.Minute, "per-request write deadline on non-streaming routes; SSE event streams are exempt (0 disables)")
		idleTimeout    = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0 disables)")
		logFormat      = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevelFlag   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (per-request lines are debug)")
		maxTraces      = flag.Int("max-traces", 0, "completed request/job traces retained in memory for GET /v1/traces (default 256)")
		traceSlow      = flag.Duration("trace-slow", time.Second, "promote requests slower than this to Warn-level logs with their trace id (0 disables)")
		pprofAddr      = flag.String("pprof-addr", "", "serve Go pprof profiling on this SEPARATE address (e.g. localhost:6060); empty = off, never exposed on the main listener")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevelFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genclusd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	window := *assignWindow
	if window == 0 {
		window = -1 // explicit 0s: coalescing off (Config treats negative as disabled)
	}
	wt := *writeTimeout
	if wt == 0 {
		wt = -1 // explicit 0s: no write deadline (Config treats negative as disabled)
	}
	ts := *traceSlow
	if ts == 0 {
		ts = -1 // explicit 0s: no slow-request promotion (Config treats negative as disabled)
	}

	srv, err := server.New(server.Config{
		Workers:                  *workers,
		QueueDepth:               *queue,
		JobTTL:                   *ttl,
		MaxBodyBytes:             *maxBody,
		DataDir:                  *dataDir,
		MaxModels:                *maxModels,
		AssignBatchWindow:        window,
		MaxAssignBatch:           *assignMaxBatch,
		MaxAssignQueue:           *assignMaxQueue,
		MaxAssignInFlight:        *assignInFlight,
		AssignRPS:                *assignRPS,
		AssignBurst:              *assignBurst,
		SupervisorMaxPending:     *supPending,
		SupervisorDriftThreshold: *supDrift,
		SupervisorInterval:       *supInterval,
		ReplicaOf:                *replicaOf,
		SyncInterval:             *syncInterval,
		WriteTimeout:             wt,
		MaxTraces:                *maxTraces,
		TraceSlow:                ts,
		Logger:                   logger,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		rec := srv.Recovered()
		logger.Info("data dir recovered",
			"dir", *dataDir,
			"models", rec.Models,
			"jobs", rec.Jobs,
			"networks", rec.Networks,
			"mutations", rec.Mutations,
			"skipped", rec.SkippedBlobs,
			"orphans", rec.OrphanRecords,
		)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// ReadHeaderTimeout alone left slow-body clients unbounded; the
		// read and idle timeouts close them out, and the per-route write
		// deadline (server.Config.WriteTimeout) covers the response side —
		// http.Server.WriteTimeout itself would kill SSE streams, so it
		// stays unset on purpose.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// End live SSE streams as soon as a graceful shutdown starts —
	// otherwise an attached events consumer holds Shutdown open for its
	// whole timeout.
	httpSrv.RegisterOnShutdown(srv.DrainStreams)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	// The pprof listener is its own server on its own address, never a route
	// on the serving mux: profiling endpoints leak heap contents and must
	// not ride the API's exposure. A pprof failure is logged, not fatal —
	// the daemon serves fine without its profiler.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", "error", err)
			}
		}()
	}

	select {
	case err := <-errc:
		srv.Close()
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown incomplete", "error", err)
	}
	if pprofSrv != nil {
		_ = pprofSrv.Shutdown(shutdownCtx)
	}
	srv.Close() // aborts running fits and waits for workers to exit
}

// pprofMux builds an explicit mux for the profiling endpoints instead of
// importing net/http/pprof for its DefaultServeMux side effects — the API
// mux must never accidentally inherit them.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
