// Command genclusd is the GenClus clustering service: a long-running HTTP
// daemon that accepts network uploads, fits GenClus models on an async job
// queue with a bounded worker pool, streams fit progress over Server-Sent
// Events (GET /v1/jobs/{id}/events), supports warm-starting a job from a
// finished one (warm_start_from) or from a registered model
// (warm_start_from_model), and serves the fitted results and the
// /v1/models snapshot registry.
//
// Usage:
//
//	genclusd [-addr :8080] [-workers N] [-queue 64] [-ttl 1h]
//	         [-max-body 33554432] [-data-dir DIR] [-max-models 1024]
//	         [-assign-batch-window 2ms] [-assign-max-batch 256]
//
// With -data-dir, fitted state is durable: every finished fit's model
// snapshot and job record are written crash-safely under DIR before the job
// reports done, and a restarted daemon — including one killed with SIGKILL —
// recovers and serves them again. Without it the daemon is memory-only.
//
// Registered models serve online inference via POST
// /v1/models/{id}/assign: batches of new objects fold into a model's
// hidden space without refitting. -assign-batch-window bounds how long a
// request waits to coalesce with concurrent ones into a shared inference
// pass (0 disables coalescing), and -assign-max-batch caps both a single
// request's batch and a coalesced pass.
//
// The genclus/client package is the typed Go SDK for this daemon; see
// README.md for it and for the raw HTTP API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"genclus/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent fit workers (default: number of CPUs)")
		queue     = flag.Int("queue", 64, "job queue depth (submissions beyond it get 503)")
		ttl       = flag.Duration("ttl", time.Hour, "evict finished jobs and idle networks after this long")
		maxBody   = flag.Int64("max-body", 32<<20, "maximum request body size in bytes")
		dataDir   = flag.String("data-dir", "", "persist finished fits (model snapshots + job records) under this directory; empty = memory-only")
		maxModels = flag.Int("max-models", 0, "cap on registered models; oldest evicted beyond it (default 1024)")

		assignWindow   = flag.Duration("assign-batch-window", 2*time.Millisecond, "how long an assign request sleeps to coalesce with concurrent ones into a shared inference pass (a fixed latency floor every request pays); 0s disables coalescing")
		assignMaxBatch = flag.Int("assign-max-batch", 0, "cap on query objects per assign request and per coalesced inference pass (default 256)")
	)
	flag.Parse()

	window := *assignWindow
	if window == 0 {
		window = -1 // explicit 0s: coalescing off (Config treats negative as disabled)
	}

	srv, err := server.New(server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		JobTTL:            *ttl,
		MaxBodyBytes:      *maxBody,
		DataDir:           *dataDir,
		MaxModels:         *maxModels,
		AssignBatchWindow: window,
		MaxAssignBatch:    *assignMaxBatch,
	})
	if err != nil {
		log.Fatalf("genclusd: %v", err)
	}
	if *dataDir != "" {
		rec := srv.Recovered()
		log.Printf("genclusd: data dir %s: recovered %d models, %d finished jobs (%d artifacts skipped, %d orphan records dropped)",
			*dataDir, rec.Models, rec.Jobs, rec.SkippedBlobs, rec.OrphanRecords)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// End live SSE streams as soon as a graceful shutdown starts —
	// otherwise an attached events consumer holds Shutdown open for its
	// whole timeout.
	httpSrv.RegisterOnShutdown(srv.DrainStreams)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("genclusd listening on %s", *addr)

	select {
	case err := <-errc:
		srv.Close()
		log.Fatalf("genclusd: %v", err)
	case <-ctx.Done():
	}

	log.Print("genclusd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "genclusd: shutdown: %v\n", err)
	}
	srv.Close() // aborts running fits and waits for workers to exit
}
