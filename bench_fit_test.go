// The fit-performance benchmark harness. BenchmarkFitRefit (cold fit vs
// warm refit) and BenchmarkEMIteration (one steady-state E+M pass over the
// CSR link storage) are the committed perf baselines: an unfiltered run
// (any -benchtime) rewrites its own entries in BENCH_fit.json at the repo
// root, so the file tracks the code and future PRs have a trajectory to
// compare against. CI runs both with -benchtime=1x as a smoke pass and
// uploads the JSON as an artifact. Regenerate everything with
//
//	go test -run=xxx -bench='BenchmarkFitRefit|BenchmarkEMIteration' .
package genclus_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"genclus"
	"genclus/internal/bench"
)

// benchFitEntry is one measurement in BENCH_fit.json.
type benchFitEntry struct {
	NsPerOp      int64  `json:"ns_per_op"`
	Iterations   int    `json:"benchmark_iterations"`
	EMIterations int    `json:"em_iterations,omitempty"` // EM work of one fit — the hardware-independent number
	AllocsPerOp  *int64 `json:"allocs_per_op,omitempty"` // set by the EM-iteration benchmark (0 is the contract)
}

// mergeBenchFile folds entries into BENCH_fit.json (or GENCLUS_BENCH_OUT),
// keeping the keys owned by other benchmarks intact so BenchmarkFitRefit
// and BenchmarkEMIteration can run in either order — or alone — without
// clobbering each other's committed numbers. owned declares which existing
// keys belong to the calling benchmark: they are dropped before the merge,
// so a renamed or removed scenario cannot leave a stale orphan behind.
func mergeBenchFile(b *testing.B, owned func(key string) bool, entries map[string]benchFitEntry) {
	path := os.Getenv("GENCLUS_BENCH_OUT")
	if path == "" {
		path = "BENCH_fit.json"
	}
	out := make(map[string]benchFitEntry)
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			b.Logf("ignoring unparsable %s: %v", path, err)
			out = make(map[string]benchFitEntry)
		}
	}
	for k := range out {
		if owned(k) {
			delete(out, k)
		}
	}
	for k, v := range entries {
		out[k] = v
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
	b.Logf("wrote %s", path)
}

// benchFitScenario pairs the network a model is first fitted on (base) with
// the network the measured fits run on (target). For the unchanged-network
// scenarios the two are the same; the grown scenario refits onto a network
// that gained 5% new objects.
type benchFitScenario struct {
	name   string
	base   *genclus.Network
	target *genclus.Network
	opts   genclus.Options
}

// benchDocNet builds the deterministic two-topic citation network used by
// the grown-network scenario: perTopic docs per topic with disjoint
// vocabulary blocks and within-topic links, plus extra docs per topic
// appended after the (bit-identical) base structure.
func benchDocNet(b *testing.B, perTopic, extra int) *genclus.Network {
	bl := genclus.NewBuilder()
	bl.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 40})
	add := func(topic, i int, tag string) string {
		id := fmt.Sprintf("%s%d_%04d", tag, topic, i)
		bl.AddObject(id, "doc")
		for w := 0; w < 10; w++ {
			bl.AddTermCount(id, "text", topic*20+(i+w)%20, 1)
		}
		return id
	}
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = add(topic, i, "doc")
		}
		for i, id := range ids {
			bl.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			bl.AddLink(id, ids[(i+7)%perTopic], "cites", 1)
		}
		for i := 0; i < extra; i++ {
			id := add(topic, i, "new")
			bl.AddLink(id, ids[i%perTopic], "cites", 1)
			bl.AddLink(id, ids[(i+3)%perTopic], "cites", 1)
		}
	}
	net, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func benchFitScenarios(b *testing.B) []benchFitScenario {
	weather, err := genclus.GenerateWeather(genclus.WeatherSetting1(200, 100, 5, 1))
	if err != nil {
		b.Fatal(err)
	}
	biblioCfg := genclus.DefaultBiblioConfig(genclus.SchemaACP, 1)
	biblioCfg.NumAuthors = 120
	biblioCfg.NumPapers = 200
	biblioCfg.LabeledPapers = 20
	biblio, err := genclus.GenerateBibliographic(biblioCfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := func(k int) genclus.Options {
		o := genclus.DefaultOptions(k)
		o.OuterIters = 10
		o.EMIters = 15
		o.EMTol = 1e-6
		o.OuterTol = 1e-6
		o.Seed = 1
		return o
	}
	docsBase := benchDocNet(b, 250, 0)
	docsGrown := benchDocNet(b, 250, 13) // +26 docs on 500 = ~5%
	return []benchFitScenario{
		{name: "weather", base: weather.Net, target: weather.Net, opts: opts(weather.NumClusters)},
		{name: "biblio", base: biblio.Net, target: biblio.Net, opts: opts(biblio.NumClusters)},
		{name: "docs-grown5pct", base: docsBase, target: docsGrown, opts: opts(2)},
	}
}

// BenchmarkFitRefit measures, per scenario, a cold Fit of the target
// network and a Model.Refit onto it from a model fitted on the base
// network (same network for the unchanged scenarios, a 5%-grown one for
// docs-grown5pct). Sub-benchmark timings are collected and written to
// BENCH_fit.json (override the path with GENCLUS_BENCH_OUT); the write is
// skipped when -bench filtering dropped any sub-benchmark, so a partial
// run cannot clobber the committed baseline.
func BenchmarkFitRefit(b *testing.B) {
	out := make(map[string]benchFitEntry)
	record := func(name string, b *testing.B, emIters int) {
		nsPerOp := int64(0)
		if b.N > 0 {
			nsPerOp = b.Elapsed().Nanoseconds() / int64(b.N)
		}
		out[name] = benchFitEntry{NsPerOp: nsPerOp, Iterations: b.N, EMIterations: emIters}
	}

	scenarios := benchFitScenarios(b)
	for _, sc := range scenarios {
		model, err := genclus.Fit(sc.base, sc.opts)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(sc.name+"/cold", func(b *testing.B) {
			em := 0
			for i := 0; i < b.N; i++ {
				res, err := genclus.Fit(sc.target, sc.opts)
				if err != nil {
					b.Fatal(err)
				}
				em = res.EMIterations
			}
			b.StopTimer()
			b.ReportMetric(float64(em), "em-iters")
			record(sc.name+"/cold", b, em)
		})

		b.Run(sc.name+"/refit", func(b *testing.B) {
			em := 0
			for i := 0; i < b.N; i++ {
				res, err := model.Refit(sc.target, genclus.DefaultOptions(sc.opts.K))
				if err != nil {
					b.Fatal(err)
				}
				em = res.EMIterations
			}
			b.StopTimer()
			b.ReportMetric(float64(em), "em-iters")
			record(sc.name+"/refit", b, em)
		})
	}

	if len(out) != 2*len(scenarios) {
		b.Logf("skipping BENCH_fit.json write: %d of %d sub-benchmarks ran (filtered run)", len(out), 2*len(scenarios))
		return
	}
	// This benchmark owns the "<scenario>/cold" and "<scenario>/refit"
	// key family — matched by shape rather than by the current scenario
	// list, so a renamed scenario's old keys are still cleaned up, while
	// key families owned by other benchmarks survive untouched.
	mergeBenchFile(b, func(key string) bool {
		return !strings.HasPrefix(key, "em-iteration/") &&
			(strings.HasSuffix(key, "/cold") || strings.HasSuffix(key, "/refit"))
	}, out)
}

// BenchmarkAssignBatch measures the online inference subsystem's steady
// state: one engine pass over a 64-query batch — each query a realistic
// mix of links into the known network and a sparse text observation —
// against a model fitted on the mid-size two-topic citation network.
// Allocations are the headline: after the first pass sizes the engine's
// arena, AssignBatch must stay at 0 allocs/op
// (TestAssignBatchSteadyStateZeroAlloc pins the same invariant as a
// test). The measurement lands in BENCH_fit.json under
// "assign-batch/midsize" and is enforced by the CI bench-regression gate.
func BenchmarkAssignBatch(b *testing.B) {
	net := benchDocNet(b, 250, 0)
	opts := genclus.DefaultOptions(2)
	opts.OuterIters = 5
	opts.EMIters = 10
	opts.EMTol = 1e-6
	opts.Seed = 1
	model, err := genclus.Fit(net, opts)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := genclus.NewAssigner(model, genclus.AssignOptions{TopK: 2})
	if err != nil {
		b.Fatal(err)
	}
	// 64 queries rebuilt from training objects: two citation links plus the
	// object's sparse term counts, presented by ID like real traffic.
	queries := make([]genclus.AssignQuery, 64)
	for i := range queries {
		v := (i * 7) % net.NumObjects()
		q := genclus.AssignQuery{ID: net.Object(v).ID}
		for _, e := range net.OutEdges(v) {
			q.Links = append(q.Links, genclus.AssignLink{
				Relation: net.RelationName(e.Rel),
				To:       net.Object(e.To).ID,
				Weight:   e.Weight,
			})
		}
		if tcs := net.TermCounts(0, v); len(tcs) > 0 {
			q.Terms = []genclus.AssignCatObs{{Attr: "text", Terms: tcs}}
		}
		queries[i] = q
	}
	run := func() {
		if _, err := eng.AssignBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm-up sizes the arena
	allocs := int64(testing.AllocsPerRun(5, run))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	nsPerOp := int64(0)
	if b.N > 0 {
		nsPerOp = b.Elapsed().Nanoseconds() / int64(b.N)
	}
	mergeBenchFile(b, func(key string) bool { return strings.HasPrefix(key, "assign-batch/") }, map[string]benchFitEntry{
		"assign-batch/midsize": {NsPerOp: nsPerOp, Iterations: b.N, AllocsPerOp: &allocs},
	})
}

// BenchmarkEMIteration measures one steady-state E+M pass of the EM hot
// path on the mid-size synthetic network (4000 objects, ~24k links, two
// relations, K=4) — the number the CSR link storage and the preallocated
// scratch exist to improve. Allocations are the headline: the steady state
// must stay at 0 allocs/op (TestEMIterationSteadyStateZeroAlloc enforces
// the same invariant as a test). The measurement lands in BENCH_fit.json
// under "em-iteration/midsize".
func BenchmarkEMIteration(b *testing.B) {
	eb, err := bench.NewEMIterationBench()
	if err != nil {
		b.Fatal(err)
	}
	allocs := int64(testing.AllocsPerRun(5, eb.RunIteration))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb.RunIteration()
	}
	b.StopTimer()
	nsPerOp := int64(0)
	if b.N > 0 {
		nsPerOp = b.Elapsed().Nanoseconds() / int64(b.N)
	}
	// Owns only the serial key: the per-parallelism series belongs to
	// BenchmarkEMIterationParallel, so either benchmark can run alone
	// without orphaning or clobbering the other's committed numbers.
	mergeBenchFile(b, func(key string) bool { return key == "em-iteration/midsize" }, map[string]benchFitEntry{
		"em-iteration/midsize": {NsPerOp: nsPerOp, Iterations: b.N, AllocsPerOp: &allocs},
	})
}

// BenchmarkEMIterationParallel measures the same steady-state E+M pass under
// the persistent worker pool at P=1, 4 and 16 — the NUMA-scale throughput
// series. Results are bitwise identical at every width (the reduction runs
// over fixed chunks merged in chunk order; TestFitGoldenBitwiseChecksum pins
// it), so the series measures pure scheduling overhead and scaling. The P=4
// and P=16 points land in BENCH_fit.json as "em-iteration/midsize-p4" and
// "-p16" with the same 0 allocs/op contract as the serial key; P=1 runs for
// a same-binary scaling reference but the serial baseline stays owned by
// BenchmarkEMIteration. Note the committed numbers are only meaningful on
// hosts with at least as many cores as the width — on smaller hosts the
// wide points measure oversubscription, which is why the benchgate CI
// series gates regressions per key instead of asserting a scaling ratio.
func BenchmarkEMIterationParallel(b *testing.B) {
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			eb, err := bench.NewEMIterationBenchParallel(p)
			if err != nil {
				b.Fatal(err)
			}
			defer eb.Close()
			allocs := int64(testing.AllocsPerRun(5, eb.RunIteration))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eb.RunIteration()
			}
			b.StopTimer()
			if p == 1 {
				return
			}
			nsPerOp := int64(0)
			if b.N > 0 {
				nsPerOp = b.Elapsed().Nanoseconds() / int64(b.N)
			}
			key := fmt.Sprintf("em-iteration/midsize-p%d", p)
			mergeBenchFile(b, func(k string) bool { return k == key }, map[string]benchFitEntry{
				key: {NsPerOp: nsPerOp, Iterations: b.N, AllocsPerOp: &allocs},
			})
		})
	}
}
