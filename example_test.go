package genclus_test

import (
	"fmt"

	"genclus"
)

// ExampleFit clusters a miniature two-topic citation network and shows that
// documents with disjoint vocabularies separate while an attribute-free hub
// follows its neighbors.
func ExampleFit() {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 10})
	for i := 0; i < 4; i++ {
		doc := fmt.Sprintf("red%d", i)
		b.AddObject(doc, "doc")
		for w := 0; w < 8; w++ {
			b.AddTermCount(doc, "text", w%5, 1)
		}
		doc = fmt.Sprintf("blue%d", i)
		b.AddObject(doc, "doc")
		for w := 0; w < 8; w++ {
			b.AddTermCount(doc, "text", 5+w%5, 1)
		}
	}
	b.AddObject("hub", "hub") // carries no attributes at all
	for i := 0; i < 4; i++ {
		b.AddLink("hub", fmt.Sprintf("red%d", i), "touches", 1)
		b.AddLink(fmt.Sprintf("red%d", i), "hub", "touched_by", 1)
	}
	net, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	opts := genclus.DefaultOptions(2)
	opts.Seed = 5
	res, err := genclus.Fit(net, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	labels := genclus.HardLabels(res.Theta)
	red, _ := net.IndexOf("red0")
	blue, _ := net.IndexOf("blue0")
	hub, _ := net.IndexOf("hub")
	fmt.Println("red and blue separated:", labels[red] != labels[blue])
	fmt.Println("hub joins the red camp:", labels[hub] == labels[red])
	// Output:
	// red and blue separated: true
	// hub joins the red camp: true
}

// ExampleInferSchema derives the typed structure of a generated network.
func ExampleInferSchema() {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(30, 15, 1, 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	schema, err := genclus.InferSchema(ds.Net)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(schema)
	// Output:
	// types: precip_sensor, temp_sensor
	// <P,P>: precip_sensor -> precip_sensor
	// <P,T>: precip_sensor -> temp_sensor
	// <T,P>: temp_sensor -> precip_sensor
	// <T,T>: temp_sensor -> temp_sensor
}

// ExampleNMI shows the renaming invariance of the evaluation metric.
func ExampleNMI() {
	truth := []int{0, 0, 1, 1}
	renamed := []int{1, 1, 0, 0}
	nmi, err := genclus.NMI(renamed, truth)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.1f\n", nmi)
	// Output:
	// 1.0
}
