package genclus_test

import (
	"fmt"

	"genclus"
)

// ExampleFit clusters a miniature two-topic citation network and shows that
// documents with disjoint vocabularies separate while an attribute-free hub
// follows its neighbors.
func ExampleFit() {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 10})
	for i := 0; i < 4; i++ {
		doc := fmt.Sprintf("red%d", i)
		b.AddObject(doc, "doc")
		for w := 0; w < 8; w++ {
			b.AddTermCount(doc, "text", w%5, 1)
		}
		doc = fmt.Sprintf("blue%d", i)
		b.AddObject(doc, "doc")
		for w := 0; w < 8; w++ {
			b.AddTermCount(doc, "text", 5+w%5, 1)
		}
	}
	b.AddObject("hub", "hub") // carries no attributes at all
	for i := 0; i < 4; i++ {
		b.AddLink("hub", fmt.Sprintf("red%d", i), "touches", 1)
		b.AddLink(fmt.Sprintf("red%d", i), "hub", "touched_by", 1)
	}
	net, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	opts := genclus.DefaultOptions(2)
	opts.Seed = 5
	res, err := genclus.Fit(net, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	labels := genclus.HardLabels(res.Theta)
	red, _ := net.IndexOf("red0")
	blue, _ := net.IndexOf("blue0")
	hub, _ := net.IndexOf("hub")
	fmt.Println("red and blue separated:", labels[red] != labels[blue])
	fmt.Println("hub joins the red camp:", labels[hub] == labels[red])
	// Output:
	// red and blue separated: true
	// hub joins the red camp: true
}

// ExampleModel_Refit fits a small two-topic network, grows it by a few
// documents, and warm-starts the re-clustering from the fitted model — the
// evolving-network workflow. The refit converges in a fraction of a cold
// start's EM iterations and keeps the carried-over labels.
func ExampleModel_Refit() {
	build := func(perTopic, extra int) *genclus.Network {
		b := genclus.NewBuilder()
		b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 20})
		add := func(topic, i int, tag string) string {
			id := fmt.Sprintf("%s%d_%d", tag, topic, i)
			b.AddObject(id, "doc")
			for w := 0; w < 8; w++ {
				b.AddTermCount(id, "text", topic*10+(i+w)%10, 1)
			}
			return id
		}
		for topic := 0; topic < 2; topic++ {
			ids := make([]string, perTopic)
			for i := range ids {
				ids[i] = add(topic, i, "doc")
			}
			for i, id := range ids {
				b.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			}
			for i := 0; i < extra; i++ {
				id := add(topic, i, "new")
				b.AddLink(id, ids[i%perTopic], "cites", 1)
			}
		}
		net, err := b.Build()
		if err != nil {
			panic(err)
		}
		return net
	}

	opts := genclus.DefaultOptions(2)
	opts.Seed = 1
	opts.EMTol = 1e-9
	opts.OuterTol = 1e-9
	model, err := genclus.Fit(build(20, 0), opts)
	if err != nil {
		fmt.Println(err)
		return
	}

	grown := build(20, 2) // same 40 docs plus 4 new ones
	refit, err := model.Refit(grown, genclus.DefaultOptions(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	labels := refit.HardLabels()
	old0, _ := grown.IndexOf("doc0_0")
	new0, _ := grown.IndexOf("new0_0")
	other, _ := grown.IndexOf("doc1_0")
	fmt.Println("refit cheaper than cold fit:", refit.EMIterations < model.EMIterations)
	fmt.Println("new doc joins its topic:", labels[new0] == labels[old0] && labels[new0] != labels[other])
	// Output:
	// refit cheaper than cold fit: true
	// new doc joins its topic: true
}

// ExampleEncodeModel round-trips a fitted model through the binary
// snapshot codec — the portable form of fitted state (files via SaveModel,
// the genclusd /v1/models registry over HTTP) — and shows that serialized
// state warm-starts exactly like the original: the encoding is
// deterministic and the decoded model refits to bitwise-identical
// memberships.
func ExampleEncodeModel() {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 10})
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("doc%d", i)
		b.AddObject(id, "doc")
		for w := 0; w < 6; w++ {
			b.AddTermCount(id, "text", (i/3)*5+w%5, 1)
		}
	}
	for i := 0; i < 6; i++ {
		// Ring links within each three-document topic.
		topic, pos := i/3, i%3
		b.AddLink(fmt.Sprintf("doc%d", i), fmt.Sprintf("doc%d", topic*3+(pos+1)%3), "cites", 1)
	}
	net, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	model, err := genclus.Fit(net, genclus.DefaultOptions(2))
	if err != nil {
		fmt.Println(err)
		return
	}

	data, err := genclus.EncodeModel(model)
	if err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := genclus.DecodeModel(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	again, _ := genclus.EncodeModel(loaded)
	fmt.Println("deterministic bytes:", string(data) == string(again))

	a, _ := model.Refit(net, genclus.DefaultOptions(0))
	c, _ := loaded.Refit(net, genclus.DefaultOptions(0))
	same := true
	for v := range a.Theta {
		for k := range a.Theta[v] {
			same = same && a.Theta[v][k] == c.Theta[v][k]
		}
	}
	fmt.Println("refit from decoded model bitwise-identical:", same)
	// Output:
	// deterministic bytes: true
	// refit from decoded model bitwise-identical: true
}

// ExampleNewAssigner fits a small two-topic network and folds brand-new
// objects into the fitted hidden space with the online inference engine —
// no refit, any subset of evidence: citations only, title words only, or
// nothing at all (which earns the uniform posterior).
func ExampleNewAssigner() {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 20})
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, 8)
		for i := range ids {
			ids[i] = fmt.Sprintf("doc%d_%d", topic, i)
			b.AddObject(ids[i], "doc")
			for w := 0; w < 6; w++ {
				b.AddTermCount(ids[i], "text", topic*10+(i+w)%10, 1)
			}
		}
		for i, id := range ids {
			b.AddLink(id, ids[(i+1)%len(ids)], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	opts := genclus.DefaultOptions(2)
	opts.Seed = 1
	model, err := genclus.Fit(net, opts)
	if err != nil {
		fmt.Println(err)
		return
	}

	assigner, err := genclus.NewAssigner(model, genclus.AssignOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	out, err := assigner.AssignBatch([]genclus.AssignQuery{
		{ID: "cites-0", Links: []genclus.AssignLink{{Relation: "cites", To: "doc0_3", Weight: 1}}},
		{ID: "texts-1", Terms: []genclus.AssignCatObs{{Attr: "text", Terms: []genclus.TermCount{{Term: 12, Count: 2}}}}},
		{ID: "no-info"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	labels := genclus.HardLabels(model.Theta)
	d0, _ := net.IndexOf("doc0_3")
	d1, _ := net.IndexOf("doc1_0")
	fmt.Println("citing doc joins topic 0:", out[0].Cluster == labels[d0])
	fmt.Println("texted doc joins topic 1:", out[1].Cluster == labels[d1])
	fmt.Println("evidence-free doc is uniform:", out[2].Theta[0] == 0.5 && out[2].Theta[1] == 0.5)
	// Output:
	// citing doc joins topic 0: true
	// texted doc joins topic 1: true
	// evidence-free doc is uniform: true
}

// ExampleInferSchema derives the typed structure of a generated network.
func ExampleInferSchema() {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(30, 15, 1, 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	schema, err := genclus.InferSchema(ds.Net)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(schema)
	// Output:
	// types: precip_sensor, temp_sensor
	// <P,P>: precip_sensor -> precip_sensor
	// <P,T>: precip_sensor -> temp_sensor
	// <T,P>: temp_sensor -> precip_sensor
	// <T,T>: temp_sensor -> temp_sensor
}

// ExampleNMI shows the renaming invariance of the evaluation metric.
func ExampleNMI() {
	truth := []int{0, 0, 1, 1}
	renamed := []int{1, 1, 0, 0}
	nmi, err := genclus.NMI(renamed, truth)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.1f\n", nmi)
	// Output:
	// 1.0
}
