package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"genclus/internal/core"
)

// fuzzLimits keeps hostile inputs from exploding memory during fuzzing —
// the same mechanism that shields the genclusd /v1/models/import endpoint.
var fuzzLimits = Limits{
	MaxObjects:    2000,
	MaxK:          64,
	MaxRelations:  64,
	MaxAttributes: 16,
	MaxVocab:      4096,
	MaxMetaPairs:  32,
	MaxStringLen:  1024,
}

// fuzzSeedSnapshot builds a small valid snapshot to seed the corpus.
func fuzzSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	res := &core.Result{
		K:        2,
		Theta:    [][]float64{{0.25, 0.75}, {0.5, 0.5}, {0.9, 0.1}},
		Gamma:    map[string]float64{"cites": 1.5, "writes": 0.25},
		GammaVec: []float64{1.5, 0.25},
		Attrs: []core.AttrModel{
			{Name: "text", Kind: 0, Cat: &core.CatParams{Beta: [][]float64{{0.5, 0.5}, {0.1, 0.9}}}},
			{Name: "score", Kind: 1, Gauss: &core.GaussParams{Mu: []float64{0, 8}, Var: []float64{1, 2}}},
		},
		Objective:       -12.5,
		PseudoLL:        -3.25,
		EMIterations:    17,
		OuterIterations: 3,
	}
	m, err := core.NewModel(res, []string{"a", "b", "c"})
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(&Snapshot{Model: m, Meta: map[string]string{"job_id": "job_1", "network_id": "net_1"}})
	if err != nil {
		f.Fatal(err)
	}
	return enc
}

// FuzzDecodeSnapshot hammers the binary codec's trust boundary: any byte
// slice must either fail with a typed error or decode into a snapshot whose
// re-encoding reproduces the input exactly. Panics, OOM (the limits are
// tight and allocation is incremental), and canonical-form drift are the
// bugs being hunted. CI runs this as a 30s smoke pass next to the network
// decoder fuzz.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)

	// Corrupt headers.
	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	f.Add(bad)
	bad = append([]byte(nil), valid...)
	bad[4] = 0xFF // future version
	f.Add(bad)

	// Truncated sections.
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/3])
	f.Add(valid[:len(valid)-3])

	// Oversized dims: header + huge meta count.
	huge := []byte(Magic)
	huge = append(huge, 1, 0, 0, 0) // version 1, flags 0
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], math.MaxUint32)
	f.Add(append(huge, tmp[:n]...))

	// Checksum flip and trailing garbage.
	bad = append([]byte(nil), valid...)
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)
	f.Add(append(append([]byte(nil), valid...), 0x00))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data, fuzzLimits)
		if err != nil {
			if _, ok := err.(*FormatError); ok {
				return
			}
			if _, ok := err.(*LimitError); ok {
				return
			}
			t.Fatalf("decode failed with untyped error %T: %v", err, err)
		}
		re, err := Encode(snap)
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: decode/encode changed %d bytes to %d", len(data), len(re))
		}
	})
}
