// Package snapshot is the versioned binary codec for fitted GenClus models.
// It serializes a core.Model — Θ, the learned relation strengths γ, the
// fitted attribute component models, the objective values and iteration
// counts — plus a small sorted metadata map (origin job, options digest)
// into a self-checksummed, length-prefixed byte stream, and decodes it back
// behind resource limits so untrusted snapshot uploads cannot force large
// allocations or panics.
//
// The format is the persistence and portability substrate of the system: the
// genclusd daemon writes one snapshot per finished fit into its -data-dir
// (and recovers them at startup), the /v1/models registry exports and
// imports them over HTTP, and the genclus CLI reads and writes the same
// bytes — so a model fitted anywhere warm-starts a refit anywhere else.
//
// # Wire format (version 1)
//
// All integers are unsigned varints (binary.PutUvarint) except where noted;
// floats are raw IEEE-754 bits, little-endian; strings are a uvarint byte
// length followed by the bytes. Sections appear in this fixed order:
//
//	magic   "GCSN" (4 bytes)
//	version uint16 LE (currently 1), flags uint16 LE
//	meta    count, then (key, value) string pairs, keys strictly ascending
//	k       cluster count
//	objects count n, then n object-ID strings (Θ row order)
//	theta   n×k model floats
//	gamma   count r, then (relation name, model float) pairs, names ascending
//	gvec    count m (0 or r), then m model floats (dense-order γ, when retained)
//	attrs   count, then per attribute: name, kind byte (0 categorical,
//	        1 numeric); categorical: k rows of (vocab length, model floats);
//	        numeric: k means then k variances (model floats)
//	scalars objective float64, pseudo-LL float64, EM iterations, outer
//	        iterations
//	crc     uint32 LE CRC-32C (Castagnoli) of every preceding byte
//
// "Model floats" — Θ, γ, and the attribute component parameters — are raw
// IEEE-754 float64 bits by default. When the FlagFloat32 flags bit is set
// (the additive format extension for models fitted with
// Options.Precision = "float32") they are raw float32 bits instead, halving
// the payload; the two scalar objectives always stay float64. Any other
// flags bit is unknown and rejected, which is exactly how pre-extension
// decoders refuse float32 snapshots (typed *FormatError, never a misread) —
// while flags-zero snapshots decode unchanged as float64. The fitted state
// of a float32 fit is float32-representable by construction, so narrowing
// on encode loses nothing and decode→encode reproduces the bytes.
//
// Encoding is deterministic (maps are sorted, floats are exact bits), and
// the decoder rejects any input whose re-encoding would differ — so
// Encode(must(Decode(b))) == b for every accepted b, which is what lets the
// registry serve a stored snapshot's digest without re-reading the file.
// Result.History is deliberately not persisted: it is a debugging artifact
// proportional to the iteration count, not fitted state a refit consumes.
package snapshot

import (
	"fmt"

	"genclus/internal/core"
)

// Magic is the 4-byte signature every snapshot starts with.
const Magic = "GCSN"

// Version is the current wire-format version. Decoders reject newer
// versions (forward compatibility is a re-fit away; silent misreads are
// not).
const Version = 1

// FlagFloat32 marks a snapshot whose model floats are stored as raw
// float32 bits (fitted under Options.Precision = "float32"). Decoders that
// predate the extension reject the bit as unknown flags; every other flags
// bit remains reserved and rejected.
const FlagFloat32 uint16 = 0x1

// Snapshot pairs a fitted model with the metadata recorded at export time.
type Snapshot struct {
	// Model is the fitted model: Θ, γ, attribute component models,
	// objectives and iteration counts, plus the source network's object IDs
	// in Θ row order. Result.History is not carried across the codec.
	Model *core.Model
	// Meta is a small string map for provenance — the genclusd persister
	// records the source job id, network id, finish time, and the options
	// digest here. Keys are sorted on encode; nil and empty are equivalent.
	Meta map[string]string
	// Precision selects the storage width of the model floats on the wire:
	// core.PrecisionFloat64 (or empty) writes the flags-zero float64 layout,
	// core.PrecisionFloat32 sets FlagFloat32 and writes float32 payloads.
	// Decode fills it from the flags word, so re-encoding a decoded
	// snapshot reproduces its bytes.
	Precision core.Precision
}

// Limits bounds what a decoded snapshot may allocate, in the same spirit as
// hin.Limits at the network-upload trust boundary. A zero field means "no
// limit" on that dimension. The decoder additionally grows every buffer
// incrementally while reading, so even within the limits a truncated or
// hostile input can only consume memory proportional to the bytes actually
// supplied.
type Limits struct {
	MaxObjects    int // Θ rows (and object IDs)
	MaxK          int // clusters (Θ columns, attribute components)
	MaxRelations  int // learned strengths
	MaxAttributes int // fitted attribute models
	MaxVocab      int // categorical component vocabulary length
	MaxMetaPairs  int // metadata entries
	MaxStringLen  int // any single string (ids, names, meta keys/values)
}

// DefaultLimits is the bound recovery and the CLI use: generous enough for
// any model this library can fit in memory, tight enough that a small
// hostile file cannot claim giant dimensions. genclusd derives stricter
// import limits from its own upload configuration.
func DefaultLimits() Limits {
	return Limits{
		MaxObjects:    50_000_000,
		MaxK:          65_536,
		MaxRelations:  65_536,
		MaxAttributes: 4096,
		MaxVocab:      50_000_000,
		MaxMetaPairs:  256,
		MaxStringLen:  65_536,
	}
}

// FormatError reports a snapshot rejected as malformed — wrong magic, a
// truncated section, an inconsistent count, a checksum mismatch, or a float
// outside the model's domain. Offset is the byte position the decoder had
// reached.
type FormatError struct {
	Offset int64  // byte offset where decoding failed
	Msg    string // what was wrong
}

// Error implements the error interface.
func (e *FormatError) Error() string {
	return fmt.Sprintf("snapshot: offset %d: %s", e.Offset, e.Msg)
}

// LimitError reports a snapshot rejected because a declared dimension
// exceeds a Limits bound — errors.As-distinguishable from FormatError so
// servers can answer 413 instead of 400.
type LimitError struct {
	Dimension string // "objects", "clusters", "relations", "attributes", "vocabulary", "meta", "string"
	Got, Max  int    // declared size and the bound it exceeded
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("snapshot: %d %s exceeds limit %d", e.Got, e.Dimension, e.Max)
}
