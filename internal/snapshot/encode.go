package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// castagnoli is the CRC-32C table shared by encoder and decoder.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// attribute kind bytes on the wire (pinned independently of hin's iota so a
// reordering there cannot silently change the format).
const (
	wireCategorical = 0
	wireNumeric     = 1
)

// Encode serializes the snapshot into the version-1 wire format. The output
// is deterministic: metadata and strength maps are emitted in sorted key
// order and floats as exact bits, so encoding the same fitted state twice
// yields byte-identical output (the property the model registry's digests
// rely on). Encode validates the model first and fails on state the decoder
// would reject — a snapshot written here always reads back.
func Encode(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Write streams the version-1 encoding of the snapshot to w; see Encode.
func Write(w io.Writer, snap *Snapshot) error {
	if snap == nil || snap.Model == nil {
		return fmt.Errorf("snapshot: encode nil model")
	}
	prec, err := core.ParsePrecision(string(snap.Precision))
	if err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	f32 := prec == core.PrecisionFloat32
	if err := validateForEncode(snap.Model, f32); err != nil {
		return err
	}
	var body bytes.Buffer
	e := &encoder{w: &body, f32: f32}

	body.WriteString(Magic)
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	var flags uint16
	if f32 {
		flags |= FlagFloat32
	}
	binary.LittleEndian.PutUint16(hdr[2:4], flags)
	body.Write(hdr[:])

	metaKeys := make([]string, 0, len(snap.Meta))
	for k := range snap.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	e.uvarint(uint64(len(metaKeys)))
	for _, k := range metaKeys {
		e.str(k)
		e.str(snap.Meta[k])
	}

	m := snap.Model
	res := m.Result
	ids := m.ObjectIDs()
	e.uvarint(uint64(res.K))
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.str(id)
	}
	for _, row := range res.Theta {
		for _, x := range row {
			e.fp(x)
		}
	}

	relNames := make([]string, 0, len(res.Gamma))
	for name := range res.Gamma {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	e.uvarint(uint64(len(relNames)))
	for _, name := range relNames {
		e.str(name)
		e.fp(res.Gamma[name])
	}
	e.uvarint(uint64(len(res.GammaVec)))
	for _, g := range res.GammaVec {
		e.fp(g)
	}

	e.uvarint(uint64(len(res.Attrs)))
	for _, am := range res.Attrs {
		e.str(am.Name)
		switch am.Kind {
		case hin.Categorical:
			e.b(wireCategorical)
			for _, row := range am.Cat.Beta {
				e.uvarint(uint64(len(row)))
				for _, x := range row {
					e.fp(x)
				}
			}
		case hin.Numeric:
			e.b(wireNumeric)
			for _, mu := range am.Gauss.Mu {
				e.fp(mu)
			}
			for _, v := range am.Gauss.Var {
				e.fp(v)
			}
		}
	}

	e.f64(res.Objective)
	e.f64(res.PseudoLL)
	e.uvarint(uint64(res.EMIterations))
	e.uvarint(uint64(res.OuterIterations))

	sum := crc32.Checksum(body.Bytes(), castagnoli)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], sum)
	body.Write(foot[:])

	_, err = w.Write(body.Bytes())
	return err
}

// encoder writes primitives to an in-memory buffer (bytes.Buffer writes
// cannot fail, so the helpers carry no error returns). f32 selects the
// 4-byte storage width for model floats (fp); scalars written with f64 are
// unaffected.
type encoder struct {
	w   *bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
	f32 bool
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.w.Write(e.tmp[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.w.WriteString(s)
}

func (e *encoder) f64(x float64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], math.Float64bits(x))
	e.w.Write(e.tmp[:8])
}

// fp writes one model float at the snapshot's storage width.
func (e *encoder) fp(x float64) {
	if e.f32 {
		binary.LittleEndian.PutUint32(e.tmp[:4], math.Float32bits(float32(x)))
		e.w.Write(e.tmp[:4])
		return
	}
	e.f64(x)
}

func (e *encoder) b(v byte) { e.w.WriteByte(v) }

// validateForEncode checks the model is within the format's domain so the
// encoder never emits bytes its own decoder rejects: consistent shapes
// (every Θ row and attribute component at K entries, GammaVec matching the
// strength map when present), finite non-negative memberships, strengths
// and term probabilities, and strictly positive variances. Under float32
// storage the variance check applies after narrowing — a float64 variance
// tiny enough to round to a float32 zero would otherwise decode as invalid
// (a float32 fit can't produce one, but Snapshot.Precision is settable on
// any model).
func validateForEncode(m *core.Model, f32 bool) error {
	res := m.Result
	if res == nil {
		return fmt.Errorf("snapshot: encode model with nil Result")
	}
	if res.K < 2 {
		return fmt.Errorf("snapshot: encode model with K=%d, want ≥ 2", res.K)
	}
	if len(m.ObjectIDs()) != len(res.Theta) {
		return fmt.Errorf("snapshot: %d object IDs for %d Theta rows", len(m.ObjectIDs()), len(res.Theta))
	}
	for v, row := range res.Theta {
		if len(row) != res.K {
			return fmt.Errorf("snapshot: Theta row %d has %d entries, want K=%d", v, len(row), res.K)
		}
		for _, x := range row {
			if !finiteNonNeg(x) || (f32 && !fitsF32(x)) {
				return fmt.Errorf("snapshot: Theta row %d has invalid entry %v", v, x)
			}
		}
	}
	for name, g := range res.Gamma {
		if !finiteNonNeg(g) || (f32 && !fitsF32(g)) {
			return fmt.Errorf("snapshot: strength %q = %v, want finite ≥ 0", name, g)
		}
	}
	if len(res.GammaVec) != 0 && len(res.GammaVec) != len(res.Gamma) {
		return fmt.Errorf("snapshot: GammaVec has %d entries for %d named strengths", len(res.GammaVec), len(res.Gamma))
	}
	for r, g := range res.GammaVec {
		if !finiteNonNeg(g) || (f32 && !fitsF32(g)) {
			return fmt.Errorf("snapshot: GammaVec[%d] = %v, want finite ≥ 0", r, g)
		}
	}
	for _, am := range res.Attrs {
		switch am.Kind {
		case hin.Categorical:
			if am.Cat == nil || len(am.Cat.Beta) != res.K {
				return fmt.Errorf("snapshot: attribute %q has %d categorical components, want K=%d", am.Name, catLen(am.Cat), res.K)
			}
			for k, row := range am.Cat.Beta {
				for _, x := range row {
					if !finiteNonNeg(x) || (f32 && !fitsF32(x)) {
						return fmt.Errorf("snapshot: attribute %q component %d has invalid probability %v", am.Name, k, x)
					}
				}
			}
		case hin.Numeric:
			if am.Gauss == nil || len(am.Gauss.Mu) != res.K || len(am.Gauss.Var) != res.K {
				return fmt.Errorf("snapshot: attribute %q has malformed Gaussian components, want K=%d", am.Name, res.K)
			}
			for k := 0; k < res.K; k++ {
				if mu := am.Gauss.Mu[k]; math.IsNaN(mu) || math.IsInf(mu, 0) || (f32 && !fitsF32(mu)) {
					return fmt.Errorf("snapshot: attribute %q component %d has invalid mean %v", am.Name, k, mu)
				}
				v := am.Gauss.Var[k]
				if !(v > 0) || math.IsInf(v, 0) {
					return fmt.Errorf("snapshot: attribute %q component %d has invalid variance %v", am.Name, k, v)
				}
				if f32 && !(float32(v) > 0) {
					return fmt.Errorf("snapshot: attribute %q component %d variance %v underflows float32 storage", am.Name, k, v)
				}
			}
		default:
			return fmt.Errorf("snapshot: attribute %q has unknown kind %v", am.Name, am.Kind)
		}
	}
	if res.EMIterations < 0 || res.OuterIterations < 0 {
		return fmt.Errorf("snapshot: negative iteration counts (%d, %d)", res.EMIterations, res.OuterIterations)
	}
	return nil
}

func finiteNonNeg(x float64) bool {
	return x >= 0 && !math.IsInf(x, 0) // NaN fails x >= 0
}

// fitsF32 reports whether narrowing x to float32 storage stays finite — a
// value a float32-precision fit can actually hold (it clamps at fit time;
// arbitrary models must be rejected rather than silently saturated).
func fitsF32(x float64) bool {
	return !math.IsInf(float64(float32(x)), 0)
}

func catLen(c *core.CatParams) int {
	if c == nil {
		return 0
	}
	return len(c.Beta)
}
