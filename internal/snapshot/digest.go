package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"genclus/internal/core"
)

// OptionsDigest returns a short, stable hex digest of the fit-relevant
// scalar configuration of opts — everything that shapes the optimization
// except the warm-start payloads and runtime hooks (InitTheta, InitGamma,
// InitAttrs, Progress, Parallelism and TrackHistory are excluded: they do
// not change what model the options describe). Two fits with the same
// digest ran the same algorithm configuration, which is what the model
// registry records so a warm-start consumer can tell whether a snapshot's
// hyperparameters match its own.
func OptionsDigest(opts core.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|k=%d|attrs=%s|outer=%d|em=%d|emtol=%g|outertol=%g|newton=%d|newtontol=%g|sigma=%g|seed=%d|seeds=%d|seedsteps=%d|eps=%g|eta=%g|varfloor=%g|learn=%t|g0=%g|sym=%t",
		opts.K, strings.Join(opts.Attributes, ","), opts.OuterIters, opts.EMIters,
		opts.EMTol, opts.OuterTol, opts.NewtonIters, opts.NewtonTol, opts.PriorSigma,
		opts.Seed, opts.InitSeeds, opts.InitSeedSteps, opts.Epsilon, opts.SmoothEta,
		opts.VarFloor, opts.LearnGamma, opts.InitialGamma, opts.SymmetricPropagation)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// DataDigest returns the hex SHA-256 of encoded snapshot bytes — the
// content identity the model registry lists next to each model. Because
// encoding is deterministic and decoding only accepts canonical input, a
// model's digest is stable across export, import, and re-export.
func DataDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
