package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"genclus/internal/core"
)

// OptionsDigest returns a short, stable hex digest of the fit-relevant
// scalar configuration of opts — everything that shapes the optimization
// except the warm-start payloads and runtime hooks (InitTheta, InitGamma,
// InitAttrs, Progress, Parallelism and TrackHistory are excluded: they do
// not change what model the options describe). Two fits with the same
// digest ran the same algorithm configuration, which is what the model
// registry records so a warm-start consumer can tell whether a snapshot's
// hyperparameters match its own.
func OptionsDigest(opts core.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|k=%d|attrs=%s|outer=%d|em=%d|emtol=%g|outertol=%g|newton=%d|newtontol=%g|sigma=%g|seed=%d|seeds=%d|seedsteps=%d|eps=%g|eta=%g|varfloor=%g|learn=%t|g0=%g|sym=%t",
		opts.K, strings.Join(opts.Attributes, ","), opts.OuterIters, opts.EMIters,
		opts.EMTol, opts.OuterTol, opts.NewtonIters, opts.NewtonTol, opts.PriorSigma,
		opts.Seed, opts.InitSeeds, opts.InitSeedSteps, opts.Epsilon, opts.SmoothEta,
		opts.VarFloor, opts.LearnGamma, opts.InitialGamma, opts.SymmetricPropagation)
	// Appended only for non-default precision so every existing float64
	// digest — including those already recorded in persisted snapshots —
	// stays what it was.
	if p, err := core.ParsePrecision(string(opts.Precision)); err == nil && p != core.PrecisionFloat64 {
		fmt.Fprintf(h, "|prec=%s", p)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// DataDigest returns the hex SHA-256 of encoded snapshot bytes — the
// content identity the model registry lists next to each model. Because
// encoding is deterministic and decoding only accepts canonical input, a
// model's digest is stable across export, import, and re-export.
func DataDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// MetaEpsilon is the provenance meta key recording the fit's Θ floor
// (Options.Epsilon). Online inference needs it because reproducing a
// model's training rows bit for bit requires flooring posteriors at the
// fit's own epsilon — which the fitted state itself does not carry. Both
// consumers of daemon-exported snapshots (genclusd's assign engine and
// the CLI's -assign mode) read it through EpsilonFromMeta.
const MetaEpsilon = "epsilon"

// FormatEpsilon renders an epsilon as an exact hex float for MetaEpsilon:
// the round trip through EpsilonFromMeta is bit-exact.
func FormatEpsilon(eps float64) string {
	return strconv.FormatFloat(eps, 'x', -1, 64)
}

// EpsilonFromMeta recovers the recorded Θ floor for a model with k
// clusters. It returns 0 — "use the fit default" — when the key is
// absent (imports from older snapshots, models serialized without
// provenance) or when the recorded value is unparsable or outside the
// valid (0, 1/k) domain: a bad provenance entry must degrade assignment
// precision, never fail serving.
func EpsilonFromMeta(meta map[string]string, k int) float64 {
	v, ok := meta[MetaEpsilon]
	if !ok {
		return 0
	}
	eps, err := strconv.ParseFloat(v, 64)
	if err != nil || !(eps > 0) || eps >= 1.0/float64(k) {
		return 0
	}
	return eps
}

// MetaPrecision is the provenance meta key recording the fit's storage
// precision (Options.Precision). The wire flags already fix how the bytes
// decode; the meta copy is what the model registry lists so operators can
// audit mixed-precision registries without re-reading snapshot payloads.
const MetaPrecision = "precision"

// FormatPrecision renders a precision for MetaPrecision ("" normalizes to
// the float64 default).
func FormatPrecision(p core.Precision) string {
	if parsed, err := core.ParsePrecision(string(p)); err == nil {
		return string(parsed)
	}
	return string(core.PrecisionFloat64)
}

// PrecisionFromMeta recovers the recorded storage precision. Absent or
// unparsable entries degrade to the float64 default — bad provenance must
// never fail serving.
func PrecisionFromMeta(meta map[string]string) core.Precision {
	p, err := core.ParsePrecision(meta[MetaPrecision])
	if err != nil {
		return core.PrecisionFloat64
	}
	return p
}
