package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// fitNetwork builds a small deterministic two-topic network with both a
// categorical and a numeric attribute, so snapshots exercise every section
// of the wire format.
func fitNetwork(t testing.TB, perTopic int, extra int) *hin.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 30})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	n := 2 * (perTopic + extra)
	ids := make([]string, 0, n)
	add := func(topic, i int, tag string) string {
		id := tag + string(rune('0'+topic)) + "_" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		b.AddObject(id, "doc")
		for w := 0; w < 6; w++ {
			b.AddTermCount(id, "text", topic*15+(i+w)%15, 1)
		}
		if i%2 == 0 {
			b.AddNumeric(id, "score", float64(topic*8)+rng.NormFloat64())
		}
		return id
	}
	for topic := 0; topic < 2; topic++ {
		base := make([]string, perTopic)
		for i := range base {
			base[i] = add(topic, i, "doc")
			ids = append(ids, base[i])
		}
		for i, id := range base {
			b.AddLink(id, base[(i+1)%perTopic], "cites", 1)
		}
		for i := 0; i < extra; i++ {
			id := add(topic, i, "new")
			b.AddLink(id, base[i%perTopic], "cites", 1)
			ids = append(ids, id)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func fitModel(t testing.TB, net *hin.Network) *core.Model {
	t.Helper()
	opts := core.DefaultOptions(2)
	opts.OuterIters = 3
	opts.EMIters = 5
	opts.Seed = 3
	m, err := core.Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRoundTripByteIdentity pins the codec's core contract: decoding and
// re-encoding reproduces the original bytes exactly, and every fitted
// quantity survives the trip bit for bit.
func TestRoundTripByteIdentity(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 12, 0))
	snap := &Snapshot{Model: m, Meta: map[string]string{
		"job_id":         "job_1234",
		"network_id":     "net_5678",
		"options_digest": "deadbeefdeadbeef",
	}}
	enc, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	re, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoded snapshot differs: %d vs %d bytes", len(enc), len(re))
	}
	if DataDigest(enc) != DataDigest(re) {
		t.Fatal("digest changed across round trip")
	}

	got, want := dec.Model.Result, m.Result
	if got.K != want.K || got.EMIterations != want.EMIterations || got.OuterIterations != want.OuterIterations {
		t.Fatalf("scalars drifted: %+v vs %+v", got, want)
	}
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) ||
		math.Float64bits(got.PseudoLL) != math.Float64bits(want.PseudoLL) {
		t.Fatal("objective bits drifted")
	}
	for v := range want.Theta {
		for k := range want.Theta[v] {
			if math.Float64bits(got.Theta[v][k]) != math.Float64bits(want.Theta[v][k]) {
				t.Fatalf("Theta[%d][%d] drifted", v, k)
			}
		}
	}
	for name, g := range want.Gamma {
		if math.Float64bits(got.Gamma[name]) != math.Float64bits(g) {
			t.Fatalf("Gamma[%q] drifted", name)
		}
	}
	for i := range want.GammaVec {
		if math.Float64bits(got.GammaVec[i]) != math.Float64bits(want.GammaVec[i]) {
			t.Fatalf("GammaVec[%d] drifted", i)
		}
	}
	if len(got.Attrs) != len(want.Attrs) {
		t.Fatalf("attr count drifted: %d vs %d", len(got.Attrs), len(want.Attrs))
	}
	for i, wa := range want.Attrs {
		ga := got.Attrs[i]
		if ga.Name != wa.Name || ga.Kind != wa.Kind {
			t.Fatalf("attr %d identity drifted: %+v vs %+v", i, ga, wa)
		}
	}
	gotIDs, wantIDs := dec.Model.ObjectIDs(), m.ObjectIDs()
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("object id %d drifted: %q vs %q", i, gotIDs[i], wantIDs[i])
		}
	}
	for k, v := range snap.Meta {
		if dec.Meta[k] != v {
			t.Fatalf("meta[%q] drifted: %q vs %q", k, dec.Meta[k], v)
		}
	}
}

// TestEncodeDeterministic pins that two encodings of the same state are
// byte-identical even though Go map iteration is randomized.
func TestEncodeDeterministic(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 8, 0))
	snap := &Snapshot{Model: m, Meta: map[string]string{"b": "2", "a": "1", "c": "3"}}
	first, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		again, err := Encode(snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
}

// TestDecodeRejectsMalformed walks the corruption catalogue: every mutation
// must fail with a typed *FormatError (never a panic, never success).
func TestDecodeRejectsMalformed(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	enc, err := Encode(&Snapshot{Model: m, Meta: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := f(append([]byte(nil), enc...))
			_, err := Decode(b, DefaultLimits())
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FormatError, got %v", err)
			}
		})
	}
	mutate("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("future-version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("unknown-flag-bit", func(b []byte) []byte { b[6] = 2; fixChecksum(b); return b })
	mutate("truncated-header", func(b []byte) []byte { return b[:5] })
	mutate("truncated-mid-body", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated-footer", func(b []byte) []byte { return b[:len(b)-2] })
	mutate("flipped-payload-bit", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	mutate("flipped-checksum", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mutate("trailing-garbage", func(b []byte) []byte { return append(b, 0xAA) })
	mutate("empty", func(b []byte) []byte { return nil })
}

// TestDecodeRejectsOversizedDims pins that declared dimensions above the
// limits fail with *LimitError (the 413 path) before large allocation.
func TestDecodeRejectsOversizedDims(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	enc, err := Encode(&Snapshot{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	lim := DefaultLimits()
	lim.MaxObjects = 3 // the model has 24 objects
	_, err = Decode(enc, lim)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Dimension != "objects" || le.Max != 3 {
		t.Fatalf("wrong limit error: %+v", le)
	}

	lim = DefaultLimits()
	lim.MaxK = 1 // note: decoder also rejects K<2 as malformed; cap must fire first
	if _, err = Decode(enc, lim); !errors.As(err, &le) {
		t.Fatalf("want *LimitError for K cap, got %v", err)
	}

	lim = DefaultLimits()
	lim.MaxVocab = 5
	if _, err = Decode(enc, lim); !errors.As(err, &le) || le.Dimension != "vocabulary" {
		t.Fatalf("want vocabulary *LimitError, got %v", err)
	}
}

// TestDecodeRejectsNonCanonical pins the strictness that backs the
// bytes-are-identity contract: non-minimal varints and unsorted maps are
// rejected even though they would parse.
func TestDecodeRejectsNonCanonical(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	enc, err := Encode(&Snapshot{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	// The meta-count varint is the first byte after the 8-byte header
	// (value 0, one byte). Re-encode it non-minimally as 0x80 0x00 and fix
	// nothing else: decoding must fail on the varint itself, before the
	// checksum would.
	nonMinimal := append([]byte(nil), enc[:8]...)
	nonMinimal = append(nonMinimal, 0x80, 0x00)
	nonMinimal = append(nonMinimal, enc[9:]...)
	_, err = Decode(nonMinimal, DefaultLimits())
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("non-minimal varint: want *FormatError, got %v", err)
	}

	// Meta keys out of order re-encode differently, so they are rejected.
	badMeta := &Snapshot{Model: m, Meta: map[string]string{"a": "1", "b": "2"}}
	good, err := Encode(badMeta)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the two (key, value) string pairs in place: "a","1","b","2" →
	// "b","2","a","1". Each pair is 4 bytes (len-1 prefix + 1 byte) so the
	// region is at offset 9 (header 8 + count byte), 8 bytes long.
	swapped := append([]byte(nil), good...)
	copy(swapped[9:13], good[13:17])
	copy(swapped[13:17], good[9:13])
	// Fix the checksum so ONLY the ordering violation can reject it.
	fixChecksum(swapped)
	if _, err := Decode(swapped, DefaultLimits()); !errors.As(err, &fe) {
		t.Fatalf("unsorted meta: want *FormatError, got %v", err)
	}
}

// fixChecksum recomputes the trailing CRC over a mutated snapshot body so
// strictness tests can reach the check they target.
func fixChecksum(b []byte) {
	sum := crc32.Checksum(b[:len(b)-4], castagnoli)
	binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
}

// TestDecodeRejectsOutOfDomainFloats pins that out-of-domain model values
// are stopped on both sides of the codec: the encoder refuses to write
// them, and a hand-corrupted snapshot carrying a NaN membership is rejected
// at the trust boundary rather than poisoning a later refit.
func TestDecodeRejectsOutOfDomainFloats(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	orig := m.Theta[0][0]
	m.Theta[0][0] = math.NaN()
	if _, err := Encode(&Snapshot{Model: m}); err == nil {
		t.Fatal("encode accepted NaN Theta")
	}
	m.Theta[0][0] = -0.25
	if _, err := Encode(&Snapshot{Model: m}); err == nil {
		t.Fatal("encode accepted negative Theta")
	}
	m.Theta[0][0] = orig

	// Decoder side: a minimal two-object model has Theta[0][0] at a known
	// offset — header (8) + meta count (1) + k (1) + object count (1) +
	// "a" (2) + "b" (2) = 15. Overwrite it with NaN bits, fix the CRC so
	// only the domain check can reject it.
	res := &core.Result{K: 2, Theta: [][]float64{{0.25, 0.75}, {0.5, 0.5}}, Gamma: map[string]float64{}}
	mm, err := core.NewModel(res, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(&Snapshot{Model: mm})
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(enc[15:], math.Float64bits(math.NaN()))
	fixChecksum(enc)
	_, err = Decode(enc, DefaultLimits())
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("NaN Theta in the byte stream: want *FormatError, got %v", err)
	}
}

// TestEncodeRejectsInconsistentShapes pins the encoder-side validation.
func TestEncodeRejectsInconsistentShapes(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	m.Theta[1] = m.Theta[1][:1]
	if _, err := Encode(&Snapshot{Model: m}); err == nil {
		t.Fatal("encode accepted a short Theta row")
	}
	if _, err := Encode(nil); err == nil {
		t.Fatal("encode accepted a nil snapshot")
	}
	if _, err := Encode(&Snapshot{}); err == nil {
		t.Fatal("encode accepted a nil model")
	}
}

// TestMinimalModelRoundTrip covers the sparse end of the format: a model
// rehydrated from a remote result (no GammaVec, no attribute models, no
// meta) must round-trip byte-identically too.
func TestMinimalModelRoundTrip(t *testing.T) {
	res := &core.Result{
		K:     2,
		Theta: [][]float64{{0.25, 0.75}, {0.5, 0.5}},
		Gamma: map[string]float64{"cites": 1.5},
	}
	m, err := core.NewModel(res, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(&Snapshot{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	re, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("minimal model round trip not byte-identical")
	}
	if dec.Model.GammaVec != nil || len(dec.Model.Attrs) != 0 || dec.Meta != nil {
		t.Fatalf("sparse sections drifted: %+v", dec.Model.Result)
	}
}
