package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// fitModelF32 fits the standard test network in float32 storage mode, so
// every learned parameter is float32-representable by construction.
func fitModelF32(t testing.TB, net *hin.Network) *core.Model {
	t.Helper()
	opts := core.DefaultOptions(2).WithPrecision(core.PrecisionFloat32)
	opts.OuterIters = 3
	opts.EMIters = 5
	opts.Seed = 3
	m, err := core.Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFloat32RoundTripByteIdentity pins the float32 storage format: the
// FlagFloat32 wire bit is set, decode reports PrecisionFloat32, every model
// float survives the trip bit for bit (float32 widens exactly), re-encoding
// the decoded snapshot reproduces the original bytes, and the 4-byte floats
// actually shrink the snapshot versus the same model stored as float64.
func TestFloat32RoundTripByteIdentity(t *testing.T) {
	net := fitNetwork(t, 12, 0)
	m := fitModelF32(t, net)
	snap := &Snapshot{
		Model:     m,
		Meta:      map[string]string{MetaPrecision: "float32"},
		Precision: core.PrecisionFloat32,
	}
	enc, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if enc[6]&byte(FlagFloat32) == 0 {
		t.Fatal("FlagFloat32 not set in the flags word")
	}
	dec, err := Decode(enc, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Precision != core.PrecisionFloat32 {
		t.Fatalf("decoded Precision = %q, want float32", dec.Precision)
	}
	re, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoded float32 snapshot differs: %d vs %d bytes", len(enc), len(re))
	}

	got, want := dec.Model.Result, m.Result
	for v := range want.Theta {
		for k := range want.Theta[v] {
			if math.Float64bits(got.Theta[v][k]) != math.Float64bits(want.Theta[v][k]) {
				t.Fatalf("Theta[%d][%d] drifted through float32 storage", v, k)
			}
		}
	}
	for i := range want.GammaVec {
		if math.Float64bits(got.GammaVec[i]) != math.Float64bits(want.GammaVec[i]) {
			t.Fatalf("GammaVec[%d] drifted", i)
		}
	}
	// Scalars stay float64 on the wire regardless of the flag.
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) ||
		math.Float64bits(got.PseudoLL) != math.Float64bits(want.PseudoLL) {
		t.Fatal("objective bits drifted")
	}

	enc64, err := Encode(&Snapshot{Model: m, Meta: snap.Meta})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(enc64) {
		t.Fatalf("float32 snapshot is %d bytes, float64 %d — expected shrink", len(enc), len(enc64))
	}
}

// TestFloat32EncodeRejectsUnrepresentable: Snapshot.Precision is settable on
// arbitrary models, so the encoder must refuse values that 4-byte storage
// would corrupt — a mean beyond float32 range, a variance that underflows
// float32 to zero — rather than silently saturating them.
func TestFloat32EncodeRejectsUnrepresentable(t *testing.T) {
	build := func(mu, vr float64) *core.Model {
		res := &core.Result{
			K:     2,
			Theta: [][]float64{{0.25, 0.75}, {0.5, 0.5}},
			Gamma: map[string]float64{},
			Attrs: []core.AttrModel{{
				Name:  "x",
				Kind:  hin.Numeric,
				Gauss: &core.GaussParams{Mu: []float64{0, mu}, Var: []float64{1, vr}},
			}},
		}
		m, err := core.NewModel(res, []string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if _, err := Encode(&Snapshot{Model: build(1e300, 1), Precision: core.PrecisionFloat32}); err == nil {
		t.Fatal("encode accepted a mean outside float32 range")
	}
	if _, err := Encode(&Snapshot{Model: build(0, 1e-50), Precision: core.PrecisionFloat32}); err == nil {
		t.Fatal("encode accepted a variance that underflows float32")
	}
	// The same model is fine as float64.
	if _, err := Encode(&Snapshot{Model: build(1e300, 1e-50)}); err != nil {
		t.Fatalf("float64 encode rejected in-domain values: %v", err)
	}
	// And in-range values are fine as float32.
	if _, err := Encode(&Snapshot{Model: build(2.5, 0.5), Precision: core.PrecisionFloat32}); err != nil {
		t.Fatalf("float32 encode rejected representable values: %v", err)
	}
}

// TestEncodeRejectsUnknownPrecision: the codec validates Precision with the
// same ParsePrecision every other layer uses.
func TestEncodeRejectsUnknownPrecision(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	_, err := Encode(&Snapshot{Model: m, Precision: "float16"})
	var perr *core.PrecisionError
	if !errors.As(err, &perr) {
		t.Fatalf("want *core.PrecisionError, got %v", err)
	}
}

// TestUnknownFlagBitsRejected is the forward-compatibility contract from the
// decoder's side of the fence: a snapshot carrying flag bits this decoder
// does not implement — the position a pre-float32 decoder is in when handed
// a float32 snapshot — must fail with a typed *FormatError, not misread the
// body.
func TestUnknownFlagBitsRejected(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	enc, err := Encode(&Snapshot{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []uint16{0x2, 0x8000, 0xFFFE} {
		b := append([]byte(nil), enc...)
		b[6] = byte(bit)
		b[7] = byte(bit >> 8)
		fixChecksum(b)
		_, err := Decode(b, DefaultLimits())
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("flags %#x: want *FormatError, got %v", bit, err)
		}
	}
}

// TestZeroFlagsDecodeAsFloat64: every pre-existing snapshot has a zero flags
// word and must keep decoding exactly as before, reporting float64 storage.
func TestZeroFlagsDecodeAsFloat64(t *testing.T) {
	m := fitModel(t, fitNetwork(t, 6, 0))
	enc, err := Encode(&Snapshot{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if enc[6] != 0 || enc[7] != 0 {
		t.Fatalf("float64 snapshot has nonzero flags %#x %#x", enc[6], enc[7])
	}
	dec, err := Decode(enc, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Precision != core.PrecisionFloat64 {
		t.Fatalf("decoded Precision = %q, want float64", dec.Precision)
	}
}

// TestOptionsDigestPrecisionStability: float64 (and unset) precision leaves
// every previously recorded digest unchanged; float32 produces a distinct
// digest so registry consumers can tell the configurations apart.
func TestOptionsDigestPrecisionStability(t *testing.T) {
	base := core.DefaultOptions(3)
	unset := OptionsDigest(base)
	if got := OptionsDigest(base.WithPrecision(core.PrecisionFloat64)); got != unset {
		t.Fatal("explicit float64 changed the options digest")
	}
	if got := OptionsDigest(base.WithPrecision(core.PrecisionFloat32)); got == unset {
		t.Fatal("float32 did not change the options digest")
	}
}

// TestPrecisionMeta round-trips the registry's provenance key.
func TestPrecisionMeta(t *testing.T) {
	if got := FormatPrecision(""); got != "float64" {
		t.Fatalf("FormatPrecision(\"\") = %q", got)
	}
	if got := FormatPrecision(core.PrecisionFloat32); got != "float32" {
		t.Fatalf("FormatPrecision(float32) = %q", got)
	}
	if got := PrecisionFromMeta(map[string]string{MetaPrecision: "float32"}); got != core.PrecisionFloat32 {
		t.Fatalf("PrecisionFromMeta = %q", got)
	}
	// Absent and unparsable meta degrade to float64: old persisted models
	// predate the key.
	if got := PrecisionFromMeta(nil); got != core.PrecisionFloat64 {
		t.Fatalf("PrecisionFromMeta(nil) = %q", got)
	}
	if got := PrecisionFromMeta(map[string]string{MetaPrecision: "junk"}); got != core.PrecisionFloat64 {
		t.Fatalf("PrecisionFromMeta(junk) = %q", got)
	}
}
