package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// Decode parses a version-1 snapshot from data behind the given limits; see
// Read for the contract.
func Decode(data []byte, lim Limits) (*Snapshot, error) {
	return Read(bytes.NewReader(data), lim)
}

// Read streams a version-1 snapshot out of r behind the given limits.
// Malformed input — wrong magic, truncated sections, inconsistent counts,
// out-of-domain floats, a checksum mismatch, or trailing bytes — fails with
// *FormatError; a declared dimension above a limit fails with *LimitError.
// Either way the decoder never panics, and every buffer grows incrementally
// while bytes arrive, so the memory a hostile input can claim is
// proportional to the bytes it actually supplies, not to the dimensions it
// declares.
//
// Read accepts exactly the canonical encoding Write produces (minimal
// varints, sorted maps, pinned flags): for every accepted input,
// re-encoding the result reproduces the input byte for byte. That is what
// lets the model registry treat a snapshot's bytes and its digest as
// interchangeable identities for the model.
func Read(r io.Reader, lim Limits) (*Snapshot, error) {
	d := &decoder{r: bufio.NewReader(r), crc: crc32.New(castagnoli), lim: lim}

	var hdr [8]byte
	if err := d.full(hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != Magic {
		return nil, d.badf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, d.badf("unsupported version %d (decoder speaks %d)", v, Version)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:8])
	if unknown := flags &^ FlagFloat32; unknown != 0 {
		return nil, d.badf("unknown flags %#x", unknown)
	}
	d.f32 = flags&FlagFloat32 != 0
	prec := core.PrecisionFloat64
	if d.f32 {
		prec = core.PrecisionFloat32
	}

	nMeta, err := d.count("meta", d.lim.MaxMetaPairs)
	if err != nil {
		return nil, err
	}
	var meta map[string]string
	prevKey := ""
	for i := 0; i < nMeta; i++ {
		key, err := d.str()
		if err != nil {
			return nil, err
		}
		if i > 0 && key <= prevKey {
			return nil, d.badf("meta key %q out of order (non-canonical encoding)", key)
		}
		prevKey = key
		val, err := d.str()
		if err != nil {
			return nil, err
		}
		if meta == nil {
			meta = make(map[string]string, nMeta)
		}
		meta[key] = val
	}

	k, err := d.count("clusters", d.lim.MaxK)
	if err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, d.badf("K=%d, want ≥ 2", k)
	}
	nObj, err := d.count("objects", d.lim.MaxObjects)
	if err != nil {
		return nil, err
	}
	// Guard the Θ element count as a product: count() bounds each
	// dimension at MaxInt32, but nObj*k could still overflow a 32-bit int
	// (and a ~2³¹-float Θ is beyond any model this library can fit anyway).
	if int64(nObj)*int64(k) > math.MaxInt32 {
		return nil, d.badf("Theta dimensions %d×%d are unreasonable", nObj, k)
	}
	ids := make([]string, 0, capHint(nObj))
	for i := 0; i < nObj; i++ {
		id, err := d.str()
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	backing, err := d.floats(nObj * k)
	if err != nil {
		return nil, err
	}
	for _, x := range backing {
		if !finiteNonNeg(x) {
			return nil, d.badf("Theta entry %v outside [0, ∞)", x)
		}
	}
	theta := make([][]float64, nObj)
	for v := 0; v < nObj; v++ {
		theta[v] = backing[v*k : (v+1)*k]
	}

	nRel, err := d.count("relations", d.lim.MaxRelations)
	if err != nil {
		return nil, err
	}
	gamma := make(map[string]float64, nRel)
	prevName := ""
	for i := 0; i < nRel; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		if i > 0 && name <= prevName {
			return nil, d.badf("relation %q out of order (non-canonical encoding)", name)
		}
		prevName = name
		g, err := d.fp()
		if err != nil {
			return nil, err
		}
		if !finiteNonNeg(g) {
			return nil, d.badf("strength %q = %v outside [0, ∞)", name, g)
		}
		gamma[name] = g
	}
	nVec, err := d.count("relations", d.lim.MaxRelations)
	if err != nil {
		return nil, err
	}
	if nVec != 0 && nVec != nRel {
		return nil, d.badf("dense strength vector has %d entries for %d relations", nVec, nRel)
	}
	var gammaVec []float64
	if nVec > 0 {
		if gammaVec, err = d.floats(nVec); err != nil {
			return nil, err
		}
		for _, g := range gammaVec {
			if !finiteNonNeg(g) {
				return nil, d.badf("dense strength %v outside [0, ∞)", g)
			}
		}
	}

	nAttr, err := d.count("attributes", d.lim.MaxAttributes)
	if err != nil {
		return nil, err
	}
	attrs := make([]core.AttrModel, 0, capHint(nAttr))
	for i := 0; i < nAttr; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		kind, err := d.byte1()
		if err != nil {
			return nil, err
		}
		am := core.AttrModel{Name: name}
		switch kind {
		case wireCategorical:
			am.Kind = hin.Categorical
			beta := make([][]float64, k)
			for c := 0; c < k; c++ {
				vocab, err := d.count("vocabulary", d.lim.MaxVocab)
				if err != nil {
					return nil, err
				}
				row, err := d.floats(vocab)
				if err != nil {
					return nil, err
				}
				for _, x := range row {
					if !finiteNonNeg(x) {
						return nil, d.badf("attribute %q probability %v outside [0, ∞)", name, x)
					}
				}
				beta[c] = row
			}
			am.Cat = &core.CatParams{Beta: beta}
		case wireNumeric:
			am.Kind = hin.Numeric
			mu, err := d.floats(k)
			if err != nil {
				return nil, err
			}
			vars, err := d.floats(k)
			if err != nil {
				return nil, err
			}
			for c := 0; c < k; c++ {
				if math.IsNaN(mu[c]) || math.IsInf(mu[c], 0) {
					return nil, d.badf("attribute %q mean %v not finite", name, mu[c])
				}
				if v := vars[c]; !(v > 0) || math.IsInf(v, 0) {
					return nil, d.badf("attribute %q variance %v outside (0, ∞)", name, v)
				}
			}
			am.Gauss = &core.GaussParams{Mu: mu, Var: vars}
		default:
			return nil, d.badf("unknown attribute kind byte %d", kind)
		}
		attrs = append(attrs, am)
	}

	objective, err := d.f64()
	if err != nil {
		return nil, err
	}
	pseudoLL, err := d.f64()
	if err != nil {
		return nil, err
	}
	emIters, err := d.count("iterations", 0)
	if err != nil {
		return nil, err
	}
	outerIters, err := d.count("iterations", 0)
	if err != nil {
		return nil, err
	}

	want := d.crc.Sum32()
	var foot [4]byte
	if err := d.fullUnhashed(foot[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != want {
		return nil, d.badf("checksum mismatch: stored %08x, computed %08x", got, want)
	}
	var one [1]byte
	if err := d.fullUnhashed(one[:]); err == nil {
		return nil, d.badf("trailing bytes after checksum")
	}

	res := &core.Result{
		K:               k,
		Theta:           theta,
		Gamma:           gamma,
		GammaVec:        gammaVec,
		Attrs:           attrs,
		Objective:       objective,
		PseudoLL:        pseudoLL,
		EMIterations:    emIters,
		OuterIterations: outerIters,
		Precision:       prec,
	}
	model, err := core.NewModel(res, ids)
	if err != nil {
		return nil, d.badf("reassemble model: %v", err)
	}
	return &Snapshot{Model: model, Meta: meta, Precision: prec}, nil
}

// msgTruncated is the FormatError message for inputs that end mid-section.
const msgTruncated = "truncated input"

// decoder reads primitives off a buffered stream, feeding every consumed
// byte (except the checksum footer) through the running CRC and tracking
// the byte offset for error reports.
type decoder struct {
	r   *bufio.Reader
	crc hash.Hash32
	off int64
	lim Limits
	f32 bool // FlagFloat32 set: model floats are 4-byte on the wire
}

func (d *decoder) badf(format string, args ...any) error {
	return &FormatError{Offset: d.off, Msg: fmt.Sprintf(format, args...)}
}

// full reads exactly len(p) bytes and hashes them.
func (d *decoder) full(p []byte) error {
	if err := d.fullUnhashed(p); err != nil {
		return err
	}
	d.crc.Write(p)
	return nil
}

// fullUnhashed reads exactly len(p) bytes without touching the CRC (used
// for the checksum footer itself and the trailing-bytes probe).
func (d *decoder) fullUnhashed(p []byte) error {
	n, err := io.ReadFull(d.r, p)
	d.off += int64(n)
	if err != nil {
		return &FormatError{Offset: d.off, Msg: msgTruncated}
	}
	return nil
}

// byte1 reads a single hashed byte.
func (d *decoder) byte1() (byte, error) {
	var p [1]byte
	if err := d.full(p[:]); err != nil {
		return 0, err
	}
	return p[0], nil
}

// uvarint reads a canonical (minimal-length) unsigned varint. Non-minimal
// encodings are rejected: they would re-encode differently and break the
// bytes-are-identity contract.
func (d *decoder) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := d.byte1()
		if err != nil {
			return 0, err
		}
		if i == binary.MaxVarintLen64-1 && b > 1 {
			return 0, d.badf("varint overflows 64 bits")
		}
		if b < 0x80 {
			if i > 0 && b == 0 {
				return 0, d.badf("non-minimal varint encoding")
			}
			return x | uint64(b)<<s, nil
		}
		if i == binary.MaxVarintLen64-1 {
			return 0, d.badf("varint overflows 64 bits")
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// count reads a uvarint meant to be a dimension: it must fit in int and,
// when max > 0, stay within it.
func (d *decoder) count(dimension string, max int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		// Even "unlimited" dimensions get a sanity ceiling far above any
		// real model, so downstream int arithmetic cannot overflow.
		return 0, d.badf("declared %s count %d is unreasonable", dimension, v)
	}
	n := int(v)
	if max > 0 && n > max {
		return 0, &LimitError{Dimension: dimension, Got: n, Max: max}
	}
	return n, nil
}

// str reads a length-prefixed string, growing its buffer incrementally so
// a huge declared length costs no more memory than the bytes that follow.
func (d *decoder) str() (string, error) {
	n, err := d.count("string", d.lim.MaxStringLen)
	if err != nil {
		return "", err
	}
	out := make([]byte, 0, capHint(n))
	var chunk [512]byte
	for n > 0 {
		c := n
		if c > len(chunk) {
			c = len(chunk)
		}
		if err := d.full(chunk[:c]); err != nil {
			return "", err
		}
		out = append(out, chunk[:c]...)
		n -= c
	}
	return string(out), nil
}

// floats reads n model floats at the snapshot's storage width (float32
// widens exactly into float64), growing the slice incrementally (memory
// tracks bytes read, not the declared count).
func (d *decoder) floats(n int) ([]float64, error) {
	out := make([]float64, 0, capHint(n))
	var chunk [4096]byte
	if d.f32 {
		for n > 0 {
			c := n
			if c > len(chunk)/4 {
				c = len(chunk) / 4
			}
			if err := d.full(chunk[:c*4]); err != nil {
				return nil, err
			}
			for i := 0; i < c*4; i += 4 {
				out = append(out, float64(math.Float32frombits(binary.LittleEndian.Uint32(chunk[i:i+4]))))
			}
			n -= c
		}
		return out, nil
	}
	for n > 0 {
		c := n
		if c > len(chunk)/8 {
			c = len(chunk) / 8
		}
		if err := d.full(chunk[:c*8]); err != nil {
			return nil, err
		}
		for i := 0; i < c*8; i += 8 {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(chunk[i:i+8])))
		}
		n -= c
	}
	return out, nil
}

// f64 reads one raw little-endian float64.
func (d *decoder) f64() (float64, error) {
	var p [8]byte
	if err := d.full(p[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p[:])), nil
}

// fp reads one model float at the snapshot's storage width.
func (d *decoder) fp() (float64, error) {
	if !d.f32 {
		return d.f64()
	}
	var p [4]byte
	if err := d.full(p[:]); err != nil {
		return 0, err
	}
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(p[:]))), nil
}

// capHint bounds the initial capacity of a declared-size allocation: real
// inputs of that size still amortize, hostile declarations get nothing up
// front.
func capHint(n int) int {
	const max = 4096
	if n > max {
		return max
	}
	return n
}
