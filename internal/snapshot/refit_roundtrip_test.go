package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"genclus/internal/core"
)

// thetaChecksum hashes the exact bits of a membership matrix plus the dense
// strength vector — the same bitwise-identity notion the core golden tests
// pin.
func thetaChecksum(t *testing.T, res *core.Result) string {
	t.Helper()
	h := sha256.New()
	var buf [8]byte
	for _, row := range res.Theta {
		for _, x := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
	}
	for _, g := range res.GammaVec {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(g))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// TestRefitFromImportedSnapshotBitwiseIdentical is the acceptance pin for
// the persistence tentpole: a refit warm-started from a snapshot that
// crossed the codec must be bitwise-identical to one warm-started from the
// in-memory model — at serial and parallel EM alike. If this drifts, a
// model recovered from disk (or imported over /v1/models) silently fits
// differently from the one that produced it.
func TestRefitFromImportedSnapshotBitwiseIdentical(t *testing.T) {
	base := fitNetwork(t, 12, 0)
	grown := fitNetwork(t, 12, 2) // same base prefix plus 4 new objects
	m := fitModel(t, base)

	enc, err := Encode(&Snapshot{Model: m, Meta: map[string]string{"origin": "test"}})
	if err != nil {
		t.Fatal(err)
	}
	imported, err := Decode(enc, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 4} {
		opts := core.DefaultOptions(0) // K inherited from the model
		opts.K = 0
		opts.OuterIters = 3
		opts.EMIters = 5
		opts.Parallelism = par

		fromMemory, err := m.Refit(grown, opts)
		if err != nil {
			t.Fatal(err)
		}
		fromSnapshot, err := imported.Model.Refit(grown, opts)
		if err != nil {
			t.Fatal(err)
		}
		mem, snap := thetaChecksum(t, fromMemory.Result), thetaChecksum(t, fromSnapshot.Result)
		if mem != snap {
			t.Fatalf("parallelism %d: refit from imported snapshot diverged: %s vs %s", par, snap, mem)
		}
		if fromMemory.EMIterations != fromSnapshot.EMIterations {
			t.Fatalf("parallelism %d: EM work diverged: %d vs %d", par, fromMemory.EMIterations, fromSnapshot.EMIterations)
		}
	}

	// And the two parallelism settings agree with each other (the core
	// determinism contract composed with the codec).
	opts := core.DefaultOptions(0)
	opts.K = 0
	opts.OuterIters = 3
	opts.EMIters = 5
	opts.Parallelism = 1
	serial, err := imported.Model.Refit(grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	parallel, err := imported.Model.Refit(grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := thetaChecksum(t, serial.Result), thetaChecksum(t, parallel.Result); a != b {
		t.Fatalf("imported-snapshot refit not parallelism-invariant: %s vs %s", a, b)
	}
}
