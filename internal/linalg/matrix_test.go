package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randomSPD returns a well-conditioned symmetric positive definite matrix
// A = BᵀB + n·I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestNewMatrixFrom(t *testing.T) {
	m, err := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("element layout wrong")
	}
	if _, err := NewMatrixFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := NewMatrixFrom(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("nil rows should give empty matrix")
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5)
	i5 := Identity(5)
	prod := a.Mul(i5)
	for k, v := range prod.Data {
		if math.Abs(v-a.Data[k]) > 1e-14 {
			t.Fatal("A·I != A")
		}
	}
	prod2 := i5.Mul(a)
	for k, v := range prod2.Data {
		if math.Abs(v-a.Data[k]) > 1e-14 {
			t.Fatal("I·A != A")
		}
	}
}

func TestMatrixMulKnown(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(3, 7)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	tt := m.T().T()
	if tt.Rows != m.Rows || tt.Cols != m.Cols {
		t.Fatal("shape changed under double transpose")
	}
	for i, v := range tt.Data {
		if v != m.Data[i] {
			t.Fatal("(Aᵀ)ᵀ != A")
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{2, 1, 1},
		{1, 3, 2},
		{1, 0, 0},
	})
	b := []float64{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Fatalf("A·x = %v, want %v", ax, b)
		}
	}
}

func TestLUSolveProperty(t *testing.T) {
	// For random well-conditioned SPD systems, the residual must be tiny.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8*math.Max(1, math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{1, 2},
		{2, 4}, // rank 1
	})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected ErrSingular for rank-deficient matrix")
	}
	zero := NewMatrix(3, 3)
	if _, err := Factorize(zero); err == nil {
		t.Error("expected error for zero matrix")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square factorization")
	}
}

func TestLUSolveWrongRHS(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("expected rhs-length error")
	}
}

func TestDeterminant(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{3, 8}, {4, 6}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-14)) > 1e-10 {
		t.Errorf("det = %v, want -14", f.Det())
	}
	// det(I) = 1.
	fi, _ := Factorize(Identity(4))
	if math.Abs(fi.Det()-1) > 1e-12 {
		t.Error("det(I) != 1")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		a := randomSPD(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("A·A⁻¹ not identity at (%d,%d): %v", i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := NewMatrixFrom([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1e-12) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFrom([][]float64{{4, 3}, {2, 1}})
	sum := a.AddMatrix(b)
	for _, v := range sum.Data {
		if v != 5 {
			t.Fatal("AddMatrix wrong")
		}
	}
	diff := sum.Sub(b)
	for i, v := range diff.Data {
		if v != a.Data[i] {
			t.Fatal("Sub wrong")
		}
	}
	sc := a.Clone().Scale(2)
	if sc.At(1, 1) != 8 {
		t.Fatal("Scale wrong")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	d, _ := NewMatrixFrom([][]float64{
		{3, 0, 0},
		{0, -1, 0},
		{0, 0, 2},
	})
	vals, vecs, err := EigenSym(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-10 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) standard basis vectors.
	for c := 0; c < 3; c++ {
		var nnz int
		for r := 0; r < 3; r++ {
			if math.Abs(vecs.At(r, c)) > 1e-8 {
				nnz++
			}
		}
		if nnz != 1 {
			t.Errorf("eigenvector %d not axis-aligned", c)
		}
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		// Random symmetric matrix.
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// V must be orthonormal: VᵀV = I.
		vtv := vecs.T().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-8 {
					t.Fatalf("VᵀV not identity at (%d,%d): %v", i, j, vtv.At(i, j))
				}
			}
		}
		// A ≈ V·diag(λ)·Vᵀ.
		lam := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		recon := vecs.Mul(lam).Mul(vecs.T())
		if recon.Sub(a).MaxAbs() > 1e-8*math.Max(1, a.MaxAbs()) {
			t.Fatalf("reconstruction error %v", recon.Sub(a).MaxAbs())
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatal("eigenvalues not sorted descending")
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a); err == nil {
		t.Error("expected error for asymmetric input")
	}
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestTopEigenMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		full, _, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		k := 3
		vals, vecs, err := TopEigen(a, k, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if math.Abs(vals[i]-full[i]) > 1e-5*math.Max(1, math.Abs(full[i])) {
				t.Errorf("trial %d: top eigenvalue %d = %v, Jacobi %v", trial, i, vals[i], full[i])
			}
			// Residual ‖A·v − λ·v‖ must be small.
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, i)
			}
			av := a.MulVec(v)
			var res float64
			for r := 0; r < n; r++ {
				d := av[r] - vals[i]*v[r]
				res += d * d
			}
			if math.Sqrt(res) > 1e-4*math.Max(1, math.Abs(vals[i])) {
				t.Errorf("trial %d: eigenpair %d residual %v", trial, i, math.Sqrt(res))
			}
		}
	}
}

func TestTopEigenArgValidation(t *testing.T) {
	a := Identity(3)
	if _, _, err := TopEigen(a, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := TopEigen(a, 4, 1); err == nil {
		t.Error("k>n should error")
	}
	if _, _, err := TopEigen(NewMatrix(2, 3), 1, 1); err == nil {
		t.Error("non-square should error")
	}
}

func TestTopEigenOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 20
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	_, vecs, err := TopEigen(a, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	g := vecs.T().Mul(vecs)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-6 {
				t.Fatalf("top eigenvectors not orthonormal at (%d,%d): %v", i, j, g.At(i, j))
			}
		}
	}
}

func BenchmarkLUSolve8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 8)
	rhs := make([]float64, 8)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym30(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n := 30
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
