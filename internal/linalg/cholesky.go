package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ of a symmetric
// positive definite matrix.
//
// GenClus's Newton step solves H·Δ = ∇ where H is symmetric negative
// definite (paper Appendix B); solving (−H)·Δ = −∇ by Cholesky is twice as
// fast as LU and fails loudly (ErrNotPositiveDefinite) if numerical error
// ever destroys definiteness — a built-in sanity check on the Hessian.
type Cholesky struct {
	l *Matrix
}

// ErrNotPositiveDefinite is returned when a pivot is non-positive.
var ErrNotPositiveDefinite = fmt.Errorf("linalg: matrix is not positive definite")

// FactorizeCholesky computes the lower Cholesky factor of a.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if !(d > 0) || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky Solve rhs length %d, want %d", len(b), n)
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.Data[i*n : (i+1)*n]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// LogDet returns ln det(A) = 2·Σ ln L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.l.Rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveSPD solves A·x = b for symmetric positive definite A in one call.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorizeCholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
