package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	// A = [[4, 2], [2, 3]] has L = [[2, 0], [1, √2]].
	a, _ := NewMatrixFrom([][]float64{{4, 2}, {2, 3}})
	f, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.l.At(0, 0)-2) > 1e-12 || math.Abs(f.l.At(1, 0)-1) > 1e-12 ||
		math.Abs(f.l.At(1, 1)-math.Sqrt2) > 1e-12 || f.l.At(0, 1) != 0 {
		t.Errorf("factor = %v", f.l)
	}
	// det(A) = 8 → log det = ln 8.
	if math.Abs(f.LogDet()-math.Log(8)) > 1e-12 {
		t.Errorf("LogDet = %v", f.LogDet())
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8*math.Max(1, math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xc, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		xl, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-8*math.Max(1, math.Abs(xl[i])) {
				t.Fatalf("Cholesky and LU disagree at %d: %v vs %v", i, xc[i], xl[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	// Negative definite.
	nd, _ := NewMatrixFrom([][]float64{{-1, 0}, {0, -2}})
	if _, err := FactorizeCholesky(nd); err == nil {
		t.Error("negative definite matrix should be rejected")
	}
	// Indefinite.
	ind, _ := NewMatrixFrom([][]float64{{1, 2}, {2, 1}})
	if _, err := FactorizeCholesky(ind); err == nil {
		t.Error("indefinite matrix should be rejected")
	}
	// Singular PSD.
	psd, _ := NewMatrixFrom([][]float64{{1, 1}, {1, 1}})
	if _, err := FactorizeCholesky(psd); err == nil {
		t.Error("singular PSD matrix should be rejected")
	}
	// Non-square.
	if _, err := FactorizeCholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should be rejected")
	}
}

func TestCholeskySolveWrongRHS(t *testing.T) {
	a := Identity(3)
	f, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("rhs length mismatch should error")
	}
}

func BenchmarkCholeskySolve8(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	a := randomSPD(rng, 8)
	rhs := make([]float64, 8)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
