// Package linalg is a small dense linear-algebra substrate built for the two
// numeric kernels this reproduction needs:
//
//   - solving the symmetric |R|×|R| Newton system H·Δ = ∇ in GenClus's
//     link-strength learning step (paper §4.2), and
//   - eigen-decompositions for the SpectralCombine baseline (Shiga et al.
//     KDD'07 style): an exact Jacobi solver for small matrices and a
//     power-iteration-with-deflation solver for the large similarity
//     matrices the weather experiments produce.
//
// The module is stdlib-only, so everything here is written from scratch.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds a matrix from a slice of rows, copying the data.
// All rows must have the same length.
func NewMatrixFrom(rows [][]float64) (*Matrix, error) {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns m·b. Panics on dimension mismatch (programmer error, matching
// stdlib conventions for index misuse).
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m·x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMatrix returns m + b as a new matrix.
func (m *Matrix) AddMatrix(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddMatrix dimension mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m − b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub dimension mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value (∞-norm over entries).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// ErrSingular is returned when an LU factorization meets an (effectively)
// zero pivot, i.e. the system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factorize computes the LU decomposition of a square matrix using Doolittle
// elimination with partial (row) pivoting.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factorize needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Find pivot.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > maxAbs {
				maxAbs, p = a, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			rp := lu.Data[p*n : (p+1)*n]
			rc := lu.Data[col*n : (col+1)*n]
			for j := 0; j < n; j++ {
				rp[j], rc[j] = rc[j], rp[j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		// Eliminate below the pivot.
		pivVal := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := lu.At(r, col) / pivVal
			lu.Set(r, col, factor)
			if factor == 0 {
				continue
			}
			rr := lu.Data[r*n : (r+1)*n]
			rc := lu.Data[col*n : (col+1)*n]
			for j := col + 1; j < n; j++ {
				rr[j] -= factor * rc[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	n := f.lu.Rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Solve solves A·x = b in one call (factorize + solve).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
