package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigen-decomposition of a symmetric matrix using
// the cyclic Jacobi rotation method: A = V·diag(λ)·Vᵀ with orthonormal V.
// Eigenpairs are returned sorted by descending eigenvalue.
//
// Jacobi is O(n³) per sweep but unconditionally stable and exact to machine
// precision after convergence; it is used for the small systems in tests and
// for moderate spectral-baseline instances. For the large weather similarity
// matrices use TopEigen (power iteration with deflation).
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: EigenSym needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9 * math.Max(1, a.MaxAbs())) {
		return nil, nil, fmt.Errorf("linalg: EigenSym needs a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(off) < 1e-12*math.Max(1, w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to rows/cols p, q of w.
				for i := 0; i < n; i++ {
					wip := w.At(i, p)
					wiq := w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < n; i++ {
					wpi := w.At(p, i)
					wqi := w.At(q, i)
					w.Set(p, i, c*wpi-s*wqi)
					w.Set(q, i, s*wpi+c*wqi)
				}
				// Accumulate eigenvectors.
				for i := 0; i < n; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// TopEigen computes the k algebraically-largest eigenpairs of a symmetric
// matrix via shifted power iteration with Hotelling deflation. The shift
// (a Gershgorin bound) makes the matrix positive definite so the dominant
// eigenvalue of the shifted matrix corresponds to the algebraically largest
// of the original — spectral clustering needs largest, not largest-magnitude.
//
// rngSeed seeds the deterministic start vectors. Accuracy is adequate for
// clustering embeddings (the downstream k-means only needs the invariant
// subspace, not digits of λ).
func TopEigen(a *Matrix, k int, rngSeed int64) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: TopEigen needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("linalg: TopEigen k=%d out of range 1..%d", k, n)
	}
	// Gershgorin shift: shift = max_i Σ_j |a_ij| bounds |λ| so A + shift·I ⪰ 0.
	var shift float64
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			rowSum += math.Abs(a.At(i, j))
		}
		if rowSum > shift {
			shift = rowSum
		}
	}
	shifted := a.Clone()
	for i := 0; i < n; i++ {
		shifted.Add(i, i, shift)
	}

	values = make([]float64, 0, k)
	vectors = NewMatrix(n, k)
	basis := make([][]float64, 0, k)

	state := uint64(rngSeed)*2654435761 + 1
	nextRand := func() float64 {
		// xorshift64* — deterministic start vectors without importing math/rand.
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64(state*2685821657736338717>>11) / float64(1<<53)
	}

	const maxIter = 3000
	const tol = 1e-10
	for comp := 0; comp < k; comp++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = nextRand() - 0.5
		}
		orthogonalize(x, basis)
		normalize(x)
		var lambda, prev float64
		for iter := 0; iter < maxIter; iter++ {
			y := shifted.MulVec(x)
			orthogonalize(y, basis)
			lambda = dot(x, y)
			nrm := norm(y)
			if nrm < 1e-300 {
				// Vector annihilated: eigenvalue ≈ 0 in the deflated space.
				break
			}
			for i := range y {
				y[i] /= nrm
			}
			if iter > 0 && math.Abs(lambda-prev) <= tol*math.Max(1, math.Abs(lambda)) {
				x = y
				break
			}
			prev = lambda
			x = y
		}
		basis = append(basis, x)
		values = append(values, lambda-shift)
		for i := 0; i < n; i++ {
			vectors.Set(i, comp, x[i])
		}
	}
	return values, vectors, nil
}

func orthogonalize(x []float64, basis [][]float64) {
	// Two rounds of modified Gram–Schmidt for numerical robustness.
	for round := 0; round < 2; round++ {
		for _, b := range basis {
			d := dot(x, b)
			for i := range x {
				x[i] -= d * b[i]
			}
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}
