//go:build !race

package metrics

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation breaks exact allocation accounting.
const raceEnabled = false
