package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.", "route", "GET /x", "code", "200")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter value %d, want 4", c.Value())
	}
	// Same name+labels returns the same instrument.
	if again := r.Counter("app_requests_total", "ignored", "route", "GET /x", "code", "200"); again != c {
		t.Fatal("lookup did not return the existing counter")
	}
	g := r.Gauge("app_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("app_uptime", "Computed.", func() float64 { return 1.5 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP app_requests_total Requests served.",
		"# TYPE app_requests_total counter",
		`app_requests_total{route="GET /x",code="200"} 4`,
		"# TYPE app_depth gauge",
		"app_depth 5",
		"app_uptime 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if got := h.Sum(); got != 5.55 {
		t.Fatalf("sum %v, want 5.55", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 5.55",
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_pass_seconds", "Pass.", []float64{1}, "model", "m1")
	h.Observe(0.5)
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `app_pass_seconds_bucket{model="m1",le="1"} 1`) {
		t.Fatalf("labeled bucket line missing:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_odd_total", "Odd.", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `app_odd_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_x", "x.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering app_x as a gauge after counter must panic")
		}
	}()
	r.Gauge("app_x", "x.")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_total", "t.")
	h := r.Histogram("app_h", "h.", DurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%10) / 100)
				r.Counter("app_dyn_total", "d.", "w", string(rune('a'+w))).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter %d, histogram %d", c.Value(), h.Count())
	}
}
