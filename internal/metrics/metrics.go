// Package metrics is a dependency-free Prometheus-text-format metrics
// registry sized for genclusd: counters, gauges (stored and computed) and
// fixed-bucket histograms, rendered in the Prometheus exposition format
// (text/plain; version=0.0.4) by WritePrometheus.
//
// The hot-path operations — Counter.Add/Inc, Gauge.Set/Add and
// Histogram.Observe — are lock-free atomics and allocate nothing, so
// instrumenting the EM iteration and assign-pass hot paths cannot move
// their 0 allocs/op steady state. Instrument lookup (Registry.Counter and
// friends) takes a registry lock and may allocate; call it at wiring time
// and hold the returned instrument, not per event.
//
// Series identity is (name, label pairs). Looking up the same name and
// labels returns the same instrument; the same name with a different type
// panics — that is a programming error, not an operational condition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable
// on its own, but series rendered by a Registry must come from
// Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative n panics (counters are
// monotone — use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrease")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as an int64.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free
// and allocation-free: one atomic add into the bucket, one into the
// count, and a CAS loop folding the value into the float64 sum.
type Histogram struct {
	bounds []float64      // upper bounds, strictly increasing; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets are the default latency bounds in seconds: 1ms to 60s,
// roughly logarithmic — wide enough for both a 40µs assign pass rounding
// into the first bucket and a multi-minute fit landing in the overflow.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// CountBuckets are power-of-two-ish bounds for small cardinalities (batch
// occupancy, iteration counts) from 1 to 4096.
func CountBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}

// instrument is anything a family can render as one or more exposition
// lines for a given series name and label string.
type instrument interface {
	render(w io.Writer, name, labels string)
}

func (c *Counter) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

func (g *Gauge) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
}

// gaugeFunc evaluates a callback at scrape time.
type gaugeFunc struct {
	fn func() float64
}

func (g gaugeFunc) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

func (h *Histogram) render(w io.Writer, name, labels string) {
	cumulative := int64(0)
	for i, b := range h.bounds {
		cumulative += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(b)), cumulative)
	}
	cumulative += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cumulative)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// bucketLabels splices le="bound" into an existing (possibly empty) label
// string.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// family is every series sharing one metric name (and therefore one HELP
// and TYPE line).
type family struct {
	name, help, typ string
	series          map[string]instrument
	order           []string // label strings in first-registration order
}

// Registry holds instrument families and renders them in the Prometheus
// text exposition format. Safe for concurrent registration and scraping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name and the given label pairs
// (alternating key, value), creating it on first use. Help is recorded on
// the first registration of the name.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	inst := r.lookup(name, help, "counter", labelPairs, func() instrument { return &Counter{} })
	return inst.(*Counter)
}

// Gauge returns the stored gauge for name and label pairs, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	inst := r.lookup(name, help, "gauge", labelPairs, func() instrument { return &Gauge{} })
	return inst.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values the program already tracks elsewhere (queue depths,
// registry sizes). Registering the same series twice panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	fresh := false
	r.lookup(name, help, "gauge", labelPairs, func() instrument { fresh = true; return gaugeFunc{fn} })
	if !fresh {
		panic("metrics: duplicate GaugeFunc registration: " + name)
	}
}

// Histogram returns the histogram for name and label pairs, creating it
// with the given bucket upper bounds (strictly increasing; +Inf implicit)
// on first use.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	inst := r.lookup(name, help, "histogram", labelPairs, func() instrument {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic("metrics: histogram buckets not strictly increasing: " + name)
			}
		}
		bounds := append([]float64(nil), buckets...)
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
	return inst.(*Histogram)
}

// lookup finds or creates the series (name, labels); a type clash panics.
func (r *Registry) lookup(name, help, typ string, labelPairs []string, make func() instrument) instrument {
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]instrument{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	inst, ok := f.series[labels]
	if !ok {
		inst = make()
		f.series[labels] = inst
		f.order = append(f.order, labels)
	}
	return inst
}

// renderLabels turns alternating key/value pairs into a canonical
// {k="v",...} string ("" for none). Values are escaped per the exposition
// format; keys are trusted (they come from code, not input).
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: odd label pair count")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every registered family in the text exposition
// format: families in registration order, series sorted by label string
// within a family. Values are read live (atomics and gauge callbacks), so
// a scrape observes each series at one instant but the page as a whole is
// not a transaction — standard Prometheus semantics.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	// Copy each family's series under the lock; rendering (which calls
	// gauge callbacks that may take other locks) happens outside it.
	type seriesCopy struct {
		labels string
		inst   instrument
	}
	all := make([][]seriesCopy, len(fams))
	for i, f := range fams {
		labels := append([]string(nil), f.order...)
		sort.Strings(labels)
		for _, ls := range labels {
			all[i] = append(all[i], seriesCopy{ls, f.series[ls]})
		}
	}
	r.mu.Unlock()

	for i, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, sc := range all[i] {
			sc.inst.render(w, f.name, sc.labels)
		}
	}
}

// ContentType is the HTTP Content-Type of the rendered exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"
