package metrics

import "testing"

// raceEnabled is set by the build-tagged siblings; the race detector's
// instrumentation breaks exact allocation accounting.

// TestHotPathZeroAlloc pins the instrumentation contract this package
// exists for: incrementing a counter, moving a gauge, and observing into
// a histogram allocate nothing, so wiring them into the EM-iteration and
// assign-pass hot paths cannot move those paths off 0 allocs/op.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not exact under -race")
	}
	r := NewRegistry()
	c := r.Counter("app_total", "t.")
	g := r.Gauge("app_depth", "d.")
	h := r.Histogram("app_seconds", "s.", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(2) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}
