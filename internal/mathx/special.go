// Package mathx provides the special functions GenClus needs beyond the Go
// standard library: the digamma and trigamma functions used by the
// link-strength Newton step (paper Eqs. 16–17), the log multivariate Beta
// function that is the local partition function of the Dirichlet conditional
// p(θ_i | neighbors) (paper §4.2), and numerically stable helpers such as
// log-sum-exp.
//
// All functions are pure and safe for concurrent use.
package mathx

import (
	"errors"
	"math"
)

// Euler–Mascheroni constant, −ψ(1).
const EulerGamma = 0.57721566490153286060651209008240243104215933593992

// ErrDomain is returned by functions that validate their numeric domain.
var ErrDomain = errors.New("mathx: argument outside function domain")

// Digamma returns ψ(x) = d/dx ln Γ(x) for x > 0.
//
// Implementation: the recurrence ψ(x) = ψ(x+1) − 1/x lifts the argument
// above 6, after which the asymptotic expansion
//
//	ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n})
//
// with Bernoulli numbers through x⁻¹² is accurate to better than 1e-12.
// For x ≤ 0, NaN is returned (GenClus only evaluates ψ at α ≥ 1).
func Digamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	var result float64
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic series in t = 1/x².
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	// Coefficients: B2/2=1/12, B4/4=-1/120, B6/6=1/252, B8/8=-1/240,
	// B10/10=1/132, B12/12=-691/32760.
	series := inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132-inv2*691.0/32760)))))
	return result - series
}

// Trigamma returns ψ′(x) = d²/dx² ln Γ(x) for x > 0.
//
// Same strategy as Digamma: recurrence ψ′(x) = ψ′(x+1) + 1/x² to x ≥ 6,
// then the asymptotic expansion
//
//	ψ′(x) ≈ 1/x + 1/(2x²) + Σ B_{2n}/x^{2n+1}.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	var result float64
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// 1/x + 1/(2x²) + 1/(6x³) − 1/(30x⁵) + 1/(42x⁷) − 1/(30x⁹) + 5/(66 x¹¹)
	series := inv * (1 + inv*(0.5+inv*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2*(1.0/30-inv2*5.0/66))))))
	return result + series
}

// LogGamma returns ln Γ(x) for x > 0, delegating to math.Lgamma but
// normalizing the (value, sign) pair into a single value. NaN for x ≤ 0.
func LogGamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns the log of the multivariate Beta function,
//
//	ln B(α) = Σ_k ln Γ(α_k) − ln Γ(Σ_k α_k),
//
// the normalizer of a Dirichlet(α) distribution. It is the local partition
// function ln Z_i(γ) in the pseudo-likelihood g′₂ of the paper (§4.2).
// Every α_k must be positive; otherwise NaN is returned.
func LogBeta(alpha []float64) float64 {
	if len(alpha) == 0 {
		return math.NaN()
	}
	var sumLG, sumA float64
	for _, a := range alpha {
		if !(a > 0) {
			return math.NaN()
		}
		lg, _ := math.Lgamma(a)
		sumLG += lg
		sumA += a
	}
	lgSum, _ := math.Lgamma(sumA)
	return sumLG - lgSum
}

// LogSumExp returns ln Σ_i exp(x_i) computed stably. The result for an empty
// slice is −Inf (the log of an empty sum).
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := math.Inf(-1)
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// Xlogy returns x·ln(y) with the convention 0·ln(0) = 0 used throughout
// entropy computations.
func Xlogy(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	return x * math.Log(y)
}

// CrossEntropy returns H(p, q) = −Σ_k p_k ln q_k, the average coding cost of
// p under a code optimal for q. This is the distance the GenClus feature
// function (paper Eq. 6) is built from: f = −γ·w·H(θ_j, θ_i).
//
// q entries equal to zero where p is positive yield +Inf, matching the
// information-theoretic definition; callers are expected to floor their
// distributions (the core package keeps Θ ≥ ε).
func CrossEntropy(p, q []float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	var h float64
	for k := 0; k < n; k++ {
		if p[k] == 0 {
			continue
		}
		h -= p[k] * math.Log(q[k])
	}
	return h
}

// Entropy returns the Shannon entropy H(p) = −Σ p ln p in nats.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// KLDivergence returns D(p‖q) = Σ_k p_k ln(p_k/q_k). Infinite when q has a
// zero where p does not. Provided for the cross-entropy-vs-KL ablation the
// paper discusses in §3.3.
func KLDivergence(p, q []float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	var d float64
	for k := 0; k < n; k++ {
		if p[k] == 0 {
			continue
		}
		d += p[k] * math.Log(p[k]/q[k])
	}
	return d
}

// KahanSum accumulates a slice with compensated summation; experiment
// harnesses use it when averaging long series of per-run metrics.
func KahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return KahanSum(xs) / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (the paper reports
// std over 20 runs; population vs sample makes no qualitative difference and
// population matches MATLAB's std(·,1) used in the era's scripts).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
