package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestDigammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, -EulerGamma},
		{0.5, -EulerGamma - 2*math.Ln2},
		{2, 1 - EulerGamma},
		{3, 1.5 - EulerGamma},
		{4, 1 + 0.5 + 1.0/3 - EulerGamma},
		{10, 2.2517525890667211},
		{100, 4.6001618527380874002},
	}
	for _, c := range cases {
		got := Digamma(c.x)
		if !almostEqual(got, c.want, 1e-10) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrenceProperty(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x across many magnitudes.
	f := func(raw float64) bool {
		x := math.Abs(raw)
		x = math.Mod(x, 50) + 0.01 // keep in (0.01, 50.01)
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDigammaMatchesLgammaDerivative(t *testing.T) {
	// Central finite difference of math.Lgamma should match ψ.
	for _, x := range []float64{0.3, 0.9, 1.5, 2.7, 5.0, 12.5, 40, 123.4} {
		h := 1e-6 * math.Max(1, x)
		lg1, _ := math.Lgamma(x + h)
		lg0, _ := math.Lgamma(x - h)
		fd := (lg1 - lg0) / (2 * h)
		if !almostEqual(Digamma(x), fd, 1e-5) {
			t.Errorf("Digamma(%v)=%v, finite diff=%v", x, Digamma(x), fd)
		}
	}
}

func TestDigammaInvalid(t *testing.T) {
	for _, x := range []float64{0, -1, -0.5, math.NaN()} {
		if !math.IsNaN(Digamma(x)) {
			t.Errorf("Digamma(%v) should be NaN", x)
		}
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
		{10, 0.10516633568168575},
	}
	for _, c := range cases {
		got := Trigamma(c.x)
		if !almostEqual(got, c.want, 1e-10) {
			t.Errorf("Trigamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTrigammaRecurrenceProperty(t *testing.T) {
	// ψ′(x+1) = ψ′(x) − 1/x².
	f := func(raw float64) bool {
		x := math.Abs(raw)
		x = math.Mod(x, 40) + 0.05
		lhs := Trigamma(x + 1)
		rhs := Trigamma(x) - 1/(x*x)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTrigammaIsDigammaDerivative(t *testing.T) {
	for _, x := range []float64{0.4, 1.1, 3.3, 7.7, 25} {
		h := 1e-5 * math.Max(1, x)
		fd := (Digamma(x+h) - Digamma(x-h)) / (2 * h)
		if !almostEqual(Trigamma(x), fd, 1e-4) {
			t.Errorf("Trigamma(%v)=%v, finite diff=%v", x, Trigamma(x), fd)
		}
	}
}

func TestTrigammaPositive(t *testing.T) {
	// ψ′ is positive and strictly decreasing on (0, ∞).
	prev := math.Inf(1)
	for x := 0.1; x < 30; x += 0.37 {
		v := Trigamma(x)
		if v <= 0 {
			t.Fatalf("Trigamma(%v) = %v, want > 0", x, v)
		}
		if v >= prev {
			t.Fatalf("Trigamma not decreasing at %v: %v >= %v", x, v, prev)
		}
		prev = v
	}
}

func TestLogBetaAgainstGamma(t *testing.T) {
	// B(a, b) = Γ(a)Γ(b)/Γ(a+b) for the bivariate case.
	cases := [][2]float64{{1, 1}, {2, 3}, {0.5, 0.5}, {7.5, 2.25}}
	for _, c := range cases {
		want := LogGamma(c[0]) + LogGamma(c[1]) - LogGamma(c[0]+c[1])
		got := LogBeta(c[:])
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("LogBeta(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestLogBetaUniformDirichlet(t *testing.T) {
	// B(1,1,...,1) over K categories = 1/Γ(K) · Γ(1)^K → ln B = −ln Γ(K).
	for K := 2; K <= 10; K++ {
		alpha := make([]float64, K)
		for i := range alpha {
			alpha[i] = 1
		}
		want := -LogGamma(float64(K))
		if got := LogBeta(alpha); !almostEqual(got, want, 1e-12) {
			t.Errorf("LogBeta(ones(%d)) = %v, want %v", K, got, want)
		}
	}
}

func TestLogBetaInvalid(t *testing.T) {
	if !math.IsNaN(LogBeta(nil)) {
		t.Error("LogBeta(nil) should be NaN")
	}
	if !math.IsNaN(LogBeta([]float64{1, 0})) {
		t.Error("LogBeta with zero component should be NaN")
	}
	if !math.IsNaN(LogBeta([]float64{1, -2})) {
		t.Error("LogBeta with negative component should be NaN")
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp([]float64{0, 0}); !almostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("LogSumExp([0,0]) = %v, want ln 2", got)
	}
	// Large offsets must not overflow.
	if got := LogSumExp([]float64{1000, 1000}); !almostEqual(got, 1000+math.Ln2, 1e-9) {
		t.Errorf("LogSumExp([1000,1000]) = %v", got)
	}
	if got := LogSumExp([]float64{-1000, -1001}); math.IsInf(got, -1) || math.IsNaN(got) {
		t.Errorf("LogSumExp underflowed: %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
}

func TestLogSumExpShiftInvariance(t *testing.T) {
	// LSE(x + c) = LSE(x) + c.
	f := func(a, b, c float64) bool {
		a = math.Mod(a, 20)
		b = math.Mod(b, 20)
		c = math.Mod(c, 20)
		base := LogSumExp([]float64{a, b})
		shifted := LogSumExp([]float64{a + c, b + c})
		return almostEqual(shifted, base+c, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCrossEntropyIdentities(t *testing.T) {
	p := []float64{0.25, 0.25, 0.5}
	// H(p,p) = H(p).
	if !almostEqual(CrossEntropy(p, p), Entropy(p), 1e-12) {
		t.Error("H(p,p) != H(p)")
	}
	// Gibbs: H(p,q) >= H(p) with equality iff p == q.
	q := []float64{0.3, 0.3, 0.4}
	if CrossEntropy(p, q) < Entropy(p) {
		t.Error("Gibbs inequality violated")
	}
	// Cross entropy to a point mass the support of which covers p's mass is infinite.
	point := []float64{1, 0, 0}
	if !math.IsInf(CrossEntropy(p, point), 1) {
		t.Error("expected +Inf cross entropy against zero-support q")
	}
}

func TestCrossEntropyGibbsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randomSimplex(rng, 4)
		q := randomSimplex(rng, 4)
		if CrossEntropy(p, q)+1e-12 < Entropy(p) {
			t.Fatalf("H(p,q) < H(p) for p=%v q=%v", p, q)
		}
		// D(p||q) = H(p,q) − H(p).
		want := CrossEntropy(p, q) - Entropy(p)
		if !almostEqual(KLDivergence(p, q), want, 1e-9) {
			t.Fatalf("KL mismatch: %v vs %v", KLDivergence(p, q), want)
		}
	}
}

func randomSimplex(rng *rand.Rand, k int) []float64 {
	v := make([]float64, k)
	var sum float64
	for i := range v {
		v[i] = rng.Float64() + 1e-3
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

func TestXlogy(t *testing.T) {
	if Xlogy(0, 0) != 0 {
		t.Error("0 log 0 should be 0")
	}
	if !almostEqual(Xlogy(2, math.E), 2, 1e-12) {
		t.Error("2 ln e != 2")
	}
}

func TestEntropyBounds(t *testing.T) {
	// Uniform maximizes entropy: H(uniform_K) = ln K.
	for K := 2; K < 8; K++ {
		u := make([]float64, K)
		for i := range u {
			u[i] = 1 / float64(K)
		}
		if !almostEqual(Entropy(u), math.Log(float64(K)), 1e-12) {
			t.Errorf("H(uniform_%d) != ln %d", K, K)
		}
	}
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Error("point mass entropy should be 0")
	}
}

func TestKahanSumAccuracy(t *testing.T) {
	// 1 + 1e-16 added 1e6 times loses the small part under naive summation.
	xs := make([]float64, 0, 1_000_001)
	xs = append(xs, 1)
	for i := 0; i < 1_000_000; i++ {
		xs = append(xs, 1e-16)
	}
	got := KahanSum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("KahanSum = %.18f, want %.18f", got, want)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEqual(StdDev(xs), 2, 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("Mean/StdDev of empty slice should be NaN")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func BenchmarkDigamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Digamma(1.0 + float64(i%100))
	}
}

func BenchmarkTrigamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Trigamma(1.0 + float64(i%100))
	}
}

func BenchmarkLogBetaK4(b *testing.B) {
	alpha := []float64{1.5, 2.5, 3.5, 0.5}
	for i := 0; i < b.N; i++ {
		LogBeta(alpha)
	}
}
