package bench

import (
	"fmt"
	"math/rand"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// EMBenchNetwork builds the deterministic mid-size synthetic network the
// EM-iteration benchmark runs on: 4000 docs over four topics, two link
// types (within-topic "cites" and uniform "refs"), a 200-term categorical
// attribute on 80% of the objects and a numeric attribute on a third —
// link-heavy enough that the E-step's CSR walk dominates, attribute-rich
// enough that every accumulator kind participates.
func EMBenchNetwork() (*hin.Network, error) {
	rng := rand.New(rand.NewSource(7))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 200})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	const n = 4000
	const topics = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("d%05d", i)
		b.AddObject(ids[i], "doc")
		topic := i % topics
		if i%5 != 0 { // 80% carry text
			for w := 0; w < 6; w++ {
				b.AddTermCount(ids[i], "text", topic*50+rng.Intn(50), 1)
			}
		}
		if i%3 == 0 { // a third carry the numeric attribute
			b.AddNumeric(ids[i], "score", float64(topic*10)+rng.NormFloat64())
		}
	}
	perTopic := n / topics
	for i := 0; i < n; i++ {
		topic := i % topics
		for c := 0; c < 4; c++ {
			j := topic + topics*rng.Intn(perTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "cites", 1)
			}
		}
		for c := 0; c < 2; c++ {
			j := rng.Intn(n)
			if j != i {
				b.AddLink(ids[i], ids[j], "refs", 0.5)
			}
		}
	}
	return b.Build()
}

// EMIterationBench wraps a warmed-up core.EMHarness on the EMBenchNetwork —
// the fixture behind BenchmarkEMIteration (bench_fit_test.go) and the
// steady-state zero-allocation regression test.
type EMIterationBench struct {
	h *core.EMHarness

	// Objects and Links describe the fixture for reporting.
	Objects, Links int
}

// NewEMIterationBench builds the network, prepares the harness with the
// paper-default options at K=4 (single seed, serial — the deterministic
// configuration the committed baseline uses), and runs warm-up iterations
// so the first measured iteration is already in the zero-alloc steady
// state.
func NewEMIterationBench() (*EMIterationBench, error) {
	return NewEMIterationBenchParallel(1)
}

// NewEMIterationBenchParallel is NewEMIterationBench with an explicit EM
// worker count — the fixture behind the per-parallelism benchmark series
// (em-iteration/midsize-p4, -p16). Parallelism changes only the wall clock,
// never the results, so every variant runs the same arithmetic on the same
// state; Close the bench to stop the worker pool.
func NewEMIterationBenchParallel(parallelism int) (*EMIterationBench, error) {
	net, err := EMBenchNetwork()
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions(4)
	opts.Seed = 1
	opts.InitSeeds = 1
	opts.Parallelism = parallelism
	h, err := core.NewEMHarness(net, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		h.RunIteration()
	}
	return &EMIterationBench{h: h, Objects: net.NumObjects(), Links: net.NumEdges()}, nil
}

// RunIteration executes one steady-state E+M pass.
func (eb *EMIterationBench) RunIteration() { eb.h.RunIteration() }

// Close stops the harness's worker pool, if any.
func (eb *EMIterationBench) Close() { eb.h.Close() }
