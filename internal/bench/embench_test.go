package bench

import "testing"

// TestEMIterationSteadyStateZeroAlloc pins the tentpole guarantee of the
// CSR refactor: once the per-chunk accumulators and Θ snapshot buffers are
// warmed up, a serial EM iteration allocates nothing — every piece of
// scratch lives in the state and is reused across iterations. A regression
// here means someone reintroduced per-iteration allocation into the hot
// path (BenchmarkEMIteration in bench_fit_test.go reports the same number
// as allocs/op).
func TestEMIterationSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation breaks exact allocation accounting")
	}
	eb, err := NewEMIterationBench()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(5, eb.RunIteration); allocs != 0 {
		t.Fatalf("steady-state EM iteration allocates %v times per run, want 0", allocs)
	}
}
