package bench

import "testing"

// TestEMIterationSteadyStateZeroAlloc pins the tentpole guarantee of the
// CSR refactor: once the per-chunk accumulators and Θ snapshot buffers are
// warmed up, a serial EM iteration allocates nothing — every piece of
// scratch lives in the state and is reused across iterations. A regression
// here means someone reintroduced per-iteration allocation into the hot
// path (BenchmarkEMIteration in bench_fit_test.go reports the same number
// as allocs/op).
func TestEMIterationSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation breaks exact allocation accounting")
	}
	eb, err := NewEMIterationBench()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(5, eb.RunIteration); allocs != 0 {
		t.Fatalf("steady-state EM iteration allocates %v times per run, want 0", allocs)
	}
}

// TestEMIterationParallelSteadyStateZeroAlloc extends the zero-allocation
// contract to the pooled parallel path: the persistent workers, the
// atomic-counter chunk dispatch and the padded accumulators mean a P=16
// iteration must allocate exactly as much as a serial one — nothing.
func TestEMIterationParallelSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation breaks exact allocation accounting")
	}
	for _, p := range []int{4, 16} {
		eb, err := NewEMIterationBenchParallel(p)
		if err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(5, eb.RunIteration); allocs != 0 {
			t.Errorf("steady-state EM iteration at P=%d allocates %v times per run, want 0", p, allocs)
		}
		eb.Close()
	}
}
