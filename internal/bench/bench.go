// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (§5), each printing the same
// rows/series the paper reports, plus the ablations DESIGN.md calls out.
//
// Experiments are exposed three ways: through this registry (used by
// cmd/experiments), through the Benchmark functions in the repository root,
// and individually as plain functions for tests.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"genclus/internal/baselines"
	"genclus/internal/core"
	"genclus/internal/datagen"
	"genclus/internal/eval"
)

// Config controls how experiments run. Zero values are replaced by the
// paper-faithful defaults (DefaultConfig).
type Config struct {
	// Scale multiplies dataset sizes. 1.0 reproduces the configuration the
	// harness was calibrated on; smaller values give quick smoke runs.
	Scale float64
	// Runs is the number of random restarts aggregated into mean/std where
	// the paper reports 20-run statistics (Figs. 5–6).
	Runs int
	// Seed is the base seed; run r uses Seed + r·10007.
	Seed int64
	// Out receives the formatted report. Defaults to io.Discard-like no-op
	// when nil (callers usually pass os.Stdout).
	Out io.Writer
}

// DefaultConfig mirrors the paper's experimental setup at the calibrated
// default scale.
func DefaultConfig() Config {
	return Config{Scale: 1, Runs: 20, Seed: 1}
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Runs <= 0 {
		c.Runs = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) runSeed(r int) int64 { return c.Seed + int64(r)*10007 }

// scaled applies the scale factor with a floor.
func (c Config) scaled(n int, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// Report is the outcome of one experiment: pre-formatted lines shaped like
// the paper's table/figure, plus machine-readable values for tests.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Values holds named numeric results (e.g. "GenClus/Overall/mean") so
	// tests can assert on shapes without parsing text.
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) set(key string, v float64) { r.Values[key] = v }

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString("== " + r.ID + ": " + r.Title + " ==\n")
	for _, line := range r.Lines {
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(cfg Config) (*Report, error)
}

var registry = []Experiment{
	{ID: "fig5", Title: "Clustering accuracy on the AC network (NMI mean/std, 20 runs)",
		Description: "NetPLSA vs iTopicModel vs GenClus on the author-conference network; Overall, C, A slices", Run: Fig5},
	{ID: "fig6", Title: "Clustering accuracy on the ACP network (NMI mean/std, 20 runs)",
		Description: "NetPLSA vs iTopicModel vs GenClus on the author-conference-paper network; Overall, C, A, P slices", Run: Fig6},
	{ID: "table1", Title: "Case study: cluster memberships of archetypal venues/authors",
		Description: "Soft membership rows after a GenClus fit on the AC network", Run: Table1},
	{ID: "fig7", Title: "Weather Setting 1 accuracy grid",
		Description: "NMI for {P=250,500,1000} x {nobs=1,5,20}: Kmeans, SpectralCombine, GenClus", Run: Fig7},
	{ID: "fig8", Title: "Weather Setting 2 accuracy grid",
		Description: "Same grid as fig7 for the corner-means setting", Run: Fig8},
	{ID: "table2", Title: "Link prediction MAP for <A,C> on the AC network",
		Description: "Three similarity functions x NetPLSA/iTopicModel/GenClus", Run: Table2},
	{ID: "table3", Title: "Link prediction MAP for <P,C> on the ACP network",
		Description: "Three similarity functions x NetPLSA/iTopicModel/GenClus", Run: Table3},
	{ID: "table4", Title: "Link prediction MAP for <T,P> on the weather network",
		Description: "GenClus memberships, three similarity functions", Run: Table4},
	{ID: "fig9", Title: "Learned link-type strengths on the AC and ACP networks",
		Description: "gamma per relation after a GenClus fit", Run: Fig9},
	{ID: "table5", Title: "Weather link-type strengths vs P-sensor density",
		Description: "gamma for <T,T>,<T,P>,<P,T>,<P,P> at P=250/500/1000, nobs=5, Setting 1", Run: Table5},
	{ID: "fig10", Title: "A typical running case on the AC network",
		Description: "NMI (C and A) and gamma per outer iteration", Run: Fig10},
	{ID: "fig11", Title: "Scalability: EM time per iteration vs number of objects",
		Description: "Execution time per EM iteration for both settings, nobs=1/5/20", Run: Fig11},
	{ID: "parallel", Title: "Parallel EM speedup (Section 5.4)",
		Description: "EM wall time with 1/2/4 worker goroutines", Run: Parallel},
	{ID: "ablation-asym", Title: "Ablation: asymmetric vs symmetrized propagation",
		Description: "NMI and link-prediction MAP with and without symmetric propagation", Run: AblationAsym},
	{ID: "ablation-gamma", Title: "Ablation: learned gamma vs fixed gamma=1",
		Description: "Isolates the relation-strength learning contribution", Run: AblationGamma},
	{ID: "ablation-prior", Title: "Ablation: prior sigma sensitivity",
		Description: "NMI and strengths for sigma in {0.01, 0.1, 1, 10}", Run: AblationPrior},
	{ID: "selectk", Title: "Extension: choosing K with AIC/BIC",
		Description: "Model-selection scores for K in 2..6 on the AC network (Section 2.2 defers K selection to these criteria)", Run: SelectKDemo},
	{ID: "ext-holdout", Title: "Extension: held-out link prediction",
		Description: "25% of publish_in edges removed before fitting; MAP on the held-out links", Run: Holdout},
}

// Registry lists all experiments in paper order.
func Registry() []Experiment { return registry }

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// --- shared helpers ---

// acConfig returns the bibliographic AC configuration at the harness scale.
func (c Config) acConfig(seed int64) datagen.BiblioConfig {
	cfg := datagen.DefaultBiblioConfig(datagen.SchemaAC, seed)
	cfg.NumAuthors = c.scaled(cfg.NumAuthors, 60)
	cfg.NumPapers = c.scaled(cfg.NumPapers, 100)
	return cfg
}

func (c Config) acpConfig(seed int64) datagen.BiblioConfig {
	cfg := datagen.DefaultBiblioConfig(datagen.SchemaACP, seed)
	cfg.NumAuthors = c.scaled(cfg.NumAuthors, 60)
	cfg.NumPapers = c.scaled(cfg.NumPapers, 100)
	cfg.LabeledPapers = c.scaled(cfg.LabeledPapers, 20)
	return cfg
}

// genclusOptions are the fit options used across the DBLP-style experiments
// (paper: 10 outer iterations on the AC/ACP networks).
func genclusOptions(k int, seed int64) core.Options {
	opts := core.DefaultOptions(k)
	opts.OuterIters = 10
	opts.EMIters = 8
	opts.Seed = seed
	return opts
}

// weatherOptions mirror §5.2.1: iteration number 5, best-of-seeds init.
// The hard corner-means setting needs the restarts to run long enough for
// the link-consistency term to separate good component pairings from bad
// ones before g₁ selects the start, hence the deep 16×12 exploration.
func weatherOptions(k int, seed int64) core.Options {
	opts := core.DefaultOptions(k)
	opts.OuterIters = 5
	opts.EMIters = 5
	opts.InitSeeds = 16
	opts.InitSeedSteps = 12
	opts.Seed = seed
	return opts
}

// nmiByType evaluates NMI on the labeled subset of each object type plus the
// overall labeled set.
func nmiByType(ds *datagen.Dataset, pred []int, types []string) (map[string]float64, error) {
	out := make(map[string]float64, len(types)+1)
	var all []int
	for v := range ds.Labels {
		all = append(all, v)
	}
	sort.Ints(all)
	overall, err := eval.NMIOnSubset(all, pred, ds.Labels)
	if err != nil {
		return nil, err
	}
	out["Overall"] = overall
	for _, t := range types {
		objs := ds.LabeledOfType(t)
		if len(objs) == 0 {
			continue
		}
		nmi, err := eval.NMIOnSubset(objs, pred, ds.Labels)
		if err != nil {
			return nil, err
		}
		out[t] = nmi
	}
	return out, nil
}

// method is one clustering approach evaluated in the comparison figures.
type method struct {
	name string
	run  func(ds *datagen.Dataset, seed int64) ([]int, [][]float64, error)
}

func textMethods() []method {
	return []method{
		{name: "NetPLSA", run: func(ds *datagen.Dataset, seed int64) ([]int, [][]float64, error) {
			opts := baselines.DefaultPLSAOptions(ds.NumClusters)
			opts.Seed = seed
			res, err := baselines.NetPLSA(ds.Net, opts)
			if err != nil {
				return nil, nil, err
			}
			return res.Labels, res.Theta, nil
		}},
		{name: "iTopicModel", run: func(ds *datagen.Dataset, seed int64) ([]int, [][]float64, error) {
			opts := baselines.DefaultPLSAOptions(ds.NumClusters)
			opts.Seed = seed
			res, err := baselines.ITopicModel(ds.Net, opts)
			if err != nil {
				return nil, nil, err
			}
			return res.Labels, res.Theta, nil
		}},
		{name: "GenClus", run: func(ds *datagen.Dataset, seed int64) ([]int, [][]float64, error) {
			res, err := core.Fit(ds.Net, genclusOptions(ds.NumClusters, seed))
			if err != nil {
				return nil, nil, err
			}
			return res.HardLabels(), res.Theta, nil
		}},
	}
}
