package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// smokeConfig keeps experiment smoke tests fast.
func smokeConfig() Config {
	return Config{Scale: 0.06, Runs: 2, Seed: 5}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of §5 must have an experiment, plus the three
	// ablations and the parallel measurement.
	want := []string{
		"fig5", "fig6", "table1", "fig7", "fig8", "table2", "table3",
		"table4", "fig9", "table5", "fig10", "fig11", "parallel",
		"ablation-asym", "ablation-gamma", "ablation-prior",
		"selectk", "ext-holdout",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := Get("ghost"); ok {
		t.Error("ghost experiment should not resolve")
	}
}

func TestRegistryMetadata(t *testing.T) {
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %+v has incomplete metadata", e.ID)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Runs != 20 || c.Seed != 1 {
		t.Errorf("normalized zero config = %+v", c)
	}
	if (Config{Scale: 0.5}).scaled(100, 10) != 50 {
		t.Error("scaled() wrong")
	}
	if (Config{Scale: 0.001}).scaled(100, 10) != 10 {
		t.Error("scaled() floor wrong")
	}
}

func TestReportWriteTo(t *testing.T) {
	r := newReport("x", "title")
	r.addf("line %d", 1)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x: title") || !strings.Contains(out, "line 1") {
		t.Errorf("report rendering wrong: %q", out)
	}
}

func TestFig5Smoke(t *testing.T) {
	rep, err := Fig5(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"NetPLSA", "iTopicModel", "GenClus"} {
		if _, ok := rep.Values[m+"/Overall/mean"]; !ok {
			t.Errorf("missing %s overall mean", m)
		}
	}
	// NMI values must be within [0, 1].
	for key, v := range rep.Values {
		if strings.HasSuffix(key, "/mean") && (v < 0 || v > 1) {
			t.Errorf("%s = %v outside [0,1]", key, v)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	rep, err := Fig6(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Values["GenClus/paper/mean"]; !ok {
		t.Error("fig6 should slice by paper type")
	}
}

func TestTable1Smoke(t *testing.T) {
	rep, err := Table1(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 5 {
		t.Errorf("table1 too short: %v", rep.Lines)
	}
	// The broad venue should have higher membership entropy than the
	// focused one.
	if rep.Values["broadVenueEntropy"] < rep.Values["focusedVenueEntropy"] {
		t.Error("broad venue should have higher entropy than focused")
	}
}

func TestFig7Smoke(t *testing.T) {
	rep, err := Fig7(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 sizes × 3 obs × 3 methods = 27 values.
	count := 0
	for range rep.Values {
		count++
	}
	if count != 27 {
		t.Errorf("fig7 produced %d values, want 27", count)
	}
}

func TestFig8Smoke(t *testing.T) {
	rep, err := Fig8(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 10 { // header + 9 rows
		t.Errorf("fig8 has %d lines", len(rep.Lines))
	}
}

func TestTable2Smoke(t *testing.T) {
	rep, err := Table2(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 sims × 3 methods.
	if len(rep.Values) != 9 {
		t.Errorf("table2 has %d values", len(rep.Values))
	}
	for key, v := range rep.Values {
		if v < 0 || v > 1 {
			t.Errorf("MAP %s = %v outside [0,1]", key, v)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	rep, err := Table3(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 9 {
		t.Errorf("table3 has %d values", len(rep.Values))
	}
}

func TestTable4Smoke(t *testing.T) {
	rep, err := Table4(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("table4 has %d values", len(rep.Values))
	}
}

func TestFig9Smoke(t *testing.T) {
	rep, err := Fig9(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"AC/publish_in", "AC/coauthor", "ACP/written_by", "ACP/published_by_pc"} {
		if _, ok := rep.Values[key]; !ok {
			t.Errorf("fig9 missing %s", key)
		}
	}
	for key, v := range rep.Values {
		if v < 0 {
			t.Errorf("negative strength %s = %v", key, v)
		}
	}
}

func TestTable5Smoke(t *testing.T) {
	rep, err := Table5(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 12 { // 3 sizes × 4 relations
		t.Errorf("table5 has %d values", len(rep.Values))
	}
}

func TestFig10Smoke(t *testing.T) {
	rep, err := Fig10(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 11 iterations (0..10), two NMI series each.
	if _, ok := rep.Values["iter0/NMI(C)"]; !ok {
		t.Error("fig10 missing iteration 0")
	}
	if _, ok := rep.Values["iter10/NMI(A)"]; !ok {
		t.Error("fig10 missing iteration 10")
	}
}

func TestFig11Smoke(t *testing.T) {
	rep, err := Fig11(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 18 { // 2 settings × 3 sizes × 3 obs
		t.Errorf("fig11 has %d values", len(rep.Values))
	}
	for key, v := range rep.Values {
		if v <= 0 {
			t.Errorf("non-positive timing %s = %v", key, v)
		}
	}
}

func TestParallelSmoke(t *testing.T) {
	rep, err := Parallel(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Values["workers=4/speedup"]; !ok {
		t.Error("parallel missing 4-worker speedup")
	}
}

func TestAblationsSmoke(t *testing.T) {
	for _, run := range []func(Config) (*Report, error){AblationAsym, AblationGamma, AblationPrior} {
		rep, err := run(smokeConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Values) == 0 {
			t.Errorf("%s produced no values", rep.ID)
		}
	}
}

func TestHoldoutSmoke(t *testing.T) {
	rep, err := Holdout(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("ext-holdout has %d values", len(rep.Values))
	}
	for key, v := range rep.Values {
		if v < 0 || v > 1 {
			t.Errorf("holdout MAP %s = %v", key, v)
		}
	}
}

func TestSelectKDemoSmoke(t *testing.T) {
	rep, err := SelectKDemo(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Values["bestK"]; !ok {
		t.Error("selectk missing bestK")
	}
	for k := 2; k <= 6; k++ {
		if _, ok := rep.Values[fmt.Sprintf("K=%d/BIC", k)]; !ok {
			t.Errorf("selectk missing K=%d score", k)
		}
	}
}
