package bench

import (
	"fmt"
	"math/rand"

	"genclus/internal/core"
	"genclus/internal/datagen"
	"genclus/internal/eval"
	"genclus/internal/hin"
)

// Holdout evaluates true out-of-sample link prediction on the AC network:
// 25% of the 〈A,C〉 publish_in edges (with their 〈C,A〉 mirrors) are removed
// before fitting, and memberships fitted on the remainder must rank the
// held-out venues. The paper's Tables 2–4 score reconstruction of observed
// links; this extension closes that gap.
func Holdout(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("ext-holdout", "Held-out link prediction for <A,C> on the AC network")
	ds, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	full := ds.Net
	pubRel, ok := full.RelationID(datagen.RelPublishIn)
	if !ok {
		return nil, fmt.Errorf("bench: publish_in missing")
	}
	revRel, _ := full.RelationID(datagen.RelPublishedBy)

	rng := rand.New(rand.NewSource(c.Seed))
	heldPair := make(map[[2]int]bool)
	var held []hin.Edge
	for _, e := range full.Edges() {
		if e.Rel == pubRel && rng.Float64() < 0.25 {
			heldPair[[2]int{e.From, e.To}] = true
			held = append(held, e)
		}
	}
	if len(held) == 0 {
		return nil, fmt.Errorf("bench: holdout selected no edges")
	}
	train, err := hin.FilterEdges(full, func(e hin.Edge) bool {
		if e.Rel == pubRel && heldPair[[2]int{e.From, e.To}] {
			return false
		}
		if e.Rel == revRel && heldPair[[2]int{e.To, e.From}] {
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	res, err := core.Fit(train, genclusOptions(ds.NumClusters, c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("held out %d of the publish_in edges (25%%), fitted on the rest", len(held))
	rep.addf("%-14s %-10s", "similarity", "MAP")
	for _, sim := range eval.Similarities() {
		mapv, err := eval.LinkPredictionMAPHoldout(train, res.Theta, datagen.RelPublishIn, held, sim)
		if err != nil {
			return nil, err
		}
		rep.addf("%-14s %-10.4f", sim.Name, mapv)
		rep.set(sim.Name, mapv)
	}
	// Random-ranking reference for context: with R relevant among N
	// candidates, expected MAP ≈ R/N.
	rep.addf("(random-ranking MAP would be ≈ %.3f)", 1.0/float64(len(full.ObjectsOfType(datagen.TypeConf))))
	return rep, nil
}

// SelectKDemo runs the AIC/BIC model-selection extension on the AC network,
// whose ground truth has 4 areas.
func SelectKDemo(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("selectk", "Choosing the number of clusters with AIC/BIC (AC network, truth K=4)")
	ds, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	opts := genclusOptions(2, c.Seed)
	opts.OuterIters = 5
	scores, err := core.SelectK(ds.Net, opts, 2, 6)
	if err != nil {
		return nil, err
	}
	rep.addf("%-4s %-16s %-10s %-16s %-16s", "K", "loglik", "params", "AIC", "BIC")
	for _, s := range scores {
		rep.addf("%-4d %-16.1f %-10d %-16.1f %-16.1f", s.K, s.LogLik, s.Params, s.AIC, s.BIC)
		rep.set(fmt.Sprintf("K=%d/BIC", s.K), s.BIC)
		rep.set(fmt.Sprintf("K=%d/AIC", s.K), s.AIC)
		rep.set(fmt.Sprintf("K=%d/loglik", s.K), s.LogLik)
	}
	bestA, err := core.BestAIC(scores)
	if err != nil {
		return nil, err
	}
	bestB, err := core.BestBIC(scores)
	if err != nil {
		return nil, err
	}
	rep.addf("AIC selects K = %d; BIC selects K = %d", bestA.K, bestB.K)
	rep.addf("(BIC's ln(n) penalty over-punishes the |V|·(K−1) membership parameters;")
	rep.addf("AIC is the better-behaved criterion for this conditional likelihood)")
	rep.set("bestK", float64(bestA.K))
	rep.set("bestKBIC", float64(bestB.K))
	return rep, nil
}
