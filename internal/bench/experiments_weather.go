package bench

import (
	"fmt"
	"sort"
	"time"

	"genclus/internal/baselines"
	"genclus/internal/core"
	"genclus/internal/datagen"
	"genclus/internal/eval"
)

// weatherSizes are the paper's sensor-count configurations: temperature
// sensors fixed at 1000, precipitation sensors swept (§5.1).
var weatherSizes = []int{250, 500, 1000}

// weatherObs are the per-sensor observation counts the paper sweeps.
var weatherObs = []int{1, 5, 20}

func (c Config) weatherConfig(setting, numP, numObs int, seed int64) datagen.WeatherConfig {
	numT := c.scaled(1000, 40)
	p := c.scaled(numP, 20)
	var cfg datagen.WeatherConfig
	if setting == 1 {
		cfg = datagen.WeatherSetting1(numT, p, numObs, seed)
	} else {
		cfg = datagen.WeatherSetting2(numT, p, numObs, seed)
	}
	return cfg
}

// weatherGrid implements Figs. 7 and 8: the {P}×{nobs} NMI grid for the
// three numeric methods.
func weatherGrid(cfg Config, id, title string, setting int) (*Report, error) {
	c := cfg.normalized()
	rep := newReport(id, title)
	rep.addf("%-18s %-6s %-10s %-16s %-10s", "configuration", "nobs", "Kmeans", "SpectralCombine", "GenClus")
	for _, numP := range weatherSizes {
		for _, numObs := range weatherObs {
			ds, err := datagen.Weather(c.weatherConfig(setting, numP, numObs, c.Seed))
			if err != nil {
				return nil, err
			}
			var labeled []int
			for v := range ds.Labels {
				labeled = append(labeled, v)
			}
			sort.Ints(labeled)

			feats, err := baselines.InterpolateNumeric(ds.Net, []string{datagen.AttrTemperature, datagen.AttrPrecipitation})
			if err != nil {
				return nil, err
			}
			kmOpts := baselines.PaperKMeansOptions(ds.NumClusters)
			kmOpts.Seed = c.Seed
			km, err := baselines.KMeans(feats, kmOpts)
			if err != nil {
				return nil, err
			}
			kmNMI, err := eval.NMIOnSubset(labeled, km.Labels, ds.Labels)
			if err != nil {
				return nil, err
			}

			stdFeats := baselines.Standardize(feats)
			spOpts := baselines.DefaultSpectralOptions(ds.NumClusters)
			spOpts.Seed = c.Seed
			sp, err := baselines.SpectralCombine(ds.Net, stdFeats, spOpts)
			if err != nil {
				return nil, err
			}
			spNMI, err := eval.NMIOnSubset(labeled, sp.Labels, ds.Labels)
			if err != nil {
				return nil, err
			}

			res, err := core.Fit(ds.Net, weatherOptions(ds.NumClusters, c.Seed))
			if err != nil {
				return nil, err
			}
			gcNMI, err := eval.NMIOnSubset(labeled, res.HardLabels(), ds.Labels)
			if err != nil {
				return nil, err
			}

			label := fmt.Sprintf("T:1000; P:%d", numP)
			rep.addf("%-18s %-6d %-10.4f %-16.4f %-10.4f", label, numObs, kmNMI, spNMI, gcNMI)
			prefix := fmt.Sprintf("P=%d/nobs=%d/", numP, numObs)
			rep.set(prefix+"Kmeans", kmNMI)
			rep.set(prefix+"Spectral", spNMI)
			rep.set(prefix+"GenClus", gcNMI)
		}
	}
	return rep, nil
}

// Fig7 regenerates Fig. 7 (weather Setting 1 grid).
func Fig7(cfg Config) (*Report, error) {
	return weatherGrid(cfg, "fig7", "Clustering accuracy comparisons for Setting 1", 1)
}

// Fig8 regenerates Fig. 8 (weather Setting 2 grid).
func Fig8(cfg Config) (*Report, error) {
	return weatherGrid(cfg, "fig8", "Clustering accuracy comparisons for Setting 2", 2)
}

// Table4 regenerates Table 4: <T,P> link prediction on the Setting 1
// network with T=1000, P=250 — GenClus only (the hard baselines have no
// meaningful soft memberships).
func Table4(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("table4", "Prediction accuracy (MAP) for <T,P> in the weather network")
	ds, err := datagen.Weather(c.weatherConfig(1, 250, 5, c.Seed))
	if err != nil {
		return nil, err
	}
	res, err := core.Fit(ds.Net, weatherOptions(ds.NumClusters, c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("%-14s %-10s", "similarity", "MAP")
	for _, sim := range eval.Similarities() {
		mapv, err := eval.LinkPredictionMAP(ds.Net, res.Theta, datagen.RelTP, sim)
		if err != nil {
			return nil, err
		}
		rep.addf("%-14s %-10.4f", sim.Name, mapv)
		rep.set(sim.Name, mapv)
	}
	return rep, nil
}

// Table5 regenerates Table 5: learned strengths per relation for the three
// network sizes (Setting 1, nobs = 5).
func Table5(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("table5", "Link type strength for weather sensor network in Setting 1")
	rels := []string{datagen.RelTT, datagen.RelTP, datagen.RelPT, datagen.RelPP}
	header := fmt.Sprintf("%-18s", "configuration")
	for _, rel := range rels {
		header += fmt.Sprintf(" %-8s", rel)
	}
	rep.addf("%s", header)
	for _, numP := range weatherSizes {
		ds, err := datagen.Weather(c.weatherConfig(1, numP, 5, c.Seed))
		if err != nil {
			return nil, err
		}
		res, err := core.Fit(ds.Net, weatherOptions(ds.NumClusters, c.Seed))
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("T:1000; P:%-5d", numP)
		for _, rel := range rels {
			row += fmt.Sprintf(" %-8.2f", res.Gamma[rel])
			rep.set(fmt.Sprintf("P=%d/%s", numP, rel), res.Gamma[rel])
		}
		rep.addf("%s", row)
	}
	rep.addf("paper shape: strengths of <T,P> and <P,P> drop as P gets sparser; T-typed neighbors trusted over P-typed")
	return rep, nil
}

// Fig11 regenerates the scalability figure: execution time per EM iteration
// for the three network sizes and three observation counts, both settings.
func Fig11(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("fig11", "Scalability test over number of objects (EM time per iteration)")
	rep.addf("%-10s %-10s %-6s %-14s", "setting", "objects", "nobs", "sec/EM-iter")
	for _, setting := range []int{1, 2} {
		for _, numP := range weatherSizes {
			for _, numObs := range weatherObs {
				ds, err := datagen.Weather(c.weatherConfig(setting, numP, numObs, c.Seed))
				if err != nil {
					return nil, err
				}
				secPerIter, err := timeEMIteration(ds, c.Seed)
				if err != nil {
					return nil, err
				}
				objects := ds.Net.NumObjects()
				rep.addf("%-10d %-10d %-6d %-14.6f", setting, objects, numObs, secPerIter)
				rep.set(fmt.Sprintf("s%d/objects=%d/nobs=%d", setting, objects, numObs), secPerIter)
			}
		}
	}
	return rep, nil
}

// timeEMIteration measures the wall time of one EM inner iteration (the
// bottleneck component per §5.4) by timing a fixed number of iterations.
func timeEMIteration(ds *datagen.Dataset, seed int64) (float64, error) {
	const iters = 10
	opts := core.DefaultOptions(ds.NumClusters)
	opts.OuterIters = 1
	opts.EMIters = iters
	opts.InitSeeds = 1
	opts.NewtonIters = 1
	opts.Seed = seed
	start := time.Now()
	if _, err := core.Fit(ds.Net, opts); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() / iters, nil
}

// Parallel reproduces the §5.4 parallel-EM measurement: EM wall time with
// 1, 2 and 4 worker goroutines on the largest weather network. The paper
// reports a 3.19× speedup on 4×2.13 GHz cores; on a single-core host the
// ratio collapses to ~1 (documented in EXPERIMENTS.md).
func Parallel(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("parallel", "Parallel EM wall time (Section 5.4)")
	ds, err := datagen.Weather(c.weatherConfig(1, 1000, 5, c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("%-10s %-14s %-10s", "workers", "sec/EM-iter", "speedup")
	var base float64
	for _, workers := range []int{1, 2, 4} {
		const iters = 10
		opts := core.DefaultOptions(ds.NumClusters)
		opts.OuterIters = 1
		opts.EMIters = iters
		opts.InitSeeds = 1
		opts.NewtonIters = 1
		opts.Parallelism = workers
		opts.Seed = c.Seed
		start := time.Now()
		if _, err := core.Fit(ds.Net, opts); err != nil {
			return nil, err
		}
		sec := time.Since(start).Seconds() / iters
		if workers == 1 {
			base = sec
		}
		speedup := base / sec
		rep.addf("%-10d %-14.6f %-10.2f", workers, sec, speedup)
		rep.set(fmt.Sprintf("workers=%d/sec", workers), sec)
		rep.set(fmt.Sprintf("workers=%d/speedup", workers), speedup)
	}
	return rep, nil
}
