package bench

import (
	"fmt"
	"sort"

	"genclus/internal/core"
	"genclus/internal/datagen"
	"genclus/internal/eval"
	"genclus/internal/mathx"
)

// accuracyFigure implements Figs. 5 and 6: NMI mean/std over cfg.Runs runs
// for the three text methods, sliced by object type.
func accuracyFigure(cfg Config, id, title string, gen func(seed int64) datagen.BiblioConfig, types []string) (*Report, error) {
	cfg = cfg.normalized()
	rep := newReport(id, title)
	series := make(map[string]map[string][]float64) // method → slice → values
	for _, m := range textMethods() {
		series[m.name] = make(map[string][]float64)
	}
	for run := 0; run < cfg.Runs; run++ {
		seed := cfg.runSeed(run)
		ds, err := datagen.Biblio(gen(cfg.Seed)) // fixed dataset, varying method seeds
		if err != nil {
			return nil, err
		}
		_ = seed
		for _, m := range textMethods() {
			labels, _, err := m.run(ds, cfg.runSeed(run))
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", m.name, run, err)
			}
			byType, err := nmiByType(ds, labels, types)
			if err != nil {
				return nil, err
			}
			for slice, v := range byType {
				series[m.name][slice] = append(series[m.name][slice], v)
			}
		}
	}
	slices := append([]string{"Overall"}, types...)
	header := fmt.Sprintf("%-14s", "method")
	for _, s := range slices {
		header += fmt.Sprintf("  %-18s", s)
	}
	rep.addf("%s", header)
	rep.addf("%s", "(each cell: NMI mean±std over "+fmt.Sprint(cfg.Runs)+" runs)")
	for _, m := range textMethods() {
		row := fmt.Sprintf("%-14s", m.name)
		for _, s := range slices {
			ms := eval.Summarize(series[m.name][s])
			row += fmt.Sprintf("  %.4f ± %.4f  ", ms.Mean, ms.Std)
			rep.set(m.name+"/"+s+"/mean", ms.Mean)
			rep.set(m.name+"/"+s+"/std", ms.Std)
		}
		rep.addf("%s", row)
	}
	return rep, nil
}

// Fig5 regenerates Fig. 5 (AC network accuracy).
func Fig5(cfg Config) (*Report, error) {
	c := cfg.normalized()
	return accuracyFigure(c, "fig5", "Clustering accuracy comparisons for AC network",
		func(seed int64) datagen.BiblioConfig { return c.acConfig(seed) },
		[]string{datagen.TypeConf, datagen.TypeAuthor})
}

// Fig6 regenerates Fig. 6 (ACP network accuracy).
func Fig6(cfg Config) (*Report, error) {
	c := cfg.normalized()
	return accuracyFigure(c, "fig6", "Clustering accuracy comparisons for ACP network",
		func(seed int64) datagen.BiblioConfig { return c.acpConfig(seed) },
		[]string{datagen.TypeConf, datagen.TypeAuthor, datagen.TypePaper})
}

// Table1 regenerates the case-study table: membership rows for archetypal
// objects after a GenClus fit on the AC network. Archetypes are picked by
// construction: one focused conference per area, the conference whose text
// spreads most evenly across areas (the "CIKM" of the synthetic corpus), a
// focused author and the author with the most even area spread (the
// "Christos Faloutsos" archetype).
func Table1(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("table1", "Case studies of cluster membership results")
	ds, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	res, err := core.Fit(ds.Net, genclusOptions(ds.NumClusters, c.Seed))
	if err != nil {
		return nil, err
	}

	// Entropy of each labeled conference's membership identifies the most
	// focused venue per area and the broadest venue overall.
	type scored struct {
		v       int
		id      string
		entropy float64
		area    int
	}
	var confs []scored
	for _, v := range ds.LabeledOfType(datagen.TypeConf) {
		confs = append(confs, scored{
			v: v, id: ds.Net.Object(v).ID,
			entropy: mathx.Entropy(res.Theta[v]),
			area:    ds.Labels[v],
		})
	}
	sort.Slice(confs, func(i, j int) bool { return confs[i].entropy < confs[j].entropy })

	rep.addf("%-22s %s", "object", thetaHeader(ds.NumClusters))
	seenArea := map[int]bool{}
	for _, sc := range confs {
		if seenArea[sc.area] {
			continue
		}
		seenArea[sc.area] = true
		rep.addf("%-22s %s   (focused venue, area %d)", sc.id, thetaRow(res.Theta[sc.v]), sc.area)
	}
	broad := confs[len(confs)-1]
	rep.addf("%-22s %s   (broad venue — CIKM archetype)", broad.id, thetaRow(res.Theta[broad.v]))
	rep.set("broadVenueEntropy", broad.entropy)
	rep.set("focusedVenueEntropy", confs[0].entropy)

	var authors []scored
	for _, v := range ds.LabeledOfType(datagen.TypeAuthor) {
		authors = append(authors, scored{v: v, id: ds.Net.Object(v).ID, entropy: mathx.Entropy(res.Theta[v])})
	}
	if len(authors) > 0 {
		sort.Slice(authors, func(i, j int) bool { return authors[i].entropy < authors[j].entropy })
		foc := authors[0]
		spread := authors[len(authors)-1]
		rep.addf("%-22s %s   (focused author)", foc.id, thetaRow(res.Theta[foc.v]))
		rep.addf("%-22s %s   (multi-area author — Faloutsos archetype)", spread.id, thetaRow(res.Theta[spread.v]))
		rep.set("focusedAuthorEntropy", foc.entropy)
		rep.set("spreadAuthorEntropy", spread.entropy)
	}
	return rep, nil
}

func thetaHeader(k int) string {
	s := ""
	for i := 0; i < k; i++ {
		s += fmt.Sprintf("  cluster%-2d", i)
	}
	return s
}

func thetaRow(theta []float64) string {
	s := ""
	for _, v := range theta {
		s += fmt.Sprintf("  %8.4f ", v)
	}
	return s
}

// linkPredTable implements Tables 2 and 3.
func linkPredTable(cfg Config, id, title, relation string, gen datagen.BiblioConfig) (*Report, error) {
	c := cfg.normalized()
	rep := newReport(id, title)
	ds, err := datagen.Biblio(gen)
	if err != nil {
		return nil, err
	}
	thetas := make(map[string][][]float64)
	for _, m := range textMethods() {
		_, theta, err := m.run(ds, c.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		thetas[m.name] = theta
	}
	rep.addf("%-14s %-12s %-12s %-12s", "similarity", "NetPLSA", "iTopicModel", "GenClus")
	for _, sim := range eval.Similarities() {
		row := fmt.Sprintf("%-14s", sim.Name)
		for _, m := range textMethods() {
			mapv, err := eval.LinkPredictionMAP(ds.Net, thetas[m.name], relation, sim)
			if err != nil {
				return nil, err
			}
			row += fmt.Sprintf(" %-12.4f", mapv)
			rep.set(m.name+"/"+sim.Name, mapv)
		}
		rep.addf("%s", row)
	}
	return rep, nil
}

// Table2 regenerates Table 2: <A,C> prediction on the AC network.
func Table2(cfg Config) (*Report, error) {
	c := cfg.normalized()
	return linkPredTable(c, "table2", "Prediction accuracy (MAP) for A-C relation in AC network",
		datagen.RelPublishIn, c.acConfig(c.Seed))
}

// Table3 regenerates Table 3: <P,C> prediction on the ACP network.
func Table3(cfg Config) (*Report, error) {
	c := cfg.normalized()
	return linkPredTable(c, "table3", "Prediction accuracy (MAP) for P-C relation in ACP network",
		datagen.RelPublishedByP, c.acpConfig(c.Seed))
}

// Fig9 regenerates Fig. 9: learned strengths on both DBLP-style networks.
func Fig9(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("fig9", "Strength for link types in the two four-area networks")

	acDS, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	acRes, err := core.Fit(acDS.Net, genclusOptions(acDS.NumClusters, c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("(a) AC network:")
	for _, rel := range []string{datagen.RelPublishIn, datagen.RelPublishedBy, datagen.RelCoauthor} {
		rep.addf("  gamma(%-14s) = %8.3f", rel, acRes.Gamma[rel])
		rep.set("AC/"+rel, acRes.Gamma[rel])
	}

	acpDS, err := datagen.Biblio(c.acpConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	acpRes, err := core.Fit(acpDS.Net, genclusOptions(acpDS.NumClusters, c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("(b) ACP network:")
	for _, rel := range []string{datagen.RelWrite, datagen.RelWrittenBy, datagen.RelPublishCP, datagen.RelPublishedByP} {
		rep.addf("  gamma(%-16s) = %8.3f", rel, acpRes.Gamma[rel])
		rep.set("ACP/"+rel, acpRes.Gamma[rel])
	}
	rep.addf("paper shape: gamma(publish_in) >> gamma(coauthor); gamma(written_by P->A) >> gamma(published_by P->C)")
	return rep, nil
}

// Fig10 regenerates the typical running case: per-iteration NMI for the C
// and A types and per-iteration strengths, on the AC network.
func Fig10(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("fig10", "A running case on AC network: iterations 0..10")
	ds, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	opts := genclusOptions(ds.NumClusters, c.Seed)
	opts.TrackHistory = true
	res, err := core.Fit(ds.Net, opts)
	if err != nil {
		return nil, err
	}
	rels := ds.Net.Relations()
	header := fmt.Sprintf("%-5s %-10s %-10s", "iter", "NMI(C)", "NMI(A)")
	for _, rel := range rels {
		header += fmt.Sprintf(" %-14s", "g("+rel+")")
	}
	rep.addf("%s", header)
	for _, snap := range res.History {
		pred := eval.HardLabels(snap.Theta)
		nmiC, err := eval.NMIOnSubset(ds.LabeledOfType(datagen.TypeConf), pred, ds.Labels)
		if err != nil {
			return nil, err
		}
		nmiA, err := eval.NMIOnSubset(ds.LabeledOfType(datagen.TypeAuthor), pred, ds.Labels)
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("%-5d %-10.4f %-10.4f", snap.Iter, nmiC, nmiA)
		for r := range rels {
			row += fmt.Sprintf(" %-14.3f", snap.Gamma[r])
		}
		rep.addf("%s", row)
		rep.set(fmt.Sprintf("iter%d/NMI(C)", snap.Iter), nmiC)
		rep.set(fmt.Sprintf("iter%d/NMI(A)", snap.Iter), nmiA)
	}
	return rep, nil
}

// AblationAsym compares the paper's asymmetric out-link propagation with the
// symmetrized variant, on clustering NMI and link prediction MAP (§3.3
// argues asymmetry helps prediction).
func AblationAsym(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("ablation-asym", "Asymmetric vs symmetrized membership propagation (AC network)")
	ds, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("%-22s %-10s %-14s", "variant", "NMI", "MAP(-H, <A,C>)")
	for _, symmetric := range []bool{false, true} {
		opts := genclusOptions(ds.NumClusters, c.Seed)
		opts.SymmetricPropagation = symmetric
		res, err := core.Fit(ds.Net, opts)
		if err != nil {
			return nil, err
		}
		byType, err := nmiByType(ds, res.HardLabels(), []string{datagen.TypeConf, datagen.TypeAuthor})
		if err != nil {
			return nil, err
		}
		sims := eval.Similarities()
		mapv, err := eval.LinkPredictionMAP(ds.Net, res.Theta, datagen.RelPublishIn, sims[2])
		if err != nil {
			return nil, err
		}
		name := "asymmetric (paper)"
		key := "asym"
		if symmetric {
			name = "symmetrized"
			key = "sym"
		}
		rep.addf("%-22s %-10.4f %-14.4f", name, byType["Overall"], mapv)
		rep.set(key+"/NMI", byType["Overall"])
		rep.set(key+"/MAP", mapv)
	}
	return rep, nil
}

// AblationGamma isolates the strength-learning contribution: learned gamma
// vs gamma frozen at 1 on the ACP network (where relation quality differs
// most: written_by is far more reliable than published_by).
func AblationGamma(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("ablation-gamma", "Learned gamma vs fixed gamma=1 (ACP network)")
	ds, err := datagen.Biblio(c.acpConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("%-18s %-10s %-10s %-10s %-10s", "variant", "Overall", "C", "A", "P")
	for _, learn := range []bool{true, false} {
		opts := genclusOptions(ds.NumClusters, c.Seed)
		opts.LearnGamma = learn
		res, err := core.Fit(ds.Net, opts)
		if err != nil {
			return nil, err
		}
		byType, err := nmiByType(ds, res.HardLabels(), []string{datagen.TypeConf, datagen.TypeAuthor, datagen.TypePaper})
		if err != nil {
			return nil, err
		}
		name, key := "learned (paper)", "learned"
		if !learn {
			name, key = "fixed gamma=1", "fixed"
		}
		rep.addf("%-18s %-10.4f %-10.4f %-10.4f %-10.4f",
			name, byType["Overall"], byType[datagen.TypeConf], byType[datagen.TypeAuthor], byType[datagen.TypePaper])
		rep.set(key+"/Overall", byType["Overall"])
	}
	return rep, nil
}

// AblationPrior sweeps the Gaussian prior sigma of Eq. 8.
func AblationPrior(cfg Config) (*Report, error) {
	c := cfg.normalized()
	rep := newReport("ablation-prior", "Sensitivity to the strength prior sigma (AC network)")
	ds, err := datagen.Biblio(c.acConfig(c.Seed))
	if err != nil {
		return nil, err
	}
	rep.addf("%-8s %-10s %-28s", "sigma", "NMI", "gamma(publish_in, coauthor)")
	for _, sigma := range []float64{0.01, 0.1, 1, 10} {
		opts := genclusOptions(ds.NumClusters, c.Seed)
		opts.PriorSigma = sigma
		res, err := core.Fit(ds.Net, opts)
		if err != nil {
			return nil, err
		}
		byType, err := nmiByType(ds, res.HardLabels(), []string{datagen.TypeConf, datagen.TypeAuthor})
		if err != nil {
			return nil, err
		}
		rep.addf("%-8.2f %-10.4f (%.3f, %.3f)", sigma, byType["Overall"],
			res.Gamma[datagen.RelPublishIn], res.Gamma[datagen.RelCoauthor])
		rep.set(fmt.Sprintf("sigma=%g/NMI", sigma), byType["Overall"])
		rep.set(fmt.Sprintf("sigma=%g/publish_in", sigma), res.Gamma[datagen.RelPublishIn])
	}
	return rep, nil
}
