package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"genclus/internal/core"
	"genclus/internal/snapshot"
	diskstore "genclus/internal/store"
)

// The model registry: every finished fit (and every imported snapshot)
// becomes an addressable model that outlives the job TTL. Models are the
// durable half of the service — with -data-dir they survive restarts and
// SIGKILL — and the warm-start substrate: a job submitted with
// warm_start_from_model seeds its fit from a registered model exactly as
// warm_start_from seeds it from a finished job, except the source never
// expires. The registry caps itself at Config.MaxModels, evicting the
// oldest snapshot (memory and disk) when a new registration overflows it.

// modelEntry is one registered model: the in-memory fitted state plus the
// identity and provenance the registry serves. The canonical snapshot bytes
// are not retained in memory — export re-reads the data dir or re-encodes
// (deterministically, so digest and bytes are stable either way).
type modelEntry struct {
	id      string
	model   *core.Model
	meta    map[string]string // snapshot meta (provenance; re-encoded verbatim)
	created time.Time
	digest  string // hex SHA-256 of the canonical snapshot bytes
	size    int64  // canonical snapshot length in bytes
	// precision is the snapshot's storage precision (wire flags for decoded
	// snapshots, the fit options for locally-registered ones) — re-encoding
	// must reproduce the same bytes, and listings serve it so operators can
	// audit mixed-precision registries.
	precision core.Precision

	jobID     string // source job, "" for imported models
	networkID string // source network, "" for imported models
}

// modelResponse is the registry's wire representation of one model.
type modelResponse struct {
	ID            string `json:"id"`
	K             int    `json:"k"`
	Objects       int    `json:"objects"`
	JobID         string `json:"job_id,omitempty"`
	NetworkID     string `json:"network_id,omitempty"`
	Created       string `json:"created"`
	Digest        string `json:"digest"`
	SizeBytes     int64  `json:"size_bytes"`
	OptionsDigest string `json:"options_digest,omitempty"`
	EMIterations  int    `json:"em_iterations"`
	// Precision is the snapshot's storage precision ("float64" or
	// "float32"), served on both the list and single-model responses.
	Precision string `json:"precision"`
}

// modelsResponse is the GET /v1/models body.
type modelsResponse struct {
	Models []modelResponse `json:"models"`
}

func (s *Server) modelResponse(e *modelEntry) modelResponse {
	return modelResponse{
		ID:            e.id,
		K:             e.model.K,
		Objects:       len(e.model.Theta),
		JobID:         e.jobID,
		NetworkID:     e.networkID,
		Created:       e.created.UTC().Format(time.RFC3339Nano),
		Digest:        e.digest,
		SizeBytes:     e.size,
		OptionsDigest: e.meta[metaOptionsDigest],
		EMIterations:  e.model.EMIterations,
		Precision:     snapshot.FormatPrecision(e.precision),
	}
}

// snapshot meta keys the daemon records at export time. The epsilon key
// (the fit's Θ floor, consumed by the assign engine) is owned by the
// snapshot package so the CLI's offline -assign mode reads the same
// convention: see snapshot.MetaEpsilon.
const (
	metaCreated       = "created"
	metaJobID         = "job_id"
	metaNetworkID     = "network_id"
	metaOptionsDigest = "options_digest"
	// metaNetworkGeneration is base-generation provenance: the source
	// network's mutation generation the fit ran against (0 for
	// never-mutated networks). Free-form meta — no codec change — so
	// older snapshots simply lack the key.
	metaNetworkGeneration = "network_generation"
)

// snapshotLimits derives the import trust-boundary caps from the server's
// upload configuration: a snapshot may not claim more objects, attributes
// or vocabulary than an uploaded network could, nor a K above the job cap.
func (s *Server) snapshotLimits() snapshot.Limits {
	lim := snapshot.DefaultLimits()
	lim.MaxObjects = s.cfg.Limits.MaxObjects
	lim.MaxK = s.cfg.MaxK
	lim.MaxAttributes = s.cfg.Limits.MaxAttributes
	lim.MaxVocab = s.cfg.Limits.MaxVocab
	return lim
}

// registerModel encodes the fitted model, registers it in memory, persists
// the snapshot when a data dir is configured, and applies the MaxModels
// eviction. Returns the new entry. A failed disk write degrades to
// memory-only registration (counted and logged via persistFailure) — the
// model stays addressable until the next restart rather than vanishing
// because a volume filled up.
func (s *Server) registerModel(m *core.Model, meta map[string]string, created time.Time, jobID, networkID string) (*modelEntry, error) {
	// The fit's storage precision travels in the meta (persistFinishedJob
	// records it); the wire flags follow it.
	prec := snapshot.PrecisionFromMeta(meta)
	data, err := snapshot.Encode(&snapshot.Snapshot{Model: m, Meta: meta, Precision: prec})
	if err != nil {
		return nil, err
	}
	e := &modelEntry{
		id:        newID("mdl"),
		model:     m,
		meta:      meta,
		created:   created,
		digest:    snapshot.DataDigest(data),
		size:      int64(len(data)),
		precision: prec,
		jobID:     jobID,
		networkID: networkID,
	}
	if s.blobs != nil {
		if err := s.blobs.Put(bucketModels, e.id, data); err != nil {
			s.persistFailure("persist model "+e.id, err)
		}
	}
	s.admitModel(e)
	return e, nil
}

// admitModel adds the entry to the registry and evicts overflow (memory,
// disk, and cached inference engine) beyond Config.MaxModels, oldest
// first.
func (s *Server) admitModel(e *modelEntry) {
	for _, old := range s.store.addModel(e, s.cfg.MaxModels) {
		if s.blobs != nil {
			_ = s.blobs.Delete(bucketModels, old.id)
		}
		s.dropEngine(old.digest)
	}
}

// exportBytes returns the canonical snapshot bytes for a registry entry:
// the persisted file when a data dir is configured (falling back to
// re-encoding if the file went missing), a fresh deterministic encoding
// otherwise.
func (s *Server) exportBytes(e *modelEntry) ([]byte, error) {
	if s.blobs != nil {
		data, err := s.blobs.Get(bucketModels, e.id)
		if err == nil {
			return data, nil
		}
		if !errors.Is(err, diskstore.ErrNotFound) {
			var ce *diskstore.CorruptError
			if !errors.As(err, &ce) {
				return nil, err
			}
		}
	}
	return snapshot.Encode(&snapshot.Snapshot{Model: e.model, Meta: e.meta, Precision: e.precision})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	entries := s.store.listModels()
	out := modelsResponse{Models: make([]modelResponse, 0, len(entries))}
	for _, e := range entries {
		out.Models = append(out.Models, s.modelResponse(e))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupModel(w http.ResponseWriter, r *http.Request) (*modelEntry, bool) {
	id := r.PathValue("id")
	e, ok := s.store.model(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", id)
		return nil, false
	}
	return e, true
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.modelResponse(e))
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.store.model(id)
	if !ok || !s.store.deleteModel(id) {
		writeError(w, http.StatusNotFound, "unknown model %q", id)
		return
	}
	// Drop the cached inference engine too (unless another registry entry
	// shares the snapshot digest) so a deleted model's memory is actually
	// released rather than pinned by the assign cache.
	s.dropEngine(e.digest)
	if s.blobs != nil {
		if err := s.blobs.Delete(bucketModels, id); err != nil && !errors.Is(err, diskstore.ErrNotFound) {
			// The registry entry is gone either way; surface the disk state
			// so an operator notices a sick volume.
			writeError(w, http.StatusInternalServerError, "model deleted from registry but not from disk: %v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleExportModel(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	data, err := s.exportBytes(e)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "export model: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.gcsnap", e.id))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleImportModel(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	snap, err := snapshot.Decode(data, s.snapshotLimits())
	if err != nil {
		code := http.StatusBadRequest
		var lim *snapshot.LimitError
		if errors.As(err, &lim) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	e := &modelEntry{
		id:        newID("mdl"),
		model:     snap.Model,
		meta:      snap.Meta,
		created:   s.cfg.now(),
		digest:    snapshot.DataDigest(data),
		size:      int64(len(data)),
		precision: snap.Precision,
		// job_id/network_id in the snapshot meta are provenance from the
		// exporting process; they do not name jobs on THIS server, so the
		// registry row leaves them blank and serves the meta digest only.
	}
	if s.blobs != nil {
		// Persist the uploaded bytes verbatim: the decoder only accepts
		// canonical encodings, so these are exactly the bytes a later
		// export must return.
		if err := s.blobs.Put(bucketModels, e.id, data); err != nil {
			writeError(w, http.StatusInternalServerError, "persist model: %v", err)
			return
		}
	}
	s.admitModel(e)
	writeJSON(w, http.StatusCreated, s.modelResponse(e))
}
