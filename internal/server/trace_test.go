package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"genclus/internal/trace"
)

// fetchTrace GETs one trace endpoint and decodes the traceResponse.
func fetchTrace(t *testing.T, ts *httptest.Server, path string) traceResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+path, nil)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, body)
	}
	var resp traceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// spansNamed filters a trace's spans by name, preserving order.
func spansNamed(tr traceResponse, name string) []traceSpanResponse {
	var out []traceSpanResponse
	for _, sp := range tr.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestJobTraceTimeline is the end-to-end fit-introspection contract: a fit
// submitted with a caller-supplied traceparent yields GET /v1/jobs/{id}/trace
// whose trace id matches the caller's, containing the queue-wait span, a
// fit.init span, per-outer-iteration spans with monotone non-decreasing
// objective values (gamma frozen so EM's ascent guarantee holds end to end),
// and the persist span.
func TestJobTraceTimeline(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 20, 3)
	netID := uploadNetwork(t, ts, network)

	parent := trace.NewSpanContext()
	opts := quickOpts(11, 1)
	learn := false
	opts.LearnGamma = &learn
	payload, _ := json.Marshal(jobRequest{NetworkID: netID, K: 2, Options: opts})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent.Traceparent())
	hr, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", hr.StatusCode, body)
	}
	var jr jobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	wantTrace := parent.TraceID.String()
	if jr.TraceID != wantTrace {
		t.Fatalf("job trace_id %q, want the caller's trace id %q", jr.TraceID, wantTrace)
	}

	waitForState(t, ts, jr.ID, jobDone)
	tr := fetchTrace(t, ts, "/v1/jobs/"+jr.ID+"/trace")
	if tr.TraceID != wantTrace {
		t.Fatalf("trace id %q, want caller's %q", tr.TraceID, wantTrace)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "job.fit" {
		t.Fatalf("first span %+v, want the job.fit root", tr.Spans)
	}
	root := tr.Spans[0]
	if root.End == "" {
		t.Error("terminal job's root span still open")
	}
	if st, _ := root.Attrs["state"].(string); st != string(jobDone) {
		t.Errorf("root state attr %v, want %q", root.Attrs["state"], jobDone)
	}
	if len(spansNamed(tr, "job.queue_wait")) != 1 {
		t.Error("missing job.queue_wait span")
	}
	if len(spansNamed(tr, "fit.init")) != 1 {
		t.Error("missing fit.init span")
	}
	if len(spansNamed(tr, "job.persist")) != 1 {
		t.Error("missing job.persist span")
	}
	iters := spansNamed(tr, "fit.outer_iteration")
	if len(iters) == 0 {
		t.Fatal("no fit.outer_iteration spans")
	}
	prev := -1e300
	for i, sp := range iters {
		obj, ok := sp.Attrs["objective"].(float64)
		if !ok {
			t.Fatalf("iteration %d: objective attr %v (%T)", i, sp.Attrs["objective"], sp.Attrs["objective"])
		}
		// Gamma is frozen (learn_gamma=false), so each outer iteration is a
		// pure EM continuation and the objective may never decrease.
		if obj < prev-1e-9 {
			t.Errorf("objective decreased at outer iteration %d: %v -> %v", i, prev, obj)
		}
		prev = obj
		if em, ok := sp.Attrs["em_iterations"].(float64); !ok || em < 1 {
			t.Errorf("iteration %d: em_iterations attr %v", i, sp.Attrs["em_iterations"])
		}
		if sp.ParentSpanID != root.SpanID {
			t.Errorf("iteration %d parented to %q, want root %q", i, sp.ParentSpanID, root.SpanID)
		}
	}

	// The same trace resolves by id from the ring once the fit completed.
	byID := fetchTrace(t, ts, "/v1/traces/"+wantTrace)
	if byID.TraceID != wantTrace || len(spansNamed(byID, "fit.outer_iteration")) == 0 {
		t.Fatalf("/v1/traces/{id} lookup: %+v", byID)
	}
}

// TestTraceEndpoints covers the ring surface: listing newest-first with
// ?limit, 400 on malformed ids, 404 on evicted/unknown ids.
func TestTraceEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	// A couple of plain requests populate the ring with request traces.
	for i := 0; i < 3; i++ {
		if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil); code != http.StatusOK {
			t.Fatal("healthz failed")
		}
	}

	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces?limit=2", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, body)
	}
	var list traceListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list.Traces))
	}
	for _, tr := range list.Traces {
		if len(tr.TraceID) != 32 || len(tr.Spans) == 0 {
			t.Fatalf("malformed trace in listing: %+v", tr)
		}
	}
	// Newest first: the listing request itself cannot be in its own response
	// (it completes after the snapshot), so the head is the last healthz.
	if name := list.Traces[0].Spans[0].Name; name != "GET /healthz" {
		t.Errorf("newest trace root %q, want the last healthz request", name)
	}

	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces?limit=x", nil); code != http.StatusBadRequest {
		t.Errorf("limit=x: status %d, want 400", code)
	}
	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces/not-hex", nil); code != http.StatusBadRequest {
		t.Errorf("malformed id: status %d, want 400", code)
	}
	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces/"+strings.Repeat("ab", 16), nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.RequestID) != 32 {
		t.Errorf("404 request_id %q, want 32-hex trace id", er.RequestID)
	}
}

// TestTraceRingBound checks Config.MaxTraces caps the retained ring.
func TestTraceRingBound(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxTraces: 4})
	for i := 0; i < 10; i++ {
		doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	}
	_, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces", nil)
	var list traceListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 4 {
		t.Fatalf("ring holds %d traces, want MaxTraces=4", len(list.Traces))
	}
}

// TestRequestIDInErrorBodies pins satellite coverage beyond the 429/403
// asserts elsewhere: a plain 404 carries the request_id, and a
// caller-supplied traceparent is what comes back.
func TestRequestIDInErrorBodies(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	parent := trace.NewSpanContext()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/j-missing", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent.Traceparent())
	hr, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", hr.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if want := parent.TraceID.String(); er.RequestID != want {
		t.Fatalf("request_id %q, want the caller's trace id %q", er.RequestID, want)
	}
}

// syncBuffer is an io.Writer safe for concurrent slog handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowRequestWarnPromotion sets the slow threshold to one nanosecond so
// every request counts as slow, and checks the request log line is promoted
// to Warn with slow=true and the trace id in the req field.
func TestSlowRequestWarnPromotion(t *testing.T) {
	var logs syncBuffer
	_, ts := testServer(t, Config{
		Workers:   1,
		TraceSlow: time.Nanosecond,
		Logger:    slog.New(slog.NewJSONHandler(&logs, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	parent := trace.NewSpanContext()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", parent.Traceparent())
	if hr, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}

	var found bool
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "http request" {
			continue
		}
		found = true
		if rec["level"] != "WARN" {
			t.Errorf("slow request logged at %v, want WARN", rec["level"])
		}
		if rec["slow"] != true {
			t.Errorf("slow=%v, want true", rec["slow"])
		}
		if rec["req"] != parent.TraceID.String() {
			t.Errorf("req=%v, want trace id %s", rec["req"], parent.TraceID)
		}
	}
	if !found {
		t.Fatalf("no http-request Warn line captured:\n%s", logs.String())
	}
}

// TestSupervisorDecisionTrace checks auto-refit introspection: a mutation
// burst that trips the supervisor leaves a supervisor.decision trace in the
// ring whose refit job continues the same trace id.
func TestSupervisorDecisionTrace(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers:                  1,
		SupervisorMaxPending:     1 << 20,
		SupervisorDriftThreshold: 0.5,
		SupervisorInterval:       10 * time.Millisecond,
	})
	network, _ := testNetworkJSON(t, 10, 5)
	netID := uploadNetwork(t, ts, network)
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(3, 1)})
	waitForState(t, ts, jobID, jobDone)

	// A brand-new linkless object the model has never seen: maximal drift,
	// so the next evaluation tick decides to refit.
	if code, resp := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"alien","type":"doc","terms":{"text":[{"t":19,"c":5}]}}]}`); code != http.StatusOK {
		t.Fatalf("mutate: %d: %+v", code, resp)
	}

	var decision traceResponse
	waitFor(t, 30*time.Second, func() bool {
		_, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces", nil)
		var list traceListResponse
		if err := json.Unmarshal(body, &list); err != nil {
			return false
		}
		for _, tr := range list.Traces {
			if len(tr.Spans) > 0 && tr.Spans[0].Name == "supervisor.decision" {
				if r, _ := tr.Spans[0].Attrs["reason"].(string); r != "" && r != "none" {
					decision = tr
					return true
				}
			}
		}
		return false
	})

	root := decision.Spans[0]
	if root.Attrs["network"] != netID {
		t.Errorf("decision network attr %v, want %s", root.Attrs["network"], netID)
	}
	if len(spansNamed(decision, "supervisor.drift")) != 1 {
		t.Errorf("decision trace missing supervisor.drift span: %+v", decision.Spans)
	}

	// The triggered refit's job trace continues the decision's trace id.
	waitFor(t, 30*time.Second, func() bool {
		_, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/traces", nil)
		var list traceListResponse
		if err := json.Unmarshal(body, &list); err != nil {
			return false
		}
		for _, tr := range list.Traces {
			if tr.TraceID != decision.TraceID || len(tr.Spans) == 0 {
				continue
			}
			sp := tr.Spans[0]
			if sp.Name == "job.fit" {
				if trg, _ := sp.Attrs["trigger"].(string); trg == "" {
					t.Fatalf("refit trace lacks trigger attr: %+v", sp.Attrs)
				}
				return true
			}
		}
		return false
	})
}
