package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"genclus/internal/infer"
	"genclus/internal/metrics"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", code, body)
	}
	return string(body)
}

func fetchHealth(t *testing.T, ts *httptest.Server) healthResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMetricsEndpoint drives a fit and an assign, then checks that GET
// /metrics serves the Prometheus text format with the fit, assign, cache,
// persistence, and HTTP families populated.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	modelID, res := assignFixture(t, ts)

	obj := res.Objects[0]
	req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: "q0", Links: []infer.LinkDoc{{Relation: "cites", To: obj.ID, Weight: 1}}}}}
	if code, body := postAssign(t, ts, modelID, req); code != http.StatusOK {
		t.Fatalf("assign: %d: %s", code, body)
	}

	hr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(hr.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE genclus_fit_jobs_total counter",
		`genclus_fit_jobs_total{state="done"} 1`,
		"genclus_fit_em_iterations_count 1",
		"genclus_fit_queue_wait_seconds_count 1",
		"genclus_fit_run_seconds_count 1",
		"genclus_assign_requests_total 1",
		"genclus_assign_objects_total 1",
		"genclus_assign_engine_passes_total 1",
		"genclus_assign_engine_cache_misses_total 1",
		"genclus_assign_pass_seconds_count 1",
		"genclus_assign_pass_occupancy_count 1",
		"genclus_assign_queue_depth 0",
		"genclus_assign_in_flight 0",
		"genclus_persist_failures_total 0",
		"genclus_models 1",
		`genclus_jobs{state="done"} 1`,
		"# TYPE genclus_http_request_duration_seconds histogram",
		`route="POST /v1/models/{id}/assign"`,
		`genclus_http_requests_total{route="POST /v1/jobs",code="202"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", out)
	}
}

// healthzMetricNames pins the /healthz counter → /metrics name mapping the
// parity lint enforces. Adding a counter to the healthz payload without a
// /metrics counterpart (and a row here) fails TestHealthzMetricsParity.
var healthzMetricNames = map[string]string{
	"networks":                   "genclus_networks",
	"models":                     "genclus_models",
	"jobs":                       "genclus_jobs",
	"persist_failures":           "genclus_persist_failures_total",
	"assign.requests":            "genclus_assign_requests_total",
	"assign.objects":             "genclus_assign_objects_total",
	"assign.batched_requests":    "genclus_assign_batched_requests_total",
	"assign.engine_passes":       "genclus_assign_engine_passes_total",
	"assign.engine_cache_hits":   "genclus_assign_engine_cache_hits_total",
	"assign.engine_cache_misses": "genclus_assign_engine_cache_misses_total",
	"assign.shed_requests":       "genclus_assign_shed_total",

	"mutation.mutations":        "genclus_network_mutations_total",
	"mutation.delta_log_depth":  "genclus_deltalog_depth",
	"mutation.supervisors":      "genclus_supervisors",
	"mutation.drift_score":      "genclus_supervisor_drift_score",
	"mutation.refits_triggered": "genclus_supervisor_refits_triggered_total",
	"mutation.refits_succeeded": "genclus_supervisor_refits_succeeded_total",
	"mutation.refits_failed":    "genclus_supervisor_refits_failed_total",

	"replication.lag_seconds":    "genclus_replica_lag_seconds",
	"replication.syncs":          "genclus_replica_syncs_total",
	"replication.sync_errors":    "genclus_replica_sync_errors_total",
	"replication.models_synced":  "genclus_replica_models_synced_total",
	"replication.models_deleted": "genclus_replica_models_deleted_total",

	"runtime.goroutines":             "genclus_goroutines",
	"runtime.heap_alloc_bytes":       "genclus_heap_alloc_bytes",
	"runtime.gc_pause_total_seconds": "genclus_gc_pause_total_seconds",
	"runtime.gc_cycles":              "genclus_gc_cycles_total",
}

// healthzNonCounters are healthz fields that are liveness/config metadata,
// not counters — exempt from the parity requirement.
var healthzNonCounters = map[string]bool{
	"status":         true,
	"uptime_seconds": true,
	"workers":        true,

	// Replication identity/diagnostic fields: role metadata and the last
	// error message, not counters.
	"replication.active":               true,
	"replication.primary":              true,
	"replication.consecutive_failures": true,
	"replication.last_sync":            true,
	"replication.last_error":           true,
}

// TestHealthzMetricsParity is the parity lint: every counter surfaced on
// /healthz must have a pinned /metrics counterpart, and every pinned name
// must actually appear on a fresh server's scrape (instruments are
// pre-created, not born on first increment).
func TestHealthzMetricsParity(t *testing.T) {
	var fields []string
	collect := func(prefix string, typ reflect.Type) {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" || tag == "-" {
				continue
			}
			if f.Type == reflect.TypeOf(assignStatsResponse{}) {
				continue // flattened below under "assign."
			}
			if f.Type == reflect.TypeOf(mutationStatsResponse{}) {
				continue // flattened below under "mutation."
			}
			if f.Type == reflect.TypeOf(replicationStatsResponse{}) {
				continue // flattened below under "replication."
			}
			if f.Type == reflect.TypeOf(runtimeStatsResponse{}) {
				continue // flattened below under "runtime."
			}
			fields = append(fields, prefix+tag)
		}
	}
	collect("", reflect.TypeOf(healthResponse{}))
	collect("assign.", reflect.TypeOf(assignStatsResponse{}))
	collect("mutation.", reflect.TypeOf(mutationStatsResponse{}))
	collect("replication.", reflect.TypeOf(replicationStatsResponse{}))
	collect("runtime.", reflect.TypeOf(runtimeStatsResponse{}))

	for _, f := range fields {
		if healthzNonCounters[f] {
			continue
		}
		if _, ok := healthzMetricNames[f]; !ok {
			t.Errorf("healthz field %q has no pinned /metrics counterpart; add the metric and a healthzMetricNames row", f)
		}
	}
	for f := range healthzMetricNames {
		found := false
		for _, have := range fields {
			if have == f {
				found = true
			}
		}
		if !found {
			t.Errorf("healthzMetricNames pins %q, which is no longer a healthz field", f)
		}
	}

	_, ts := testServer(t, Config{Workers: 1})
	out := scrapeMetrics(t, ts)
	for field, metric := range healthzMetricNames {
		// Name must appear as a series or TYPE line even before any
		// increment (pre-created instruments).
		if !strings.Contains(out, "# TYPE "+metric+" ") {
			t.Errorf("healthz %q: metric %s absent from a fresh scrape", field, metric)
		}
	}
}

// blockedPassServer builds a server whose engine passes block until the
// returned release func is called; entered receives one token per pass
// start. The hook is installed before the listener starts accepting, so
// its write is ordered before any handler goroutine reads it.
func blockedPassServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, func()) {
	t.Helper()
	entered := make(chan struct{}, 64)
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	t.Cleanup(release)
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.assignPassHook = func() {
		entered <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, entered, release
}

// singleLinkAssign posts a one-object assign request and returns status +
// body.
func singleLinkAssign(t *testing.T, ts *httptest.Server, modelID, targetID, qid string) (int, []byte) {
	t.Helper()
	req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: qid, Links: []infer.LinkDoc{{Relation: "cites", To: targetID, Weight: 1}}}}}
	payload, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("assign %s: %v", qid, err)
	}
	defer hr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(hr.Body); err != nil {
		t.Fatal(err)
	}
	return hr.StatusCode, buf.Bytes()
}

// assertOverloaded checks the typed 429 contract: code "overloaded" in the
// body and a positive Retry-After header.
func assertOverloaded(t *testing.T, code int, body []byte, header http.Header) {
	t.Helper()
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", code, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("429 body not JSON: %s", body)
	}
	if er.Code != codeOverloaded {
		t.Fatalf("429 code %q, want %q (%s)", er.Code, codeOverloaded, body)
	}
	if len(er.RequestID) != 32 {
		t.Fatalf("429 request_id %q, want the 32-hex trace id (%s)", er.RequestID, body)
	}
	if header != nil && header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// TestAssignOverloadQueueFull saturates one model's assign queue behind a
// blocked engine pass and checks the full shedding contract: typed 429s
// with Retry-After past the cap, the shed counter visible on /healthz and
// /metrics, full recovery once the pass drains, and no leaked goroutines.
func TestAssignOverloadQueueFull(t *testing.T) {
	const maxQueue = 4
	s, ts, entered, release := blockedPassServer(t, Config{
		Workers:           1,
		AssignBatchWindow: -1, // no coalescing window; queueing still happens behind the blocked pass
		MaxAssignBatch:    4,
		MaxAssignQueue:    maxQueue,
	})
	modelID, res := assignFixture(t, ts)
	target := res.Objects[0].ID
	baseline := runtime.NumGoroutine()

	// Leader request enters the engine pass and blocks there.
	leaderDone := make(chan int, 1)
	go func() {
		code, _ := singleLinkAssign(t, ts, modelID, target, "leader")
		leaderDone <- code
	}()
	<-entered

	// Fill the queue to exactly the cap behind the blocked leader.
	var wg sync.WaitGroup
	queuedCodes := make([]int, maxQueue)
	for i := 0; i < maxQueue; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queuedCodes[i], _ = singleLinkAssign(t, ts, modelID, target, fmt.Sprintf("q%d", i))
		}(i)
	}
	entry, ok := s.store.model(modelID)
	if !ok {
		t.Fatal("model vanished")
	}
	waitFor(t, 10*time.Second, func() bool {
		s.assignCache.mu.Lock()
		d := s.assignCache.entries[entry.digest]
		s.assignCache.mu.Unlock()
		if d == nil {
			return false
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.queued == maxQueue
	})

	// One more query object must be shed, typed.
	req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: "shed", Links: []infer.LinkDoc{{Relation: "cites", To: target, Weight: 1}}}}}
	payload, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hr.Body)
	hr.Body.Close()
	assertOverloaded(t, hr.StatusCode, buf.Bytes(), hr.Header)

	if shed := fetchHealth(t, ts).Assign.ShedRequests; shed != 1 {
		t.Fatalf("healthz shed_requests = %d, want 1", shed)
	}
	if out := scrapeMetrics(t, ts); !strings.Contains(out, `genclus_assign_shed_total{reason="queue_full"} 1`) {
		t.Fatalf("shed counter missing from /metrics:\n%s", out)
	}

	// Drain: everything queued (and the leader) completes, and the model
	// serves fresh traffic again.
	release()
	wg.Wait()
	if code := <-leaderDone; code != http.StatusOK {
		t.Fatalf("leader finished %d, want 200", code)
	}
	for i, code := range queuedCodes {
		if code != http.StatusOK {
			t.Fatalf("queued request %d finished %d, want 200", i, code)
		}
	}
	if code, body := singleLinkAssign(t, ts, modelID, target, "recovered"); code != http.StatusOK {
		t.Fatalf("post-drain assign: %d: %s", code, body)
	}
	if shed := fetchHealth(t, ts).Assign.ShedRequests; shed != 1 {
		t.Fatalf("shed_requests moved to %d after recovery, want still 1", shed)
	}

	// The queue-depth gauge returns to zero and no goroutine outlives its
	// request.
	waitFor(t, 10*time.Second, func() bool {
		return strings.Contains(scrapeMetrics(t, ts), "genclus_assign_queue_depth 0")
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		ts.Client().CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after overload: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAssignOverloadInFlightCap holds one request inside its engine pass
// and checks the global in-flight cap sheds the next one with the in_flight
// reason, recovering after release.
func TestAssignOverloadInFlightCap(t *testing.T) {
	_, ts, entered, release := blockedPassServer(t, Config{
		Workers:           1,
		AssignBatchWindow: -1,
		MaxAssignInFlight: 1,
	})
	modelID, res := assignFixture(t, ts)
	target := res.Objects[0].ID

	firstDone := make(chan int, 1)
	go func() {
		code, _ := singleLinkAssign(t, ts, modelID, target, "held")
		firstDone <- code
	}()
	<-entered

	req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: "over", Links: []infer.LinkDoc{{Relation: "cites", To: target, Weight: 1}}}}}
	payload, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hr.Body)
	hr.Body.Close()
	assertOverloaded(t, hr.StatusCode, buf.Bytes(), hr.Header)
	if out := scrapeMetrics(t, ts); !strings.Contains(out, `genclus_assign_shed_total{reason="in_flight"} 1`) {
		t.Fatal("in_flight shed not counted on /metrics")
	}

	release()
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("held request finished %d, want 200", code)
	}
	if code, _ := singleLinkAssign(t, ts, modelID, target, "after"); code != http.StatusOK {
		t.Fatalf("post-release assign: %d", code)
	}
}

// TestAssignRateLimit drives the token bucket on a fake clock: the burst
// is admitted, the next request is shed with rate_limit, and a one-second
// clock advance readmits.
func TestAssignRateLimit(t *testing.T) {
	var mu sync.Mutex
	base := time.Now()
	offset := time.Duration(0)
	cfg := Config{
		Workers:           1,
		AssignBatchWindow: -1,
		AssignRPS:         1,
		AssignBurst:       1,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return base.Add(offset)
		},
	}
	_, ts := testServer(t, cfg)
	modelID, res := assignFixture(t, ts)
	target := res.Objects[0].ID

	if code, body := singleLinkAssign(t, ts, modelID, target, "first"); code != http.StatusOK {
		t.Fatalf("first admitted request: %d: %s", code, body)
	}
	req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: "limited", Links: []infer.LinkDoc{{Relation: "cites", To: target, Weight: 1}}}}}
	payload, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hr.Body)
	hr.Body.Close()
	assertOverloaded(t, hr.StatusCode, buf.Bytes(), hr.Header)
	if out := scrapeMetrics(t, ts); !strings.Contains(out, `genclus_assign_shed_total{reason="rate_limit"} 1`) {
		t.Fatal("rate_limit shed not counted on /metrics")
	}

	mu.Lock()
	offset += time.Second
	mu.Unlock()
	if code, body := singleLinkAssign(t, ts, modelID, target, "refilled"); code != http.StatusOK {
		t.Fatalf("request after refill: %d: %s", code, body)
	}
}

// TestHealthzSnapshotConsistency hammers assign while concurrently polling
// /healthz and asserts every observed snapshot satisfies the monotone
// invariants a consistent read guarantees — independently-loaded atomics
// used to allow batched_requests > requests mid-pass.
func TestHealthzSnapshotConsistency(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, AssignBatchWindow: time.Millisecond})
	modelID, res := assignFixture(t, ts)
	target := res.Objects[0].ID

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are tolerated here (the loop may straddle
				// teardown); the test's subject is the poller below.
				req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: fmt.Sprintf("w%dq%d", w, i), Links: []infer.LinkDoc{{Relation: "cites", To: target, Weight: 1}}}}}
				payload, _ := json.Marshal(req)
				hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
				if err == nil {
					io.Copy(io.Discard, hr.Body)
					hr.Body.Close()
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		a := fetchHealth(t, ts).Assign
		if a.BatchedRequests > a.Requests {
			t.Errorf("torn snapshot: batched_requests %d > requests %d", a.BatchedRequests, a.Requests)
		}
		if a.Requests > a.Objects {
			t.Errorf("torn snapshot: requests %d > objects %d (every request has ≥1 object)", a.Requests, a.Objects)
		}
		if a.EnginePasses > a.Requests {
			t.Errorf("torn snapshot: engine_passes %d > requests %d", a.EnginePasses, a.Requests)
		}
	}
	close(stop)
	wg.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
