package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"genclus/internal/core"
	"genclus/internal/eval"
	"genclus/internal/hin"
	"genclus/internal/trace"
)

// jobState is the lifecycle of a fit job.
type jobState string

const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// resultMetrics are the eval quality scores computed against the optional
// ground truth submitted with the job.
type resultMetrics struct {
	NMI     float64 `json:"nmi"`
	ARI     float64 `json:"ari"`
	Purity  float64 `json:"purity"`
	Labeled int     `json:"labeled_objects"`
}

// objectInfo pins an object's identity at job completion so results stay
// servable after the source network is evicted.
type objectInfo struct {
	ID   string
	Type string
}

// job is one queued fit. Mutable fields are guarded by mu; the header
// fields (id, networkID, opts, truth, created) are set before the job is
// published and only written once more, under mu, when finish releases the
// opts warm-start payloads (run reads opts strictly before any finish can
// run, so the two never race).
type job struct {
	id        string
	networkID string
	opts      core.Options
	truth     []int // dense-index ground truth, -1 = unlabeled; nil when absent
	created   time.Time
	// generation is the network's mutation generation captured at submit —
	// the base-generation provenance recorded on the fitted model's
	// snapshot meta (0 for never-mutated networks). net pins the exact
	// view of that generation: mutations applied between submit and run
	// must not leak into the fit, or the recorded provenance would lie
	// and warm-start refits would stop being reproducible. Released (under
	// mu) when the job finishes, so a finished job does not pin a whole
	// network view for its TTL.
	generation int
	net        *hin.Network
	// span is the fit's trace root, opened at submit (parented to the
	// submitting request's span, or to the supervisor decision that
	// triggered the refit) and ended by finish. The worker hangs queue-wait,
	// per-outer-iteration and persist spans off it. Nil for jobs recovered
	// from disk — traces do not survive restarts — and every use is
	// nil-safe. Immutable after the job is published.
	span *trace.Span

	mu       sync.Mutex
	state    jobState
	progress core.Progress
	errMsg   string
	result   *core.Model
	objects  []objectInfo
	// modelID names the registry model this job's fitted state was
	// published as (set just before the done transition; also restored by
	// recovery).
	modelID string
	// subs are live progress subscriptions (the SSE events endpoint). Each
	// channel has capacity 1 with drop-oldest delivery: a slow consumer
	// only ever misses intermediate progress, never the latest.
	subs     map[chan core.Progress]struct{}
	metrics  *resultMetrics
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	// cancelRequested blocks the queued→running transition so a cancel
	// that lands between queue-pop and fit start cannot leak a fit.
	cancelRequested bool
	// done closes when the job reaches a terminal state; tests and
	// graceful shutdown wait on it.
	done chan struct{}
}

// jobSnapshot is a consistent copy of a job's mutable state.
type jobSnapshot struct {
	state             jobState
	progress          core.Progress
	errMsg            string
	result            *core.Model
	objects           []objectInfo
	modelID           string
	metrics           *resultMetrics
	started, finished time.Time
}

func (s jobSnapshot) terminal() bool {
	return s.state == jobDone || s.state == jobFailed || s.state == jobCancelled
}

func (j *job) snapshot() jobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobSnapshot{
		state:    j.state,
		progress: j.progress,
		errMsg:   j.errMsg,
		result:   j.result,
		objects:  j.objects,
		modelID:  j.modelID,
		metrics:  j.metrics,
		started:  j.started,
		finished: j.finished,
	}
}

// setModelID records the registry model the job's result was published as.
func (j *job) setModelID(id string) {
	j.mu.Lock()
	j.modelID = id
	j.mu.Unlock()
}

// subscribe registers a progress subscription; the caller must
// unsubscribe when done. Terminal transitions are observed via job.done,
// not the channel.
func (j *job) subscribe() chan core.Progress {
	ch := make(chan core.Progress, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan core.Progress]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan core.Progress) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publishProgress records the latest progress and fans it out to
// subscribers without ever blocking the fitting goroutine. Under j.mu this
// is the only sender to each capacity-1 channel, so draining a stale value
// first guarantees the send lands: a slow consumer misses intermediate
// reports, never the latest.
func (j *job) publishProgress(p core.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = p
	for ch := range j.subs {
		select {
		case <-ch:
		default:
		}
		ch <- p
	}
}

// finish transitions the job to a terminal state (idempotent: the first
// terminal transition wins) and releases waiters. It reports whether THIS
// call performed the transition, so exactly one caller accounts the
// terminal state even when a cancel races a worker.
func (j *job) finish(state jobState, errMsg string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == jobDone || j.state == jobFailed || j.state == jobCancelled {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	// Drop warm-start payloads: a warm-started job's options carry a full
	// |V|×K InitTheta (plus attribute models), which would otherwise sit on
	// the finished job until TTL eviction. The fit holds its own copy. The
	// pinned network view goes for the same reason.
	j.opts.InitTheta = nil
	j.opts.InitGamma = nil
	j.opts.InitAttrs = nil
	j.net = nil
	// The trace root ends with the job: ending it here — the single
	// terminal-transition point — covers worker completion, pre-start
	// cancellation and shutdown alike, and completes the trace into the
	// recorder's ring.
	j.span.SetAttr("state", string(state))
	if errMsg != "" {
		j.span.SetAttr("error", errMsg)
	}
	j.span.End(now)
	close(j.done)
	return true
}

// errQueueFull rejects submissions when the bounded queue has no room.
var errQueueFull = errors.New("job queue is full")

// manager runs the bounded worker pool that drains the job queue.
type manager struct {
	store   *store
	queue   chan *job
	workers int
	now     func() time.Time
	// onDone, when set, runs on the worker goroutine after a successful
	// fit's state is recorded on the job but before the done transition is
	// published — the server hooks model registration and persistence here,
	// so "done" already implies "durable".
	onDone func(j *job, finished time.Time)
	// met and log, when set by the server, receive per-job observability:
	// queue-wait and run-time histograms, terminal-state counters, EM
	// iteration counts, and structured start/finish lines keyed by job ID.
	met *serverMetrics
	log *slog.Logger

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
}

func newManager(st *store, workers, depth int, now func() time.Time) *manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &manager{
		store:   st,
		queue:   make(chan *job, depth),
		workers: workers,
		now:     now,
		ctx:     ctx,
		stop:    cancel,
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// submit enqueues the job without blocking; a full queue is the caller's
// backpressure signal.
func (m *manager) submit(j *job) error {
	select {
	case m.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// cancelJob requests cancellation. A queued job terminates immediately; a
// running one is interrupted via its fit context and terminates when the
// fit notices (between EM iterations).
func (m *manager) cancelJob(j *job) {
	j.mu.Lock()
	j.cancelRequested = true
	cancel := j.cancel
	queued := j.state == jobQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if queued && j.finish(jobCancelled, "cancelled before start", m.now()) {
		m.countTerminal(j, jobCancelled, "cancelled before start")
	}
}

// close stops the workers and aborts any running fits, waiting for all
// worker goroutines to exit, then fails over any jobs still queued so no
// waiter on job.done blocks forever.
func (m *manager) close() {
	m.stop()
	m.wg.Wait()
	for {
		select {
		case j := <-m.queue:
			if j.finish(jobCancelled, "server shutting down", m.now()) {
				m.countTerminal(j, jobCancelled, "server shutting down")
			}
		default:
			return
		}
	}
}

// countTerminal accounts one terminal transition this caller performed —
// the state counter plus a structured log line keyed by job ID. Callers
// that know the job ran also observe run time via observeRun.
func (m *manager) countTerminal(j *job, state jobState, errMsg string) {
	if m.met != nil {
		if c, ok := m.met.fitJobs[state]; ok {
			c.Inc()
		}
	}
	if m.log != nil {
		level := slog.LevelInfo
		if state == jobFailed {
			level = slog.LevelWarn
		}
		m.log.LogAttrs(context.Background(), level, "job finished",
			slog.String("job", j.id),
			slog.String("state", string(state)),
			slog.String("error", errMsg),
		)
	}
}

func (m *manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

func (m *manager) run(j *job) {
	// A panicking fit must take down the job, not the daemon: jobs carry
	// untrusted networks and options, and the worker goroutine has no
	// other recover between it and the process.
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("fit panicked: %v", r)
			if j.finish(jobFailed, msg, m.now()) {
				m.countTerminal(j, jobFailed, msg)
			}
		}
	}()
	jctx, cancel := context.WithCancel(m.ctx)
	defer cancel()

	j.mu.Lock()
	if j.state != jobQueued || j.cancelRequested { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = jobRunning
	j.started = m.now()
	started := j.started
	j.cancel = cancel
	pinned := j.net
	j.mu.Unlock()
	j.span.Record("job.queue_wait", j.created, started)
	if m.met != nil {
		m.met.fitQueueWait.Observe(started.Sub(j.created).Seconds())
	}
	if m.log != nil {
		m.log.LogAttrs(context.Background(), slog.LevelInfo, "job started",
			slog.String("job", j.id),
			slog.String("network", j.networkID),
			slog.Duration("queue_wait", started.Sub(j.created)),
		)
	}
	// finishRun settles a job this worker actually started: the terminal
	// transition plus run-time observation (metrics only count a
	// transition this call performed — a racing cancel already counted).
	finishRun := func(state jobState, errMsg string, finished time.Time) {
		if !j.finish(state, errMsg, finished) {
			return
		}
		if m.met != nil {
			m.met.fitRun.Observe(finished.Sub(started).Seconds())
		}
		m.countTerminal(j, state, errMsg)
	}

	// A job submitted with a pinned view (every submission since mutation
	// support) fits exactly the generation it captured; the lookup is the
	// fallback for jobs constructed without one (tests, older paths).
	net := pinned
	if net == nil {
		var ok bool
		net, ok = m.store.network(j.networkID)
		if !ok {
			finishRun(jobFailed, "network "+j.networkID+" evicted before the job ran", m.now())
			return
		}
	}

	opts := j.opts
	opts.Progress = m.progressHook(j, started)
	res, err := core.FitContext(jctx, net, opts)
	switch {
	case err == nil:
		objects := make([]objectInfo, net.NumObjects())
		for v := range objects {
			o := net.Object(v)
			objects[v] = objectInfo{ID: o.ID, Type: o.Type}
		}
		metrics := computeMetrics(res, j.truth)
		j.mu.Lock()
		j.result = res
		j.objects = objects
		j.metrics = metrics
		j.mu.Unlock()
		finished := m.now()
		if m.onDone != nil {
			m.onDone(j, finished)
			// Model registration + snapshot/record writes: the step that
			// makes "done" mean "durable", and the usual suspect when a fit
			// finishes fast but the job seems slow.
			j.span.Record("job.persist", finished, m.now())
		}
		if m.met != nil {
			m.met.fitEMIters.Observe(float64(res.EMIterations))
		}
		finishRun(jobDone, "", finished)
	case errors.Is(err, context.Canceled):
		msg := "cancelled"
		if m.ctx.Err() != nil {
			msg = "server shutting down"
		}
		finishRun(jobCancelled, msg, m.now())
	default:
		finishRun(jobFailed, err.Error(), m.now())
	}
}

// progressHook wraps the job's progress fan-out with trace recording: one
// completed span per fit phase — "fit.init" for initialization (Outer 0),
// then "fit.outer_iteration" per completed outer alternation — each
// carrying the objective g₁ and the cumulative inner-EM iteration count at
// that point. The hook runs on the fitting goroutine once per OUTER
// iteration, so it never touches the inner EM loops whose 0 allocs/op
// steady state is gated by benchgate.
func (m *manager) progressHook(j *job, started time.Time) func(core.Progress) {
	prev := started
	return func(p core.Progress) {
		now := m.now()
		name := "fit.outer_iteration"
		if p.Outer == 0 {
			name = "fit.init"
		}
		sp := j.span.Record(name, prev, now)
		sp.SetAttr("outer", p.Outer)
		sp.SetAttr("objective", p.Objective)
		sp.SetAttr("em_iterations", p.EMIterations)
		prev = now
		j.publishProgress(p)
	}
}

// computeMetrics scores the fit against the labeled subset of objects.
// Returns nil when no truth was submitted or the metrics are undefined.
func computeMetrics(res *core.Model, truth []int) *resultMetrics {
	if truth == nil {
		return nil
	}
	pred := res.HardLabels()
	var p, tr []int
	for v, label := range truth {
		if label >= 0 {
			p = append(p, pred[v])
			tr = append(tr, label)
		}
	}
	if len(p) == 0 {
		return nil
	}
	nmi, err := eval.NMI(p, tr)
	if err != nil {
		return nil
	}
	ari, err := eval.AdjustedRandIndex(p, tr)
	if err != nil {
		return nil
	}
	purity, err := eval.Purity(p, tr)
	if err != nil {
		return nil
	}
	return &resultMetrics{NMI: nmi, ARI: ari, Purity: purity, Labeled: len(p)}
}
