package server

import (
	"net/http"
	"strconv"
	"time"

	"genclus/internal/trace"
)

// The trace surface: GET /v1/traces lists the recorder's ring of recently
// completed traces (requests, fits, supervisor decisions, replica sync
// passes), GET /v1/traces/{id} resolves one by its 32-hex trace id, and
// GET /v1/jobs/{id}/trace serves a fit's span timeline — live while the
// job runs, complete afterwards — with queue wait, per-outer-iteration
// objective values, and the persist step. Everything is served from the
// in-memory recorder (internal/trace); nothing here touches disk.

// traceSpanResponse is one span on the wire. Attrs flatten the span's
// key/value pairs (outer, objective, em_iterations, status, ...).
type traceSpanResponse struct {
	Name         string `json:"name"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	Start        string `json:"start"`
	// End is empty while the span is still open (a running fit's root).
	End             string         `json:"end,omitempty"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
}

// traceResponse is one trace: the root span first, children in creation
// order (the order they were opened, which for fits is chronological).
type traceResponse struct {
	TraceID string              `json:"trace_id"`
	Spans   []traceSpanResponse `json:"spans"`
}

type traceListResponse struct {
	Traces []traceResponse `json:"traces"`
}

func traceFromSnapshot(snap trace.Snapshot) traceResponse {
	out := traceResponse{TraceID: snap.TraceID.String(), Spans: make([]traceSpanResponse, len(snap.Spans))}
	for i, sp := range snap.Spans {
		tsr := traceSpanResponse{
			Name:            sp.Name,
			SpanID:          sp.ID.String(),
			Start:           sp.Start.UTC().Format(time.RFC3339Nano),
			DurationSeconds: sp.Duration().Seconds(),
		}
		if !sp.Parent.IsZero() {
			tsr.ParentSpanID = sp.Parent.String()
		}
		if !sp.End.IsZero() {
			tsr.End = sp.End.UTC().Format(time.RFC3339Nano)
		}
		if len(sp.Attrs) > 0 {
			tsr.Attrs = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				tsr.Attrs[a.Key] = a.Value
			}
		}
		out.Spans[i] = tsr
	}
	return out
}

// handleListTraces serves the recent-trace ring, newest first. ?limit=N
// truncates (0 or absent: everything retained, bounded by Config.MaxTraces).
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	recent := s.tracer.Recent()
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", q)
			return
		}
		if n < len(recent) {
			recent = recent[:n]
		}
	}
	resp := traceListResponse{Traces: make([]traceResponse, len(recent))}
	for i, snap := range recent {
		resp.Traces[i] = traceFromSnapshot(snap)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, ok := trace.ParseTraceID(raw)
	if !ok {
		writeError(w, http.StatusBadRequest, "invalid trace id %q (want 32 hex characters)", raw)
		return
	}
	snap, ok := s.tracer.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace %s not found (completed traces are retained in a ring of %d)", raw, s.cfg.MaxTraces)
		return
	}
	writeJSON(w, http.StatusOK, traceFromSnapshot(snap))
}

// handleJobTrace serves the fit's own trace — live (open root, spans so
// far) while the job is queued or running, the full timeline once it is
// terminal. Jobs recovered from disk after a restart predate the process
// and have no trace (404 with a distinct message).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if j.span == nil {
		writeError(w, http.StatusNotFound, "job %s has no trace (recovered from disk; traces do not survive restarts)", j.id)
		return
	}
	writeJSON(w, http.StatusOK, traceFromSnapshot(j.span.Snapshot()))
}
