package server

import (
	"context"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"time"

	"genclus/internal/core"
	"genclus/internal/hin"
	"genclus/internal/infer"
	"genclus/internal/trace"
)

// The continuous-clustering supervisor: one background goroutine per
// mutated network that watches how far the live view has drifted from the
// newest registered model fitted on it, and past configurable thresholds
// schedules an incremental warm-start refit through the ordinary job
// queue. The finished fit registers like any other (persistFinishedJob),
// so /assign traffic rolls forward to the fresh model the moment it is
// published — the engine cache keys by snapshot digest, making rollforward
// a registry pointer swap with zero failed requests.
//
// Two signals trigger a refit, either alone sufficient:
//
//   - pending depth: generations applied since the last refit was
//     scheduled reach Config.SupervisorMaxPending — mutation volume alone
//     eventually forces a refit even when each change is innocuous;
//   - drift score: the mean total-variation distance between the fold-in
//     posterior of recently-touched objects (scored against the model as
//     /assign would) and the model's frozen Θ rows reaches
//     Config.SupervisorDriftThreshold. Objects the model has never seen
//     score the maximum 1.0. This is the practical surrogate for
//     comparing fold-in log-likelihood against the snapshot objective:
//     both measure "the model no longer explains these objects", but the
//     TV form is bounded, parameter-free, and reuses the assign engine.
//
// The supervisor never refits concurrently with itself: while a scheduled
// refit is in flight, evaluation pauses, and settles when the job reaches
// a terminal state. A full job queue is not a failure — the trigger simply
// retries on the next tick.

// maxDriftSample caps how many recently-touched objects one drift
// evaluation scores; mutations past the cap drop the oldest IDs first
// (drift is a sample statistic, not an audit).
const maxDriftSample = 256

// supervisor watches one network. Lifecycle: started by the first
// mutation (ensureSupervisor), stopped by TTL eviction (retireNetwork) or
// server Close — both via halt, which is idempotent and waits for the run
// goroutine to exit.
type supervisor struct {
	s         *Server
	networkID string

	notify chan struct{} // poked (capacity 1) on every mutation
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	mu           sync.Mutex
	lastRefitGen int     // generation the last scheduled refit captured
	lastDrift    float64 // most recent drift score
	lastModelID  string  // model the last successful auto-refit published
	refit        *job    // in-flight auto-refit, nil when idle
	triggered    int64
	succeeded    int64
	failed       int64
	touched      []string // recently-touched object IDs, oldest first
	touchedSet   map[string]bool

	// Drift-engine cache, owned by the run goroutine (no lock): rebuilt
	// when the newest model for the network changes.
	engModelID string
	eng        *infer.Engine
	engRows    map[string]int      // model object ID → Θ row
	engAttrs   map[string]hin.Kind // model attribute name → kind
}

func newSupervisor(s *Server, networkID string) *supervisor {
	return &supervisor{
		s:         s,
		networkID: networkID,
		notify:    make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// ensureSupervisor returns the network's supervisor, starting one if the
// entry has none. Registration is atomic with the eviction check: the
// entry must still be the one registered under id, so a TTL-swept network
// can never get a fresh supervisor (retireNetwork has, or will, stop the
// one registered here), and a closed server starts none at all.
func (s *Server) ensureSupervisor(id string, e *networkEntry) *supervisor {
	if s.cfg.SupervisorDisabled {
		return nil
	}
	st := s.store
	st.mu.Lock()
	if st.supsClosed || st.networks[id] != e {
		st.mu.Unlock()
		return nil
	}
	if e.sup != nil {
		sup := e.sup
		st.mu.Unlock()
		return sup
	}
	sup := newSupervisor(s, id)
	e.sup = sup
	st.mu.Unlock()
	go sup.run()
	return sup
}

// halt stops the supervisor and waits for its goroutine to exit.
// Idempotent; safe to call from eviction and Close concurrently.
func (sup *supervisor) halt() {
	sup.once.Do(func() { close(sup.stop) })
	<-sup.done
}

// poke nudges the run loop after a mutation without ever blocking the
// mutation handler.
func (sup *supervisor) poke() {
	select {
	case sup.notify <- struct{}{}:
	default:
	}
}

// recordTouched accumulates the objects a mutation bore evidence about,
// keeping at most maxDriftSample of the newest.
func (sup *supervisor) recordTouched(ids []string) {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	if sup.touchedSet == nil {
		sup.touchedSet = make(map[string]bool)
	}
	for _, id := range ids {
		if sup.touchedSet[id] {
			continue
		}
		sup.touchedSet[id] = true
		sup.touched = append(sup.touched, id)
		if len(sup.touched) > maxDriftSample {
			delete(sup.touchedSet, sup.touched[0])
			sup.touched = sup.touched[1:]
		}
	}
}

// run is the supervisor loop: wake on mutation, on the periodic tick, or
// when an in-flight refit settles; evaluate the drift signals; trigger.
func (sup *supervisor) run() {
	defer close(sup.done)
	t := time.NewTicker(sup.s.cfg.SupervisorInterval)
	defer t.Stop()
	for {
		var refitDone chan struct{}
		sup.mu.Lock()
		if sup.refit != nil {
			refitDone = sup.refit.done
		}
		sup.mu.Unlock()
		select {
		case <-sup.stop:
			return
		case <-refitDone:
			sup.settleRefit()
			continue
		case <-sup.notify:
		case <-t.C:
		}
		sup.evaluate()
	}
}

// evaluate computes the drift signals and triggers a refit when either
// crosses its threshold. A nil return of the latest model (nothing fitted
// on this network yet) means there is nothing to drift from — the first
// fit is always client-initiated.
func (sup *supervisor) evaluate() {
	s := sup.s
	sup.mu.Lock()
	inFlight := sup.refit != nil
	lastGen := sup.lastRefitGen
	touched := append([]string(nil), sup.touched...)
	sup.mu.Unlock()
	if inFlight {
		return
	}
	net, gen, ok := s.store.networkState(sup.networkID)
	if !ok {
		return // evicted; halt arrives shortly
	}
	pending := gen - lastGen
	if pending <= 0 {
		return
	}
	e := s.store.latestModelForNetwork(sup.networkID)
	if e == nil {
		return
	}
	// From here the evaluation does real work (fold-in drift scoring), so it
	// gets its own trace: the decision root, a drift-scoring child, and —
	// when a refit triggers — the refit job's trace continues this trace id,
	// making "why did the fleet refit?" answerable from GET /v1/traces.
	dec := s.tracer.StartTrace("supervisor.decision", trace.SpanContext{}, s.cfg.now())
	dec.SetAttr("network", sup.networkID)
	dec.SetAttr("pending", pending)
	driftStart := s.cfg.now()
	drift := sup.computeDrift(net, e, touched)
	dec.Record("supervisor.drift", driftStart, s.cfg.now()).SetAttr("sample", len(touched))
	sup.mu.Lock()
	sup.lastDrift = drift
	sup.mu.Unlock()
	s.mutationStats.recordDrift(drift)
	reason := ""
	if mp := s.cfg.SupervisorMaxPending; mp > 0 && pending >= mp {
		reason = "pending"
	}
	if th := s.cfg.SupervisorDriftThreshold; th > 0 && drift >= th {
		reason = "drift"
	}
	dec.SetAttr("drift", drift)
	if reason == "" {
		dec.SetAttr("reason", "none")
		dec.End(s.cfg.now())
		return
	}
	dec.SetAttr("reason", reason)
	sup.triggerRefit(net, gen, e, drift, pending, reason, dec.Context())
	dec.End(s.cfg.now())
}

// triggerRefit schedules a warm-start refit of the network's current
// generation through the ordinary job pipeline — the exact option path a
// client POST /v1/jobs with warm_start_from_model takes (DefaultOptions →
// parallelism clamp → RefitOptions → server bounds → Validate), so the
// auto-refit model is bitwise-identical to a manual warm start of the same
// generation. parent is the supervisor decision's span context, so the
// refit job's trace continues the decision's trace id.
func (sup *supervisor) triggerRefit(net *hin.Network, gen int, e *modelEntry, drift float64, pending int, reason string, parent trace.SpanContext) {
	s := sup.s
	opts := core.DefaultOptions(0) // K inherited from the warm-start model
	if procs := runtime.GOMAXPROCS(0); opts.Parallelism > procs {
		opts.Parallelism = procs
	}
	// An auto-refit of a float32 model stays float32: the refit replaces
	// the model in place, and silently widening its storage would change
	// snapshot bytes and replica traffic out from under the operator.
	opts.Precision = e.precision
	warm, err := e.model.RefitOptions(net, opts)
	if err == nil {
		opts = warm
		err = s.checkJobBounds(opts)
	}
	if err == nil {
		err = opts.Validate(net)
	}
	if err != nil {
		// The model cannot seed a fit of this generation (K out of bounds,
		// incompatible options). Advance past the generation so the
		// supervisor does not spin on an impossible refit, and count the
		// failure.
		sup.mu.Lock()
		sup.lastRefitGen = gen
		sup.failed++
		sup.mu.Unlock()
		s.mutationStats.refitFailed()
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "supervisor refit rejected",
			slog.String("network", sup.networkID),
			slog.String("model", e.id),
			slog.Int("generation", gen),
			slog.String("error", err.Error()),
		)
		return
	}
	j := &job{
		id:         newID("job"),
		networkID:  sup.networkID,
		opts:       opts,
		generation: gen,
		net:        net,
		created:    s.cfg.now(),
		state:      jobQueued,
		done:       make(chan struct{}),
	}
	j.span = s.tracer.StartTrace("job.fit", parent, j.created)
	j.span.SetAttr("job", j.id)
	j.span.SetAttr("network", sup.networkID)
	j.span.SetAttr("trigger", reason)
	if err := s.manager.submit(j); err != nil {
		// Queue full: backpressure, not failure. Retry on the next tick.
		j.span.SetAttr("error", err.Error())
		j.span.End(s.cfg.now())
		s.log.LogAttrs(context.Background(), slog.LevelDebug, "supervisor refit deferred",
			slog.String("network", sup.networkID),
			slog.String("error", err.Error()),
		)
		return
	}
	s.store.addJob(j)
	sup.mu.Lock()
	sup.refit = j
	sup.lastRefitGen = gen
	sup.triggered++
	sup.touched = nil
	sup.touchedSet = nil
	sup.mu.Unlock()
	s.mutationStats.refitTriggered()
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "supervisor refit triggered",
		slog.String("network", sup.networkID),
		slog.String("job", j.id),
		slog.String("model", e.id),
		slog.Int("generation", gen),
		slog.Int("pending", pending),
		slog.Float64("drift", drift),
		slog.String("reason", reason),
	)
}

// settleRefit accounts a finished auto-refit. Success means the fitted
// model was registered (persistFinishedJob ran before the done
// transition), so /assign is already rolling forward.
func (sup *supervisor) settleRefit() {
	sup.mu.Lock()
	j := sup.refit
	sup.refit = nil
	sup.mu.Unlock()
	if j == nil {
		return
	}
	snap := j.snapshot()
	if snap.state == jobDone {
		sup.mu.Lock()
		sup.succeeded++
		sup.lastModelID = snap.modelID
		sup.mu.Unlock()
		sup.s.mutationStats.refitSucceeded()
		sup.s.log.LogAttrs(context.Background(), slog.LevelInfo, "supervisor refit published",
			slog.String("network", sup.networkID),
			slog.String("job", j.id),
			slog.String("model", snap.modelID),
			slog.Int("generation", j.generation),
		)
		return
	}
	sup.mu.Lock()
	sup.failed++
	sup.mu.Unlock()
	sup.s.mutationStats.refitFailed()
	sup.s.log.LogAttrs(context.Background(), slog.LevelWarn, "supervisor refit failed",
		slog.String("network", sup.networkID),
		slog.String("job", j.id),
		slog.String("state", string(snap.state)),
		slog.String("error", snap.errMsg),
	)
}

// computeDrift scores the touched sample against the model: per object the
// total-variation distance ½·Σ|θ̂−θ| between its fold-in posterior on the
// CURRENT view and the model's frozen Θ row; objects the model never
// fitted (or whose fold-in fails) score the maximum 1.0. Returns the mean
// over the sample — 0 when there is nothing to score.
func (sup *supervisor) computeDrift(net *hin.Network, e *modelEntry, touched []string) float64 {
	if len(touched) == 0 {
		return 0
	}
	if err := sup.driftEngine(e); err != nil {
		// A model that cannot build an engine cannot serve /assign either;
		// refitting from it would not help. No drift evidence.
		sup.s.log.LogAttrs(context.Background(), slog.LevelWarn, "supervisor drift engine build failed",
			slog.String("network", sup.networkID),
			slog.String("model", e.id),
			slog.String("error", err.Error()),
		)
		return 0
	}
	var total float64
	for _, id := range touched {
		total += sup.objectDrift(net, e, id)
	}
	return total / float64(len(touched))
}

// objectDrift scores one object: 1.0 for objects outside the model, else
// the TV distance between its fold-in posterior and its frozen Θ row.
func (sup *supervisor) objectDrift(net *hin.Network, e *modelEntry, id string) float64 {
	row, known := sup.engRows[id]
	if !known {
		return 1 // the model has no opinion at all — maximal drift
	}
	v, ok := net.IndexOf(id)
	if !ok {
		return 1 // gone from the live view (defensive; objects are not removable)
	}
	q := infer.Query{ID: id}
	// Only evidence the model can interpret enters the query: links whose
	// relation carries a learned strength and whose target the model knows,
	// observations of attributes the model fitted. Evidence outside that —
	// a new relation, links to new objects — contributes by its absence.
	for _, edge := range net.OutEdges(v) {
		rel := net.RelationName(edge.Rel)
		if _, ok := e.model.Gamma[rel]; !ok {
			continue
		}
		to := net.Object(edge.To).ID
		if _, ok := sup.engRows[to]; !ok {
			continue
		}
		q.Links = append(q.Links, infer.Link{Relation: rel, To: to, Weight: edge.Weight})
	}
	for a := 0; a < net.NumAttrs(); a++ {
		spec := net.Attr(a)
		kind, ok := sup.engAttrs[spec.Name]
		if !ok || kind != spec.Kind {
			continue
		}
		switch spec.Kind {
		case hin.Categorical:
			if tcs := net.TermCounts(a, v); len(tcs) > 0 {
				q.Terms = append(q.Terms, infer.CatObs{Attr: spec.Name, Terms: tcs})
			}
		case hin.Numeric:
			if xs := net.NumericObs(a, v); len(xs) > 0 {
				q.Numeric = append(q.Numeric, infer.NumObs{Attr: spec.Name, Values: xs})
			}
		}
	}
	asg, err := sup.eng.Assign(q)
	if err != nil {
		return 1
	}
	ref := e.model.Theta[row]
	var tv float64
	for k, p := range asg.Theta {
		tv += math.Abs(p - ref[k])
	}
	return 0.5 * tv
}

// driftEngine (re)builds the supervisor's private fold-in engine when the
// newest model changed. It is never shared with /assign traffic — the
// engine's scratch arena is single-goroutine — and it scores with the
// model's own epsilon so posteriors match what training rows would
// reproduce.
func (sup *supervisor) driftEngine(e *modelEntry) error {
	if sup.engModelID == e.id && sup.eng != nil {
		return nil
	}
	eng, err := infer.NewEngine(e.model, infer.Options{
		TopK:      1,
		Epsilon:   sup.s.modelEpsilon(e),
		Precision: e.precision,
		// The queries come from the network itself, already behind
		// hin.Limits; request-style caps do not apply.
		Unbounded: true,
	})
	if err != nil {
		return err
	}
	ids := e.model.ObjectIDs()
	rows := make(map[string]int, len(ids))
	for i, id := range ids {
		rows[id] = i
	}
	attrs := make(map[string]hin.Kind, len(e.model.Attrs))
	for _, am := range e.model.Attrs {
		attrs[am.Name] = am.Kind
	}
	sup.eng, sup.engRows, sup.engAttrs, sup.engModelID = eng, rows, attrs, e.id
	return nil
}

// status is the supervisor's introspection snapshot for GET
// /v1/networks/{id}/supervisor.
type supervisorStatus struct {
	lastRefitGen int
	lastDrift    float64
	lastModelID  string
	refitJobID   string
	triggered    int64
	succeeded    int64
	failed       int64
}

func (sup *supervisor) status() supervisorStatus {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	st := supervisorStatus{
		lastRefitGen: sup.lastRefitGen,
		lastDrift:    sup.lastDrift,
		lastModelID:  sup.lastModelID,
		triggered:    sup.triggered,
		succeeded:    sup.succeeded,
		failed:       sup.failed,
	}
	if sup.refit != nil {
		st.refitJobID = sup.refit.id
	}
	return st
}
