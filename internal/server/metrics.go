package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"genclus/internal/metrics"
	"genclus/internal/trace"
)

// The operations layer: GET /metrics serves every counter the daemon
// tracks in the Prometheus text exposition format, fed by a small
// dependency-free registry (internal/metrics). Instruments are created
// once at New and held on serverMetrics, so hot-path increments are plain
// atomics — instrumentation cannot move the EM-iteration or assign-pass
// steady states off 0 allocs/op. Every route is wrapped by instrument(),
// which also assigns the per-request ID that structured logs thread
// through jobs, persistence and the assign dispatcher, and applies the
// per-route write deadline (SSE streams exempt — they are supposed to
// outlive any single write budget).

// serverMetrics holds every pre-registered instrument. The assign
// counters mirror the /healthz assign block (incremented together, inside
// the same critical section — see assignCounters); the parity between the
// two surfaces is pinned by TestHealthzMetricsParity.
type serverMetrics struct {
	reg *metrics.Registry

	// Per-route HTTP request durations, keyed by "METHOD /path" from the
	// route table. Request counts carry a code label too and are created
	// on demand (the code space is small and data-independent).
	httpDurations map[string]*metrics.Histogram

	fitQueueWait *metrics.Histogram // submit → fit start, seconds
	fitRun       *metrics.Histogram // fit start → terminal, seconds
	fitEMIters   *metrics.Histogram // EM iterations per finished fit
	fitJobs      map[jobState]*metrics.Counter

	assignRequests    *metrics.Counter
	assignObjects     *metrics.Counter
	assignBatched     *metrics.Counter
	assignPasses      *metrics.Counter
	assignCacheHits   *metrics.Counter
	assignCacheMisses *metrics.Counter
	assignShed        map[string]*metrics.Counter // by shed reason
	assignOccupancy   *metrics.Histogram          // query objects per engine pass
	assignPassSecs    *metrics.Histogram          // engine pass latency, seconds
	assignQueueDepth  *metrics.Gauge              // queued query objects across dispatchers
	assignInFlight    *metrics.Gauge              // requests inside admission control

	networkMutations          *metrics.Counter
	supervisorRefitsTriggered *metrics.Counter
	supervisorRefitsSucceeded *metrics.Counter
	supervisorRefitsFailed    *metrics.Counter

	persistFailures *metrics.Counter
}

// newServerMetrics registers the full instrument inventory (see
// docs/ARCHITECTURE.md, "Operations") against a fresh registry. Gauges
// that shadow existing server state (queue depth, registry sizes, job
// states) are computed at scrape time from the same structures /healthz
// reads.
func (s *Server) newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:           reg,
		httpDurations: make(map[string]*metrics.Histogram),
		fitQueueWait: reg.Histogram("genclus_fit_queue_wait_seconds",
			"Time a fit job spent queued before a worker picked it up.", metrics.DurationBuckets()),
		fitRun: reg.Histogram("genclus_fit_run_seconds",
			"Wall-clock fit time from start to terminal state.", metrics.DurationBuckets()),
		fitEMIters: reg.Histogram("genclus_fit_em_iterations",
			"EM iterations a finished fit executed (warm starts should sit far left of cold).", metrics.CountBuckets()),
		fitJobs: map[jobState]*metrics.Counter{},
		assignRequests: reg.Counter("genclus_assign_requests_total",
			"Assign requests that reached an engine pass."),
		assignObjects: reg.Counter("genclus_assign_objects_total",
			"Query objects scored across all assign requests."),
		assignBatched: reg.Counter("genclus_assign_batched_requests_total",
			"Assign requests whose engine pass was shared with at least one other request."),
		assignPasses: reg.Counter("genclus_assign_engine_passes_total",
			"Shared inference engine passes executed."),
		assignCacheHits: reg.Counter("genclus_assign_engine_cache_hits_total",
			"Per-model inference engine cache hits (by snapshot digest)."),
		assignCacheMisses: reg.Counter("genclus_assign_engine_cache_misses_total",
			"Per-model inference engine cache misses (engines built)."),
		assignShed: map[string]*metrics.Counter{},
		assignOccupancy: reg.Histogram("genclus_assign_pass_occupancy",
			"Query objects coalesced into one engine pass.", metrics.CountBuckets()),
		assignPassSecs: reg.Histogram("genclus_assign_pass_seconds",
			"Inference engine pass latency.", metrics.DurationBuckets()),
		assignQueueDepth: reg.Gauge("genclus_assign_queue_depth",
			"Query objects queued behind busy assign dispatchers."),
		assignInFlight: reg.Gauge("genclus_assign_in_flight",
			"Assign requests currently inside admission control."),
		networkMutations: reg.Counter("genclus_network_mutations_total",
			"Accepted network mutations (edges, objects, attributes) across all networks."),
		supervisorRefitsTriggered: reg.Counter("genclus_supervisor_refits_triggered_total",
			"Incremental refit jobs submitted by continuous-clustering supervisors."),
		supervisorRefitsSucceeded: reg.Counter("genclus_supervisor_refits_succeeded_total",
			"Supervisor-triggered refits that finished done and published a model."),
		supervisorRefitsFailed: reg.Counter("genclus_supervisor_refits_failed_total",
			"Supervisor-triggered refits that failed, were cancelled, or could not be prepared."),
		persistFailures: reg.Counter("genclus_persist_failures_total",
			"Fits whose snapshot or job record failed to reach the data dir (durability degraded)."),
	}
	for _, st := range []jobState{jobDone, jobFailed, jobCancelled} {
		m.fitJobs[st] = reg.Counter("genclus_fit_jobs_total",
			"Fit jobs by terminal state.", "state", string(st))
	}
	for _, reason := range []string{shedQueueFull, shedInFlight, shedRateLimit} {
		m.assignShed[reason] = reg.Counter("genclus_assign_shed_total",
			"Assign requests rejected with 429 by admission control, by reason.", "reason", reason)
	}
	for _, rt := range s.routes() {
		key := rt.Method + " " + rt.Path
		m.httpDurations[key] = reg.Histogram("genclus_http_request_duration_seconds",
			"HTTP request duration by route.", metrics.DurationBuckets(), "route", key)
	}
	reg.GaugeFunc("genclus_fit_queue_depth",
		"Fit jobs waiting in the bounded queue.",
		func() float64 { return float64(len(s.manager.queue)) })
	reg.GaugeFunc("genclus_networks",
		"Stored (non-evicted) networks.",
		func() float64 { return float64(s.store.numNetworks()) })
	reg.GaugeFunc("genclus_models",
		"Registered models.",
		func() float64 { return float64(s.store.numModels()) })
	reg.GaugeFunc("genclus_deltalog_depth",
		"Durable delta-log records pending across all mutated networks.",
		func() float64 { return float64(s.store.deltaDepth()) })
	reg.GaugeFunc("genclus_supervisors",
		"Continuous-clustering supervisors currently running.",
		func() float64 { return float64(s.store.numSupervisors()) })
	reg.GaugeFunc("genclus_supervisor_drift_score",
		"Most recent drift score any supervisor computed (mean TV distance, 0..1).",
		func() float64 { return s.mutationStats.driftScore() })
	for _, st := range []jobState{jobQueued, jobRunning, jobDone, jobFailed, jobCancelled} {
		st := st
		reg.GaugeFunc("genclus_jobs",
			"Jobs in the job table by state.",
			func() float64 { return float64(s.store.jobCounts()[st]) },
			"state", string(st))
	}
	// Replica-mode sync state, computed at scrape time from the syncer's
	// own counters (all zero on a primary) so /healthz and /metrics can
	// never disagree.
	reg.GaugeFunc("genclus_replica_lag_seconds",
		"Seconds since the replica last completed a sync pass against its primary (0 on a primary).",
		func() float64 { return s.replicationStats().LagSeconds })
	reg.GaugeFunc("genclus_replica_syncs_total",
		"Completed replica sync passes.",
		func() float64 { return float64(s.replicationStats().Syncs) })
	reg.GaugeFunc("genclus_replica_sync_errors_total",
		"Failed replica sync passes (listing, transport, verification, or install).",
		func() float64 { return float64(s.replicationStats().SyncErrors) })
	reg.GaugeFunc("genclus_replica_models_synced_total",
		"Models the replica sync loop installed from its primary.",
		func() float64 { return float64(s.replicationStats().ModelsSynced) })
	reg.GaugeFunc("genclus_replica_models_deleted_total",
		"Local models the replica sync loop removed because the primary dropped them.",
		func() float64 { return float64(s.replicationStats().ModelsDeleted) })
	// Go runtime telemetry, served from the shared TTL-cached sampler so a
	// scrape storm cannot hammer ReadMemStats (a stop-the-world call).
	reg.GaugeFunc("genclus_goroutines",
		"Goroutines currently live in the daemon process.",
		func() float64 { return float64(s.runtimeTelemetry().Goroutines) })
	reg.GaugeFunc("genclus_heap_alloc_bytes",
		"Bytes of live heap-allocated objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(s.runtimeTelemetry().HeapAllocBytes) })
	reg.GaugeFunc("genclus_gc_pause_total_seconds",
		"Cumulative stop-the-world GC pause time since process start.",
		func() float64 { return s.runtimeTelemetry().GCPauseTotalSeconds })
	reg.GaugeFunc("genclus_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 { return float64(s.runtimeTelemetry().GCCycles) })
	return m
}

// ---- runtime telemetry ----

// runtimeStatsResponse is the /healthz runtime block, mirrored 1:1 onto the
// genclus_goroutines / genclus_heap_alloc_bytes / genclus_gc_* gauges
// (parity pinned by TestHealthzMetricsParity).
type runtimeStatsResponse struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	GCCycles            uint32  `json:"gc_cycles"`
}

// runtimeSampleTTL bounds how often the daemon calls runtime.ReadMemStats:
// one /metrics scrape reads four runtime gauges, and each ReadMemStats is a
// stop-the-world, so the four share a single cached sample (as do
// concurrent scrapers and /healthz).
const runtimeSampleTTL = 250 * time.Millisecond

// runtimeSampler caches one MemStats+goroutine sample for runtimeSampleTTL.
type runtimeSampler struct {
	mu         sync.Mutex
	at         time.Time
	mem        runtime.MemStats
	goroutines int
}

// runtimeTelemetry returns the current (TTL-cached) runtime stats block.
func (s *Server) runtimeTelemetry() runtimeStatsResponse {
	rs := &s.runtimeSamples
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if now := time.Now(); rs.at.IsZero() || now.Sub(rs.at) > runtimeSampleTTL {
		runtime.ReadMemStats(&rs.mem)
		rs.goroutines = runtime.NumGoroutine()
		rs.at = now
	}
	return runtimeStatsResponse{
		Goroutines:          rs.goroutines,
		HeapAllocBytes:      rs.mem.HeapAlloc,
		GCPauseTotalSeconds: float64(rs.mem.PauseTotalNs) / 1e9,
		GCCycles:            rs.mem.NumGC,
	}
}

// httpRequestCounter is the on-demand {route, code} request counter; the
// label space is bounded by the route table times the handful of status
// codes the handlers emit.
func (m *serverMetrics) httpRequestCounter(route string, code int) *metrics.Counter {
	return m.reg.Counter("genclus_http_requests_total",
		"HTTP requests by route and status code.", "route", route, "code", strconv.Itoa(code))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.metrics.reg.WritePrometheus(w)
}

// ---- request IDs + per-route middleware ----

// requestIDKey carries the request's trace id (hex) through the handler's
// context, so logs emitted deeper in the stack (job submission,
// persistence) can join up with the request line and /v1/traces.
type requestIDKey struct{}

// spanKey carries the request's root *trace.Span through the handler's
// context so downstream work (job creation) can parent onto it.
type spanKey struct{}

// requestID returns the request's trace id (the middleware-assigned
// request ID), "" outside a request context.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// spanContext returns the request span's context for cross-boundary
// propagation (job roots, outbound headers); zero outside a request.
func spanContext(ctx context.Context) trace.SpanContext {
	if sp, ok := ctx.Value(spanKey{}).(*trace.Span); ok {
		return sp.Context()
	}
	return trace.SpanContext{}
}

// statusWriter records the response status for the request log and
// metrics, and carries the request's trace id so the error writers can
// stamp request_id into every error body (see responseRequestID). It
// deliberately does NOT implement http.Flusher itself — flushWriter adds
// that only when the underlying writer supports it, so the SSE handler's
// capability check still answers honestly.
type statusWriter struct {
	http.ResponseWriter
	code  int
	reqID string
}

// traceRequestID exposes the trace id to responseRequestID's writer walk.
func (sw *statusWriter) traceRequestID() string { return sw.reqID }

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// deadline and flush controls through the wrapper.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// flushWriter is statusWriter plus the Flusher capability, used when the
// wrapped writer has it.
type flushWriter struct{ *statusWriter }

// Flush implements http.Flusher by delegating to the wrapped writer.
func (fw flushWriter) Flush() { fw.statusWriter.ResponseWriter.(http.Flusher).Flush() }

// instrument wraps one route's handler with the operations envelope:
// write deadline (non-SSE routes only — an events stream may legitimately
// live for the whole fit), distributed-trace extraction, status capture,
// the per-route request counter and duration histogram, and one structured
// log line per request. Each request opens a root span named by its route:
// a valid inbound W3C traceparent header continues the caller's trace
// (same trace id, remote span as the root's parent), otherwise a fresh
// trace id is minted. That trace id IS the request ID — it threads through
// logs, error bodies (request_id), and GET /v1/traces/{id}. Request logs
// are Debug level (high volume; turn them on with -log-level debug),
// promoted to Warn on 5xx — a server fault should be visible at default
// verbosity — and on requests slower than Config.TraceSlow, so the slow
// tail surfaces with a trace handle attached.
func (s *Server) instrument(rt Route) http.HandlerFunc {
	routeKey := rt.Method + " " + rt.Path
	duration := s.metrics.httpDurations[routeKey]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if !rt.sse && s.cfg.WriteTimeout > 0 {
			// Per-route write deadline: a dead or deliberately slow reader
			// cannot hold a plain endpoint's connection (and its handler
			// goroutine) open forever. ErrNotSupported (exotic wrappers,
			// some test writers) just means no deadline — same as before.
			_ = http.NewResponseController(w).SetWriteDeadline(start.Add(s.cfg.WriteTimeout))
		}
		parent, _ := trace.Parse(r.Header.Get("traceparent"))
		span := s.tracer.StartTrace(routeKey, parent, start)
		reqID := span.TraceID().String()
		ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)
		ctx = context.WithValue(ctx, spanKey{}, span)
		sw := &statusWriter{ResponseWriter: w, reqID: reqID}
		var ww http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			ww = flushWriter{sw}
		}
		if rt.mutating && s.cfg.ReplicaOf != "" {
			// Read-only replica: refuse writes inside the envelope so the
			// 403 still lands in metrics, the trace ring and the request log.
			writeErrorCode(ww, http.StatusForbidden, codeReadOnlyReplica,
				"this node is a read-only replica of %s; send writes to the primary", s.cfg.ReplicaOf)
		} else {
			rt.handler(ww, r.WithContext(ctx))
		}
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(start)
		span.SetAttr("status", code)
		span.End(start.Add(elapsed))
		duration.Observe(elapsed.Seconds())
		s.metrics.httpRequestCounter(routeKey, code).Inc()
		level := slog.LevelDebug
		slow := s.cfg.TraceSlow > 0 && elapsed >= s.cfg.TraceSlow && !rt.sse
		if code >= 500 || slow {
			level = slog.LevelWarn
		}
		s.log.LogAttrs(ctx, level, "http request",
			slog.String("req", reqID),
			slog.String("route", routeKey),
			slog.Int("status", code),
			slog.Duration("elapsed", elapsed),
			slog.Bool("slow", slow),
		)
	}
}
