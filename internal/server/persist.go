package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"strconv"
	"time"

	"genclus/internal/core"
	"genclus/internal/deltalog"
	"genclus/internal/hin"
	"genclus/internal/snapshot"
)

// Persistence layer: with Config.DataDir set, every job that finishes done
// writes two durable artifacts through the crash-safe blob store before its
// done state becomes visible — the model snapshot (bucket "models", the
// binary codec from internal/snapshot) and a small job record (bucket
// "jobs", JSON) tying the job id to the model and pinning the object types
// the result endpoint serves. New replays both buckets at startup, so a
// genclusd killed with SIGKILL comes back serving every fit that had
// reported done.
//
// The durability contract (also in docs/ARCHITECTURE.md):
//
//   - done ⇒ durable: a job observed in state done has its snapshot and
//     record fsynced; a crash at any point loses at most jobs that were
//     still queued or running (clients resubmit those);
//   - models outlive jobs: the TTL sweeper evicts finished jobs (memory
//     and disk) but never registry models — those persist until DELETE
//     /v1/models/{id} or MaxModels overflow eviction;
//   - recovery is best-effort per artifact: a corrupt or unreadable blob is
//     skipped (and counted), never fatal, and cannot take the daemon down.

// Blob-store buckets.
const (
	bucketModels = "models"
	bucketJobs   = "jobs"
)

// jobRecord is the persisted form of a finished job. Θ, γ and the attribute
// models live in the referenced model snapshot; the record carries only
// what the snapshot does not: the job identity, timing, the object types
// (aligned with the snapshot's object IDs) and eval metrics.
type jobRecord struct {
	ID          string         `json:"id"`
	NetworkID   string         `json:"network_id"`
	ModelID     string         `json:"model_id"`
	Created     time.Time      `json:"created"`
	Started     time.Time      `json:"started"`
	Finished    time.Time      `json:"finished"`
	Outer       int            `json:"outer"`                   // final progress, so a recovered
	OuterTotal  int            `json:"outer_total"`             // job's status reads like a live one
	Objective   float64        `json:"objective,omitempty"`     // final objective (progress parity)
	EMIters     int            `json:"em_iterations,omitempty"` // EM steps of the final iteration
	ObjectTypes []string       `json:"object_types"`
	Metrics     *resultMetrics `json:"metrics,omitempty"`
}

// persistFinishedJob runs on the worker goroutine after the fitted state is
// recorded on the job but before the done transition is published:
// registers the model (always) and persists snapshot + record (when a data
// dir is configured). Persistence failures degrade to memory-only serving —
// the fit is not failed retroactively — but never silently: each failure is
// logged and counted into /healthz's persist_failures so a full volume
// shows up long before a restart reveals the lost fits.
func (s *Server) persistFinishedJob(j *job, finished time.Time) {
	snap := j.snapshot()
	if snap.result == nil {
		return
	}
	meta := map[string]string{
		metaCreated:            finished.UTC().Format(time.RFC3339Nano),
		metaJobID:              j.id,
		metaNetworkID:          j.networkID,
		metaNetworkGeneration:  strconv.Itoa(j.generation),
		metaOptionsDigest:      snapshot.OptionsDigest(j.opts),
		snapshot.MetaEpsilon:   snapshot.FormatEpsilon(j.opts.Epsilon),
		snapshot.MetaPrecision: snapshot.FormatPrecision(j.opts.Precision),
	}
	entry, err := s.registerModel(snap.result, meta, finished, j.id, j.networkID)
	if err != nil {
		s.persistFailure("register model for job "+j.id, err)
		return
	}
	j.setModelID(entry.id)
	if s.blobs == nil {
		return
	}
	types := make([]string, len(snap.objects))
	for i, o := range snap.objects {
		types[i] = o.Type
	}
	rec := jobRecord{
		ID:          j.id,
		NetworkID:   j.networkID,
		ModelID:     entry.id,
		Created:     j.created.UTC(),
		Started:     snap.started.UTC(),
		Finished:    finished.UTC(),
		Outer:       snap.progress.Outer,
		OuterTotal:  snap.progress.OuterTotal,
		Objective:   snap.progress.Objective,
		EMIters:     snap.progress.EMIterations,
		ObjectTypes: types,
		Metrics:     snap.metrics,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		s.persistFailure("encode record for job "+j.id, err)
		return
	}
	if err := s.blobs.Put(bucketJobs, j.id, data); err != nil {
		s.persistFailure("persist record for job "+j.id, err)
	}
}

// persistFailure is the degraded-durability signal: one structured log
// line per failure plus a monotonic counter surfaced on both /healthz
// (persist_failures) and /metrics (genclus_persist_failures_total).
func (s *Server) persistFailure(what string, err error) {
	s.persistFailures.Add(1)
	if s.metrics != nil {
		s.metrics.persistFailures.Inc()
	}
	logger := s.log
	if logger == nil {
		logger = slog.Default()
	}
	logger.LogAttrs(context.Background(), slog.LevelError, "persistence degraded",
		slog.String("what", what),
		slog.String("error", err.Error()),
	)
}

// dropPersistedJob removes a TTL-evicted job's record from disk (the model
// snapshot stays — models are durable until deleted).
func (s *Server) dropPersistedJob(id string) {
	if s.blobs != nil {
		_ = s.blobs.Delete(bucketJobs, id)
	}
}

// RecoveryStats reports what a data-dir scan restored and skipped.
type RecoveryStats struct {
	Models        int // models restored into the registry
	Jobs          int // finished jobs restored into the job table
	Networks      int // mutated networks rebuilt from base + delta log
	Mutations     int // delta-log records replayed across those networks
	SkippedBlobs  int // corrupt or undecodable artifacts left in place
	OrphanRecords int // job records whose model snapshot is gone
}

// Recovered returns the startup recovery statistics (zero without a data
// dir) — cmd/genclusd logs them.
func (s *Server) Recovered() RecoveryStats { return s.recovered }

// recoverFromDisk replays the data dir into the in-memory registry and job
// table. Per-artifact failures are counted and skipped: recovery must bring
// back everything readable rather than refuse to start on the first bad
// byte.
func (s *Server) recoverFromDisk() error {
	lim := snapshot.DefaultLimits()
	modelIDs, err := s.blobs.List(bucketModels)
	if err != nil {
		return err
	}
	for _, id := range modelIDs {
		data, err := s.blobs.Get(bucketModels, id)
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		snap, err := snapshot.Decode(data, lim)
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		// Registry age is when the model was registered HERE (the file's
		// local mtime), not the snapshot meta's created — an imported
		// snapshot carries its exporter's fit time, and keying MaxModels
		// eviction or listing order on that would reshuffle (and evict the
		// wrong model) across restarts.
		created, err := s.blobs.ModTime(bucketModels, id)
		if err != nil {
			created = s.cfg.now()
		}
		e := &modelEntry{
			id:        id,
			model:     snap.Model,
			meta:      snap.Meta,
			created:   created,
			digest:    snapshot.DataDigest(data),
			size:      int64(len(data)),
			precision: snap.Precision,
			jobID:     snap.Meta[metaJobID],
			networkID: snap.Meta[metaNetworkID],
		}
		s.admitModel(e)
		s.recovered.Models++
	}

	jobIDs, err := s.blobs.List(bucketJobs)
	if err != nil {
		return err
	}
	for _, id := range jobIDs {
		data, err := s.blobs.Get(bucketJobs, id)
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != id {
			s.recovered.SkippedBlobs++
			continue
		}
		entry, ok := s.store.model(rec.ModelID)
		if !ok {
			// The model was deleted (or its snapshot corrupted) out from
			// under the record; a result we cannot serve is not a job we
			// can claim to have. Drop the record so the orphan is not
			// rediscovered on every restart.
			s.recovered.OrphanRecords++
			_ = s.blobs.Delete(bucketJobs, id)
			continue
		}
		ids := entry.model.ObjectIDs()
		if len(rec.ObjectTypes) != len(ids) {
			s.recovered.SkippedBlobs++
			continue
		}
		objects := make([]objectInfo, len(ids))
		for i := range ids {
			objects[i] = objectInfo{ID: ids[i], Type: rec.ObjectTypes[i]}
		}
		j := &job{
			id:        rec.ID,
			networkID: rec.NetworkID,
			created:   rec.Created,
			state:     jobDone,
			progress:  core.Progress{Outer: rec.Outer, OuterTotal: rec.OuterTotal, Objective: rec.Objective, EMIterations: rec.EMIters},
			result:    entry.model,
			objects:   objects,
			metrics:   rec.Metrics,
			modelID:   rec.ModelID,
			started:   rec.Started,
			finished:  rec.Finished,
			done:      make(chan struct{}),
		}
		close(j.done)
		s.store.addJob(j)
		s.recovered.Jobs++
	}
	return s.recoverNetworks()
}

// recoverNetworks rebuilds every mutated network from its persisted base
// document plus the durable contiguous prefix of its delta log — sequence
// 0 upward, stopping at the first gap, torn record or inconsistent apply,
// and truncating the log there — so the restored network is exactly some
// acknowledged generation and the next mutation continues the sequence. A
// SIGKILL mid-mutation therefore loses nothing acknowledged. Delta
// records without a base (a crash between base-put and first append, or a
// base that rotted) are purged: they can never be applied again.
func (s *Server) recoverNetworks() error {
	baseIDs, err := s.blobs.List(bucketNetworks)
	if err != nil {
		return err
	}
	based := make(map[string]bool, len(baseIDs))
	for _, id := range baseIDs {
		based[id] = true
		data, err := s.blobs.Get(bucketNetworks, id)
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		net, err := hin.FromJSONLimited(data, s.cfg.Limits)
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		dl, err := deltalog.Open(s.blobs, id)
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		applied, err := dl.Replay(s.cfg.Limits, func(seq int, m *deltalog.Mutation) error {
			next, err := deltalog.Apply(net, m)
			if err != nil {
				return err
			}
			if err := s.cfg.Limits.CheckNetwork(next); err != nil {
				return err
			}
			net = next
			return nil
		})
		if err != nil {
			s.recovered.SkippedBlobs++
			continue
		}
		net.PrepareCSR()
		s.store.restoreNetwork(id, net, applied, dl)
		s.recovered.Networks++
		s.recovered.Mutations += applied
	}
	logIDs, err := deltalog.ListNetworkIDs(s.blobs)
	if err != nil {
		return err
	}
	for _, id := range logIDs {
		if based[id] {
			continue
		}
		dl, err := deltalog.Open(s.blobs, id)
		if err == nil {
			err = dl.Purge()
		}
		if err != nil {
			s.recovered.SkippedBlobs++
		} else {
			s.recovered.OrphanRecords++
		}
	}
	return nil
}
