package server

import (
	"encoding/json"
	"sync"
	"testing"

	"genclus/internal/core"
	"genclus/internal/hin"
	"genclus/internal/infer"
)

// fuzzAssignModel fits one tiny model for the fuzz target to validate
// against, so the fuzzer exercises the full decode → resolve → validate
// pipeline rather than just the JSON layer.
func fuzzAssignModel(f *testing.F) *core.Model {
	f.Helper()
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 8})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		b.AddObject(id, "doc")
		b.AddTermCount(id, "text", i%8, 1)
		b.AddNumeric(id, "score", float64(i))
	}
	for i := 0; i < 8; i++ {
		b.AddLink(string(rune('a'+i)), string(rune('a'+(i+1)%8)), "cites", 1)
	}
	net, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	opts := core.DefaultOptions(2)
	opts.OuterIters = 1
	opts.EMIters = 2
	opts.InitSeeds = 1
	m, err := core.Fit(net, opts)
	if err != nil {
		f.Fatal(err)
	}
	return m
}

// FuzzDecodeAssignRequest fuzzes the assign trust boundary: arbitrary
// bytes through decodeAssignRequest, then — when the document parses —
// through engine validation and scoring. The invariant is "typed error or
// correct result, never a panic or runaway allocation": the CI fuzz smoke
// runs this alongside the network and snapshot decoder fuzzers.
func FuzzDecodeAssignRequest(f *testing.F) {
	m := fuzzAssignModel(f)
	eng, err := infer.NewEngine(m, infer.Options{
		TopK:   2,
		Limits: infer.Limits{MaxBatch: 16, MaxLinks: 16, MaxTerms: 16, MaxValues: 16},
	})
	if err != nil {
		f.Fatal(err)
	}
	// The engine's scratch arena is single-threaded; fuzz workers in one
	// process share it behind a mutex.
	var mu sync.Mutex

	valid, _ := json.Marshal(infer.RequestDoc{
		TopK: 2,
		Objects: []infer.ObjectDoc{{
			ID:      "q",
			Links:   []infer.LinkDoc{{Relation: "cites", To: "a", Weight: 1}},
			Terms:   map[string][]infer.TermDoc{"text": {{Term: 1, Count: 2}}},
			Numeric: map[string][]float64{"score": {0.5}},
		}},
	})
	seeds := [][]byte{
		valid,
		[]byte(`{}`),
		[]byte(`{"objects":[]}`),
		[]byte(`{"objects":[{}]}`),
		[]byte(`{"objects":[{"links":[{"rel":"ghost","to":"a","w":1}]}]}`),
		[]byte(`{"objects":[{"links":[{"rel":"cites","to":"a","w":-1}]}]}`),
		[]byte(`{"objects":[{"terms":{"text":[{"t":99,"c":1}]}}]}`),
		[]byte(`{"objects":[{"terms":{"score":[{"t":0,"c":1}]}}]}`),
		[]byte(`{"objects":[{"numeric":{"score":[1e309]}}]}`),
		[]byte(`{"objects":[{"id":"x"},{"id":"y"},{"id":"z"}],"top_k":-3}`),
		[]byte(`[1,2,3]`),
		[]byte(`{"objects":`),
		[]byte("\x00\xff garbage"),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, queries, err := infer.DecodeRequest(data, 8)
		if err != nil {
			// Every rejection must be one of the typed 4xx shapes
			// writeAssignError knows how to map.
			switch err.(type) {
			case *infer.DecodeError, *infer.LimitError:
			default:
				t.Fatalf("decode returned untyped error %T: %v", err, err)
			}
			return
		}
		if len(queries) != len(req.Objects) {
			t.Fatalf("decoded %d queries for %d objects", len(queries), len(req.Objects))
		}
		mu.Lock()
		defer mu.Unlock()
		if err := eng.Validate(queries); err != nil {
			switch err.(type) {
			case *infer.QueryError, *infer.LimitError:
			default:
				t.Fatalf("validate returned untyped error %T: %v", err, err)
			}
			return
		}
		out, err := eng.AssignBatch(queries)
		if err != nil {
			t.Fatalf("validated batch failed to score: %v", err)
		}
		for _, a := range out {
			var sum float64
			for _, x := range a.Theta {
				if x < 0 {
					t.Fatalf("negative posterior %v", a.Theta)
				}
				sum += x
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("posterior does not sum to 1: %v", a.Theta)
			}
		}
	})
}
