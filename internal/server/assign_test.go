package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"genclus/internal/core"
	"genclus/internal/infer"
	"genclus/internal/snapshot"
)

// assignFixture fits one model on the standard two-topic test network and
// returns its model id plus the finished job's result (for cross-checking
// assignments against the fitted memberships).
func assignFixture(t *testing.T, ts *httptest.Server) (modelID string, res resultResponse) {
	t.Helper()
	jobID, status := finishJob(t, ts, 1)
	if status.ModelID == "" {
		t.Fatal("finished job has no model id")
	}
	return status.ModelID, fetchResult(t, ts, jobID)
}

// trainingAssignObject rebuilds one training object's links and text
// observation as an assign query, reading them straight out of the fitted
// result's network document counterpart.
func trainingAssignObject(obj objectResult, network []byte, t *testing.T) infer.ObjectDoc {
	t.Helper()
	var doc struct {
		Objects []struct {
			ID    string                     `json:"id"`
			Terms map[string][]infer.TermDoc `json:"terms"`
		} `json:"objects"`
		Links []struct {
			From string  `json:"from"`
			To   string  `json:"to"`
			Rel  string  `json:"rel"`
			W    float64 `json:"w"`
		} `json:"links"`
	}
	if err := json.Unmarshal(network, &doc); err != nil {
		t.Fatal(err)
	}
	out := infer.ObjectDoc{ID: obj.ID}
	for _, o := range doc.Objects {
		if o.ID == obj.ID {
			out.Terms = o.Terms
		}
	}
	for _, l := range doc.Links {
		if l.From == obj.ID {
			out.Links = append(out.Links, infer.LinkDoc{Relation: l.Rel, To: l.To, Weight: l.W})
		}
	}
	return out
}

func postAssign(t *testing.T, ts *httptest.Server, modelID string, req infer.RequestDoc) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/"+modelID+"/assign", payload)
}

// TestAssignEndpoint drives the happy path: fit, then fold the training
// objects back in over HTTP and check every assignment lands on its fitted
// cluster with a sane posterior, the top list respects top_k, and repeated
// identical requests return byte-identical assignments (the determinism
// contract at the API surface).
func TestAssignEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 12, 1)
	netID := uploadNetwork(t, ts, network)
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(1, 1)})
	status := waitForState(t, ts, jobID, jobDone)
	res := fetchResult(t, ts, jobID)

	req := infer.RequestDoc{TopK: 2}
	for _, obj := range res.Objects {
		req.Objects = append(req.Objects, trainingAssignObject(obj, network, t))
	}
	code, body := postAssign(t, ts, status.ModelID, req)
	if code != http.StatusOK {
		t.Fatalf("assign: status %d: %s", code, body)
	}
	var resp assignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelID != status.ModelID || resp.K != 2 {
		t.Fatalf("assign response header: %+v", resp)
	}
	if len(resp.Assignments) != len(res.Objects) {
		t.Fatalf("got %d assignments for %d objects", len(resp.Assignments), len(res.Objects))
	}
	for i, a := range resp.Assignments {
		want := res.Objects[i]
		if a.ID != want.ID {
			t.Fatalf("assignment %d echoes id %q, want %q", i, a.ID, want.ID)
		}
		if a.Cluster != want.Cluster {
			t.Errorf("object %s assigned to cluster %d, fitted %d (theta %v vs %v)",
				a.ID, a.Cluster, want.Cluster, a.Theta, want.Theta)
		}
		if len(a.Theta) != 2 || len(a.Top) != 2 {
			t.Fatalf("object %s: theta %v top %v, want K=2 rows", a.ID, a.Theta, a.Top)
		}
		if a.Top[0].P < a.Top[1].P || a.Top[0].Cluster != a.Cluster {
			t.Fatalf("object %s: top list %v inconsistent with cluster %d", a.ID, a.Top, a.Cluster)
		}
		if a.FoldInIters < 1 {
			t.Fatalf("object %s: fold_in_iters %d", a.ID, a.FoldInIters)
		}
	}

	// Identical request ⇒ identical bytes' worth of assignments.
	code2, body2 := postAssign(t, ts, status.ModelID, req)
	if code2 != http.StatusOK {
		t.Fatalf("second assign: %d", code2)
	}
	var resp2 assignResponse
	if err := json.Unmarshal(body2, &resp2); err != nil {
		t.Fatal(err)
	}
	for i := range resp.Assignments {
		for k := range resp.Assignments[i].Theta {
			if resp.Assignments[i].Theta[k] != resp2.Assignments[i].Theta[k] {
				t.Fatalf("assignment %d theta[%d] differs across identical requests", i, k)
			}
		}
	}

	// Default top_k is 1.
	code, body = postAssign(t, ts, status.ModelID, infer.RequestDoc{Objects: req.Objects[:1]})
	if code != http.StatusOK {
		t.Fatalf("assign default top_k: %d: %s", code, body)
	}
	var one assignResponse
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Assignments[0].Top) != 1 {
		t.Fatalf("default top list %v, want length 1", one.Assignments[0].Top)
	}
}

// TestAssignRejections drives the trust boundary: every malformed or
// oversized request is a typed 4xx, never a 5xx, and the daemon keeps
// serving afterwards.
func TestAssignRejections(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxAssignBatch: 4, MaxAssignLinks: 2, MaxAssignObs: 3})
	modelID, _ := assignFixture(t, ts)

	post := func(payload string) (int, []byte) {
		t.Helper()
		return doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/"+modelID+"/assign", []byte(payload))
	}

	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/mdl_nope/assign", []byte(`{"objects":[{}]}`)); code != http.StatusNotFound {
		t.Fatalf("unknown model: %d, want 404", code)
	}
	cases := []struct {
		name    string
		payload string
		want    int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"no objects", `{"objects":[]}`, http.StatusBadRequest},
		{"negative top_k", `{"objects":[{}],"top_k":-1}`, http.StatusBadRequest},
		{"batch overflow", `{"objects":[{},{},{},{},{}]}`, http.StatusRequestEntityTooLarge},
		{"unknown relation", `{"objects":[{"links":[{"rel":"ghost","to":"doc0000","w":1}]}]}`, http.StatusBadRequest},
		{"unknown target", `{"objects":[{"links":[{"rel":"cites","to":"ghost","w":1}]}]}`, http.StatusBadRequest},
		{"bad weight", `{"objects":[{"links":[{"rel":"cites","to":"doc0000","w":-1}]}]}`, http.StatusBadRequest},
		{"links overflow", `{"objects":[{"links":[{"rel":"cites","to":"doc0000","w":1},{"rel":"cites","to":"doc0001","w":1},{"rel":"cites","to":"doc0002","w":1}]}]}`, http.StatusRequestEntityTooLarge},
		{"unknown attribute", `{"objects":[{"terms":{"ghost":[{"t":0,"c":1}]}}]}`, http.StatusBadRequest},
		{"term out of vocab", `{"objects":[{"terms":{"text":[{"t":99,"c":1}]}}]}`, http.StatusBadRequest},
		{"bad count", `{"objects":[{"terms":{"text":[{"t":0,"c":0}]}}]}`, http.StatusBadRequest},
		{"terms overflow", `{"objects":[{"terms":{"text":[{"t":0,"c":1},{"t":1,"c":1},{"t":2,"c":1},{"t":3,"c":1}]}}]}`, http.StatusRequestEntityTooLarge},
		{"numeric on categorical", `{"objects":[{"numeric":{"text":[1]}}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post(tc.payload)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, body)
		}
	}

	// An information-free object is fine (uniform), and the daemon still
	// answers after the barrage.
	code, body := post(`{"objects":[{"id":"empty"}]}`)
	if code != http.StatusOK {
		t.Fatalf("empty object after rejections: %d: %s", code, body)
	}
	var resp assignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if th := resp.Assignments[0].Theta; th[0] != 0.5 || th[1] != 0.5 {
		t.Fatalf("information-free posterior %v, want uniform", th)
	}
}

// TestAssignMicroBatching fires concurrent requests inside one batching
// window and checks that they coalesced into shared engine passes — fewer
// passes than requests, batched_requests counted, and per-request results
// still correct and isolated.
func TestAssignMicroBatching(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, AssignBatchWindow: 150 * time.Millisecond})
	modelID, res := assignFixture(t, ts)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	batched := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj := res.Objects[i%len(res.Objects)]
			req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: fmt.Sprintf("q%d", i), Links: []infer.LinkDoc{{Relation: "cites", To: obj.ID, Weight: 1}}}}}
			payload, _ := json.Marshal(req)
			hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs[i] = err
				return
			}
			defer hr.Body.Close()
			var resp assignResponse
			if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil || hr.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d err %v", hr.StatusCode, err)
				return
			}
			if len(resp.Assignments) != 1 || resp.Assignments[0].ID != fmt.Sprintf("q%d", i) {
				errs[i] = fmt.Errorf("wrong assignment routed: %+v", resp.Assignments)
				return
			}
			batched[i] = resp.Batched
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	var health healthResponse
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	a := health.Assign
	if a.Requests != n || a.Objects != n {
		t.Fatalf("assign counters %+v, want %d requests/objects", a, n)
	}
	if a.EnginePasses >= n {
		t.Fatalf("no coalescing: %d passes for %d concurrent requests", a.EnginePasses, n)
	}
	if a.BatchedRequests < 2 {
		t.Fatalf("batched_requests = %d, want ≥ 2", a.BatchedRequests)
	}
	anyBatched := false
	for _, b := range batched {
		anyBatched = anyBatched || b
	}
	if !anyBatched {
		t.Fatal("no response reported batched=true")
	}
	if a.EngineCacheMisses != 1 || a.EngineCacheHits < n-1 {
		t.Fatalf("engine cache hits=%d misses=%d, want 1 miss and ≥%d hits", a.EngineCacheHits, a.EngineCacheMisses, n-1)
	}
}

// TestAssignConcurrentNoLeak hammers one model from many goroutines with
// batching enabled and checks (under -race in CI) that results stay
// isolated and no dispatcher goroutine outlives its requests.
func TestAssignConcurrentNoLeak(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, AssignBatchWindow: time.Millisecond})
	modelID, res := assignFixture(t, ts)
	baseline := runtime.NumGoroutine()

	const workers, rounds = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				obj := res.Objects[(w+r)%len(res.Objects)]
				req := infer.RequestDoc{Objects: []infer.ObjectDoc{{ID: obj.ID, Links: []infer.LinkDoc{{Relation: "cites", To: obj.ID, Weight: 1}}}}}
				payload, _ := json.Marshal(req)
				hr, err := http.Post(ts.URL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Error(err)
					return
				}
				var resp assignResponse
				err = json.NewDecoder(hr.Body).Decode(&resp)
				hr.Body.Close()
				if err != nil || hr.StatusCode != http.StatusOK {
					t.Errorf("status %d err %v", hr.StatusCode, err)
					return
				}
				if resp.Assignments[0].ID != obj.ID {
					t.Errorf("cross-request result leak: got %q want %q", resp.Assignments[0].ID, obj.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for {
		ts.Client().CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after concurrent assigns: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAssignEngineCacheSharedByDigest checks that importing the exported
// snapshot of a fitted model — a second registry entry with the same
// canonical bytes — reuses the cached engine, because the cache is keyed
// by snapshot digest rather than model id.
func TestAssignEngineCacheSharedByDigest(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, AssignBatchWindow: -1})
	modelID, res := assignFixture(t, ts)

	code, snap := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+modelID+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("export: %d", code)
	}
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/import", snap)
	if code != http.StatusCreated {
		t.Fatalf("import: %d: %s", code, body)
	}
	var imported modelResponse
	if err := json.Unmarshal(body, &imported); err != nil {
		t.Fatal(err)
	}

	req := infer.RequestDoc{Objects: []infer.ObjectDoc{{Links: []infer.LinkDoc{{Relation: "cites", To: res.Objects[0].ID, Weight: 1}}}}}
	if code, body := postAssign(t, ts, modelID, req); code != http.StatusOK {
		t.Fatalf("assign original: %d: %s", code, body)
	}
	if code, body := postAssign(t, ts, imported.ID, req); code != http.StatusOK {
		t.Fatalf("assign import: %d: %s", code, body)
	}

	var health healthResponse
	_, hb := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Assign.EngineCacheMisses != 1 || health.Assign.EngineCacheHits != 1 {
		t.Fatalf("cache hits=%d misses=%d, want one engine shared across both registry entries",
			health.Assign.EngineCacheHits, health.Assign.EngineCacheMisses)
	}
	// Window disabled (-1): nothing may report batched.
	if health.Assign.BatchedRequests != 0 {
		t.Fatalf("batched_requests = %d with coalescing disabled", health.Assign.BatchedRequests)
	}

	// Deleting one of the two entries keeps the shared engine (the digest
	// is still live); deleting the last one drops it, so a re-import of
	// the same bytes rebuilds — visible as a second cache miss.
	if code, _ := doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/models/"+imported.ID, nil); code != http.StatusNoContent {
		t.Fatalf("delete imported: %d", code)
	}
	if code, body := postAssign(t, ts, modelID, req); code != http.StatusOK {
		t.Fatalf("assign after deleting twin: %d: %s", code, body)
	}
	if code, _ := doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/models/"+modelID, nil); code != http.StatusNoContent {
		t.Fatalf("delete original: %d", code)
	}
	code, body = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/import", snap)
	if code != http.StatusCreated {
		t.Fatalf("re-import: %d: %s", code, body)
	}
	var again modelResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if code, body := postAssign(t, ts, again.ID, req); code != http.StatusOK {
		t.Fatalf("assign re-import: %d: %s", code, body)
	}
	_, hb = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Assign.EngineCacheMisses != 2 {
		t.Fatalf("cache misses = %d after last-entry delete + re-import, want 2 (engine was purged)",
			health.Assign.EngineCacheMisses)
	}
}

// TestModelEpsilonMeta pins the epsilon provenance contract: the engine
// takes the fit's recorded Θ floor when the snapshot meta carries a valid
// one, and falls back to the default (0) on absent, unparsable, or
// out-of-domain values rather than failing serving.
func TestModelEpsilonMeta(t *testing.T) {
	model, err := core.NewModel(&core.Result{K: 2, Theta: [][]float64{{0.5, 0.5}}}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{}
	cases := []struct {
		name string
		meta map[string]string
		want float64
	}{
		{"recorded", map[string]string{snapshot.MetaEpsilon: snapshot.FormatEpsilon(1e-3)}, 1e-3},
		{"default recorded", map[string]string{snapshot.MetaEpsilon: snapshot.FormatEpsilon(1e-9)}, 1e-9},
		{"absent", nil, 0},
		{"junk", map[string]string{snapshot.MetaEpsilon: "not-a-float"}, 0},
		{"zero", map[string]string{snapshot.MetaEpsilon: "0x0p+00"}, 0},
		{"too large for K", map[string]string{snapshot.MetaEpsilon: "0x1p+00"}, 0},
	}
	for _, tc := range cases {
		e := &modelEntry{model: model, meta: tc.meta}
		if got := s.modelEpsilon(e); got != tc.want {
			t.Errorf("%s: modelEpsilon = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestAssignCustomEpsilonBitwise drives the epsilon provenance end to end
// over HTTP: a fit submitted with a non-default epsilon converges to an
// exact fixed point, its snapshot meta records the epsilon, and the assign
// engine — built from that provenance — reproduces the fitted Θ rows of
// the training objects bit for bit.
func TestAssignCustomEpsilonBitwise(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 12, 3)
	netID := uploadNetwork(t, ts, network)
	outer, em, seeds := 1, 3000, 1
	emTol, eps := 1e-300, 1e-6
	learn := false
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, EMIters: &em, EMTol: &emTol, InitSeeds: &seeds,
		LearnGamma: &learn, Epsilon: &eps,
	}})
	status := waitForState(t, ts, jobID, jobDone)
	res := fetchResult(t, ts, jobID)
	if res.EMIterations >= em {
		t.Fatalf("fit did not reach an exact fixed point (%d EM iterations)", res.EMIterations)
	}

	// The exported snapshot must carry the fit's epsilon in its meta.
	code, snap := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+status.ModelID+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("export: %d", code)
	}
	decoded, err := snapshot.Decode(snap, snapshot.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshot.EpsilonFromMeta(decoded.Meta, 2); got != eps {
		t.Fatalf("snapshot meta epsilon = %v, want %v", got, eps)
	}

	// Assigning the training objects reproduces Θ bitwise — which only
	// works if the engine flooring matches the fit's epsilon.
	req := infer.RequestDoc{}
	for _, obj := range res.Objects {
		req.Objects = append(req.Objects, trainingAssignObject(obj, network, t))
	}
	code, body := postAssign(t, ts, status.ModelID, req)
	if code != http.StatusOK {
		t.Fatalf("assign: %d: %s", code, body)
	}
	var resp assignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, a := range resp.Assignments {
		for k, x := range a.Theta {
			if x != res.Objects[i].Theta[k] {
				t.Fatalf("object %s theta[%d]: assigned %v, fitted %v (epsilon not honored?)",
					a.ID, k, x, res.Objects[i].Theta[k])
			}
		}
	}
}

// TestAssignDispatcherPanicContainment wedge-proofs the dispatcher: a
// panicking engine pass (simulated with a nil engine) must fail the
// waiting calls with an error instead of hanging them, and leadership
// must be released so later requests still get answered rather than
// queueing behind a dead leader forever.
func TestAssignDispatcherPanicContainment(t *testing.T) {
	d := &assignDispatcher{eng: nil, maxBatch: 4, stats: &assignCounters{}}
	run := func() *assignCall {
		t.Helper()
		call := &assignCall{queries: make([]infer.Query, 1), topK: 1}
		done := make(chan struct{})
		go func() { d.do(call); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("dispatcher wedged: do() never returned after a panicking pass")
		}
		return call
	}
	first := run()
	if first.err == nil {
		t.Fatal("panicked pass must fail the call, not return results")
	}
	// Leadership was released: the next call is also answered (and fails
	// the same way, since the engine is still nil).
	second := run()
	if second.err == nil {
		t.Fatal("second call after contained panic must also be answered")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.leaderActive || len(d.pending) != 0 {
		t.Fatalf("dispatcher state not reset: leaderActive=%v pending=%d", d.leaderActive, len(d.pending))
	}
}
