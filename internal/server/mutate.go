package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"sync"

	"genclus/internal/deltalog"
	"genclus/internal/hin"
	diskstore "genclus/internal/store"
)

// Streaming mutation: POST /v1/networks/{id}/edges (add/remove links),
// POST /v1/networks/{id}/objects (add objects with links and
// observations), PATCH /v1/networks/{id}/attributes (replace per-object
// observations). Each request decodes behind the hin.Limits trust
// boundary, applies as a new immutable view generation (in-flight fits
// and assigns keep their snapshot), appends to the network's crash-safe
// delta log, and only then publishes the new view — so an acknowledged
// mutation is durable, and a SIGKILL at any point leaves a replayable
// contiguous log prefix. The first mutation of a network also persists
// the network's base document, which is what the log replays against on
// recovery.

// bucketNetworks holds the base document of every mutated network (plain
// uploads stay memory-only until their first mutation).
const bucketNetworks = "networks"

// mutationResponse acknowledges one applied mutation.
type mutationResponse struct {
	NetworkID string `json:"network_id"`
	// Generation counts mutations applied to this network since upload or
	// recovery; monotonically increasing, one per acknowledged request.
	Generation int `json:"generation"`
	// Objects and Links are the new view's totals.
	Objects int `json:"objects"`
	Links   int `json:"links"`
	// DeltaLogDepth is the network's delta-log depth after this append.
	DeltaLogDepth int `json:"delta_log_depth"`
}

// supervisorStatusResponse is the GET /v1/networks/{id}/supervisor reply.
type supervisorStatusResponse struct {
	NetworkID string `json:"network_id"`
	// Active reports whether a supervisor goroutine watches this network
	// (false until the first mutation, or when supervision is disabled).
	Active     bool `json:"active"`
	Generation int  `json:"generation"`
	// DeltaLogDepth counts mutations logged over the network's lifetime.
	DeltaLogDepth int `json:"delta_log_depth"`
	// LastRefitGeneration is the generation the most recent auto-refit
	// captured; PendingMutations = Generation − LastRefitGeneration.
	LastRefitGeneration int `json:"last_refit_generation"`
	PendingMutations    int `json:"pending_mutations"`
	// DriftScore is the last evaluated drift signal: mean total-variation
	// distance between touched objects' fold-in posteriors and the
	// newest model's frozen memberships, in [0, 1].
	DriftScore float64 `json:"drift_score"`
	// RefitJobID is the in-flight auto-refit job, "" when idle;
	// LastModelID the model the last successful auto-refit published.
	RefitJobID  string `json:"refit_job_id,omitempty"`
	LastModelID string `json:"last_model_id,omitempty"`
	// Refit trigger/success/failure counters, monotone.
	RefitsTriggered int64 `json:"refits_triggered"`
	RefitsSucceeded int64 `json:"refits_succeeded"`
	RefitsFailed    int64 `json:"refits_failed"`
}

// mutationStatsResponse is the healthz mutation block. Monotone counters
// come from mutationCounters; the instantaneous fields (delta-log depth,
// supervisor count) are computed from the store at snapshot time.
type mutationStatsResponse struct {
	// Mutations counts acknowledged mutation requests.
	Mutations int64 `json:"mutations"`
	// DeltaLogDepth sums delta-log depth across live networks.
	DeltaLogDepth int64 `json:"delta_log_depth"`
	// Supervisors counts live continuous-clustering supervisors.
	Supervisors int64 `json:"supervisors"`
	// DriftScore is the most recently evaluated drift signal.
	DriftScore float64 `json:"drift_score"`
	// RefitsTriggered/Succeeded/Failed count supervisor-scheduled refits.
	RefitsTriggered int64 `json:"refits_triggered"`
	RefitsSucceeded int64 `json:"refits_succeeded"`
	RefitsFailed    int64 `json:"refits_failed"`
}

// mutationCounters are the monotone mutation/supervisor counters behind
// /healthz's mutation block, incremented together with their /metrics
// mirrors (same discipline as assignCounters).
type mutationCounters struct {
	mu        sync.Mutex
	mutations int64
	drift     float64
	triggered int64
	succeeded int64
	failed    int64

	met *serverMetrics
}

// recordMutation accounts one acknowledged mutation.
func (c *mutationCounters) recordMutation() {
	c.mu.Lock()
	c.mutations++
	c.mu.Unlock()
	if c.met != nil {
		c.met.networkMutations.Inc()
	}
}

// recordDrift records the latest evaluated drift score; the /metrics
// mirror (genclus_supervisor_drift_score) is a GaugeFunc over driftScore.
func (c *mutationCounters) recordDrift(score float64) {
	c.mu.Lock()
	c.drift = score
	c.mu.Unlock()
}

// driftScore reads the latest drift score for the metrics gauge.
func (c *mutationCounters) driftScore() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drift
}

func (c *mutationCounters) refitTriggered() {
	c.mu.Lock()
	c.triggered++
	c.mu.Unlock()
	if c.met != nil {
		c.met.supervisorRefitsTriggered.Inc()
	}
}

func (c *mutationCounters) refitSucceeded() {
	c.mu.Lock()
	c.succeeded++
	c.mu.Unlock()
	if c.met != nil {
		c.met.supervisorRefitsSucceeded.Inc()
	}
}

func (c *mutationCounters) refitFailed() {
	c.mu.Lock()
	c.failed++
	c.mu.Unlock()
	if c.met != nil {
		c.met.supervisorRefitsFailed.Inc()
	}
}

// snapshot assembles the healthz mutation block; st supplies the
// instantaneous fields.
func (c *mutationCounters) snapshot(st *store) mutationStatsResponse {
	depth := int64(st.deltaDepth())
	sups := int64(st.numSupervisors())
	c.mu.Lock()
	defer c.mu.Unlock()
	return mutationStatsResponse{
		Mutations:       c.mutations,
		DeltaLogDepth:   depth,
		Supervisors:     sups,
		DriftScore:      c.drift,
		RefitsTriggered: c.triggered,
		RefitsSucceeded: c.succeeded,
		RefitsFailed:    c.failed,
	}
}

// ---- handlers ----

func (s *Server) handleMutateEdges(w http.ResponseWriter, r *http.Request) {
	s.handleMutation(w, r, deltalog.OpEdges)
}

func (s *Server) handleMutateObjects(w http.ResponseWriter, r *http.Request) {
	s.handleMutation(w, r, deltalog.OpObjects)
}

func (s *Server) handleMutateAttributes(w http.ResponseWriter, r *http.Request) {
	s.handleMutation(w, r, deltalog.OpAttributes)
}

// handleMutation is the shared mutation path:
// decode (trust boundary) → apply (new immutable view) → post-apply limit
// check → first-mutation base persistence + log attach → append (durable)
// → publish (visible) → supervisor notify. The whole apply-to-publish
// span holds the entry's mutMu, so generations and log sequence numbers
// advance in lockstep and TTL retirement can never interleave with a
// half-applied mutation.
func (s *Server) handleMutation(w http.ResponseWriter, r *http.Request, op deltalog.Op) {
	id := r.PathValue("id")
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	m, err := deltalog.Decode(op, data, s.cfg.Limits)
	if err != nil {
		writeMutationError(w, err)
		return
	}
	entry, ok := s.store.networkEntry(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown network %q", id)
		return
	}
	entry.mutMu.Lock()
	defer entry.mutMu.Unlock()
	cur := entry.net // stable: all net writers hold mutMu
	next, err := deltalog.Apply(cur, m)
	if err != nil {
		writeMutationError(w, err)
		return
	}
	if err := s.cfg.Limits.CheckNetwork(next); err != nil {
		writeMutationError(w, err)
		return
	}
	next.PrepareCSR()
	dl := entry.dlog // writes happen under mutMu (held) + store.mu
	if dl == nil {
		dl, ok = s.openDeltaLog(w, id, entry, cur)
		if !ok {
			return
		}
	}
	if _, err := dl.Append(m); err != nil {
		// Degraded durability, same contract as a failed snapshot write:
		// keep serving the new view, count and log the failure. Replay
		// after a restart recovers only the durable contiguous prefix.
		s.persistFailure("append delta log for network "+id, err)
	}
	gen, ok := s.store.publishNetwork(id, entry, next)
	if !ok {
		// TTL eviction raced the mutation; the retire path purges any
		// record this request appended (it serializes on mutMu).
		writeError(w, http.StatusNotFound, "unknown network %q", id)
		return
	}
	s.mutationStats.recordMutation()
	if sup := s.ensureSupervisor(id, entry); sup != nil {
		sup.recordTouched(m.Touched())
		sup.poke()
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "network mutated",
		slog.String("req", requestID(r.Context())),
		slog.String("network", id),
		slog.String("op", string(op)),
		slog.Int("generation", gen),
	)
	writeJSON(w, http.StatusOK, mutationResponse{
		NetworkID:     id,
		Generation:    gen,
		Objects:       next.NumObjects(),
		Links:         next.NumEdges(),
		DeltaLogDepth: dl.Depth(),
	})
}

// openDeltaLog sets up a network's durability on first mutation: persist
// the base document (what recovery replays deltas against), open the
// log, and attach it to the entry — failing with 404 if the entry was
// evicted meanwhile. Disk trouble degrades to a memory-only log (counted
// via persistFailure), mirroring how fit persistence degrades.
func (s *Server) openDeltaLog(w http.ResponseWriter, id string, entry *networkEntry, base *hin.Network) (*deltalog.Log, bool) {
	blobs := s.blobs
	if blobs != nil {
		doc, err := base.MarshalJSON()
		if err == nil {
			err = blobs.Put(bucketNetworks, id, doc)
		}
		if err != nil {
			s.persistFailure("persist base network "+id, err)
			blobs = nil
		}
	}
	dl, err := deltalog.Open(blobs, id)
	if err != nil {
		s.persistFailure("open delta log for network "+id, err)
		dl, _ = deltalog.Open(nil, id) // memory-only: never fails
	}
	if !s.store.attachLog(id, entry, dl) {
		writeError(w, http.StatusNotFound, "unknown network %q", id)
		return nil, false
	}
	return dl, true
}

// writeMutationError maps the mutation trust boundary's typed errors onto
// status codes: limit overflows 413, malformed documents and semantic
// contradictions 400 — bad input is never a 5xx.
func writeMutationError(w http.ResponseWriter, err error) {
	var le *hin.LimitError
	if errors.As(err, &le) {
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	var fe *deltalog.FormatError
	var ae *deltalog.ApplyError
	if errors.As(err, &fe) || errors.As(err, &ae) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

func (s *Server) handleSupervisorStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.store
	st.mu.Lock()
	e, ok := st.networks[id]
	if !ok {
		st.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown network %q", id)
		return
	}
	e.lastUsed = st.now()
	gen := e.generation
	dlog := e.dlog
	sup := e.sup
	st.mu.Unlock()
	resp := supervisorStatusResponse{
		NetworkID:  id,
		Active:     sup != nil,
		Generation: gen,
	}
	if dlog != nil {
		resp.DeltaLogDepth = dlog.Depth()
	}
	if sup != nil {
		ss := sup.status()
		resp.LastRefitGeneration = ss.lastRefitGen
		resp.PendingMutations = gen - ss.lastRefitGen
		resp.DriftScore = ss.lastDrift
		resp.RefitJobID = ss.refitJobID
		resp.LastModelID = ss.lastModelID
		resp.RefitsTriggered = ss.triggered
		resp.RefitsSucceeded = ss.succeeded
		resp.RefitsFailed = ss.failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// retireNetwork finishes a TTL eviction outside the store lock: stop the
// supervisor (no goroutine leak), purge the delta log (no orphan records
// — the deletes fsync the bucket directory), and drop the persisted base.
// Taking mutMu serializes with any in-flight mutation that still holds
// the evicted entry: by the time the purge runs, that mutation has either
// fully appended (and its record is purged here) or failed its publish.
func (s *Server) retireNetwork(id string, e *networkEntry) {
	if e.sup != nil {
		e.sup.halt()
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if e.dlog != nil {
		if err := e.dlog.Purge(); err != nil {
			s.persistFailure("purge delta log for network "+id, err)
		}
		if s.blobs != nil {
			if err := s.blobs.Delete(bucketNetworks, id); err != nil && !errors.Is(err, diskstore.ErrNotFound) {
				s.persistFailure("drop base network "+id, err)
			}
		}
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "network evicted",
		slog.String("network", id),
	)
}
