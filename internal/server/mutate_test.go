package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"genclus/internal/deltalog"
	"genclus/internal/hin"
	diskstore "genclus/internal/store"
)

// mutate posts one mutation and returns status + decoded response (zero on
// non-200).
func mutate(t *testing.T, ts *httptest.Server, method, path, doc string) (int, mutationResponse) {
	t.Helper()
	code, body := doReq(t, ts.Client(), method, ts.URL+path, []byte(doc))
	var resp mutationResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("mutation response not JSON: %s", body)
		}
	}
	return code, resp
}

func supStatus(t *testing.T, ts *httptest.Server, netID string) supervisorStatusResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/networks/"+netID+"/supervisor", nil)
	if code != http.StatusOK {
		t.Fatalf("supervisor status: %d: %s", code, body)
	}
	var resp supervisorStatusResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMutateNetwork drives all three mutation surfaces against a live
// network and pins the response contract: generation monotone, totals
// reflecting the new view, typed 400/404/413 for bad input.
func TestMutateNetwork(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, SupervisorDisabled: true})
	network, _ := testNetworkJSON(t, 5, 1)
	netID := uploadNetwork(t, ts, network)

	// Add a new object with a link into the existing network.
	code, resp := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"fresh1","type":"doc","terms":{"text":[{"t":3,"c":2}]}}],"links":[{"from":"fresh1","to":"doc0000","rel":"cites","w":1}]}`)
	if code != http.StatusOK {
		t.Fatalf("objects mutation: %d", code)
	}
	if resp.Generation != 1 || resp.Objects != 11 || resp.DeltaLogDepth != 1 {
		t.Fatalf("objects response: %+v", resp)
	}

	// Add and remove edges in one request.
	code, resp = mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/edges",
		`{"add":[{"from":"doc0001","to":"fresh1","rel":"cites","w":2}],"remove":[{"from":"fresh1","to":"doc0000","rel":"cites"}]}`)
	if code != http.StatusOK || resp.Generation != 2 {
		t.Fatalf("edges mutation: %d %+v", code, resp)
	}

	// Patch attributes, including a clear.
	code, resp = mutate(t, ts, http.MethodPatch, "/v1/networks/"+netID+"/attributes",
		`{"set":[{"id":"fresh1","terms":{"text":[{"t":7,"c":1}]}},{"id":"doc0000","terms":{"text":[]}}]}`)
	if code != http.StatusOK || resp.Generation != 3 || resp.DeltaLogDepth != 3 {
		t.Fatalf("attributes mutation: %d %+v", code, resp)
	}

	// The status endpoint tracks the generation even without a supervisor.
	if st := supStatus(t, ts, netID); st.Generation != 3 || st.Active {
		t.Fatalf("status after three mutations: %+v", st)
	}

	// Typed failures: malformed 400, semantic contradiction 400, unknown
	// network 404, oversized 413.
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/edges", `{`); code != http.StatusBadRequest {
		t.Fatalf("malformed mutation: %d, want 400", code)
	}
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/edges",
		`{"add":[{"from":"ghost","to":"doc0000","rel":"cites","w":1}]}`); code != http.StatusBadRequest {
		t.Fatalf("contradictory mutation: %d, want 400", code)
	}
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/nope/edges",
		`{"add":[{"from":"a","to":"b","rel":"r","w":1}]}`); code != http.StatusNotFound {
		t.Fatalf("unknown network: %d, want 404", code)
	}
	// Failed mutations do not advance the generation.
	if code, resp := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/edges",
		`{"add":[{"from":"doc0001","to":"doc0002","rel":"cites","w":1}]}`); code != http.StatusOK || resp.Generation != 4 {
		t.Fatalf("post-failure mutation: %d gen %d, want 200 gen 4", code, resp.Generation)
	}

	h := fetchHealth(t, ts)
	if h.Mutation.Mutations != 4 || h.Mutation.DeltaLogDepth != 4 {
		t.Fatalf("healthz mutation block: %+v", h.Mutation)
	}
	if h.Mutation.Supervisors != 0 {
		t.Fatalf("supervisors running despite SupervisorDisabled: %+v", h.Mutation)
	}
}

// TestMutateLimits pins the 413 path: a mutation pushing the network past
// the configured caps is rejected and the view stays put.
func TestMutateLimits(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers:            1,
		SupervisorDisabled: true,
		Limits:             hin.Limits{MaxObjects: 12, MaxLinks: 100, MaxVocab: 20, MaxObservations: 1000, MaxAttributes: 4},
	})
	network, _ := testNetworkJSON(t, 5, 1)
	netID := uploadNetwork(t, ts, network)

	// 3 new objects would make 13 > 12: post-apply CheckNetwork trips.
	code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"n1","type":"doc"},{"id":"n2","type":"doc"},{"id":"n3","type":"doc"}]}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit mutation: %d, want 413", code)
	}
	if st := supStatus(t, ts, netID); st.Generation != 0 {
		t.Fatalf("rejected mutation advanced the generation: %+v", st)
	}
	// A within-limits mutation still lands, on the untouched 10-object view.
	code, resp := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"ok1","type":"doc"}]}`)
	if code != http.StatusOK || resp.Objects != 11 {
		t.Fatalf("rejected mutation left the view dirty: %d %+v", code, resp)
	}
}

// TestMutationRecovery pins the tentpole durability contract: base + delta
// log survive a cold restart, the network comes back at its exact
// generation under its original ID, and the sequence continues.
func TestMutationRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, Config{Workers: 1, DataDir: dir, SupervisorDisabled: true})
	network, _ := testNetworkJSON(t, 5, 1)
	netID := uploadNetwork(t, ts, network)

	for i, doc := range []string{
		`{"objects":[{"id":"r1","type":"doc"}],"links":[{"from":"r1","to":"doc0000","rel":"cites","w":1}]}`,
		`{"add":[{"from":"doc0001","to":"r1","rel":"cites","w":1}]}`,
		`{"set":[{"id":"r1","terms":{"text":[{"t":1,"c":1}]}}]}`,
	} {
		method, path := http.MethodPost, "/v1/networks/"+netID+"/edges"
		switch i {
		case 0:
			path = "/v1/networks/" + netID + "/objects"
		case 2:
			method, path = http.MethodPatch, "/v1/networks/"+netID+"/attributes"
		}
		if code, _ := mutate(t, ts, method, path, doc); code != http.StatusOK {
			t.Fatalf("mutation %d: %d", i, code)
		}
	}

	// The base document and three delta records are on disk.
	if ids, err := deltalog.ListNetworkIDs(mustStore(t, dir)); err != nil || len(ids) != 1 || ids[0] != netID {
		t.Fatalf("delta records on disk: %v, %v", ids, err)
	}

	ts.Close()

	s2, ts2 := testServer(t, Config{Workers: 1, DataDir: dir, SupervisorDisabled: true})
	rec := s2.Recovered()
	if rec.Networks != 1 || rec.Mutations != 3 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if st := supStatus(t, ts2, netID); st.Generation != 3 || st.DeltaLogDepth != 3 {
		t.Fatalf("recovered network status: %+v", st)
	}
	// The recovered view has all 11 objects (base 10 + replayed r1), and
	// the generation and log sequence resume where they left off.
	code, resp := mutate(t, ts2, http.MethodPost, "/v1/networks/"+netID+"/edges",
		`{"add":[{"from":"doc0002","to":"r1","rel":"cites","w":1}]}`)
	if code != http.StatusOK || resp.Generation != 4 || resp.DeltaLogDepth != 4 || resp.Objects != 11 {
		t.Fatalf("post-recovery mutation: %d %+v", code, resp)
	}
	if st := supStatus(t, ts2, netID); st.Generation != 4 || st.Active {
		t.Fatalf("post-recovery supervisor status: %+v", st)
	}
}

// TestMutationIsolatesInFlightViews pins immutability: a fit submitted
// before a mutation runs against the pre-mutation view even if the
// mutation publishes first.
func TestMutationIsolatesInFlightViews(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, SupervisorDisabled: true})
	network, _ := testNetworkJSON(t, 10, 1)
	netID := uploadNetwork(t, ts, network)

	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(7, 1)})
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"late1","type":"doc"}]}`); code != http.StatusOK {
		t.Fatal("mutation failed")
	}
	waitForState(t, ts, jobID, jobDone)
	res := fetchResult(t, ts, jobID)
	if len(res.Objects) != 20 {
		t.Fatalf("pre-mutation fit saw %d objects, want the pinned 20", len(res.Objects))
	}
	for _, o := range res.Objects {
		if o.ID == "late1" {
			t.Fatal("fit leaked a post-submit mutation into its view")
		}
	}
}

// mustStore opens the blob store rooted at the daemon data dir for
// test-side inspection.
func mustStore(t *testing.T, dir string) *diskstore.Store {
	t.Helper()
	st, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSupervisorEvictionCleanup pins the TTL-eviction fix: evicting a
// mutated network stops its supervisor goroutine and removes its delta log
// and base document from disk — no goroutine leak, no orphan files.
func TestSupervisorEvictionCleanup(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	s, ts := testServer(t, Config{
		Workers:            1,
		DataDir:            dir,
		JobTTL:             time.Minute,
		SweepEvery:         10 * time.Millisecond,
		SupervisorInterval: 5 * time.Millisecond,
		now:                clock.Now,
	})
	network, _ := testNetworkJSON(t, 5, 1)
	netID := uploadNetwork(t, ts, network)

	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"e1","type":"doc"}]}`); code != http.StatusOK {
		t.Fatal("mutation failed")
	}
	waitFor(t, 5*time.Second, func() bool { return s.store.numSupervisors() == 1 })
	if entries, _ := os.ReadDir(filepath.Join(dir, deltalog.Bucket)); len(entries) != 1 {
		t.Fatalf("expected 1 delta record on disk, found %d", len(entries))
	}

	// Past the TTL the janitor must retire the network: supervisor stopped,
	// log and base purged. Supervisor polling itself must not refresh the
	// TTL (networkState does not touch lastUsed).
	clock.Advance(2 * time.Minute)
	waitFor(t, 10*time.Second, func() bool { return s.store.numSupervisors() == 0 })
	waitFor(t, 10*time.Second, func() bool {
		deltas, _ := os.ReadDir(filepath.Join(dir, deltalog.Bucket))
		bases, _ := os.ReadDir(filepath.Join(dir, bucketNetworks))
		return len(deltas) == 0 && len(bases) == 0
	})
	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/networks/"+netID+"/supervisor", nil); code != http.StatusNotFound {
		t.Fatalf("evicted network's supervisor endpoint: %d, want 404", code)
	}
	// A fresh upload and mutation still work — the machinery is not wedged.
	netID2 := uploadNetwork(t, ts, network)
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID2+"/objects",
		`{"objects":[{"id":"e2","type":"doc"}]}`); code != http.StatusOK {
		t.Fatal("post-eviction mutation failed")
	}
}
