package server

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"genclus/internal/deltalog"
	"genclus/internal/hin"
)

// newID returns a prefixed 16-hex-char random identifier.
func newID(prefix string) string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return prefix + "_" + hex.EncodeToString(buf[:])
}

// networkEntry is one uploaded network plus the bookkeeping eviction and
// mutation need. net is an immutable view generation: mutations never edit
// it, they build a successor and swap the pointer under the store mutex
// (publishNetwork), so concurrent fits, assigns and drift scoring keep a
// consistent snapshot. mutMu serializes whole mutations per network
// (decode→apply→append→publish) so generations and log sequence numbers
// advance together; it is taken before the store mutex, never after. dlog
// and sup appear on the first mutation and are guarded by the store mutex
// (the retire path may read them lock-free only after the entry has been
// unlinked under that same mutex).
type networkEntry struct {
	net      *hin.Network
	lastUsed time.Time

	mutMu      sync.Mutex    // serializes mutations to this network
	generation int           // mutations applied since upload (or recovery replay)
	dlog       *deltalog.Log // nil until first mutation
	sup        *supervisor   // nil until first mutation (or when disabled)
}

// store holds uploaded networks, jobs and registered models in memory.
// Finished jobs and idle networks are evicted once they outlive the TTL
// (sweep); networks stay pinned while a queued or running job references
// them. Models are never TTL-evicted — only DELETE and the MaxModels
// overflow cap remove them. Evicted job ids leave tombstones behind
// (bounded to a few TTLs) so the API can tell "evicted" from "never
// existed".
type store struct {
	ttl time.Duration
	now func() time.Time

	mu          sync.Mutex
	networks    map[string]*networkEntry
	jobs        map[string]*job
	models      map[string]*modelEntry
	evictedJobs map[string]time.Time
	supsClosed  bool // Close ran: no new supervisors may start
}

func newStore(ttl time.Duration, now func() time.Time) *store {
	return &store{
		ttl:         ttl,
		now:         now,
		networks:    make(map[string]*networkEntry),
		jobs:        make(map[string]*job),
		models:      make(map[string]*modelEntry),
		evictedJobs: make(map[string]time.Time),
	}
}

// addNetwork registers an uploaded network and returns its ID.
func (st *store) addNetwork(net *hin.Network) string {
	id := newID("net")
	st.mu.Lock()
	st.networks[id] = &networkEntry{net: net, lastUsed: st.now()}
	st.mu.Unlock()
	return id
}

// network fetches a network and refreshes its eviction clock.
func (st *store) network(id string) (*hin.Network, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.networks[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = st.now()
	return e.net, true
}

// networkEntry fetches a network's entry (for mutation) and refreshes its
// eviction clock. The returned entry may be evicted concurrently; writers
// must re-verify membership via publishNetwork / attachLog.
func (st *store) networkEntry(id string) (*networkEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.networks[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = st.now()
	return e, true
}

// networkForJob fetches a network's view and generation in one consistent
// read for job submission, refreshing the eviction clock.
func (st *store) networkForJob(id string) (*hin.Network, int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.networks[id]
	if !ok {
		return nil, 0, false
	}
	e.lastUsed = st.now()
	return e.net, e.generation, true
}

// networkState reads a network's current view and generation WITHOUT
// refreshing the eviction clock — the supervisor polls on a timer, and a
// poll must not keep an otherwise-idle network alive forever.
func (st *store) networkState(id string) (*hin.Network, int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.networks[id]
	if !ok {
		return nil, 0, false
	}
	return e.net, e.generation, true
}

// publishNetwork swaps in the next view generation. It fails when the
// entry is no longer the one registered under id (TTL eviction raced the
// mutation) so a swept network cannot be resurrected by an in-flight
// request; the unacked mutation's log record, if any, is purged by the
// retire path, which serializes on the entry's mutMu.
func (st *store) publishNetwork(id string, e *networkEntry, net *hin.Network) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.networks[id] != e {
		return 0, false
	}
	e.net = net
	e.generation++
	e.lastUsed = st.now()
	return e.generation, true
}

// attachLog installs a network's delta log on first mutation, failing if
// the entry was evicted meanwhile (same membership discipline as
// publishNetwork, and it runs before the first append so eviction cannot
// orphan a record here).
func (st *store) attachLog(id string, e *networkEntry, dl *deltalog.Log) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.networks[id] != e {
		return false
	}
	e.dlog = dl
	return true
}

// restoreNetwork re-registers a network recovered from its persisted base
// plus delta-log replay, under its original id and replayed generation.
func (st *store) restoreNetwork(id string, net *hin.Network, generation int, dl *deltalog.Log) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.networks[id] = &networkEntry{
		net:        net,
		lastUsed:   st.now(),
		generation: generation,
		dlog:       dl,
	}
}

// mutatedNetworks snapshots the entries that have a delta log — the set
// whose supervisors are (re)started after recovery.
func (st *store) mutatedNetworks() map[string]*networkEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]*networkEntry)
	for id, e := range st.networks {
		if e.dlog != nil {
			out[id] = e
		}
	}
	return out
}

// closeSupervisors marks the store closed for supervisor registration and
// returns the live supervisors so the caller can halt them. After this, no
// mutation can start a new one.
func (st *store) closeSupervisors() []*supervisor {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.supsClosed = true
	var out []*supervisor
	for _, e := range st.networks {
		if e.sup != nil {
			out = append(out, e.sup)
			e.sup = nil
		}
	}
	return out
}

// numSupervisors counts live supervisors for /healthz and /metrics.
func (st *store) numSupervisors() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, e := range st.networks {
		if e.sup != nil {
			n++
		}
	}
	return n
}

// deltaDepth sums delta-log depth across networks for /healthz and
// /metrics. Logs are collected under the store mutex and measured outside
// it (Log has its own lock).
func (st *store) deltaDepth() int {
	st.mu.Lock()
	logs := make([]*deltalog.Log, 0, len(st.networks))
	for _, e := range st.networks {
		if e.dlog != nil {
			logs = append(logs, e.dlog)
		}
	}
	st.mu.Unlock()
	depth := 0
	for _, l := range logs {
		depth += l.Depth()
	}
	return depth
}

// latestModelForNetwork returns the newest registered model fitted on the
// given network (ties broken by id, mirroring listModels), or nil — the
// supervisor's warm-start base.
func (st *store) latestModelForNetwork(networkID string) *modelEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	var best *modelEntry
	for _, e := range st.models {
		if e.networkID != networkID {
			continue
		}
		if best == nil || e.created.After(best.created) ||
			(e.created.Equal(best.created) && e.id > best.id) {
			best = e
		}
	}
	return best
}

func (st *store) addJob(j *job) {
	st.mu.Lock()
	st.jobs[j.id] = j
	st.mu.Unlock()
}

func (st *store) job(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// sweep evicts finished jobs whose results outlived the TTL and networks
// idle past the TTL that no pending job still needs, leaving a tombstone
// per evicted job. It returns the evicted job ids so the caller can drop
// their persisted records, and the evicted network entries so the caller
// can retire them outside the lock — stop the supervisor, purge the delta
// log, drop the persisted base. Tombstones themselves expire after four
// TTLs — long enough that a client polling on the job's own timescale sees
// the typed eviction answer, bounded so the set cannot grow with service
// age.
func (st *store) sweep() (evictedJobs []string, evictedNets map[string]*networkEntry) {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	pinned := make(map[string]bool)
	for id, j := range st.jobs {
		snap := j.snapshot()
		if snap.terminal() {
			if now.Sub(snap.finished) > st.ttl {
				delete(st.jobs, id)
				st.evictedJobs[id] = now
				evictedJobs = append(evictedJobs, id)
			}
			continue
		}
		pinned[j.networkID] = true
	}
	for id, e := range st.networks {
		if !pinned[id] && now.Sub(e.lastUsed) > st.ttl {
			delete(st.networks, id)
			if evictedNets == nil {
				evictedNets = make(map[string]*networkEntry)
			}
			evictedNets[id] = e
		}
	}
	for id, at := range st.evictedJobs {
		if now.Sub(at) > 4*st.ttl {
			delete(st.evictedJobs, id)
		}
	}
	return evictedJobs, evictedNets
}

// jobEvicted reports whether a job id was TTL-evicted recently enough that
// its tombstone survives.
func (st *store) jobEvicted(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.evictedJobs[id]
	return ok
}

// addModel registers a model. When maxModels > 0 and the registry
// overflows, the oldest entries are evicted and returned so the caller
// can drop their snapshots from disk and their cached inference engines.
func (st *store) addModel(e *modelEntry, maxModels int) []*modelEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.models[e.id] = e
	var evicted []*modelEntry
	for maxModels > 0 && len(st.models) > maxModels {
		oldestID := ""
		var oldest time.Time
		for id, m := range st.models {
			if oldestID == "" || m.created.Before(oldest) || (m.created.Equal(oldest) && id < oldestID) {
				oldestID, oldest = id, m.created
			}
		}
		evicted = append(evicted, st.models[oldestID])
		delete(st.models, oldestID)
	}
	return evicted
}

// digestInUse reports whether any live registry entry serves the given
// snapshot digest (the engine cache only drops a digest once no model
// needs it).
func (st *store) digestInUse(digest string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.models {
		if e.digest == digest {
			return true
		}
	}
	return false
}

// model fetches a registered model.
func (st *store) model(id string) (*modelEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.models[id]
	return e, ok
}

// deleteModel removes a model from the registry, reporting whether it
// existed.
func (st *store) deleteModel(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.models[id]
	delete(st.models, id)
	return ok
}

// listModels returns every registered model, newest first (ties broken by
// id so the order is deterministic).
func (st *store) listModels() []*modelEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*modelEntry, 0, len(st.models))
	for _, e := range st.models {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.After(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

// modelDigests snapshots the id → snapshot-digest map — the replica sync
// loop's view of the local registry.
func (st *store) modelDigests() map[string]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]string, len(st.models))
	for id, e := range st.models {
		out[id] = e.digest
	}
	return out
}

// numModels counts registered models for /healthz.
func (st *store) numModels() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.models)
}

// jobCounts tallies jobs by state for /healthz.
func (st *store) jobCounts() map[jobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[jobState]int)
	for _, j := range st.jobs {
		out[j.snapshot().state]++
	}
	return out
}

func (st *store) numNetworks() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.networks)
}
