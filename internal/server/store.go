package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"genclus/internal/hin"
)

// newID returns a prefixed 16-hex-char random identifier.
func newID(prefix string) string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return prefix + "_" + hex.EncodeToString(buf[:])
}

// networkEntry is one uploaded network plus the bookkeeping eviction needs.
type networkEntry struct {
	net      *hin.Network
	lastUsed time.Time
}

// store holds uploaded networks and jobs in memory. Finished jobs and idle
// networks are evicted once they outlive the TTL (sweep); networks stay
// pinned while a queued or running job references them.
type store struct {
	ttl time.Duration
	now func() time.Time

	mu       sync.Mutex
	networks map[string]*networkEntry
	jobs     map[string]*job
}

func newStore(ttl time.Duration, now func() time.Time) *store {
	return &store{
		ttl:      ttl,
		now:      now,
		networks: make(map[string]*networkEntry),
		jobs:     make(map[string]*job),
	}
}

// addNetwork registers an uploaded network and returns its ID.
func (st *store) addNetwork(net *hin.Network) string {
	id := newID("net")
	st.mu.Lock()
	st.networks[id] = &networkEntry{net: net, lastUsed: st.now()}
	st.mu.Unlock()
	return id
}

// network fetches a network and refreshes its eviction clock.
func (st *store) network(id string) (*hin.Network, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.networks[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = st.now()
	return e.net, true
}

func (st *store) addJob(j *job) {
	st.mu.Lock()
	st.jobs[j.id] = j
	st.mu.Unlock()
}

func (st *store) job(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// sweep evicts finished jobs whose results outlived the TTL and networks
// idle past the TTL that no pending job still needs.
func (st *store) sweep() {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	pinned := make(map[string]bool)
	for id, j := range st.jobs {
		snap := j.snapshot()
		if snap.terminal() {
			if now.Sub(snap.finished) > st.ttl {
				delete(st.jobs, id)
			}
			continue
		}
		pinned[j.networkID] = true
	}
	for id, e := range st.networks {
		if !pinned[id] && now.Sub(e.lastUsed) > st.ttl {
			delete(st.networks, id)
		}
	}
}

// jobCounts tallies jobs by state for /healthz.
func (st *store) jobCounts() map[jobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[jobState]int)
	for _, j := range st.jobs {
		out[j.snapshot().state]++
	}
	return out
}

func (st *store) numNetworks() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.networks)
}
