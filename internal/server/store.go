package server

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"genclus/internal/hin"
)

// newID returns a prefixed 16-hex-char random identifier.
func newID(prefix string) string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return prefix + "_" + hex.EncodeToString(buf[:])
}

// networkEntry is one uploaded network plus the bookkeeping eviction needs.
type networkEntry struct {
	net      *hin.Network
	lastUsed time.Time
}

// store holds uploaded networks, jobs and registered models in memory.
// Finished jobs and idle networks are evicted once they outlive the TTL
// (sweep); networks stay pinned while a queued or running job references
// them. Models are never TTL-evicted — only DELETE and the MaxModels
// overflow cap remove them. Evicted job ids leave tombstones behind
// (bounded to a few TTLs) so the API can tell "evicted" from "never
// existed".
type store struct {
	ttl time.Duration
	now func() time.Time

	mu          sync.Mutex
	networks    map[string]*networkEntry
	jobs        map[string]*job
	models      map[string]*modelEntry
	evictedJobs map[string]time.Time
}

func newStore(ttl time.Duration, now func() time.Time) *store {
	return &store{
		ttl:         ttl,
		now:         now,
		networks:    make(map[string]*networkEntry),
		jobs:        make(map[string]*job),
		models:      make(map[string]*modelEntry),
		evictedJobs: make(map[string]time.Time),
	}
}

// addNetwork registers an uploaded network and returns its ID.
func (st *store) addNetwork(net *hin.Network) string {
	id := newID("net")
	st.mu.Lock()
	st.networks[id] = &networkEntry{net: net, lastUsed: st.now()}
	st.mu.Unlock()
	return id
}

// network fetches a network and refreshes its eviction clock.
func (st *store) network(id string) (*hin.Network, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.networks[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = st.now()
	return e.net, true
}

func (st *store) addJob(j *job) {
	st.mu.Lock()
	st.jobs[j.id] = j
	st.mu.Unlock()
}

func (st *store) job(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// sweep evicts finished jobs whose results outlived the TTL and networks
// idle past the TTL that no pending job still needs, leaving a tombstone
// per evicted job. It returns the evicted job ids so the caller can drop
// their persisted records. Tombstones themselves expire after four TTLs —
// long enough that a client polling on the job's own timescale sees the
// typed eviction answer, bounded so the set cannot grow with service age.
func (st *store) sweep() []string {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	var evicted []string
	pinned := make(map[string]bool)
	for id, j := range st.jobs {
		snap := j.snapshot()
		if snap.terminal() {
			if now.Sub(snap.finished) > st.ttl {
				delete(st.jobs, id)
				st.evictedJobs[id] = now
				evicted = append(evicted, id)
			}
			continue
		}
		pinned[j.networkID] = true
	}
	for id, e := range st.networks {
		if !pinned[id] && now.Sub(e.lastUsed) > st.ttl {
			delete(st.networks, id)
		}
	}
	for id, at := range st.evictedJobs {
		if now.Sub(at) > 4*st.ttl {
			delete(st.evictedJobs, id)
		}
	}
	return evicted
}

// jobEvicted reports whether a job id was TTL-evicted recently enough that
// its tombstone survives.
func (st *store) jobEvicted(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.evictedJobs[id]
	return ok
}

// addModel registers a model. When maxModels > 0 and the registry
// overflows, the oldest entries are evicted and returned so the caller
// can drop their snapshots from disk and their cached inference engines.
func (st *store) addModel(e *modelEntry, maxModels int) []*modelEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.models[e.id] = e
	var evicted []*modelEntry
	for maxModels > 0 && len(st.models) > maxModels {
		oldestID := ""
		var oldest time.Time
		for id, m := range st.models {
			if oldestID == "" || m.created.Before(oldest) || (m.created.Equal(oldest) && id < oldestID) {
				oldestID, oldest = id, m.created
			}
		}
		evicted = append(evicted, st.models[oldestID])
		delete(st.models, oldestID)
	}
	return evicted
}

// digestInUse reports whether any live registry entry serves the given
// snapshot digest (the engine cache only drops a digest once no model
// needs it).
func (st *store) digestInUse(digest string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.models {
		if e.digest == digest {
			return true
		}
	}
	return false
}

// model fetches a registered model.
func (st *store) model(id string) (*modelEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.models[id]
	return e, ok
}

// deleteModel removes a model from the registry, reporting whether it
// existed.
func (st *store) deleteModel(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.models[id]
	delete(st.models, id)
	return ok
}

// listModels returns every registered model, newest first (ties broken by
// id so the order is deterministic).
func (st *store) listModels() []*modelEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*modelEntry, 0, len(st.models))
	for _, e := range st.models {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.After(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

// numModels counts registered models for /healthz.
func (st *store) numModels() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.models)
}

// jobCounts tallies jobs by state for /healthz.
func (st *store) jobCounts() map[jobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[jobState]int)
	for _, j := range st.jobs {
		out[j.snapshot().state]++
	}
	return out
}

func (st *store) numNetworks() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.networks)
}
