package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"genclus/internal/infer"
)

// replicaServer builds a read-only replica of the given primary with a fast
// sync cadence, in-process.
func replicaServer(t *testing.T, primary *httptest.Server, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.ReplicaOf = primary.URL
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = 20 * time.Millisecond
	}
	return testServer(t, cfg)
}

// waitModelSynced polls the node's model listing until it serves id with the
// wanted digest.
func waitModelSynced(t *testing.T, ts *httptest.Server, id, digest string) {
	t.Helper()
	waitFor(t, 30*time.Second, func() bool {
		for _, m := range listModels(t, ts).Models {
			if m.ID == id && m.Digest == digest {
				return true
			}
		}
		return false
	})
}

func getReplication(t *testing.T, ts *httptest.Server) replicationResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/replication", nil)
	if code != http.StatusOK {
		t.Fatalf("replication: status %d: %s", code, body)
	}
	var out replicationResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplicaSyncServeDelete drives the in-process replica tier end to end:
// a model fitted on the primary appears on the replica with the same digest,
// serves bitwise-identical assign responses, reports its sync state on
// /v1/replication and /healthz, and vanishes when the primary deletes it.
func TestReplicaSyncServeDelete(t *testing.T) {
	_, primary := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 12, 1)
	netID := uploadNetwork(t, primary, network)
	jobID := submitJob(t, primary, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(1, 1)})
	status := waitForState(t, primary, jobID, jobDone)
	res := fetchResult(t, primary, jobID)
	modelID := status.ModelID

	var digest string
	for _, m := range listModels(t, primary).Models {
		if m.ID == modelID {
			digest = m.Digest
		}
	}
	if digest == "" {
		t.Fatal("fitted model missing from primary listing")
	}

	_, rep := replicaServer(t, primary, Config{})
	waitModelSynced(t, rep, modelID, digest)

	// The replica serves the same assignments the primary does, bitwise.
	req := infer.RequestDoc{TopK: 2}
	for _, obj := range res.Objects {
		req.Objects = append(req.Objects, trainingAssignObject(obj, network, t))
	}
	codeP, bodyP := postAssign(t, primary, modelID, req)
	codeR, bodyR := postAssign(t, rep, modelID, req)
	if codeP != http.StatusOK || codeR != http.StatusOK {
		t.Fatalf("assign status: primary %d, replica %d", codeP, codeR)
	}
	if !bytes.Equal(bodyP, bodyR) {
		t.Fatalf("assign bodies differ:\nprimary: %s\nreplica: %s", bodyP, bodyR)
	}

	// Sync state is visible on /v1/replication and /healthz.
	rs := getReplication(t, rep)
	if rs.Mode != "replica" || rs.Models != 1 {
		t.Fatalf("replica /v1/replication: %+v", rs)
	}
	if !rs.Sync.Active || rs.Sync.Primary != primary.URL || rs.Sync.Syncs == 0 || rs.Sync.ModelsSynced != 1 {
		t.Fatalf("replica sync block: %+v", rs.Sync)
	}
	if h := fetchHealth(t, rep); !h.Replication.Active || h.Replication.ModelsSynced != 1 {
		t.Fatalf("replica /healthz replication block: %+v", h.Replication)
	}
	if m := scrapeMetrics(t, rep); !strings.Contains(m, "genclus_replica_models_synced_total 1") {
		t.Fatal("replica /metrics missing genclus_replica_models_synced_total 1")
	}

	// Deletes propagate: the primary drops the model, the replica follows.
	code, body := doReq(t, primary.Client(), http.MethodDelete, primary.URL+"/v1/models/"+modelID, nil)
	if code != http.StatusNoContent {
		t.Fatalf("primary delete: %d: %s", code, body)
	}
	waitFor(t, 30*time.Second, func() bool { return len(listModels(t, rep).Models) == 0 })
	if code, _ := postAssign(t, rep, modelID, req); code != http.StatusNotFound {
		t.Fatalf("assign on deleted model: %d, want 404", code)
	}
}

// TestReplicaReadOnlyRoutes pins the write fence: every mutating route
// answers 403 {"code":"read_only_replica"} on a replica while reads keep
// working.
func TestReplicaReadOnlyRoutes(t *testing.T) {
	_, primary := testServer(t, Config{Workers: 1})
	_, rep := replicaServer(t, primary, Config{})

	mutating := []struct{ method, path string }{
		{http.MethodPost, "/v1/networks"},
		{http.MethodPost, "/v1/networks/n-x/edges"},
		{http.MethodPost, "/v1/networks/n-x/objects"},
		{http.MethodPatch, "/v1/networks/n-x/attributes"},
		{http.MethodPost, "/v1/jobs"},
		{http.MethodDelete, "/v1/jobs/j-x"},
		{http.MethodPost, "/v1/models/import"},
		{http.MethodDelete, "/v1/models/m-x"},
	}
	for _, tc := range mutating {
		code, body := doReq(t, rep.Client(), tc.method, rep.URL+tc.path, []byte(`{}`))
		if code != http.StatusForbidden {
			t.Errorf("%s %s: status %d, want 403", tc.method, tc.path, code)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Code != codeReadOnlyReplica {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, er.Code, codeReadOnlyReplica)
		}
		if len(er.RequestID) != 32 {
			t.Errorf("%s %s: request_id %q, want the 32-hex trace id", tc.method, tc.path, er.RequestID)
		}
	}

	// Reads stay open — and the same routes still mutate on the primary.
	if code, body := doReq(t, rep.Client(), http.MethodGet, rep.URL+"/v1/models", nil); code != http.StatusOK {
		t.Fatalf("replica GET /v1/models: %d: %s", code, body)
	}
	network, _ := testNetworkJSON(t, 12, 1)
	uploadNetwork(t, primary, network)
}

// TestReplicationEndpointPrimaryMode checks the endpoint's shape on a
// normal (non-replica) daemon: mode "primary", inactive zero sync block.
func TestReplicationEndpointPrimaryMode(t *testing.T) {
	_, ts := testServer(t, Config{})
	rs := getReplication(t, ts)
	if rs.Mode != "primary" || rs.Models != 0 {
		t.Fatalf("primary /v1/replication: %+v", rs)
	}
	if rs.Sync.Active || rs.Sync.Syncs != 0 || rs.Sync.Primary != "" {
		t.Fatalf("primary sync block not zero: %+v", rs.Sync)
	}
	if h := fetchHealth(t, ts); h.Replication.Active {
		t.Fatalf("primary /healthz replication block: %+v", h.Replication)
	}
}

// TestReplicaRestartResume checks the digest skip across a restart: a
// replica on a data dir recovers its synced models from disk and
// re-downloads nothing whose digest still matches the primary's.
func TestReplicaRestartResume(t *testing.T) {
	// Primary behind a counting proxy handler so the test can see every
	// export the replica actually pulls.
	ps, err := New(Config{Workers: 1, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	var exportHits atomic.Int64
	inner := ps.Handler()
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/export") {
			exportHits.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		primary.Close()
		ps.Close()
	})

	modelID, _ := assignFixture(t, primary)
	var digest string
	for _, m := range listModels(t, primary).Models {
		if m.ID == modelID {
			digest = m.Digest
		}
	}

	dir := t.TempDir()
	mk := func() (*Server, *httptest.Server) {
		s, err := New(Config{
			ReplicaOf:    primary.URL,
			SyncInterval: 20 * time.Millisecond,
			DataDir:      dir,
			Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}

	rs, rts := mk()
	waitModelSynced(t, rts, modelID, digest)
	if got := exportHits.Load(); got != 1 {
		t.Fatalf("exports before restart: %d, want 1", got)
	}
	rts.Close()
	rs.Close()

	// The restarted replica recovers the model from its data dir, serves it
	// immediately, and its sync passes pull nothing.
	rs2, rts2 := mk()
	t.Cleanup(func() {
		rts2.Close()
		rs2.Close()
	})
	if rec := rs2.Recovered(); rec.Models != 1 {
		t.Fatalf("recovered models: %d, want 1", rec.Models)
	}
	waitModelSynced(t, rts2, modelID, digest)
	waitFor(t, 30*time.Second, func() bool { return getReplication(t, rts2).Sync.Syncs >= 2 })
	if got := exportHits.Load(); got != 1 {
		t.Fatalf("exports after restart: %d, want 1 (digest match must skip the download)", got)
	}
}

// TestReplicaModelUpdateSwapsEngine covers an id whose bytes change on the
// primary (re-import under the same id is not possible, but delete + refit
// produces a fresh id; the update path is exercised directly through the
// registry adapter): installing new bytes under an existing id replaces the
// served snapshot and drops the stale engine.
func TestReplicaModelUpdateSwapsEngine(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	modelID, _ := assignFixture(t, ts)

	e, ok := s.store.model(modelID)
	if !ok {
		t.Fatal("fitted model missing from store")
	}
	data, err := s.exportBytes(e)
	if err != nil {
		t.Fatal(err)
	}

	reg := replicaRegistry{s}
	if err := reg.Install("synced-copy", data); err != nil {
		t.Fatalf("install: %v", err)
	}
	if got := reg.LocalModels()["synced-copy"]; got != e.digest {
		t.Fatalf("installed digest %q, want %q", got, e.digest)
	}
	// Same digest again: a no-op from the syncer's perspective, but Install
	// must stay idempotent if called anyway.
	if err := reg.Install("synced-copy", data); err != nil {
		t.Fatalf("re-install: %v", err)
	}
	if err := reg.Remove("synced-copy"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, ok := reg.LocalModels()["synced-copy"]; ok {
		t.Fatal("model survives Remove")
	}
	if err := reg.Remove("synced-copy"); err != nil {
		t.Fatalf("remove absent id: %v", err)
	}
	// Corrupt bytes never install: the snapshot codec's CRC rejects them.
	bad := append([]byte{}, data...)
	bad[len(bad)/2] ^= 0xff
	if err := reg.Install("corrupt", bad); err == nil {
		t.Fatal("corrupt snapshot installed")
	}
}
