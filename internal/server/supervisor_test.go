package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genclus/internal/snapshot"
)

// TestSupervisorAutoRefitUnderLoad is the continuous-clustering
// integration test: a fitted network is mutated under sustained /assign
// load until the supervisor's pending-depth trigger fires. It pins the
// full contract — zero failed assigns during rollforward, the auto-refit
// recorded at the exact mutated generation, and the published model
// bitwise-identical to a manual warm-start fit of the same generation.
func TestSupervisorAutoRefitUnderLoad(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers:                  2,
		SupervisorMaxPending:     3,
		SupervisorDriftThreshold: -1, // isolate the pending-depth trigger
		SupervisorInterval:       10 * time.Millisecond,
	})
	network, _ := testNetworkJSON(t, 20, 1)
	netID := uploadNetwork(t, ts, network)

	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(7, 1)})
	baseModelID := waitForState(t, ts, jobID, jobDone).ModelID
	if baseModelID == "" {
		t.Fatal("finished fit published no model")
	}
	res := fetchResult(t, ts, jobID)
	target := res.Objects[0].ID

	// Sustained assign load against the base model for the whole
	// mutate-and-refit window; every single request must succeed.
	var assigns, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, _ := singleLinkAssign(t, ts, baseModelID, target, fmt.Sprintf("load%d-%d", w, i))
				assigns.Add(1)
				if code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}

	// Three mutations reach SupervisorMaxPending; the supervisor schedules
	// a warm-start refit of generation 3.
	for i := 0; i < 3; i++ {
		doc := fmt.Sprintf(`{"objects":[{"id":"new%d","type":"doc","terms":{"text":[{"t":%d,"c":2}]}}],"links":[{"from":"new%d","to":"%s","rel":"cites","w":1}]}`,
			i, i, i, target)
		if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects", doc); code != http.StatusOK {
			t.Fatalf("mutation %d failed: %d", i, code)
		}
	}

	var st supervisorStatusResponse
	waitFor(t, 60*time.Second, func() bool {
		st = supStatus(t, ts, netID)
		return st.RefitsSucceeded == 1
	})
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d assigns failed during rollforward", failures.Load(), assigns.Load())
	}
	if assigns.Load() == 0 {
		t.Fatal("assign load loop never ran")
	}
	if !st.Active || st.RefitsTriggered != 1 || st.RefitsFailed != 0 || st.LastRefitGeneration != 3 || st.LastModelID == "" {
		t.Fatalf("supervisor status after auto-refit: %+v", st)
	}

	autoEntry, ok := s.store.model(st.LastModelID)
	if !ok {
		t.Fatalf("auto-refit model %s not in the registry", st.LastModelID)
	}
	if gen := autoEntry.meta[metaNetworkGeneration]; gen != "3" {
		t.Fatalf("auto-refit model records generation %q, want \"3\"", gen)
	}

	// The rolled-forward model serves assigns immediately.
	if code, body := singleLinkAssign(t, ts, st.LastModelID, target, "rolled"); code != http.StatusOK {
		t.Fatalf("assign against auto-refit model: %d: %s", code, body)
	}

	// Manual warm start from the same base model on the same generation-3
	// view must reproduce the auto-refit model bit for bit (meta differs —
	// job id, timestamps — so compare the meta-free encodings).
	manualJob := submitJob(t, ts, jobRequest{NetworkID: netID, WarmStartFromModel: baseModelID})
	manualModelID := waitForState(t, ts, manualJob, jobDone).ModelID
	manualEntry, ok := s.store.model(manualModelID)
	if !ok {
		t.Fatal("manual refit model not in the registry")
	}
	autoBytes, err := snapshot.Encode(&snapshot.Snapshot{Model: autoEntry.model})
	if err != nil {
		t.Fatal(err)
	}
	manualBytes, err := snapshot.Encode(&snapshot.Snapshot{Model: manualEntry.model})
	if err != nil {
		t.Fatal(err)
	}
	if string(autoBytes) != string(manualBytes) {
		t.Fatalf("auto-refit model diverges from manual warm start at the same generation: %d vs %d bytes",
			len(autoBytes), len(manualBytes))
	}

	// Health and metrics surfaces agree with the supervisor's own counters.
	h := fetchHealth(t, ts)
	if h.Mutation.RefitsTriggered != 1 || h.Mutation.RefitsSucceeded != 1 || h.Mutation.Supervisors != 1 {
		t.Fatalf("healthz mutation block after auto-refit: %+v", h.Mutation)
	}
}

// TestSupervisorDriftTrigger isolates the drift signal: with the pending
// trigger effectively disabled, adding an object the model has never seen
// (maximal drift 1.0) schedules a refit with reason drift.
func TestSupervisorDriftTrigger(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers:                  1,
		SupervisorMaxPending:     1 << 20,
		SupervisorDriftThreshold: 0.5,
		SupervisorInterval:       10 * time.Millisecond,
	})
	network, _ := testNetworkJSON(t, 10, 1)
	netID := uploadNetwork(t, ts, network)
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(7, 1)})
	waitForState(t, ts, jobID, jobDone)

	// A brand-new object with no links: the drift sample is exactly this
	// object, which the model cannot place — drift 1.0 ≥ 0.5.
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"alien","type":"doc","terms":{"text":[{"t":19,"c":5}]}}]}`); code != http.StatusOK {
		t.Fatal("mutation failed")
	}

	var st supervisorStatusResponse
	waitFor(t, 60*time.Second, func() bool {
		st = supStatus(t, ts, netID)
		return st.RefitsSucceeded == 1
	})
	if st.DriftScore != 1.0 {
		t.Fatalf("drift score %v, want 1.0 for an unknown object", st.DriftScore)
	}
	if h := fetchHealth(t, ts); h.Mutation.DriftScore != 1.0 {
		t.Fatalf("healthz drift_score %v, want 1.0", h.Mutation.DriftScore)
	}
}

// TestSupervisorStopsWithServer pins Close ordering: halting the server
// with a live supervisor (and possibly an in-flight auto-refit) neither
// hangs nor leaks — Close returns with no supervisor running.
func TestSupervisorStopsWithServer(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers:              1,
		SupervisorMaxPending: 1,
		SupervisorInterval:   5 * time.Millisecond,
	})
	network, _ := testNetworkJSON(t, 10, 1)
	netID := uploadNetwork(t, ts, network)
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(7, 1)})
	waitForState(t, ts, jobID, jobDone)
	if code, _ := mutate(t, ts, http.MethodPost, "/v1/networks/"+netID+"/objects",
		`{"objects":[{"id":"x1","type":"doc"}]}`); code != http.StatusOK {
		t.Fatal("mutation failed")
	}
	waitFor(t, 10*time.Second, func() bool { return s.store.numSupervisors() == 1 })

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung with a live supervisor")
	}
	if n := s.store.numSupervisors(); n != 0 {
		t.Fatalf("%d supervisors survived Close", n)
	}
}
