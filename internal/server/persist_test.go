package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"genclus/internal/snapshot"
)

// finishJob uploads a network, runs a quick fit to done, and returns the
// job id plus its final status (which carries the registry model id).
func finishJob(t *testing.T, ts *httptest.Server, seed int64) (string, jobResponse) {
	t.Helper()
	network, truth := testNetworkJSON(t, 12, seed)
	netID := uploadNetwork(t, ts, network)
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(seed, 1), Truth: truth})
	status := waitForState(t, ts, jobID, jobDone)
	return jobID, status
}

func listModels(t *testing.T, ts *httptest.Server) modelsResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models", nil)
	if code != http.StatusOK {
		t.Fatalf("list models: %d: %s", code, body)
	}
	var out modelsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestModelRegistryLifecycle drives the registry end to end in memory-only
// mode: a finished fit registers a model, the model lists/gets/exports,
// export → import round-trips byte-identically, the import warm-starts a
// fit, and delete removes it.
func TestModelRegistryLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})

	jobID, status := finishJob(t, ts, 1)
	if status.ModelID == "" {
		t.Fatal("finished job carries no model_id")
	}

	models := listModels(t, ts)
	if len(models.Models) != 1 || models.Models[0].ID != status.ModelID {
		t.Fatalf("registry listing wrong: %+v", models)
	}
	info := models.Models[0]
	if info.JobID != jobID || info.K != 2 || info.Objects != 24 || info.Digest == "" || info.SizeBytes <= 0 {
		t.Fatalf("model metadata wrong: %+v", info)
	}
	if info.OptionsDigest == "" {
		t.Fatal("model metadata lacks options digest")
	}

	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+info.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get model: %d: %s", code, body)
	}

	// Export: canonical snapshot bytes whose digest matches the listing.
	code, data := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+info.ID+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("export: %d", code)
	}
	if got := snapshot.DataDigest(data); got != info.Digest {
		t.Fatalf("export digest %s does not match registry %s", got, info.Digest)
	}
	if _, err := snapshot.Decode(data, snapshot.DefaultLimits()); err != nil {
		t.Fatalf("exported snapshot does not decode: %v", err)
	}

	// Import the exported bytes back: a second registry entry with the
	// same digest, whose export returns the identical bytes.
	code, body = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/import", data)
	if code != http.StatusCreated {
		t.Fatalf("import: %d: %s", code, body)
	}
	var imported modelResponse
	if err := json.Unmarshal(body, &imported); err != nil {
		t.Fatal(err)
	}
	if imported.Digest != info.Digest || imported.ID == info.ID {
		t.Fatalf("imported entry wrong: %+v", imported)
	}
	if imported.JobID != "" {
		t.Fatalf("imported model claims a local source job: %+v", imported)
	}
	code, reexport := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+imported.ID+"/export", nil)
	if code != http.StatusOK || !bytes.Equal(reexport, data) {
		t.Fatalf("re-export of imported model not byte-identical (%d bytes vs %d)", len(reexport), len(data))
	}

	// The imported model warm-starts a fit on the same network.
	network, _ := testNetworkJSON(t, 12, 1)
	netID := uploadNetwork(t, ts, network)
	payload, _ := json.Marshal(jobRequest{NetworkID: netID, WarmStartFromModel: imported.ID, Options: quickOpts(1, 1)})
	code, body = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload)
	if code != http.StatusAccepted {
		t.Fatalf("warm_start_from_model submit: %d: %s", code, body)
	}
	var warm jobResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts, warm.ID, jobDone)

	// Delete both; the registry empties and a re-delete 404s.
	for _, id := range []string{info.ID, imported.ID} {
		code, _ = doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/models/"+id, nil)
		if code != http.StatusNoContent {
			t.Fatalf("delete %s: %d", id, code)
		}
	}
	// The warm-started job registered its own model; only those two are gone.
	if left := listModels(t, ts); len(left.Models) != 1 || left.Models[0].JobID != warm.ID {
		t.Fatalf("registry after deletes: %+v", left)
	}
	if code, _ = doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/models/"+info.ID, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}

	// Mutually exclusive warm-start sources are rejected.
	payload, _ = json.Marshal(jobRequest{NetworkID: netID, WarmStartFrom: jobID, WarmStartFromModel: imported.ID})
	if code, _ = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload); code != http.StatusBadRequest {
		t.Fatalf("dual warm start: %d, want 400", code)
	}
}

// TestImportRejectsBadSnapshots pins the import trust boundary: garbage is
// 400, oversized dimensions are 413, and nothing is registered either way.
func TestImportRejectsBadSnapshots(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxK: 3})

	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/import", []byte("not a snapshot"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage import: %d: %s", code, body)
	}

	// A valid snapshot fitted at K=4 exceeds this server's MaxK=3 → 413.
	_, ts2 := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 12, 2)
	netID := uploadNetwork(t, ts2, network)
	jobID := submitJob(t, ts2, jobRequest{NetworkID: netID, K: 4, Options: quickOpts(2, 1)})
	waitForState(t, ts2, jobID, jobDone)
	models := listModels(t, ts2)
	_, data := doReq(t, ts2.Client(), http.MethodGet, ts2.URL+"/v1/models/"+models.Models[0].ID+"/export", nil)

	code, body = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/import", data)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized import: %d: %s", code, body)
	}
	if got := listModels(t, ts); len(got.Models) != 0 {
		t.Fatalf("rejected imports registered models: %+v", got)
	}
}

// TestMaxModelsEviction pins the registry cap: the oldest model (memory
// and, with persistence, disk) is evicted when registration overflows.
func TestMaxModelsEviction(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, Config{Workers: 1, MaxModels: 2, DataDir: dir})

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		_, status := finishJob(t, ts, seed)
		ids = append(ids, status.ModelID)
	}
	models := listModels(t, ts)
	if len(models.Models) != 2 {
		t.Fatalf("registry over cap: %+v", models)
	}
	for _, m := range models.Models {
		if m.ID == ids[0] {
			t.Fatal("oldest model survived the cap")
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "models", ids[0]+".bin")); !os.IsNotExist(err) {
		t.Fatal("evicted model's snapshot still on disk")
	}
}

// TestRecoverAfterRestart is the in-process half of the kill-and-recover
// story (the subprocess SIGKILL version lives in the repo root): a server
// opened on a data dir written by a previous instance serves the finished
// job and its model, warm-starts from the recovered snapshot, and leaks no
// goroutines doing it. Durability is established at job-finish time —
// Close performs no flush — so what s2 reads is exactly what a crashed s1
// would have left behind.
func TestRecoverAfterRestart(t *testing.T) {
	dir := t.TempDir()

	before := runtime.NumGoroutine()

	s1, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	jobID, status := finishJob(t, ts1, 3)
	_, data := doReq(t, ts1.Client(), http.MethodGet, ts1.URL+"/v1/models/"+status.ModelID+"/export", nil)
	result1 := fetchResult(t, ts1, jobID)
	ts1.Close()
	s1.Close()

	s2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	rec := s2.Recovered()
	if rec.Jobs != 1 || rec.Models != 1 || rec.SkippedBlobs != 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}

	// The finished job is served again, result intact — including the
	// final progress report, so a recovered status reads like a live one.
	st := jobStatus(t, ts2, jobID)
	if st.State != jobDone || st.ModelID != status.ModelID {
		t.Fatalf("recovered job status: %+v", st)
	}
	if st.Progress == nil || *st.Progress != *status.Progress {
		t.Fatalf("recovered progress %+v, want %+v", st.Progress, status.Progress)
	}
	result2 := fetchResult(t, ts2, jobID)
	if result2.K != result1.K || len(result2.Objects) != len(result1.Objects) {
		t.Fatalf("recovered result shape differs: %+v vs %+v", result2, result1)
	}
	for i, o := range result1.Objects {
		r := result2.Objects[i]
		if r.ID != o.ID || r.Type != o.Type || r.Cluster != o.Cluster {
			t.Fatalf("recovered object %d differs: %+v vs %+v", i, r, o)
		}
	}
	if result1.Metrics == nil || result2.Metrics == nil || *result2.Metrics != *result1.Metrics {
		t.Fatalf("recovered metrics differ: %+v vs %+v", result2.Metrics, result1.Metrics)
	}

	// The recovered model exports byte-identically.
	code, data2 := doReq(t, ts2.Client(), http.MethodGet, ts2.URL+"/v1/models/"+status.ModelID+"/export", nil)
	if code != http.StatusOK || !bytes.Equal(data2, data) {
		t.Fatalf("recovered export differs (%d): %d vs %d bytes", code, len(data2), len(data))
	}

	// warm_start_from_model works against the recovered snapshot; so does
	// warm_start_from against the recovered job.
	network, _ := testNetworkJSON(t, 12, 3)
	netID := uploadNetwork(t, ts2, network)
	for _, req := range []jobRequest{
		{NetworkID: netID, WarmStartFromModel: status.ModelID, Options: quickOpts(3, 1)},
		{NetworkID: netID, WarmStartFrom: jobID, Options: quickOpts(3, 1)},
	} {
		id := submitJob(t, ts2, req)
		waitForState(t, ts2, id, jobDone)
		res := fetchResult(t, ts2, id)
		if res.EMIterations >= result1.EMIterations {
			t.Fatalf("warm start from recovered state did not converge faster: %d vs %d EM iterations",
				res.EMIterations, result1.EMIterations)
		}
	}

	// No goroutine leak across a full extra server lifecycle.
	ts2.Close()
	s2.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across restart: before %d, now %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRecoverySkipsCorruptArtifacts plants a damaged snapshot next to a
// healthy one: the healthy model recovers, the damaged one is counted and
// skipped, and the job record pointing at it is dropped as an orphan.
func TestRecoverySkipsCorruptArtifacts(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := testServer(t, Config{Workers: 1, DataDir: dir})
	_, statusA := finishJob(t, ts1, 4)
	jobB, statusB := finishJob(t, ts1, 5)

	// Corrupt model B's snapshot payload on disk.
	path := filepath.Join(dir, "models", statusB.ModelID+".bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	if rec.Models != 1 || rec.Jobs != 1 || rec.SkippedBlobs != 1 || rec.OrphanRecords != 1 {
		t.Fatalf("recovery stats after corruption: %+v", rec)
	}
	if _, ok := s2.store.model(statusA.ModelID); !ok {
		t.Fatal("healthy model did not recover")
	}
	if _, ok := s2.store.job(jobB); ok {
		t.Fatal("job with corrupt model recovered anyway")
	}
	// The orphan record was dropped, so a third restart recovers cleanly.
	s3, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec := s3.Recovered(); rec.OrphanRecords != 0 || rec.Models != 1 || rec.Jobs != 1 {
		t.Fatalf("third-restart recovery stats: %+v", rec)
	}
}

// TestEvictedJobAnswersTypedCode pins the eviction distinction: a swept job
// 404s with code "job_evicted" (status, result, and warm_start_from), an
// unknown id 404s with no code, and the persisted record is gone too.
func TestEvictedJobAnswersTypedCode(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	s, ts := testServer(t, Config{Workers: 1, JobTTL: time.Minute, DataDir: dir, now: clock.Now})

	jobID, _ := finishJob(t, ts, 6)
	clock.Advance(2 * time.Minute)
	evicted, _ := s.store.sweep()
	for _, id := range evicted {
		s.dropPersistedJob(id)
	}

	decodeErr := func(body []byte) errorResponse {
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("error body not JSON: %s", body)
		}
		return er
	}
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil)
	if code != http.StatusNotFound {
		t.Fatalf("evicted status: %d", code)
	}
	if er := decodeErr(body); er.Code != codeJobEvicted {
		t.Fatalf("evicted status body lacks code: %s", body)
	}
	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/result", nil)
	if code != http.StatusNotFound {
		t.Fatalf("evicted result: %d", code)
	}
	if er := decodeErr(body); er.Code != codeJobEvicted {
		t.Fatalf("evicted result body lacks code: %s", body)
	}

	network, _ := testNetworkJSON(t, 12, 6)
	netID := uploadNetwork(t, ts, network)
	payload, _ := json.Marshal(jobRequest{NetworkID: netID, WarmStartFrom: jobID})
	code, body = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload)
	if code != http.StatusNotFound {
		t.Fatalf("warm start from evicted job: %d", code)
	}
	if er := decodeErr(body); er.Code != codeJobEvicted {
		t.Fatalf("warm-start body lacks code: %s", body)
	}

	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/job_never_existed", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
	if er := decodeErr(body); er.Code != "" {
		t.Fatalf("unknown job must carry no eviction code: %s", body)
	}

	if _, err := os.Stat(filepath.Join(dir, "jobs", jobID+".bin")); !os.IsNotExist(err) {
		t.Fatal("evicted job's persisted record survived")
	}
	// Models are never TTL-evicted: the registry still serves the fit.
	if got := listModels(t, ts); len(got.Models) != 1 {
		t.Fatalf("model evicted with its job: %+v", got)
	}
}

// TestHealthzCountsModels pins the additive models field.
func TestHealthzCountsModels(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	finishJob(t, ts, 7)
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Models != 1 {
		t.Fatalf("healthz models = %d, want 1", h.Models)
	}
}
