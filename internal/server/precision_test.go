package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"genclus/internal/core"
	"genclus/internal/infer"
	"genclus/internal/snapshot"
)

// TestJobRejectsUnknownPrecision: an unknown precision string in the job
// options is a caller mistake — the typed *core.PrecisionError from
// Options.Validate must surface as 400, before any work is queued.
func TestJobRejectsUnknownPrecision(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 6, 3)
	netID := uploadNetwork(t, ts, network)
	bad := "float16"
	payload, _ := json.Marshal(jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{Precision: &bad}})
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload)
	if code != http.StatusBadRequest {
		t.Fatalf("job with precision %q: status %d, want 400 (%s)", bad, code, body)
	}
}

// TestJobPrecisionEndToEnd drives the float32 storage mode through the whole
// daemon surface: the job spec carries it, the registry reports it on both
// the single-model and list responses, the exported snapshot stores it (flag
// bit + provenance meta), and the assign engine honors it — reproducing the
// float32 fit's training Θ rows bit for bit, which only works if fold-in
// rounds posterior rows exactly as the fit rounds Θ.
func TestJobPrecisionEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 12, 3)
	netID := uploadNetwork(t, ts, network)

	// Options mirror TestAssignCustomEpsilonBitwise: run EM to an exact
	// fixed point so training-object assignment has a stationary target.
	outer, em, seeds := 1, 3000, 1
	emTol := 1e-300
	learn := false
	prec := "float32"
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, EMIters: &em, EMTol: &emTol, InitSeeds: &seeds,
		LearnGamma: &learn, Precision: &prec,
	}})
	status := waitForState(t, ts, jobID, jobDone)
	res := fetchResult(t, ts, jobID)
	if res.EMIterations >= em {
		t.Fatalf("float32 fit did not reach an exact fixed point (%d EM iterations)", res.EMIterations)
	}
	for _, obj := range res.Objects {
		for k, x := range obj.Theta {
			if float64(float32(x)) != x {
				t.Fatalf("object %s theta[%d] = %v not float32-representable", obj.ID, k, x)
			}
		}
	}

	// Registry responses carry the precision, on GET and on the list.
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+status.ModelID, nil)
	if code != http.StatusOK {
		t.Fatalf("get model: %d", code)
	}
	var mr modelResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Precision != "float32" {
		t.Fatalf("model precision = %q, want float32", mr.Precision)
	}
	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models", nil)
	if code != http.StatusOK {
		t.Fatalf("list models: %d", code)
	}
	var list modelsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range list.Models {
		if m.ID == status.ModelID {
			found = true
			if m.Precision != "float32" {
				t.Fatalf("listed precision = %q, want float32", m.Precision)
			}
		}
	}
	if !found {
		t.Fatalf("model %s missing from list", status.ModelID)
	}

	// The exported snapshot stores float32 (wire flag) and records the
	// precision in its provenance meta.
	code, raw := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+status.ModelID+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("export: %d", code)
	}
	decoded, err := snapshot.Decode(raw, snapshot.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Precision != core.PrecisionFloat32 {
		t.Fatalf("snapshot precision = %q, want float32", decoded.Precision)
	}
	if got := snapshot.PrecisionFromMeta(decoded.Meta); got != core.PrecisionFloat32 {
		t.Fatalf("meta precision = %q, want float32", got)
	}

	// Assigning the training objects reproduces the float32 Θ rows bitwise.
	req := infer.RequestDoc{}
	for _, obj := range res.Objects {
		req.Objects = append(req.Objects, trainingAssignObject(obj, network, t))
	}
	code, body = postAssign(t, ts, status.ModelID, req)
	if code != http.StatusOK {
		t.Fatalf("assign: %d: %s", code, body)
	}
	var resp assignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, a := range resp.Assignments {
		for k, x := range a.Theta {
			if x != res.Objects[i].Theta[k] {
				t.Fatalf("object %s theta[%d]: assigned %v, fitted %v (precision not honored by fold-in?)",
					a.ID, k, x, res.Objects[i].Theta[k])
			}
		}
	}

	// A default fit keeps reporting float64 — the precision field exists on
	// every response, not just float32 models.
	defID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, InitSeeds: &seeds,
	}})
	defStatus := waitForState(t, ts, defID, jobDone)
	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+defStatus.ModelID, nil)
	if code != http.StatusOK {
		t.Fatalf("get default model: %d", code)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Precision != "float64" {
		t.Fatalf("default model precision = %q, want float64", mr.Precision)
	}
}

// TestImportPreservesPrecision: importing a float32 snapshot registers a
// float32 model (the registry field comes from the wire flag, not meta), and
// the export round-trips the exact bytes.
func TestImportPreservesPrecision(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 8, 3)
	netID := uploadNetwork(t, ts, network)
	outer, seeds := 1, 1
	prec := "float32"
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, InitSeeds: &seeds, Precision: &prec,
	}})
	status := waitForState(t, ts, jobID, jobDone)
	code, raw := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+status.ModelID+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("export: %d", code)
	}

	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/models/import", raw)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("import: %d: %s", code, body)
	}
	var imported modelResponse
	if err := json.Unmarshal(body, &imported); err != nil {
		t.Fatal(err)
	}
	if imported.Precision != "float32" {
		t.Fatalf("imported precision = %q, want float32", imported.Precision)
	}
	code, back := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+imported.ID+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("re-export: %d", code)
	}
	if string(back) != string(raw) {
		t.Fatal("float32 snapshot bytes changed across import/export")
	}
}
