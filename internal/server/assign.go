package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"genclus/internal/infer"
	"genclus/internal/snapshot"
)

// Online inference: POST /v1/models/{id}/assign folds batches of new
// objects — links into the model's known network plus optional partial
// attribute observations — into a registered model's hidden space without
// refitting. Per model the server keeps one inference engine (cached by
// snapshot digest, so re-imports and restarts reuse the same derived
// views) behind a micro-batching dispatcher: concurrent requests within
// Config.AssignBatchWindow coalesce into shared engine passes of up to
// Config.MaxAssignBatch objects, amortizing the engine's scratch arena
// across callers while keeping every request's results isolated. The
// engine pass itself is deterministic and allocation-free in steady state
// (see internal/infer).

// ---- wire types ----
//
// Both document shapes are owned by internal/infer — RequestDoc decoded
// by infer.DecodeRequest, AssignmentDoc produced by infer.AssignmentDocs
// — so the daemon and the CLI's offline -assign mode speak byte-for-byte
// the same format; only the endpoint envelope lives here.

// assignResponse is the endpoint's reply.
type assignResponse struct {
	ModelID     string                `json:"model_id"`
	K           int                   `json:"k"`
	Assignments []infer.AssignmentDoc `json:"assignments"`
	// Batched reports whether this request shared its engine pass with at
	// least one concurrent request (micro-batching visibility for clients
	// tuning their own batch sizes).
	Batched bool `json:"batched"`
}

// assignStatsResponse is the healthz assign block.
type assignStatsResponse struct {
	// Requests counts assign requests that reached an engine pass.
	Requests int64 `json:"requests"`
	// Objects counts query objects scored across all requests.
	Objects int64 `json:"objects"`
	// BatchedRequests counts requests whose engine pass was shared with at
	// least one other concurrent request; BatchedRequests/Requests is the
	// micro-batching coalescing ratio.
	BatchedRequests int64 `json:"batched_requests"`
	// EnginePasses counts shared engine passes executed.
	EnginePasses int64 `json:"engine_passes"`
	// EngineCacheHits / EngineCacheMisses count per-model engine cache
	// lookups by snapshot digest.
	EngineCacheHits   int64 `json:"engine_cache_hits"`
	EngineCacheMisses int64 `json:"engine_cache_misses"`
	// ShedRequests counts assign requests rejected with 429 "overloaded"
	// by admission control (queue bound, in-flight cap, or rate limit).
	ShedRequests int64 `json:"shed_requests"`
}

// ---- engine cache + micro-batching dispatcher ----

// assignEngines caches one dispatcher (engine + pending batch) per
// snapshot digest, LRU-evicted beyond cap: the digest identifies the
// model's canonical bytes, so a re-imported or recovered model reuses the
// same derived scoring views. Entries are reserved under the mutex but
// BUILT outside it (engine construction walks the whole model), so a cold
// build for one model never stalls assign traffic to the others;
// concurrent requests for the same digest wait on the reservation.
type assignEngines struct {
	mu      sync.Mutex
	entries map[string]*assignDispatcher
	cap     int
}

// dispatcher fetches or builds the cached dispatcher for a model entry.
func (s *Server) dispatcher(e *modelEntry) (*assignDispatcher, error) {
	c := &s.assignCache
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*assignDispatcher)
	}
	if d, ok := c.entries[e.digest]; ok {
		d.lastUsed = s.cfg.now()
		c.mu.Unlock()
		s.assignStats.recordCacheLookup(true)
		<-d.ready
		if d.buildErr != nil {
			return nil, d.buildErr
		}
		return d, nil
	}
	// Reserve the digest, then build without the lock. A failed build is
	// removed so the next request retries.
	d := &assignDispatcher{
		window:   s.cfg.AssignBatchWindow,
		maxBatch: s.cfg.MaxAssignBatch,
		maxQueue: s.cfg.MaxAssignQueue,
		stats:    &s.assignStats,
		passHook: s.assignPassHook,
		lastUsed: s.cfg.now(),
		ready:    make(chan struct{}),
	}
	c.entries[e.digest] = d
	c.evictOverflowLocked()
	c.mu.Unlock()
	s.assignStats.recordCacheLookup(false)

	eng, err := infer.NewEngine(e.model, infer.Options{
		TopK:      e.model.K,         // responses trim to the requested top_k
		Epsilon:   s.modelEpsilon(e), // the fit's own floor, when recorded
		Precision: e.precision,       // the snapshot's storage precision
		Limits: infer.Limits{
			// Coalesced passes may exceed one request's cap; per-request
			// batch size is bounded at decode (infer.DecodeRequest).
			MaxBatch:  0,
			MaxLinks:  s.cfg.MaxAssignLinks,
			MaxTerms:  s.cfg.MaxAssignObs,
			MaxValues: s.cfg.MaxAssignObs,
		},
	})
	d.eng, d.buildErr = eng, err
	close(d.ready)
	if err != nil {
		c.mu.Lock()
		if c.entries[e.digest] == d {
			delete(c.entries, e.digest)
		}
		c.mu.Unlock()
		return nil, err
	}
	// The model may have been deleted while the engine was building — its
	// dropEngine ran before our entry existed, which would pin the dead
	// model's memory in the cache. Re-run the liveness check now that the
	// entry is published.
	s.dropEngine(e.digest)
	return d, nil
}

// modelEpsilon recovers the Θ floor the model was fitted with from its
// snapshot provenance meta (recorded as an exact hex float since PR 5).
// Models without the key — imports from older snapshots, or pre-upgrade
// recoveries — fall back to the fit default by returning 0: their
// assignments are still valid posteriors, just not guaranteed to
// reproduce the training rows bit for bit when the fit used a
// non-default epsilon.
func (s *Server) modelEpsilon(e *modelEntry) float64 {
	return snapshot.EpsilonFromMeta(e.meta, e.model.K)
}

// evictOverflowLocked applies the LRU cap; callers hold c.mu.
func (c *assignEngines) evictOverflowLocked() {
	for c.cap > 0 && len(c.entries) > c.cap {
		oldestKey := ""
		var oldest time.Time
		for key, cand := range c.entries {
			if oldestKey == "" || cand.lastUsed.Before(oldest) || (cand.lastUsed.Equal(oldest) && key < oldestKey) {
				oldestKey, oldest = key, cand.lastUsed
			}
		}
		delete(c.entries, oldestKey)
	}
}

// dropEngine removes a digest's cached engine unless another live registry
// entry still shares those snapshot bytes. Model deletion and MaxModels
// eviction call it so a deleted model's memory (Θ plus the engine's
// derived views) is not pinned by the cache for the process lifetime.
func (s *Server) dropEngine(digest string) {
	if digest == "" || s.store.digestInUse(digest) {
		return
	}
	c := &s.assignCache
	c.mu.Lock()
	delete(c.entries, digest)
	c.mu.Unlock()
}

// Shed reasons — the label values of genclus_assign_shed_total and the
// vocabulary of overloadError.reason.
const (
	shedQueueFull = "queue_full"
	shedInFlight  = "in_flight"
	shedRateLimit = "rate_limit"
)

// codeOverloaded is the machine-readable error code on 429 responses from
// assign admission control; clients should back off (the response carries
// Retry-After) and retry.
const codeOverloaded = "overloaded"

// overloadError is an admission-control rejection: which limiter shed the
// request and how long the client should wait before retrying.
type overloadError struct {
	reason     string
	msg        string
	retryAfter time.Duration
}

func (e *overloadError) Error() string { return e.msg }

// assignCounters are the monotone /healthz assign counters. They used to
// be independent atomics, which let /healthz observe torn combinations — a
// snapshot with batched_requests > requests, taken between a pass's
// individual increments. All increments for one event now happen inside a
// single critical section, and snapshot() reads under the same lock, so
// every snapshot is a state the counters actually passed through. The
// same increments mirror into the /metrics registry (met; nil in unit
// tests that build dispatchers by hand).
type assignCounters struct {
	mu          sync.Mutex
	requests    int64
	objects     int64
	batched     int64
	passes      int64
	cacheHits   int64
	cacheMisses int64
	shed        int64

	met *serverMetrics
}

// recordPass accounts one engine pass of `requests` coalesced calls
// scoring `objects` query objects.
func (c *assignCounters) recordPass(requests, objects int, coalesced bool, elapsed time.Duration) {
	c.mu.Lock()
	c.passes++
	c.requests += int64(requests)
	c.objects += int64(objects)
	if coalesced {
		c.batched += int64(requests)
	}
	c.mu.Unlock()
	if c.met != nil {
		c.met.assignPasses.Inc()
		c.met.assignRequests.Add(int64(requests))
		c.met.assignObjects.Add(int64(objects))
		if coalesced {
			c.met.assignBatched.Add(int64(requests))
		}
		c.met.assignOccupancy.Observe(float64(objects))
		c.met.assignPassSecs.Observe(elapsed.Seconds())
	}
}

// recordCacheLookup accounts one engine-cache lookup by digest.
func (c *assignCounters) recordCacheLookup(hit bool) {
	c.mu.Lock()
	if hit {
		c.cacheHits++
	} else {
		c.cacheMisses++
	}
	c.mu.Unlock()
	if c.met != nil {
		if hit {
			c.met.assignCacheHits.Inc()
		} else {
			c.met.assignCacheMisses.Inc()
		}
	}
}

// recordShed accounts one admission-control rejection.
func (c *assignCounters) recordShed(reason string) {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
	if c.met != nil {
		if ctr, ok := c.met.assignShed[reason]; ok {
			ctr.Inc()
		}
	}
}

// queueDepthAdd moves the /metrics queued-objects gauge; the healthz block
// has no queue-depth field (it is instantaneous, not monotone).
func (c *assignCounters) queueDepthAdd(n int) {
	if c.met != nil {
		c.met.assignQueueDepth.Add(int64(n))
	}
}

// snapshot reads all counters in one critical section — the /healthz (and
// parity-test) view. Monotone invariants like batched_requests ≤ requests
// hold in every snapshot.
func (c *assignCounters) snapshot() assignStatsResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	return assignStatsResponse{
		Requests:          c.requests,
		Objects:           c.objects,
		BatchedRequests:   c.batched,
		EnginePasses:      c.passes,
		EngineCacheHits:   c.cacheHits,
		EngineCacheMisses: c.cacheMisses,
		ShedRequests:      c.shed,
	}
}

// tokenBucket is the optional assign admission rate limiter: rate tokens
// per second, holding at most burst. It uses the server's clock hook so
// tests can drive it deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: now}
}

// take consumes one token if available; otherwise it reports how long
// until one accrues.
func (b *tokenBucket) take() (wait time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	if !b.last.IsZero() {
		b.tokens += t.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second)), false
}

// assignCall is one request's slot in a dispatcher batch.
type assignCall struct {
	queries []infer.Query
	topK    int
	out     []infer.AssignmentDoc
	batched bool
	err     error
	done    chan struct{}
}

// assignDispatcher coalesces concurrent assign requests against one model
// into shared engine passes. The first arrival becomes the pass leader: it
// sleeps the full window so companions can queue up (the window is a fixed
// latency floor every request pays — set it to 0 when idle-model latency
// matters more than coalescing), then drains the pending list in
// groups of at most maxBatch objects, scores each group in one engine
// pass, and distributes per-request copies of the results. The engine —
// which owns a single scratch arena and is not concurrent-safe — only ever
// runs on the leader goroutine of the moment, so no lock is held while
// scoring and a slow pass never blocks request validation.
type assignDispatcher struct {
	eng      *infer.Engine
	window   time.Duration
	maxBatch int
	// maxQueue bounds the query objects in pending (0: unbounded);
	// enqueues past it fail with a typed overloadError so the pending list
	// cannot grow without limit behind a slow pass.
	maxQueue int
	stats    *assignCounters
	// passHook, when set (tests), runs at the start of every engine pass.
	passHook func()

	// ready closes once the engine build finished (dispatcher fills eng or
	// buildErr first); cache readers that found a reserved entry wait on it.
	ready    chan struct{}
	buildErr error

	mu           sync.Mutex
	pending      []*assignCall
	queued       int // query objects across pending
	leaderActive bool

	// lastUsed drives the engine cache's LRU eviction (guarded by the
	// cache mutex, not mu).
	lastUsed time.Time
}

// do submits one request's queries and blocks until a leader scored them.
// The first arrival becomes the leader for exactly one drain round — its
// own call is in that round, so its latency is bounded by one window plus
// the passes of its round — and hands any arrivals that landed while it
// was scoring to a detached drainer goroutine. The engine still only ever
// runs on one goroutine at a time (leaderActive), it just stops being the
// goroutine of a request that already has its answer.
//
// Enqueueing past maxQueue pending query objects fails immediately with a
// typed overloadError (shed, not queued): under a wedged or slow pass the
// pending list stays bounded and clients get a fast 429 instead of a slow
// timeout against unbounded memory growth.
func (d *assignDispatcher) do(call *assignCall) error {
	call.done = make(chan struct{})
	d.mu.Lock()
	if d.maxQueue > 0 && d.queued+len(call.queries) > d.maxQueue {
		d.mu.Unlock()
		retry := time.Second
		if d.window > retry {
			retry = d.window
		}
		return &overloadError{
			reason:     shedQueueFull,
			msg:        fmt.Sprintf("assign queue full (%d objects pending, cap %d)", d.queued, d.maxQueue),
			retryAfter: retry,
		}
	}
	d.pending = append(d.pending, call)
	d.queued += len(call.queries)
	if d.stats != nil {
		d.stats.queueDepthAdd(len(call.queries))
	}
	if d.leaderActive {
		d.mu.Unlock()
		<-call.done
		return nil
	}
	d.leaderActive = true
	d.mu.Unlock()

	if d.window > 0 {
		time.Sleep(d.window)
	}
	d.drainRound()
	<-call.done
	return nil
}

// drainRound scores everything pending in one round, then either retires
// leadership (nothing new arrived during the round — released before this
// call returns, so dispatcher state is quiescent the moment the last
// caller is answered) or hands it to a fresh goroutine for the next
// round. At most one drainer exists at any moment.
func (d *assignDispatcher) drainRound() {
	d.mu.Lock()
	batch := d.pending
	d.pending = nil
	taken := d.queued
	d.queued = 0
	if d.stats != nil && taken > 0 {
		d.stats.queueDepthAdd(-taken)
	}
	if len(batch) == 0 {
		d.leaderActive = false
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	func() {
		// A panic in the pass must not wedge the model's assign traffic:
		// without this recover, leaderActive would stay true forever and
		// every later request would block on a leader that no longer
		// exists. Fail whatever calls the pass left unanswered and let
		// leadership move to the next round as usual.
		defer func() {
			if r := recover(); r != nil {
				err := fmt.Errorf("inference pass panicked: %v", r)
				for _, call := range batch {
					select {
					case <-call.done: // already answered before the panic
					default:
						call.err = err
						close(call.done)
					}
				}
			}
		}()
		d.runBatch(batch)
	}()
	d.mu.Lock()
	if len(d.pending) == 0 {
		d.leaderActive = false
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	go d.drainRound()
}

// runBatch groups calls into engine passes of at most maxBatch objects
// (single calls above the cap were already rejected at decode) and scores
// each group, copying results out of the engine arena into per-call slices
// before the next pass reuses it. With the batch window disabled every
// call keeps its own pass — "no coalescing" means exactly that, even for
// requests that arrived while an earlier pass was running.
func (d *assignDispatcher) runBatch(batch []*assignCall) {
	for len(batch) > 0 {
		group := batch[:1]
		total := len(batch[0].queries)
		for d.window > 0 && len(group) < len(batch) {
			next := batch[len(group)]
			if d.maxBatch > 0 && total+len(next.queries) > d.maxBatch {
				break
			}
			total += len(next.queries)
			group = append(group, next)
		}
		batch = batch[len(group):]
		d.runGroup(group, total)
	}
}

// runGroup scores one coalesced group in a single engine pass. The
// queries were already validated per request before queueing (that is
// what routes a bad query its own 4xx), so AssignBatch's internal
// re-validation is redundant here — kept deliberately: it is map lookups
// against scoring's arithmetic, and it means the arena pass can never run
// on unvalidated input no matter who calls it.
func (d *assignDispatcher) runGroup(group []*assignCall, total int) {
	flat := make([]infer.Query, 0, total)
	for _, call := range group {
		flat = append(flat, call.queries...)
	}
	if d.passHook != nil {
		d.passHook()
	}
	start := time.Now()
	out, err := d.eng.AssignBatch(flat)
	if d.stats != nil {
		d.stats.recordPass(len(group), total, len(group) > 1, time.Since(start))
	}
	off := 0
	for _, call := range group {
		if err != nil {
			// Queries were validated per request before queueing, so an
			// engine error here is unexpected; fail every call in the pass.
			call.err = err
		} else {
			call.out = infer.AssignmentDocs(out[off:off+len(call.queries)], call.topK)
			call.batched = len(group) > 1
		}
		off += len(call.queries)
		close(call.done)
	}
}

// ---- handler ----

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	// Admission control runs before any decoding: a shed request costs the
	// server almost nothing. Order: rate limit (policy), then the global
	// in-flight cap (protects everything below), then the per-model queue
	// bound inside do().
	if lim := s.assignLimiter; lim != nil {
		if wait, ok := lim.take(); !ok {
			s.rejectOverloaded(w, &overloadError{
				reason:     shedRateLimit,
				msg:        "assign rate limit exceeded",
				retryAfter: wait,
			})
			return
		}
	}
	if max := int64(s.cfg.MaxAssignInFlight); max > 0 {
		if s.assignInFlight.Add(1) > max {
			s.assignInFlight.Add(-1)
			s.rejectOverloaded(w, &overloadError{
				reason:     shedInFlight,
				msg:        fmt.Sprintf("too many assign requests in flight (cap %d)", max),
				retryAfter: time.Second,
			})
			return
		}
		s.metrics.assignInFlight.Add(1)
		defer func() {
			s.assignInFlight.Add(-1)
			s.metrics.assignInFlight.Add(-1)
		}()
	}
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, queries, err := infer.DecodeRequest(data, s.cfg.MaxAssignBatch)
	if err != nil {
		writeAssignError(w, err)
		return
	}
	d, err := s.dispatcher(e)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "build inference engine: %v", err)
		return
	}
	// Validate on the request goroutine — typed 4xx before any queueing,
	// and a bad query can never poison a shared pass.
	if err := d.eng.Validate(queries); err != nil {
		writeAssignError(w, err)
		return
	}
	topK := req.TopK
	if topK == 0 {
		topK = 1
	}
	if topK > d.eng.K() {
		topK = d.eng.K()
	}
	call := &assignCall{queries: queries, topK: topK}
	if err := d.do(call); err != nil {
		var oe *overloadError
		if errors.As(err, &oe) {
			s.rejectOverloaded(w, oe)
			return
		}
		writeAssignError(w, err)
		return
	}
	if call.err != nil {
		writeAssignError(w, call.err)
		return
	}
	writeJSON(w, http.StatusOK, assignResponse{
		ModelID:     e.id,
		K:           d.eng.K(),
		Assignments: call.out,
		Batched:     call.batched,
	})
}

// writeAssignError maps the assign trust boundary's typed errors onto
// status codes: limit overflows are 413, malformed documents and
// unresolvable queries 400 — bad input is never a 5xx. Anything untyped
// (a contained panic, an engine failure on pre-validated input) is a
// genuine server fault and answers 500.
func writeAssignError(w http.ResponseWriter, err error) {
	var le *infer.LimitError
	if errors.As(err, &le) {
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	var qe *infer.QueryError
	var de *infer.DecodeError
	if errors.As(err, &qe) || errors.As(err, &de) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// rejectOverloaded answers an admission-control shed: counts it, sets
// Retry-After (whole seconds, rounded up, at least 1), and writes the
// typed 429 body.
func (s *Server) rejectOverloaded(w http.ResponseWriter, oe *overloadError) {
	s.assignStats.recordShed(oe.reason)
	secs := int((oe.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErrorCode(w, http.StatusTooManyRequests, codeOverloaded, "%s", oe.msg)
}
