package server

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseSpecPaths scans docs/openapi.yaml with a minimal indentation-based
// reader (no YAML dependency) and returns the set of "METHOD path" pairs
// declared under the top-level paths: section. It understands exactly the
// layout the spec uses — path keys at two spaces, method keys at four —
// which is all the coverage test needs.
func parseSpecPaths(t *testing.T) map[string]bool {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "docs", "openapi.yaml"))
	if err != nil {
		t.Fatalf("open OpenAPI spec: %v", err)
	}
	defer f.Close()

	methods := map[string]bool{
		"get": true, "post": true, "put": true, "patch": true,
		"delete": true, "head": true, "options": true,
	}
	declared := make(map[string]bool)
	inPaths := false
	currentPath := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		switch {
		case indent == 0:
			inPaths = trimmed == "paths:"
			currentPath = ""
		case inPaths && indent == 2 && strings.HasSuffix(trimmed, ":"):
			currentPath = strings.TrimSuffix(trimmed, ":")
		case inPaths && indent == 4 && strings.HasSuffix(trimmed, ":"):
			m := strings.TrimSuffix(trimmed, ":")
			if methods[m] && currentPath != "" {
				declared[strings.ToUpper(m)+" "+currentPath] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan OpenAPI spec: %v", err)
	}
	if len(declared) == 0 {
		t.Fatal("no operations found under paths: — spec layout changed?")
	}
	return declared
}

// TestOpenAPISpecCoversRoutes pins docs/openapi.yaml to the server's route
// table in both directions: every registered route must be documented, and
// every documented operation must still be registered. Adding an endpoint
// without documenting it — or documenting one that no longer exists —
// fails CI here.
func TestOpenAPISpecCoversRoutes(t *testing.T) {
	declared := parseSpecPaths(t)

	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	registered := make(map[string]bool)
	for _, rt := range srv.Routes() {
		registered[rt.Method+" "+rt.Path] = true
	}

	for key := range registered {
		if !declared[key] {
			t.Errorf("route %q is registered but missing from docs/openapi.yaml", key)
		}
	}
	for key := range declared {
		if !registered[key] {
			t.Errorf("operation %q is documented in docs/openapi.yaml but not registered on the server", key)
		}
	}
}
