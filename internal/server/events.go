package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The events endpoint streams a job's lifecycle as Server-Sent Events:
//
//	event: state     data: the same JSON as GET /v1/jobs/{id}
//	event: progress  data: {"outer":N,"outer_total":M}
//
// A "state" event is sent immediately on connect, a "progress" event for
// each fit progress report (coalesced: a slow consumer sees the latest, not
// every intermediate), and a final "state" event when the job reaches a
// terminal state, after which the stream ends. The handler returns as soon
// as the client disconnects, so an abandoned stream never pins a goroutine.

// sseWriter frames SSE events onto a flushable ResponseWriter.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (s sseWriter) event(name string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)

	sse := sseWriter{w: w, f: flusher}
	// Subscribe before the initial snapshot: a progress report landing in
	// between is buffered in the subscription, not lost.
	sub := j.subscribe()
	defer j.unsubscribe(sub)

	if err := sse.event("state", s.jobResponse(j)); err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.draining:
			// Graceful shutdown: end the stream so http.Server.Shutdown is
			// not held open until its timeout by attached consumers.
			return
		case p := <-sub:
			if err := sse.event("progress", progressDoc(p)); err != nil {
				return
			}
		case <-j.done:
			// Drain any progress that raced the terminal transition, then
			// close with the final state (which carries final progress).
			select {
			case p := <-sub:
				_ = sse.event("progress", progressDoc(p))
			default:
			}
			_ = sse.event("state", s.jobResponse(j))
			return
		}
	}
}
