package server

import (
	"errors"
	"net/http"
	"time"

	"genclus/internal/replica"
	"genclus/internal/snapshot"
	diskstore "genclus/internal/store"
)

// Replica mode: with Config.ReplicaOf set, this server is a read-only
// follower of another genclusd. A replica.Syncer reconciles the local model
// registry against the primary's /v1/models listing (pull-by-digest over
// /v1/models/{id}/export, bytes verified against the advertised SHA-256
// and decoded behind the same trust-boundary limits an import faces),
// mutating routes answer a typed 403 {"code":"read_only_replica"}, and
// /assign serves from the synced registry — a fleet of replicas scales
// fold-in inference horizontally while fits stay on the primary. Sync
// state is surfaced on /healthz, /metrics and GET /v1/replication; with a
// data dir the synced models persist, so a restarted replica resumes from
// its local registry and re-downloads nothing whose digest still matches.

// codeReadOnlyReplica is the error code on 403s from mutating routes in
// replica mode.
const codeReadOnlyReplica = "read_only_replica"

// replicaRegistry adapts the server's model registry to replica.Registry.
// Installs run the full import trust boundary (snapshot.Decode checks CRC,
// bounds and canonical form) and the usual registration path, so a synced
// model persists, admits through MaxModels eviction, and refreshes the
// assign-engine cache exactly like an imported one.
type replicaRegistry struct{ s *Server }

func (r replicaRegistry) LocalModels() map[string]string {
	return r.s.store.modelDigests()
}

func (r replicaRegistry) Install(id string, data []byte) error {
	s := r.s
	snap, err := snapshot.Decode(data, s.snapshotLimits())
	if err != nil {
		return err
	}
	old, _ := s.store.model(id)
	e := &modelEntry{
		id:        id,
		model:     snap.Model,
		meta:      snap.Meta,
		created:   s.cfg.now(),
		digest:    snapshot.DataDigest(data),
		size:      int64(len(data)),
		precision: snap.Precision,
		// The meta's job/network ids are the PRIMARY's provenance; the
		// registry row carries them so listings mirror the primary's.
		jobID:     snap.Meta[metaJobID],
		networkID: snap.Meta[metaNetworkID],
	}
	if s.blobs != nil {
		// Same degraded-durability contract as registerModel: a failed disk
		// write keeps the model serveable in memory (counted and logged);
		// the next restart simply re-pulls it.
		if err := s.blobs.Put(bucketModels, id, data); err != nil {
			s.persistFailure("persist synced model "+id, err)
		}
	}
	s.admitModel(e)
	if old != nil && old.digest != e.digest {
		// The id moved to new bytes; release the stale engine unless another
		// entry still serves the old digest.
		s.dropEngine(old.digest)
	}
	return nil
}

func (r replicaRegistry) Remove(id string) error {
	s := r.s
	e, ok := s.store.model(id)
	if !ok || !s.store.deleteModel(id) {
		return nil
	}
	s.dropEngine(e.digest)
	if s.blobs != nil {
		if err := s.blobs.Delete(bucketModels, id); err != nil && !errors.Is(err, diskstore.ErrNotFound) {
			return err
		}
	}
	return nil
}

// startReplication builds and starts the sync loop (New calls it last, so
// the registry adapter sees a fully-wired server).
func (s *Server) startReplication() error {
	sy, err := replica.New(replica.Config{
		Primary:  s.cfg.ReplicaOf,
		Registry: replicaRegistry{s},
		Interval: s.cfg.SyncInterval,
		// A replica refuses exports beyond what the primary could have
		// accepted as an upload.
		MaxSnapshotBytes: s.cfg.MaxBodyBytes,
		Logger:           s.log,
		Tracer:           s.tracer,
		Now:              s.cfg.now,
	})
	if err != nil {
		return err
	}
	s.syncer = sy
	sy.Start()
	return nil
}

// replicationStatsResponse is the sync-state block served on /healthz (and
// inside GET /v1/replication). On a primary every field is zero and Active
// is false.
type replicationStatsResponse struct {
	// Active reports replica mode; Primary is the followed base URL.
	Active  bool   `json:"active"`
	Primary string `json:"primary,omitempty"`
	// LagSeconds is the staleness bound: seconds since the last successful
	// sync pass (since startup before the first one).
	LagSeconds float64 `json:"lag_seconds"`
	// Syncs/SyncErrors count completed and failed passes; ModelsSynced and
	// ModelsDeleted count models installed and removed by the sync loop.
	Syncs         uint64 `json:"syncs"`
	SyncErrors    uint64 `json:"sync_errors"`
	ModelsSynced  uint64 `json:"models_synced"`
	ModelsDeleted uint64 `json:"models_deleted"`
	// ConsecutiveFailures is the current failure streak driving backoff.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastSync is the RFC 3339 time of the last successful pass; LastError
	// the message of the last failed one ("" after a success).
	LastSync  string `json:"last_sync,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// replicationStats snapshots the syncer state (zero block on a primary).
func (s *Server) replicationStats() replicationStatsResponse {
	if s.syncer == nil {
		return replicationStatsResponse{}
	}
	st := s.syncer.Status()
	out := replicationStatsResponse{
		Active:              true,
		Primary:             st.Primary,
		LagSeconds:          st.LagSeconds,
		Syncs:               st.Syncs,
		SyncErrors:          st.SyncErrors,
		ModelsSynced:        st.ModelsSynced,
		ModelsDeleted:       st.ModelsDeleted,
		ConsecutiveFailures: st.ConsecutiveFailures,
		LastError:           st.LastError,
	}
	if !st.LastSync.IsZero() {
		out.LastSync = st.LastSync.UTC().Format(time.RFC3339Nano)
	}
	return out
}

// replicationResponse is the GET /v1/replication body: the node's role,
// its registry size, and (replicas only) the live sync state.
type replicationResponse struct {
	// Mode is "primary" or "replica".
	Mode string `json:"mode"`
	// Models is the local registry size — on a converged replica it equals
	// the primary's.
	Models int                      `json:"models"`
	Sync   replicationStatsResponse `json:"sync"`
}

func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	mode := "primary"
	if s.cfg.ReplicaOf != "" {
		mode = "replica"
	}
	writeJSON(w, http.StatusOK, replicationResponse{
		Mode:   mode,
		Models: s.store.numModels(),
		Sync:   s.replicationStats(),
	})
}
