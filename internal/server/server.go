// Package server implements genclusd: a long-running HTTP service that
// accepts heterogeneous information network uploads, schedules GenClus fits
// on a bounded async job queue, and serves the fitted models — hard
// assignments, soft memberships, learned relation strengths, and optional
// eval metrics against submitted ground truth.
//
// The API surface (all request/response bodies are JSON):
//
//	POST   /v1/networks           upload a network (hin JSON format) → {id}
//	POST   /v1/networks/{id}/edges      add/remove links (streaming mutation)
//	POST   /v1/networks/{id}/objects    add objects with links and observations
//	PATCH  /v1/networks/{id}/attributes replace per-object observations
//	GET    /v1/networks/{id}/supervisor continuous-clustering supervisor status
//	POST   /v1/jobs               submit a fit     → {id, state}
//	GET    /v1/jobs/{id}          job status and progress
//	GET    /v1/jobs/{id}/result   fitted model (409 until the job is done)
//	GET    /v1/jobs/{id}/events   live progress stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/models             list registered models
//	GET    /v1/models/{id}        model metadata
//	DELETE /v1/models/{id}        delete a model (registry and disk)
//	GET    /v1/models/{id}/export download the binary model snapshot
//	POST   /v1/models/{id}/assign fold new objects into a model (online inference)
//	POST   /v1/models/import      register an uploaded snapshot → metadata
//	GET    /v1/replication        node role and replica sync state
//	GET    /v1/traces             recent completed request/job traces
//	GET    /v1/traces/{id}        one trace by 32-hex trace id
//	GET    /v1/jobs/{id}/trace    a fit's span timeline (queue wait, iterations)
//	GET    /healthz               liveness plus queue statistics
//	GET    /metrics               Prometheus text-format metrics
//
// Registered models also serve online inference: POST
// /v1/models/{id}/assign folds batches of new objects — links to known
// objects plus optional partial attribute observations — into the model's
// hidden space without refitting, with concurrent requests coalesced into
// shared engine passes (see assign.go and docs/ARCHITECTURE.md,
// "Inference").
//
// Uploaded networks are not frozen: the mutation endpoints stream edge,
// object and attribute changes into new immutable view generations,
// append them to a crash-safe per-network delta log (replayed at
// startup), and wake a continuous-clustering supervisor that schedules
// warm-start refits once the live view drifts from the newest model (see
// mutate.go, supervisor.go and docs/ARCHITECTURE.md, "Continuous
// clustering").
//
// A job submission may name a finished job in warm_start_from, or a
// registered model in warm_start_from_model: the new fit is then
// warm-started from that fitted state (memberships by object ID, strengths
// by relation name, attribute models by attribute name), so re-clustering a
// grown or perturbed network converges in a fraction of a cold start's
// iterations. Every finished fit is registered as a model automatically;
// models — unlike jobs — are never TTL-evicted, and with Config.DataDir set
// they (and finished jobs) survive restarts and SIGKILL (see
// docs/ARCHITECTURE.md, "Persistence").
//
// With Config.ReplicaOf set the server runs as a read-only replica of
// another genclusd: a background loop mirrors the primary's model registry
// by snapshot digest, mutating routes answer a typed 403
// {"code":"read_only_replica"}, and /assign serves from the synced
// registry — see replication.go and docs/ARCHITECTURE.md, "Replication".
//
// The /v1 surface is additive-only: fields and endpoints may be added, but
// existing request fields, response fields, and status codes keep their
// meaning until a /v2 (see README, "API compatibility").
//
// Malformed or oversized input is always a 4xx, never a 5xx: the decoder
// runs behind http.MaxBytesReader and hin.Limits, and job options are
// validated before anything is queued.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"genclus/internal/core"
	"genclus/internal/hin"
	"genclus/internal/replica"
	diskstore "genclus/internal/store"
	"genclus/internal/trace"
)

// Config sizes the service. Zero fields take the documented defaults.
type Config struct {
	// Workers is the number of concurrent fits (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (default 64);
	// submissions beyond it get 503.
	QueueDepth int
	// JobTTL evicts finished jobs and idle networks this long after their
	// last use (default 1h).
	JobTTL time.Duration
	// SweepEvery is the eviction cadence (default JobTTL/4, min 1s).
	SweepEvery time.Duration
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// Limits bounds decoded networks; the zero value takes DefaultLimits.
	Limits hin.Limits
	// MaxK caps the requested cluster count (default 4096). K multiplies
	// into every Θ row and every categorical β matrix, so an unbounded K
	// is a one-request memory bomb.
	MaxK int
	// MaxOuterIters, MaxEMIters and MaxInitSeeds cap the corresponding
	// job options (defaults 1e6, 10_000, 1024). They bound per-job
	// compute only loosely — a runaway job is cancellable via DELETE —
	// but keep a single request from scheduling effectively unbounded
	// work by accident.
	MaxOuterIters int
	MaxEMIters    int
	MaxInitSeeds  int

	// AssignBatchWindow is how long the first assign request against a
	// model sleeps so concurrent companions can join the shared inference
	// pass (default 2ms; negative disables coalescing so every request
	// runs its own pass). The full window is always slept, so it is a
	// fixed latency floor every request pays — micro-batching trades that
	// bounded latency for engine-pass sharing under concurrent load.
	AssignBatchWindow time.Duration
	// MaxAssignBatch caps both the query objects of a single assign
	// request (the trust boundary) and the objects coalesced into one
	// shared engine pass (default 256).
	MaxAssignBatch int
	// MaxAssignLinks caps the links of a single assign query object
	// (default 4096).
	MaxAssignLinks int
	// MaxAssignObs caps the term-count observations and, separately, the
	// numeric observations of a single assign query object (default 4096).
	MaxAssignObs int
	// MaxAssignEngines caps the per-model inference engine cache (default
	// 64); least-recently-used engines are dropped beyond it and rebuilt
	// on demand.
	MaxAssignEngines int
	// MaxAssignQueue bounds, per model, the query objects queued behind a
	// busy dispatcher (default 4×MaxAssignBatch; negative disables the
	// bound). Requests past the cap are shed with 429 "overloaded" instead
	// of growing the pending list without limit.
	MaxAssignQueue int
	// MaxAssignInFlight caps assign requests concurrently inside admission
	// control across all models (default 1024; negative disables).
	// Overflow is shed with 429 "overloaded".
	MaxAssignInFlight int
	// AssignRPS, when positive, rate-limits assign admissions to this many
	// requests per second via a token bucket of AssignBurst tokens
	// (default burst: max(1, ceil(AssignRPS))). Zero disables.
	AssignRPS   float64
	AssignBurst int

	// WriteTimeout is the per-request write deadline applied to every
	// non-streaming route (default 1m; negative disables). SSE event
	// streams are exempt — they legitimately outlive any single write
	// budget and are bounded by drain/TTL instead.
	WriteTimeout time.Duration

	// MaxTraces bounds the in-memory ring of recent completed request
	// traces served on GET /v1/traces (default 256). Job traces live on the
	// job itself for its TTL; the ring only bounds the fleet-wide recent
	// view.
	MaxTraces int
	// TraceSlow promotes requests slower than this to a Warn-level log
	// line carrying the trace id, so slow requests surface at default
	// verbosity with a handle into /v1/traces (default 1s; negative
	// disables promotion).
	TraceSlow time.Duration
	// Logger receives structured request, job, and persistence logs (nil:
	// slog.Default()). Per-request lines are Debug level; degraded
	// durability and 5xx responses log at Warn/Error.
	Logger *slog.Logger

	// DataDir, when set, makes finished fits durable: model snapshots and
	// job records are written crash-safely under it and replayed at
	// startup, so a restarted (or SIGKILLed) daemon serves every fit that
	// had reported done. Empty keeps everything in memory.
	DataDir string
	// MaxModels caps the model registry (default 1024); registering beyond
	// it evicts the oldest models from memory and disk.
	MaxModels int

	// SupervisorMaxPending triggers an automatic warm-start refit of a
	// mutated network once this many mutations accumulated since the last
	// refit was scheduled (default 32; negative disables the depth
	// trigger).
	SupervisorMaxPending int
	// SupervisorDriftThreshold triggers a refit once the drift score —
	// mean total-variation distance between touched objects' fold-in
	// posteriors and the newest model's memberships, in [0, 1] — reaches
	// it (default 0.25; negative disables the drift trigger).
	SupervisorDriftThreshold float64
	// SupervisorInterval is the supervisor's evaluation cadence between
	// mutation-driven wakeups (default 5s).
	SupervisorInterval time.Duration
	// SupervisorDisabled turns continuous clustering off entirely: no
	// supervisor goroutines start, mutations still apply and log.
	SupervisorDisabled bool

	// ReplicaOf, when set to a primary's base URL, runs this server as a
	// read-only replica: a sync loop mirrors the primary's model registry
	// by digest (see replication.go), mutating routes answer a typed 403
	// "read_only_replica", and /assign serves from the synced registry.
	ReplicaOf string
	// SyncInterval is the pause between successful replica sync passes
	// (default 2s; only meaningful with ReplicaOf).
	SyncInterval time.Duration

	// now is the test clock hook; nil means time.Now.
	now func() time.Time
}

// DefaultLimits is the upload bound genclusd ships with: generous for real
// workloads, tight enough that a small hostile document cannot force a
// giant allocation (MaxVocab in particular multiplies into K×Vocab floats
// per categorical attribute on every fit).
func DefaultLimits() hin.Limits {
	return hin.Limits{
		MaxObjects:      2_000_000,
		MaxLinks:        20_000_000,
		MaxAttributes:   64,
		MaxVocab:        1_000_000,
		MaxObservations: 50_000_000,
	}
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = time.Hour
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.JobTTL / 4
		if c.SweepEvery < time.Second {
			c.SweepEvery = time.Second
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Limits == (hin.Limits{}) {
		c.Limits = DefaultLimits()
	}
	if c.MaxK <= 0 {
		c.MaxK = 4096
	}
	if c.MaxOuterIters <= 0 {
		c.MaxOuterIters = 1_000_000
	}
	if c.MaxEMIters <= 0 {
		c.MaxEMIters = 10_000
	}
	if c.MaxInitSeeds <= 0 {
		c.MaxInitSeeds = 1024
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 1024
	}
	if c.AssignBatchWindow == 0 {
		c.AssignBatchWindow = 2 * time.Millisecond
	}
	if c.AssignBatchWindow < 0 {
		c.AssignBatchWindow = 0
	}
	if c.MaxAssignBatch <= 0 {
		c.MaxAssignBatch = 256
	}
	if c.MaxAssignLinks <= 0 {
		c.MaxAssignLinks = 4096
	}
	if c.MaxAssignObs <= 0 {
		c.MaxAssignObs = 4096
	}
	if c.MaxAssignEngines <= 0 {
		c.MaxAssignEngines = 64
	}
	if c.MaxAssignQueue == 0 {
		c.MaxAssignQueue = 4 * c.MaxAssignBatch
	}
	if c.MaxAssignQueue < 0 {
		c.MaxAssignQueue = 0 // disabled
	}
	if c.MaxAssignInFlight == 0 {
		c.MaxAssignInFlight = 1024
	}
	if c.MaxAssignInFlight < 0 {
		c.MaxAssignInFlight = 0 // disabled
	}
	if c.AssignRPS > 0 && c.AssignBurst <= 0 {
		c.AssignBurst = int(c.AssignRPS)
		if float64(c.AssignBurst) < c.AssignRPS {
			c.AssignBurst++
		}
		if c.AssignBurst < 1 {
			c.AssignBurst = 1
		}
	}
	if c.SupervisorMaxPending == 0 {
		c.SupervisorMaxPending = 32
	}
	if c.SupervisorMaxPending < 0 {
		c.SupervisorMaxPending = 0 // disabled
	}
	if c.SupervisorDriftThreshold == 0 {
		c.SupervisorDriftThreshold = 0.25
	}
	if c.SupervisorDriftThreshold < 0 {
		c.SupervisorDriftThreshold = 0 // disabled
	}
	if c.SupervisorInterval <= 0 {
		c.SupervisorInterval = 5 * time.Second
	}
	if c.ReplicaOf != "" {
		// A replica never fits or mutates, so continuous clustering has
		// nothing to supervise.
		c.SupervisorDisabled = true
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = time.Minute
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0 // disabled
	}
	if c.MaxTraces <= 0 {
		c.MaxTraces = 256
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = time.Second
	}
	if c.TraceSlow < 0 {
		c.TraceSlow = 0 // disabled
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the genclusd HTTP service. Create with New, mount via Handler,
// and Close on shutdown to stop workers and abort running fits.
type Server struct {
	cfg     Config
	store   *store
	manager *manager
	mux     *http.ServeMux
	started time.Time
	// blobs is the crash-safe on-disk store under Config.DataDir; nil when
	// persistence is disabled.
	blobs     *diskstore.Store
	recovered RecoveryStats
	// persistFailures counts degraded-durability events (failed snapshot or
	// record writes); surfaced on /healthz so a sick volume is visible.
	persistFailures atomic.Int64
	// assignCache holds the per-model inference engines behind their
	// micro-batching dispatchers (see assign.go); assignStats are the
	// monotone /healthz assign counters, snapshotted consistently under
	// one lock and mirrored into /metrics.
	assignCache assignEngines
	assignStats assignCounters
	// assignInFlight counts assign requests inside admission control;
	// assignLimiter is the optional token-bucket rate limiter (nil: off).
	assignInFlight atomic.Int64
	assignLimiter  *tokenBucket
	// assignPassHook, when set (tests), runs at the start of every engine
	// pass — it lets overload tests hold a pass open deterministically.
	assignPassHook func()
	// mutationStats are the monotone /healthz mutation counters (see
	// mutate.go), mirrored into /metrics like assignStats.
	mutationStats mutationCounters
	// log and metrics are the operations surface: structured logs and the
	// /metrics instrument registry (see metrics.go).
	log     *slog.Logger
	metrics *serverMetrics
	// tracer records every request, job, sync-pass and supervisor-decision
	// trace; its ring backs GET /v1/traces (see trace.go).
	tracer *trace.Recorder
	// runtimeSamples caches runtime.ReadMemStats for the telemetry gauges
	// and the /healthz runtime block (see runtimeTelemetry).
	runtimeSamples runtimeSampler
	// syncer is the replica-mode sync loop mirroring Config.ReplicaOf's
	// model registry; nil on a primary (see replication.go).
	syncer  *replica.Syncer
	sweeper chan struct{} // closed by Close to stop the janitor
	// draining closes when event streams must end (DrainStreams/Close).
	// Without it, a live SSE connection would hold http.Server.Shutdown
	// open for its whole timeout.
	draining  chan struct{}
	drainOnce sync.Once
	closeOnce sync.Once
}

// New builds a Server, replays Config.DataDir (when set) into the job table
// and model registry, and starts the worker pool and eviction janitor. It
// fails only on an unusable data dir — per-artifact recovery problems are
// skipped and counted in Recovered instead.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st := newStore(cfg.JobTTL, cfg.now)
	s := &Server{
		cfg:      cfg,
		store:    st,
		mux:      http.NewServeMux(),
		started:  cfg.now(),
		sweeper:  make(chan struct{}),
		draining: make(chan struct{}),
	}
	s.assignCache.cap = cfg.MaxAssignEngines
	if cfg.DataDir != "" {
		blobs, err := diskstore.Open(cfg.DataDir)
		if err != nil {
			return nil, fmt.Errorf("server: open data dir: %w", err)
		}
		s.blobs = blobs
		if err := s.recoverFromDisk(); err != nil {
			return nil, fmt.Errorf("server: recover data dir: %w", err)
		}
	}
	s.manager = newManager(st, cfg.Workers, cfg.QueueDepth, cfg.now)
	s.manager.onDone = s.persistFinishedJob
	s.log = cfg.Logger
	s.tracer = trace.NewRecorder(cfg.MaxTraces)
	s.metrics = s.newServerMetrics()
	s.assignStats.met = s.metrics
	s.mutationStats.met = s.metrics
	s.manager.met = s.metrics
	s.manager.log = s.log
	if cfg.AssignRPS > 0 {
		s.assignLimiter = newTokenBucket(cfg.AssignRPS, cfg.AssignBurst, cfg.now)
	}
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.Method+" "+rt.Path, s.instrument(rt))
	}
	// Resume supervision of recovered mutated networks now that metrics
	// and the manager exist (their first evaluation waits for mutations or
	// the first tick).
	for id, e := range st.mutatedNetworks() {
		s.ensureSupervisor(id, e)
	}
	if cfg.ReplicaOf != "" {
		if err := s.startReplication(); err != nil {
			return nil, fmt.Errorf("server: replica sync: %w", err)
		}
	}
	go s.janitor()
	return s, nil
}

// Route is one registered endpoint: an HTTP method plus a net/http pattern
// (path parameters in {braces}). Routes() exposes the table so tests can
// assert that docs/openapi.yaml covers every endpoint — the spec and the
// mux share this single source of truth.
type Route struct {
	Method string
	Path   string

	handler http.HandlerFunc
	// sse marks long-lived streaming routes, which the instrument
	// middleware exempts from the per-request write deadline.
	sse bool
	// mutating marks routes that change server state; in replica mode
	// (Config.ReplicaOf) the instrument middleware answers them with a
	// typed 403 "read_only_replica" instead of dispatching the handler.
	mutating bool
}

// routes is the single route table both the mux and Routes are built from.
func (s *Server) routes() []Route {
	return []Route{
		{Method: "POST", Path: "/v1/networks", handler: s.handleUploadNetwork, mutating: true},
		{Method: "POST", Path: "/v1/networks/{id}/edges", handler: s.handleMutateEdges, mutating: true},
		{Method: "POST", Path: "/v1/networks/{id}/objects", handler: s.handleMutateObjects, mutating: true},
		{Method: "PATCH", Path: "/v1/networks/{id}/attributes", handler: s.handleMutateAttributes, mutating: true},
		{Method: "GET", Path: "/v1/networks/{id}/supervisor", handler: s.handleSupervisorStatus},
		{Method: "POST", Path: "/v1/jobs", handler: s.handleSubmitJob, mutating: true},
		{Method: "GET", Path: "/v1/jobs/{id}", handler: s.handleJobStatus},
		{Method: "GET", Path: "/v1/jobs/{id}/result", handler: s.handleJobResult},
		{Method: "GET", Path: "/v1/jobs/{id}/events", handler: s.handleJobEvents, sse: true},
		{Method: "DELETE", Path: "/v1/jobs/{id}", handler: s.handleCancelJob, mutating: true},
		{Method: "GET", Path: "/v1/models", handler: s.handleListModels},
		{Method: "POST", Path: "/v1/models/import", handler: s.handleImportModel, mutating: true},
		{Method: "GET", Path: "/v1/models/{id}", handler: s.handleGetModel},
		{Method: "DELETE", Path: "/v1/models/{id}", handler: s.handleDeleteModel, mutating: true},
		{Method: "GET", Path: "/v1/models/{id}/export", handler: s.handleExportModel},
		{Method: "POST", Path: "/v1/models/{id}/assign", handler: s.handleAssign},
		{Method: "GET", Path: "/v1/replication", handler: s.handleReplication},
		{Method: "GET", Path: "/v1/traces", handler: s.handleListTraces},
		{Method: "GET", Path: "/v1/traces/{id}", handler: s.handleGetTrace},
		{Method: "GET", Path: "/v1/jobs/{id}/trace", handler: s.handleJobTrace},
		{Method: "GET", Path: "/healthz", handler: s.handleHealthz},
		{Method: "GET", Path: "/metrics", handler: s.handleMetrics},
	}
}

// Routes returns every registered endpoint (method + path pattern).
func (s *Server) Routes() []Route {
	out := s.routes()
	for i := range out {
		out[i].handler = nil
	}
	return out
}

// Handler returns the http.Handler serving the route table.
func (s *Server) Handler() http.Handler { return s.mux }

// DrainStreams ends every live event stream (idempotent). Hook it up via
// http.Server.RegisterOnShutdown so a graceful Shutdown is not held open by
// attached SSE consumers; Close calls it too.
func (s *Server) DrainStreams() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Close stops the janitor, the continuous-clustering supervisors and the
// worker pool, cancelling running fits, ending live event streams, and
// waiting for worker and supervisor goroutines to exit. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.DrainStreams()
		close(s.sweeper)
		// The replica syncer stops before the registry's consumers so no
		// install can race a closing engine cache.
		if s.syncer != nil {
			s.syncer.Stop()
		}
		// Supervisors drain before the manager so none can schedule a
		// refit into a closing queue (a job close would cancel anyway —
		// this just keeps shutdown quiet and deterministic).
		for _, sup := range s.store.closeSupervisors() {
			sup.halt()
		}
		s.manager.close()
	})
}

func (s *Server) janitor() {
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.sweeper:
			return
		case <-t.C:
			jobs, nets := s.store.sweep()
			for _, id := range jobs {
				s.dropPersistedJob(id)
			}
			for id, e := range nets {
				s.retireNetwork(id, e)
			}
		}
	}
}

// ---- wire types ----

// errorResponse carries the human-readable error and, for conditions a
// client should distinguish programmatically, a stable machine-readable
// code (currently only "job_evicted": the job existed but outlived its
// TTL, as opposed to never having existed). RequestID is the request's
// trace id — quote it in bug reports and feed it to GET /v1/traces/{id}.
type errorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// codeJobEvicted is the error code for 404s on TTL-evicted jobs.
const codeJobEvicted = "job_evicted"

type networkResponse struct {
	ID         string   `json:"id"`
	Objects    int      `json:"objects"`
	Links      int      `json:"links"`
	Relations  []string `json:"relations"`
	Attributes []string `json:"attributes"`
}

// jobRequest is a fit submission. K is required unless warm_start_from or
// warm_start_from_model is set (in which case it defaults to — and must
// match — the source fit's K); every Options field is optional and overlays
// core.DefaultOptions(K). Truth optionally maps object IDs to ground-truth
// cluster labels, enabling eval metrics on the result. WarmStartFrom names
// a finished job — and WarmStartFromModel a registry model — whose fitted
// state seeds this fit; the two are mutually exclusive.
type jobRequest struct {
	NetworkID          string         `json:"network_id"`
	K                  int            `json:"k"`
	Options            *jobOptions    `json:"options,omitempty"`
	Truth              map[string]int `json:"truth,omitempty"`
	WarmStartFrom      string         `json:"warm_start_from,omitempty"`
	WarmStartFromModel string         `json:"warm_start_from_model,omitempty"`
}

type jobOptions struct {
	Attributes           []string `json:"attributes,omitempty"`
	OuterIters           *int     `json:"outer_iters,omitempty"`
	EMIters              *int     `json:"em_iters,omitempty"`
	EMTol                *float64 `json:"em_tol,omitempty"`
	OuterTol             *float64 `json:"outer_tol,omitempty"`
	NewtonIters          *int     `json:"newton_iters,omitempty"`
	PriorSigma           *float64 `json:"prior_sigma,omitempty"`
	Seed                 *int64   `json:"seed,omitempty"`
	InitSeeds            *int     `json:"init_seeds,omitempty"`
	InitSeedSteps        *int     `json:"init_seed_steps,omitempty"`
	Parallelism          *int     `json:"parallelism,omitempty"`
	LearnGamma           *bool    `json:"learn_gamma,omitempty"`
	InitialGamma         *float64 `json:"initial_gamma,omitempty"`
	SymmetricPropagation *bool    `json:"symmetric_propagation,omitempty"`
	Epsilon              *float64 `json:"epsilon,omitempty"`
	Precision            *string  `json:"precision,omitempty"`
}

func (jo *jobOptions) apply(opts *core.Options) {
	if jo == nil {
		return
	}
	opts.Attributes = jo.Attributes
	if jo.OuterIters != nil {
		opts.OuterIters = *jo.OuterIters
	}
	if jo.EMIters != nil {
		opts.EMIters = *jo.EMIters
	}
	if jo.EMTol != nil {
		opts.EMTol = *jo.EMTol
	}
	if jo.OuterTol != nil {
		opts.OuterTol = *jo.OuterTol
	}
	if jo.NewtonIters != nil {
		opts.NewtonIters = *jo.NewtonIters
	}
	if jo.PriorSigma != nil {
		opts.PriorSigma = *jo.PriorSigma
	}
	if jo.Seed != nil {
		opts.Seed = *jo.Seed
	}
	if jo.InitSeeds != nil {
		opts.InitSeeds = *jo.InitSeeds
	}
	if jo.InitSeedSteps != nil {
		opts.InitSeedSteps = *jo.InitSeedSteps
	}
	if jo.Parallelism != nil {
		opts.Parallelism = *jo.Parallelism
	}
	if jo.LearnGamma != nil {
		opts.LearnGamma = *jo.LearnGamma
	}
	if jo.InitialGamma != nil {
		opts.InitialGamma = *jo.InitialGamma
	}
	if jo.SymmetricPropagation != nil {
		opts.SymmetricPropagation = *jo.SymmetricPropagation
	}
	if jo.Epsilon != nil {
		opts.Epsilon = *jo.Epsilon
	}
	if jo.Precision != nil {
		// Unvalidated copy: Options.Validate rejects unknown precisions
		// with core.PrecisionError, surfaced as 400 like every other
		// invalid option.
		opts.Precision = core.Precision(*jo.Precision)
	}
}

type progressResponse struct {
	Outer      int `json:"outer"`
	OuterTotal int `json:"outer_total"`
	// Objective is the relation-strength objective after the reported
	// iteration; EMIterations is how many EM steps it ran. The same numbers
	// appear as span attributes on the job's trace — these fields make them
	// streamable without polling /v1/jobs/{id}/trace.
	Objective    float64 `json:"objective,omitempty"`
	EMIterations int     `json:"em_iterations,omitempty"`
}

// progressDoc converts a core progress report to its wire shape.
func progressDoc(p core.Progress) *progressResponse {
	return &progressResponse{Outer: p.Outer, OuterTotal: p.OuterTotal, Objective: p.Objective, EMIterations: p.EMIterations}
}

type jobResponse struct {
	ID        string            `json:"id"`
	NetworkID string            `json:"network_id"`
	State     jobState          `json:"state"`
	Progress  *progressResponse `json:"progress,omitempty"`
	Error     string            `json:"error,omitempty"`
	// ModelID names the registry model the finished fit was published as
	// (state "done" only) — the handle for /v1/models and
	// warm_start_from_model.
	ModelID string `json:"model_id,omitempty"`
	// TraceID is the fit's 32-hex trace id — feed it to GET
	// /v1/jobs/{id}/trace (or /v1/traces/{id} once finished) for the span
	// timeline. Empty for jobs recovered from disk after a restart.
	TraceID  string `json:"trace_id,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

type objectResult struct {
	ID      string    `json:"id"`
	Type    string    `json:"type"`
	Cluster int       `json:"cluster"`
	Theta   []float64 `json:"theta"`
}

type resultResponse struct {
	ID        string             `json:"id"`
	K         int                `json:"k"`
	Objects   []objectResult     `json:"objects"`
	Gamma     map[string]float64 `json:"gamma"`
	Objective float64            `json:"objective"`
	PseudoLL  float64            `json:"pseudo_ll"`
	// EMIterations/OuterIterations expose the fit's work: a warm-started
	// job should show far fewer than its cold-start source.
	EMIterations    int            `json:"em_iterations"`
	OuterIterations int            `json:"outer_iterations"`
	Metrics         *resultMetrics `json:"metrics,omitempty"`
}

type healthResponse struct {
	Status        string           `json:"status"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Workers       int              `json:"workers"`
	Networks      int              `json:"networks"`
	Models        int              `json:"models"`
	Jobs          map[jobState]int `json:"jobs"`
	// PersistFailures counts fits whose snapshot or record failed to reach
	// the data dir (served memory-only until restart). Nonzero means the
	// durability contract is degraded — check the volume and the logs.
	PersistFailures int64 `json:"persist_failures"`
	// Assign surfaces the online-inference counters: request/object
	// volume, the micro-batching coalescing ratio, and engine-cache
	// effectiveness.
	Assign assignStatsResponse `json:"assign"`
	// Mutation surfaces the streaming-mutation and continuous-clustering
	// counters: mutation volume, delta-log depth, live supervisors, the
	// latest drift score, and supervisor refit outcomes.
	Mutation mutationStatsResponse `json:"mutation"`
	// Replication surfaces replica-mode sync state: lag, pass/error
	// counters, and models synced/deleted. Zero (active=false) on a
	// primary.
	Replication replicationStatsResponse `json:"replication"`
	// Runtime surfaces Go runtime telemetry — goroutine count, heap size,
	// and cumulative GC work — sampled at most every runtimeSampleTTL so a
	// scrape storm cannot turn ReadMemStats into a stop-the-world hammer.
	Runtime runtimeStatsResponse `json:"runtime"`
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...), RequestID: responseRequestID(w)})
}

// writeErrorCode is writeError with a machine-readable error code attached.
func writeErrorCode(w http.ResponseWriter, code int, apiCode, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...), Code: apiCode, RequestID: responseRequestID(w)})
}

// responseRequestID recovers the request's trace id from the instrumented
// ResponseWriter chain so every error body — 4xx shed loads included — can
// carry it without threading the id through each handler. Writers outside
// the middleware (tests calling handlers directly) yield "".
func responseRequestID(w http.ResponseWriter) string {
	for w != nil {
		switch v := w.(type) {
		case interface{ traceRequestID() string }:
			return v.traceRequestID()
		case interface{ Unwrap() http.ResponseWriter }:
			w = v.Unwrap()
		default:
			return ""
		}
	}
	return ""
}

// readBody drains a size-capped request body, mapping an overflow to 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "read request body: %v", err)
		}
		return nil, false
	}
	return data, true
}

func (s *Server) handleUploadNetwork(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	net, err := hin.FromJSONLimited(data, s.cfg.Limits)
	if err != nil {
		code := http.StatusBadRequest
		var lim *hin.LimitError
		if errors.As(err, &lim) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	// Materialize the sparse link views at the trust boundary, once per
	// upload, so the first fit of this network does not pay the CSR build
	// inside its job slot (PrepareCSR is idempotent — a concurrent fit of
	// the same network just finds them ready).
	net.PrepareCSR()
	id := s.store.addNetwork(net)
	writeJSON(w, http.StatusCreated, networkResponse{
		ID:         id,
		Objects:    net.NumObjects(),
		Links:      net.NumEdges(),
		Relations:  net.Relations(),
		Attributes: attrNames(net),
	})
}

func attrNames(net *hin.Network) []string {
	specs := net.Attrs()
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Name
	}
	return out
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req jobRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parse job request: %v", err)
		return
	}
	net, generation, ok := s.store.networkForJob(req.NetworkID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown network %q", req.NetworkID)
		return
	}
	opts := core.DefaultOptions(req.K)
	req.Options.apply(&opts)
	// A fit can only use as many EM workers as there are cores; clamp
	// rather than letting one job oversubscribe the box.
	if procs := runtime.GOMAXPROCS(0); opts.Parallelism > procs {
		opts.Parallelism = procs
	}
	if req.WarmStartFrom != "" && req.WarmStartFromModel != "" {
		writeError(w, http.StatusBadRequest, "warm_start_from and warm_start_from_model are mutually exclusive")
		return
	}
	if req.WarmStartFrom != "" {
		prior, ok := s.store.job(req.WarmStartFrom)
		if !ok {
			if s.store.jobEvicted(req.WarmStartFrom) {
				writeErrorCode(w, http.StatusNotFound, codeJobEvicted, "warm-start job %q was evicted after its TTL", req.WarmStartFrom)
			} else {
				writeError(w, http.StatusNotFound, "unknown warm-start job %q", req.WarmStartFrom)
			}
			return
		}
		snap := prior.snapshot()
		if snap.state != jobDone {
			writeError(w, http.StatusConflict, "warm-start job %s is %s, not done", req.WarmStartFrom, snap.state)
			return
		}
		// opts.K is req.K: 0 inherits the prior fit's K, otherwise it
		// must match (RefitOptions rejects a mismatch).
		warm, err := snap.result.RefitOptions(net, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "warm start: %v", err)
			return
		}
		opts = warm
	}
	if req.WarmStartFromModel != "" {
		entry, ok := s.store.model(req.WarmStartFromModel)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown warm-start model %q", req.WarmStartFromModel)
			return
		}
		warm, err := entry.model.RefitOptions(net, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "warm start: %v", err)
			return
		}
		opts = warm
	}
	if err := s.checkJobBounds(opts); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	if err := opts.Validate(net); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	truth, err := denseTruth(net, req.Truth)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j := &job{
		id:         newID("job"),
		networkID:  req.NetworkID,
		opts:       opts,
		truth:      truth,
		created:    s.cfg.now(),
		generation: generation,
		net:        net,
		state:      jobQueued,
		done:       make(chan struct{}),
	}
	// The fit's own trace starts now and continues the caller's trace: its
	// root is parented to the submit request's span, so a caller-supplied
	// traceparent flows SDK → submit → queue wait → every outer iteration.
	j.span = s.tracer.StartTrace("job.fit", spanContext(r.Context()), j.created)
	j.span.SetAttr("job", j.id)
	j.span.SetAttr("network", req.NetworkID)
	if err := s.manager.submit(j); err != nil {
		j.span.SetAttr("error", err.Error())
		j.span.End(s.cfg.now())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.store.addJob(j)
	// The submit log line joins the request ID and the job ID — the only
	// place both are in hand — so the job's later start/finish lines can be
	// traced back to the originating request.
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "job submitted",
		slog.String("req", requestID(r.Context())),
		slog.String("job", j.id),
		slog.String("network", req.NetworkID),
	)
	writeJSON(w, http.StatusAccepted, s.jobResponse(j))
}

// checkJobBounds enforces the server-side ceilings on job options —
// core.Options.Validate only checks lower bounds, and this is a trust
// boundary.
func (s *Server) checkJobBounds(opts core.Options) error {
	if opts.K > s.cfg.MaxK {
		return fmt.Errorf("k %d exceeds limit %d", opts.K, s.cfg.MaxK)
	}
	if opts.OuterIters > s.cfg.MaxOuterIters {
		return fmt.Errorf("outer_iters %d exceeds limit %d", opts.OuterIters, s.cfg.MaxOuterIters)
	}
	if opts.EMIters > s.cfg.MaxEMIters {
		return fmt.Errorf("em_iters %d exceeds limit %d", opts.EMIters, s.cfg.MaxEMIters)
	}
	if opts.InitSeeds > s.cfg.MaxInitSeeds {
		return fmt.Errorf("init_seeds %d exceeds limit %d", opts.InitSeeds, s.cfg.MaxInitSeeds)
	}
	return nil
}

// denseTruth validates the submitted ground truth against the network and
// aligns it to dense object indices (-1 = unlabeled).
func denseTruth(net *hin.Network, truth map[string]int) ([]int, error) {
	if len(truth) == 0 {
		return nil, nil
	}
	out := make([]int, net.NumObjects())
	for v := range out {
		out[v] = -1
	}
	for id, label := range truth {
		v, ok := net.IndexOf(id)
		if !ok {
			return nil, fmt.Errorf("truth references unknown object %q", id)
		}
		if label < 0 {
			return nil, fmt.Errorf("truth label for %q is negative", id)
		}
		out[v] = label
	}
	return out, nil
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.store.job(id)
	if !ok {
		if s.store.jobEvicted(id) {
			writeErrorCode(w, http.StatusNotFound, codeJobEvicted, "job %q was evicted after its TTL", id)
		} else {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
		}
		return nil, false
	}
	return j, true
}

func (s *Server) jobResponse(j *job) jobResponse {
	snap := j.snapshot()
	resp := jobResponse{
		ID:        j.id,
		NetworkID: j.networkID,
		State:     snap.state,
		Error:     snap.errMsg,
		ModelID:   snap.modelID,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.span != nil {
		resp.TraceID = j.span.TraceID().String()
	}
	if snap.state != jobQueued {
		resp.Progress = progressDoc(snap.progress)
	}
	if !snap.started.IsZero() {
		resp.Started = snap.started.UTC().Format(time.RFC3339Nano)
	}
	if !snap.finished.IsZero() {
		resp.Finished = snap.finished.UTC().Format(time.RFC3339Nano)
	}
	return resp
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponse(j))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	snap := j.snapshot()
	if snap.state != jobDone {
		writeError(w, http.StatusConflict, "job %s is %s, not done", j.id, snap.state)
		return
	}
	res := snap.result
	objects := make([]objectResult, len(snap.objects))
	labels := res.HardLabels()
	for v, info := range snap.objects {
		objects[v] = objectResult{
			ID:      info.ID,
			Type:    info.Type,
			Cluster: labels[v],
			Theta:   res.Theta[v],
		}
	}
	writeJSON(w, http.StatusOK, resultResponse{
		ID:              j.id,
		K:               res.K,
		Objects:         objects,
		Gamma:           res.Gamma,
		Objective:       res.Objective,
		PseudoLL:        res.PseudoLL,
		EMIterations:    res.EMIterations,
		OuterIterations: res.OuterIterations,
		Metrics:         snap.metrics,
	})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.manager.cancelJob(j)
	writeJSON(w, http.StatusOK, s.jobResponse(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:          "ok",
		UptimeSeconds:   s.cfg.now().Sub(s.started).Seconds(),
		Workers:         s.cfg.Workers,
		Networks:        s.store.numNetworks(),
		Models:          s.store.numModels(),
		Jobs:            s.store.jobCounts(),
		PersistFailures: s.persistFailures.Load(),
		Assign:          s.assignStats.snapshot(),
		Mutation:        s.mutationStats.snapshot(s.store),
		Replication:     s.replicationStats(),
		Runtime:         s.runtimeTelemetry(),
	})
}
