package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"genclus/internal/hin"
)

// testNetworkJSON builds a clearly two-clustered network (disjoint
// vocabulary blocks plus within-cluster cites links) and returns its JSON
// encoding together with the ground-truth labels by object ID.
func testNetworkJSON(t *testing.T, perTopic int, seed int64) ([]byte, map[string]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 20})
	n := 2 * perTopic
	ids := make([]string, n)
	truth := make(map[string]int, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("doc%04d", i)
		b.AddObject(ids[i], "doc")
		topic := i / perTopic
		truth[ids[i]] = topic
		for w := 0; w < 10; w++ {
			b.AddTermCount(ids[i], "text", topic*10+rng.Intn(10), 1)
		}
	}
	for i := 0; i < n; i++ {
		topic := i / perTopic
		for c := 0; c < 2; c++ {
			j := topic*perTopic + rng.Intn(perTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "cites", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := net.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, truth
}

// testServer spins up the service behind httptest and tears it down with
// the test. Structured logs are discarded unless the config brings its own
// logger — tests assert on responses and metrics, not log text.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doReq(t *testing.T, client *http.Client, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func uploadNetwork(t *testing.T, ts *httptest.Server, network []byte) string {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/networks", network)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", code, body)
	}
	var resp networkResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.ID
}

func submitJob(t *testing.T, ts *httptest.Server, req jobRequest) string {
	t.Helper()
	payload, _ := json.Marshal(req)
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var resp jobResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.ID
}

func jobStatus(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, body)
	}
	var resp jobResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitForState polls the status endpoint until the job reaches want.
func waitForState(t *testing.T, ts *httptest.Server, id string, want jobState) jobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp := jobStatus(t, ts, id)
		if resp.State == want {
			return resp
		}
		if resp.State == jobFailed && want != jobFailed {
			t.Fatalf("job %s failed: %s", id, resp.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return jobResponse{}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) resultResponse {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, body)
	}
	var resp resultResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// quickOpts keeps test fits fast.
func quickOpts(seed int64, parallelism int) *jobOptions {
	outer, em, initSeeds := 3, 5, 2
	return &jobOptions{
		OuterIters:  &outer,
		EMIters:     &em,
		InitSeeds:   &initSeeds,
		Seed:        &seed,
		Parallelism: &parallelism,
	}
}

func TestUploadFitPollResult(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	network, truth := testNetworkJSON(t, 30, 1)
	netID := uploadNetwork(t, ts, network)

	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(7, 1), Truth: truth})
	status := waitForState(t, ts, jobID, jobDone)
	if status.Progress == nil || status.Progress.Outer == 0 {
		t.Errorf("finished job reports no progress: %+v", status.Progress)
	}

	res := fetchResult(t, ts, jobID)
	if res.K != 2 || len(res.Objects) != 60 {
		t.Fatalf("result shape: K=%d objects=%d", res.K, len(res.Objects))
	}
	for _, o := range res.Objects {
		if len(o.Theta) != 2 || o.Cluster < 0 || o.Cluster > 1 {
			t.Fatalf("object %s: cluster=%d theta=%v", o.ID, o.Cluster, o.Theta)
		}
	}
	if _, ok := res.Gamma["cites"]; !ok {
		t.Errorf("gamma missing cites relation: %v", res.Gamma)
	}
	if res.Metrics == nil {
		t.Fatal("truth submitted but no metrics on the result")
	}
	if res.Metrics.NMI < 0.8 || res.Metrics.Labeled != 60 {
		t.Errorf("recovery too weak on a trivially separable network: %+v", res.Metrics)
	}

	// Same seed, second run → identical assignments (the determinism
	// guarantee the API documents).
	jobID2 := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(7, 1)})
	waitForState(t, ts, jobID2, jobDone)
	res2 := fetchResult(t, ts, jobID2)
	for i := range res.Objects {
		if res.Objects[i].Cluster != res2.Objects[i].Cluster {
			t.Fatalf("object %s cluster differs across identical jobs", res.Objects[i].ID)
		}
	}
}

// TestConcurrentJobsDeterministic submits jobs concurrently — same seed but
// different EM parallelism — and requires every one to complete with
// bitwise-identical assignments and relation strengths.
func TestConcurrentJobsDeterministic(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4})
	network, _ := testNetworkJSON(t, 30, 2)
	netID := uploadNetwork(t, ts, network)

	parallelisms := []int{1, 8, 1, 8}
	ids := make([]string, len(parallelisms))
	var wg sync.WaitGroup
	for i, p := range parallelisms {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			ids[i] = submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(11, p)})
		}(i, p)
	}
	wg.Wait()

	results := make([]resultResponse, len(ids))
	for i, id := range ids {
		waitForState(t, ts, id, jobDone)
		results[i] = fetchResult(t, ts, id)
	}
	base := results[0]
	for i, res := range results[1:] {
		for v := range base.Objects {
			if res.Objects[v].Cluster != base.Objects[v].Cluster {
				t.Fatalf("job %d: cluster of %s differs from job 0", i+1, base.Objects[v].ID)
			}
			for k := range base.Objects[v].Theta {
				if res.Objects[v].Theta[k] != base.Objects[v].Theta[k] {
					t.Fatalf("job %d: θ[%s][%d] differs from job 0", i+1, base.Objects[v].ID, k)
				}
			}
		}
		for rel, g := range base.Gamma {
			if res.Gamma[rel] != g {
				t.Fatalf("job %d: γ(%s) = %v, job 0 has %v", i+1, rel, res.Gamma[rel], g)
			}
		}
	}
}

// TestCancelMidFit cancels a running job and verifies both the API
// transition and that the fit's goroutines actually exit (no leak).
func TestCancelMidFit(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 400, 3)
	netID := uploadNetwork(t, ts, network)

	ts.Client().CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	outer, em, par, initSeeds := 1_000_000, 50, 2, 1
	var seed int64 = 5
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, EMIters: &em, Parallelism: &par, InitSeeds: &initSeeds, Seed: &seed,
	}})
	waitForState(t, ts, jobID, jobRunning)

	code, _ := doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	status := waitForState(t, ts, jobID, jobCancelled)
	if status.Error == "" {
		t.Error("cancelled job carries no reason")
	}

	// A cancelled job must not hold a result.
	code, _ = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/result", nil)
	if code != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, want 409", code)
	}

	// The fit goroutine and its EM workers must exit once the cancel
	// propagates; poll because the fit only notices between iterations.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ts.Client().CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after cancel: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 8})
	network, _ := testNetworkJSON(t, 400, 4)
	netID := uploadNetwork(t, ts, network)

	outer, em, initSeeds := 1_000_000, 50, 1
	slow := &jobOptions{OuterIters: &outer, EMIters: &em, InitSeeds: &initSeeds}
	blocker := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})
	waitForState(t, ts, blocker, jobRunning)

	queued := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})
	if code, _ := doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil); code != http.StatusOK {
		t.Fatalf("cancel queued: status %d", code)
	}
	waitForState(t, ts, queued, jobCancelled)

	if code, _ := doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+blocker, nil); code != http.StatusOK {
		t.Fatal("cancel blocker failed")
	}
	waitForState(t, ts, blocker, jobCancelled)
}

func TestMalformedPayloadsAre4xx(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers:      1,
		MaxBodyBytes: 64 << 10,
		Limits:       hin.Limits{MaxObjects: 1000, MaxLinks: 5000, MaxAttributes: 8, MaxVocab: 64, MaxObservations: 10000},
	})
	network, _ := testNetworkJSON(t, 5, 6)
	netID := uploadNetwork(t, ts, network)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"network: invalid JSON", "POST", "/v1/networks", `{not json`, 400},
		{"network: unknown attribute kind", "POST", "/v1/networks",
			`{"attributes":[{"name":"a","kind":"ordinal","vocab":4}],"objects":[{"id":"x","type":"t"}]}`, 400},
		{"network: term outside vocabulary", "POST", "/v1/networks",
			`{"attributes":[{"name":"a","kind":"categorical","vocab":4}],"objects":[{"id":"x","type":"t","terms":{"a":[{"t":99,"c":1}]}}]}`, 400},
		{"network: link to unknown object", "POST", "/v1/networks",
			`{"objects":[{"id":"x","type":"t"}],"links":[{"from":"x","to":"ghost","rel":"r","w":1}]}`, 400},
		{"network: vocabulary over limit", "POST", "/v1/networks",
			`{"attributes":[{"name":"a","kind":"categorical","vocab":100000}],"objects":[{"id":"x","type":"t"}]}`, 413},
		{"network: body too large", "POST", "/v1/networks", strings.Repeat("x", 65<<10), 413},
		{"job: invalid JSON", "POST", "/v1/jobs", `]`, 400},
		{"job: unknown network", "POST", "/v1/jobs", `{"network_id":"net_missing","k":2}`, 404},
		{"job: k too small", "POST", "/v1/jobs", fmt.Sprintf(`{"network_id":%q,"k":1}`, netID), 400},
		{"job: k memory bomb", "POST", "/v1/jobs", fmt.Sprintf(`{"network_id":%q,"k":1000000000}`, netID), 400},
		{"job: unbounded iterations", "POST", "/v1/jobs",
			fmt.Sprintf(`{"network_id":%q,"k":2,"options":{"outer_iters":2000000000}}`, netID), 400},
		{"job: unknown attribute", "POST", "/v1/jobs",
			fmt.Sprintf(`{"network_id":%q,"k":2,"options":{"attributes":["nope"]}}`, netID), 400},
		{"job: truth on unknown object", "POST", "/v1/jobs",
			fmt.Sprintf(`{"network_id":%q,"k":2,"truth":{"ghost":0}}`, netID), 400},
		{"status: unknown job", "GET", "/v1/jobs/job_missing", "", 404},
		{"result: unknown job", "GET", "/v1/jobs/job_missing/result", "", 404},
		{"cancel: unknown job", "DELETE", "/v1/jobs/job_missing", "", 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := doReq(t, ts.Client(), tc.method, ts.URL+tc.path, []byte(tc.body))
			if code != tc.want {
				t.Fatalf("status %d, want %d: %s", code, tc.want, body)
			}
			if code >= 500 {
				t.Fatalf("5xx on malformed input: %d", code)
			}
		})
	}
}

func TestQueueBackpressure(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	network, _ := testNetworkJSON(t, 400, 8)
	netID := uploadNetwork(t, ts, network)

	outer, em, initSeeds := 1_000_000, 50, 1
	slow := &jobOptions{OuterIters: &outer, EMIters: &em, InitSeeds: &initSeeds}
	running := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})
	waitForState(t, ts, running, jobRunning)
	queued := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})

	payload, _ := json.Marshal(jobRequest{NetworkID: netID, K: 2, Options: slow})
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("third submission: status %d, want 503: %s", code, body)
	}

	for _, id := range []string{running, queued} {
		doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		waitForState(t, ts, id, jobCancelled)
	}
}

func TestResultBeforeDoneIs409(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 400, 9)
	netID := uploadNetwork(t, ts, network)
	outer, em, initSeeds := 1_000_000, 50, 1
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2,
		Options: &jobOptions{OuterIters: &outer, EMIters: &em, InitSeeds: &initSeeds}})
	code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/result", nil)
	if code != http.StatusConflict {
		t.Fatalf("result of unfinished job: status %d, want 409", code)
	}
	doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	waitForState(t, ts, jobID, jobCancelled)
}

// fakeClock drives TTL eviction without real sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTTLEviction(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	s, ts := testServer(t, Config{Workers: 1, JobTTL: time.Minute, now: clock.Now})
	network, _ := testNetworkJSON(t, 10, 10)
	netID := uploadNetwork(t, ts, network)
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(1, 1)})
	waitForState(t, ts, jobID, jobDone)

	// Within the TTL nothing is evicted.
	s.store.sweep()
	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil); code != http.StatusOK {
		t.Fatalf("job evicted before TTL: %d", code)
	}

	clock.Advance(2 * time.Minute)
	s.store.sweep()
	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil); code != http.StatusNotFound {
		t.Fatalf("finished job survived the TTL sweep: %d", code)
	}
	payload, _ := json.Marshal(jobRequest{NetworkID: netID, K: 2})
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload); code != http.StatusNotFound {
		t.Fatalf("idle network survived the TTL sweep: %d", code)
	}
}

// TestTTLPinsNetworkWithQueuedJob: a network must not be evicted while a
// queued or running job still needs it.
func TestTTLPinsNetworkWithQueuedJob(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	s, ts := testServer(t, Config{Workers: 1, JobTTL: time.Minute, now: clock.Now})
	network, _ := testNetworkJSON(t, 400, 12)
	netID := uploadNetwork(t, ts, network)

	outer, em, initSeeds := 1_000_000, 50, 1
	slow := &jobOptions{OuterIters: &outer, EMIters: &em, InitSeeds: &initSeeds}
	running := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})
	waitForState(t, ts, running, jobRunning)
	queued := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})

	clock.Advance(10 * time.Minute)
	s.store.sweep()
	if _, ok := s.store.network(netID); !ok {
		t.Fatal("network evicted while jobs depend on it")
	}

	for _, id := range []string{running, queued} {
		doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		waitForState(t, ts, id, jobCancelled)
	}
}

// TestCloseFailsOverQueuedJobs: shutting the server down with jobs still
// queued must move them to a terminal state (and close their done
// channels) rather than stranding them as "queued" forever.
func TestCloseFailsOverQueuedJobs(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	network, _ := testNetworkJSON(t, 400, 13)
	netID := uploadNetwork(t, ts, network)
	outer, em, initSeeds := 1_000_000, 50, 1
	slow := &jobOptions{OuterIters: &outer, EMIters: &em, InitSeeds: &initSeeds}
	running := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})
	waitForState(t, ts, running, jobRunning)
	queued := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: slow})

	s.Close()

	for _, id := range []string{running, queued} {
		j, ok := s.store.job(id)
		if !ok {
			t.Fatalf("job %s missing after close", id)
		}
		select {
		case <-j.done:
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s (state %s) never terminal after Close", id, j.snapshot().state)
		}
		if state := j.snapshot().state; state != jobCancelled {
			t.Fatalf("job %s state after Close = %s, want cancelled", id, state)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 3})
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var resp healthResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Workers != 3 {
		t.Fatalf("healthz payload: %+v", resp)
	}
}

// readSSE consumes the events stream of a job until the final "state"
// event (terminal) or the stream ends, returning the event names in order
// and the last state payload seen.
func readSSE(t *testing.T, body io.Reader) (names []string, lastState jobResponse, progressSeen int) {
	t.Helper()
	sc := bufio.NewScanner(body)
	var evType, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			evType = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "":
			if evType == "" {
				continue
			}
			names = append(names, evType)
			switch evType {
			case "state":
				if err := json.Unmarshal([]byte(data), &lastState); err != nil {
					t.Fatalf("bad state event %q: %v", data, err)
				}
			case "progress":
				progressSeen++
			}
			evType, data = "", ""
		}
	}
	return names, lastState, progressSeen
}

// TestJobEventsStream subscribes to a job's SSE stream and requires the
// documented shape: an initial state event, at least one progress event,
// and a final terminal state event after which the stream closes.
func TestJobEventsStream(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 30, 21)
	netID := uploadNetwork(t, ts, network)

	// Park a blocker on the single worker so the real job stays queued
	// until the stream is attached — that guarantees the subscription
	// observes live progress instead of racing a fast fit.
	blockOuter, blockEM, one := 1_000_000, 50, 1
	blocker := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &blockOuter, EMIters: &blockEM, InitSeeds: &one,
	}})
	waitForState(t, ts, blocker, jobRunning)

	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: quickOpts(3, 1)})
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+blocker, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	names, last, progress := readSSE(t, resp.Body)
	if len(names) < 2 || names[0] != "state" || names[len(names)-1] != "state" {
		t.Fatalf("event sequence %v, want state ... state", names)
	}
	if progress == 0 {
		t.Error("no progress events on a multi-iteration fit")
	}
	if last.State != jobDone {
		t.Fatalf("final state event reports %q, want done", last.State)
	}
	if last.Progress == nil || last.Progress.Outer == 0 {
		t.Errorf("final state carries no progress: %+v", last.Progress)
	}

	// Subscribing to an already-finished job yields the terminal state
	// immediately and closes.
	resp2, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	names2, last2, _ := readSSE(t, resp2.Body)
	if len(names2) == 0 || last2.State != jobDone {
		t.Fatalf("finished-job stream: events %v, state %q", names2, last2.State)
	}

	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/job_missing/events", nil); code != http.StatusNotFound {
		t.Fatalf("events of unknown job: status %d, want 404", code)
	}
}

// TestJobEventsClientDisconnect verifies the SSE handler exits when the
// client walks away mid-fit — no goroutine may outlive the subscription
// (same leak-check pattern as TestCancelMidFit).
func TestJobEventsClientDisconnect(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 400, 22)
	netID := uploadNetwork(t, ts, network)

	ts.Client().CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	outer, em, par, initSeeds := 1_000_000, 50, 1, 1
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, EMIters: &em, Parallelism: &par, InitSeeds: &initSeeds,
	}})
	waitForState(t, ts, jobID, jobRunning)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first event so the stream is demonstrably live, then hang up.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("read first byte of stream: %v", err)
	}
	cancel()
	resp.Body.Close()

	// Cancel the job; afterwards every goroutine the stream and fit spawned
	// must exit even though the subscriber vanished first.
	doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	waitForState(t, ts, jobID, jobCancelled)

	deadline := time.Now().Add(30 * time.Second)
	for {
		ts.Client().CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after stream disconnect: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), stack[:runtime.Stack(stack, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWarmStartFromJob chains two jobs: the second warm-starts from the
// first and must finish with identical clusters in far fewer EM iterations.
func TestWarmStartFromJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 30, 23)
	netID := uploadNetwork(t, ts, network)

	outer, em := 20, 30
	emTol, outerTol := 1e-9, 1e-9
	var seed int64 = 7
	coldID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, EMIters: &em, EMTol: &emTol, OuterTol: &outerTol, Seed: &seed,
	}})
	waitForState(t, ts, coldID, jobDone)
	cold := fetchResult(t, ts, coldID)

	warmID := submitJob(t, ts, jobRequest{NetworkID: netID, WarmStartFrom: coldID})
	waitForState(t, ts, warmID, jobDone)
	warm := fetchResult(t, ts, warmID)

	if warm.K != cold.K {
		t.Fatalf("warm job K=%d, cold K=%d", warm.K, cold.K)
	}
	if warm.EMIterations > 2 {
		t.Errorf("warm-started job ran %d EM iterations, want ≤ 2 (cold ran %d)", warm.EMIterations, cold.EMIterations)
	}
	for v := range cold.Objects {
		if warm.Objects[v].Cluster != cold.Objects[v].Cluster {
			t.Fatalf("object %s relabeled by warm start", cold.Objects[v].ID)
		}
	}

	// Error surface: unknown source job, unfinished source job, K mismatch.
	payload, _ := json.Marshal(jobRequest{NetworkID: netID, WarmStartFrom: "job_missing"})
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload); code != http.StatusNotFound {
		t.Fatalf("warm start from unknown job: status %d, want 404", code)
	}
	payload, _ = json.Marshal(jobRequest{NetworkID: netID, K: 3, WarmStartFrom: coldID})
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload); code != http.StatusBadRequest {
		t.Fatalf("warm start with mismatched K: status %d, want 400", code)
	}

	slow := 1_000_000
	one := 1
	runningID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &slow, EMIters: &em, InitSeeds: &one,
	}})
	waitForState(t, ts, runningID, jobRunning)
	payload, _ = json.Marshal(jobRequest{NetworkID: netID, WarmStartFrom: runningID})
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", payload); code != http.StatusConflict {
		t.Fatalf("warm start from running job: status %d, want 409", code)
	}
	doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+runningID, nil)
	waitForState(t, ts, runningID, jobCancelled)
}

// TestDrainStreamsEndsLiveStream: a graceful shutdown must not be held
// open by an attached events consumer — DrainStreams (wired to
// http.Server.RegisterOnShutdown by cmd/genclusd) ends the stream even
// while the job is still running.
func TestDrainStreamsEndsLiveStream(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	network, _ := testNetworkJSON(t, 400, 24)
	netID := uploadNetwork(t, ts, network)

	outer, em, one := 1_000_000, 50, 1
	jobID := submitJob(t, ts, jobRequest{NetworkID: netID, K: 2, Options: &jobOptions{
		OuterIters: &outer, EMIters: &em, InitSeeds: &one,
	}})
	waitForState(t, ts, jobID, jobRunning)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("stream not live: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	s.DrainStreams()
	select {
	case <-done: // EOF (or benign close error): the stream ended
	case <-time.After(10 * time.Second):
		t.Fatal("stream still open 10s after DrainStreams")
	}

	doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	waitForState(t, ts, jobID, jobCancelled)
}
