// Package store is a crash-safe on-disk blob store: flat buckets of
// checksummed, atomically-written files. It is the durability layer under
// genclusd's -data-dir — model snapshots and finished-job records go
// through it — but it knows nothing about jobs or models; it stores bytes.
//
// The durability contract, in order of the failure it defends against:
//
//   - torn writes: every Put writes to a hidden temp file in the same
//     directory, fsyncs it, then renames it over the final name and fsyncs
//     the directory — a crash at any point leaves either the old bytes or
//     the new bytes, never a mix;
//   - silent corruption: every blob is wrapped in an envelope carrying its
//     length and CRC-32C; Get verifies both and reports a *CorruptError
//     (errors.As-distinguishable from ErrNotFound) instead of returning
//     damaged bytes;
//   - crash debris: Open sweeps leftover temp files out of every bucket, so
//     an interrupted Put cannot accumulate garbage or be mistaken for data.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// envelope layout: magic (4) | version uint16 LE | reserved uint16 LE |
// payload length uint64 LE | payload CRC-32C uint32 LE | payload bytes.
const (
	envMagic   = "GCBL"
	envVersion = 1
	envHeader  = 4 + 2 + 2 + 8 + 4
	// ext is the on-disk suffix of every blob file; List strips it.
	ext = ".bin"
	// tmpPrefix marks in-flight writes; Open removes leftovers.
	tmpPrefix = ".tmp-"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotFound reports a Get or Delete of an id with no stored blob.
var ErrNotFound = errors.New("store: not found")

// CorruptError reports a blob whose envelope failed validation — bad magic,
// impossible length, or checksum mismatch. The blob's bytes are never
// returned; callers decide whether to skip (recovery) or surface (serving).
type CorruptError struct {
	Path   string // the damaged file
	Reason string // what failed
}

// Error implements the error interface.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: %s: %s", e.Path, e.Reason)
}

// Store is a directory of buckets of checksummed blobs. Methods are safe
// for concurrent use: distinct ids are fully independent, and concurrent
// writes to the same id serialize on the final atomic rename (last writer
// wins with a complete blob).
type Store struct {
	dir string
}

// Open initializes a store rooted at dir, creating it if needed and
// sweeping out temp files any earlier crash left behind.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		bucket := filepath.Join(dir, e.Name())
		files, err := os.ReadDir(bucket)
		if err != nil {
			return nil, fmt.Errorf("store: scan %s: %w", bucket, err)
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				if err := os.Remove(filepath.Join(bucket, f.Name())); err != nil {
					return nil, fmt.Errorf("store: sweep %s: %w", f.Name(), err)
				}
			}
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the root directory the store was opened at.
func (s *Store) Dir() string { return s.dir }

// Put atomically writes the blob under bucket/id, replacing any previous
// value: envelope to a temp file, fsync, rename, fsync the bucket
// directory. When Put returns nil the bytes are on disk; when it returns an
// error (or the process dies mid-call) the previous value, if any, is
// intact.
func (s *Store) Put(bucket, id string, payload []byte) error {
	if err := validName(bucket); err != nil {
		return err
	}
	if err := validName(id); err != nil {
		return err
	}
	bdir := filepath.Join(s.dir, bucket)
	if err := os.MkdirAll(bdir, 0o755); err != nil {
		return fmt.Errorf("store: create bucket %s: %w", bucket, err)
	}

	var hdr [envHeader]byte
	copy(hdr[:4], envMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], envVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(payload, crcTable))

	tmp, err := os.CreateTemp(bdir, tmpPrefix+id+"-*")
	if err != nil {
		return fmt.Errorf("store: temp file for %s/%s: %w", bucket, id, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(hdr[:]); err != nil {
		return cleanup(fmt.Errorf("store: write %s/%s: %w", bucket, id, err))
	}
	if _, err := tmp.Write(payload); err != nil {
		return cleanup(fmt.Errorf("store: write %s/%s: %w", bucket, id, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: fsync %s/%s: %w", bucket, id, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s/%s: %w", bucket, id, err)
	}
	if err := os.Rename(tmpName, filepath.Join(bdir, id+ext)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publish %s/%s: %w", bucket, id, err)
	}
	return syncDir(bdir)
}

// Get returns the blob stored under bucket/id, verifying the envelope.
// Missing blobs are ErrNotFound; damaged ones are *CorruptError.
func (s *Store) Get(bucket, id string) ([]byte, error) {
	if err := validName(bucket); err != nil {
		return nil, err
	}
	if err := validName(id); err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, bucket, id+ext)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: read %s/%s: %w", bucket, id, err)
	}
	if len(data) < envHeader {
		return nil, &CorruptError{Path: path, Reason: "shorter than the envelope header"}
	}
	if string(data[:4]) != envMagic {
		return nil, &CorruptError{Path: path, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != envVersion {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported envelope version %d", v)}
	}
	payload := data[envHeader:]
	if n := binary.LittleEndian.Uint64(data[8:16]); n != uint64(len(payload)) {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("length %d does not match %d payload bytes", n, len(payload))}
	}
	want := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", want, got)}
	}
	return payload, nil
}

// Delete removes the blob under bucket/id (ErrNotFound when absent) and
// fsyncs the bucket so the removal survives a crash.
func (s *Store) Delete(bucket, id string) error {
	if err := validName(bucket); err != nil {
		return err
	}
	if err := validName(id); err != nil {
		return err
	}
	bdir := filepath.Join(s.dir, bucket)
	if err := os.Remove(filepath.Join(bdir, id+ext)); err != nil {
		if os.IsNotExist(err) {
			return ErrNotFound
		}
		return fmt.Errorf("store: delete %s/%s: %w", bucket, id, err)
	}
	return syncDir(bdir)
}

// ModTime returns the local modification time of the blob under bucket/id
// — when it was last Put on THIS machine (ErrNotFound when absent).
// Callers that order blobs by age should prefer it over any timestamp
// embedded in the payload, which may have been written elsewhere.
func (s *Store) ModTime(bucket, id string) (time.Time, error) {
	if err := validName(bucket); err != nil {
		return time.Time{}, err
	}
	if err := validName(id); err != nil {
		return time.Time{}, err
	}
	fi, err := os.Stat(filepath.Join(s.dir, bucket, id+ext))
	if err != nil {
		if os.IsNotExist(err) {
			return time.Time{}, ErrNotFound
		}
		return time.Time{}, fmt.Errorf("store: stat %s/%s: %w", bucket, id, err)
	}
	return fi.ModTime(), nil
}

// List returns the ids stored in bucket, sorted. A bucket that was never
// written lists empty.
func (s *Store) List(bucket string) ([]string, error) {
	if err := validName(bucket); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, bucket))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list %s: %w", bucket, err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ext))
	}
	sort.Strings(out)
	return out, nil
}

// validName restricts bucket and blob names to a filesystem-safe alphabet:
// ids come off the wire (export/import, recovery scans), so a hostile name
// must not be able to escape the store directory or collide with the
// store's own temp files.
func validName(name string) error {
	if name == "" || len(name) > 200 {
		return fmt.Errorf("store: invalid name %q", name)
	}
	if name[0] == '.' {
		return fmt.Errorf("store: invalid name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return fmt.Errorf("store: invalid name %q", name)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry is
// durable before the caller reports success.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}
