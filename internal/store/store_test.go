package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDeleteList(t *testing.T) {
	s := open(t)
	if err := s.Put("models", "mdl_1", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("models", "mdl_2", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("jobs", "job_1", nil); err != nil { // empty payload is legal
		t.Fatal(err)
	}

	got, err := s.Get("models", "mdl_1")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("get: %q, %v", got, err)
	}
	if got, err = s.Get("jobs", "job_1"); err != nil || len(got) != 0 {
		t.Fatalf("empty get: %q, %v", got, err)
	}

	ids, err := s.List("models")
	if err != nil || len(ids) != 2 || ids[0] != "mdl_1" || ids[1] != "mdl_2" {
		t.Fatalf("list: %v, %v", ids, err)
	}
	if ids, err = s.List("nonexistent"); err != nil || len(ids) != 0 {
		t.Fatalf("empty bucket list: %v, %v", ids, err)
	}

	// Overwrite replaces atomically.
	if err := s.Put("models", "mdl_1", []byte("alpha-v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("models", "mdl_1"); string(got) != "alpha-v2" {
		t.Fatalf("overwrite lost: %q", got)
	}

	if err := s.Delete("models", "mdl_1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("models", "mdl_1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
	if err := s.Delete("models", "mdl_1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: want ErrNotFound, got %v", err)
	}
	if _, err := s.Get("models", "never"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get: want ErrNotFound, got %v", err)
	}
}

// TestModTime pins that blob age is local write time (ordering across
// restarts keys on it) and that missing blobs answer ErrNotFound.
func TestModTime(t *testing.T) {
	s := open(t)
	before := time.Now().Add(-time.Second)
	if err := s.Put("models", "mdl_t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	mt, err := s.ModTime("models", "mdl_t")
	if err != nil {
		t.Fatal(err)
	}
	if mt.Before(before) || mt.After(time.Now().Add(time.Second)) {
		t.Fatalf("mtime %v not near now", mt)
	}
	if _, err := s.ModTime("models", "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing ModTime: %v", err)
	}
}

// TestCorruptionDetected flips one payload byte on disk and expects a
// *CorruptError, never the damaged bytes.
func TestCorruptionDetected(t *testing.T) {
	s := open(t)
	if err := s.Put("models", "mdl_x", bytes.Repeat([]byte("payload"), 100)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "models", "mdl_x.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := s.Get("models", "mdl_x"); !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}

	// Truncation below the envelope header is corruption too.
	if err := os.WriteFile(path, data[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("models", "mdl_x"); !errors.As(err, &ce) {
		t.Fatalf("truncated: want *CorruptError, got %v", err)
	}
}

// TestOpenSweepsTempDebris plants a fake in-flight temp file and expects
// Open to remove it without touching real blobs.
func TestOpenSweepsTempDebris(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("jobs", "job_keep", []byte("x")); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "jobs", tmpPrefix+"job_dead-12345")
	if err := os.WriteFile(debris, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("temp debris survived Open")
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get("jobs", "job_keep"); err != nil || string(got) != "x" {
		t.Fatalf("real blob lost in sweep: %q, %v", got, err)
	}
	if ids, _ := s2.List("jobs"); len(ids) != 1 {
		t.Fatalf("list sees debris or lost blobs: %v", ids)
	}
}

// TestHostileNamesRejected pins the name validation at the trust boundary.
func TestHostileNamesRejected(t *testing.T) {
	s := open(t)
	for _, name := range []string{"", "..", "../evil", "a/b", ".hidden", "a\x00b", "nul\nbyte"} {
		if err := s.Put("models", name, []byte("x")); err == nil {
			t.Errorf("Put accepted hostile id %q", name)
		}
		if _, err := s.Get(name, "ok"); err == nil {
			t.Errorf("Get accepted hostile bucket %q", name)
		}
	}
}

// TestConcurrentPuts hammers one id and several distinct ids from many
// goroutines: every read afterwards must see one complete value.
func TestConcurrentPuts(t *testing.T) {
	s := open(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + g)}, 1024)
			for i := 0; i < 20; i++ {
				if err := s.Put("models", "shared", payload); err != nil {
					t.Error(err)
					return
				}
				if err := s.Put("models", "own_"+string(rune('a'+g)), payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	got, err := s.Get("models", "shared")
	if err != nil || len(got) != 1024 {
		t.Fatalf("shared blob: %d bytes, %v", len(got), err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("shared blob interleaved two writers")
		}
	}
}
