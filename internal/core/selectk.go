package core

import (
	"fmt"
	"math"

	"genclus/internal/hin"
)

// DescWeightSorter ranks an index permutation by descending weight, ties
// broken by ascending index — the one comparator behind every "best first"
// ordering in the system (assign top-k cluster selection, cluster top-term
// summaries, model-selection reporting). It implements sort.Interface over
// caller-owned buffers: Idx is the permutation being ordered, Weight the
// lookup it is ordered by. Reusing one value across sorts allocates
// nothing, which is what the assign engine's steady-state zero-alloc
// contract depends on.
type DescWeightSorter struct {
	Idx    []int
	Weight []float64
}

// Reset initializes the permutation to the identity over weights and
// attaches the weight lookup, reusing Idx's capacity when it suffices.
func (s *DescWeightSorter) Reset(weights []float64) {
	if cap(s.Idx) < len(weights) {
		s.Idx = make([]int, len(weights))
	}
	s.Idx = s.Idx[:len(weights)]
	for i := range s.Idx {
		s.Idx[i] = i
	}
	s.Weight = weights
}

// Len implements sort.Interface.
func (s *DescWeightSorter) Len() int { return len(s.Idx) }

// Less implements sort.Interface: descending weight, ascending index on
// ties.
func (s *DescWeightSorter) Less(i, j int) bool {
	wi, wj := s.Weight[s.Idx[i]], s.Weight[s.Idx[j]]
	if wi != wj {
		return wi > wj
	}
	return s.Idx[i] < s.Idx[j]
}

// Swap implements sort.Interface.
func (s *DescWeightSorter) Swap(i, j int) { s.Idx[i], s.Idx[j] = s.Idx[j], s.Idx[i] }

// KScore is the model-selection score of one candidate cluster count.
type KScore struct {
	K         int
	Objective float64 // final g₁ (Eq. 9)
	LogLik    float64 // attribute log-likelihood only
	Params    int     // free parameters counted for the penalty
	AIC       float64
	BIC       float64
}

// SelectK fits the model for every K in [kMin, kMax] and scores each fit
// with AIC and BIC — the model-selection criteria the paper points to for
// choosing the number of clusters (§2.2 cites [19, 12]; the paper itself
// fixes K and leaves selection to these standard tools).
//
// The likelihood used is the attribute-generation term (the probabilistic
// part of the model with a proper normalizer); parameters counted are the
// attribute component parameters plus the K−1 free membership coordinates
// per object. Lower AIC/BIC is better. Both criteria inherit the usual
// caveats for latent-variable models; they order candidate K values
// usefully in practice, which is all the paper asks of them.
func SelectK(net *hin.Network, opts Options, kMin, kMax int) ([]KScore, error) {
	if kMin < 2 {
		return nil, fmt.Errorf("core: SelectK needs kMin ≥ 2, got %d", kMin)
	}
	if kMax < kMin {
		return nil, fmt.Errorf("core: SelectK needs kMax ≥ kMin, got %d < %d", kMax, kMin)
	}
	var out []KScore
	for k := kMin; k <= kMax; k++ {
		o := opts
		o.K = k
		res, err := Fit(net, o)
		if err != nil {
			return nil, fmt.Errorf("core: SelectK at K=%d: %w", k, err)
		}
		// Recompute the attribute likelihood and observation count from the
		// fitted model.
		s := newState(net, o, o.Seed, false)
		s.theta = res.Theta
		for i, a := range s.attrs {
			am := res.Attrs[i]
			switch am.Kind {
			case hin.Categorical:
				s.cat[a] = am.Cat
			case hin.Numeric:
				s.gauss[a] = am.Gauss
			}
		}
		ll := s.attrLogLikelihood()

		params := net.NumObjects() * (k - 1)
		var nObs float64
		for _, a := range s.attrs {
			spec := net.Attr(a)
			switch spec.Kind {
			case hin.Categorical:
				params += k * (spec.VocabSize - 1)
			case hin.Numeric:
				params += 2 * k
			}
			for v := 0; v < net.NumObjects(); v++ {
				nObs += net.ObservationCount(a, v)
			}
		}
		if nObs < 1 {
			nObs = 1
		}
		out = append(out, KScore{
			K:         k,
			Objective: res.Objective,
			LogLik:    ll,
			Params:    params,
			AIC:       -2*ll + 2*float64(params),
			BIC:       -2*ll + float64(params)*math.Log(nObs),
		})
	}
	return out, nil
}

// BestBIC returns the score with the lowest BIC.
func BestBIC(scores []KScore) (KScore, error) {
	if len(scores) == 0 {
		return KScore{}, fmt.Errorf("core: no scores")
	}
	best := scores[0]
	for _, s := range scores[1:] {
		if s.BIC < best.BIC {
			best = s
		}
	}
	return best, nil
}

// BestAIC returns the score with the lowest AIC. For this model's
// conditional likelihood AIC is usually the better-behaved criterion: BIC's
// ln(n) factor over-punishes the |V|·(K−1) membership parameters and tends
// to under-select K.
func BestAIC(scores []KScore) (KScore, error) {
	if len(scores) == 0 {
		return KScore{}, fmt.Errorf("core: no scores")
	}
	best := scores[0]
	for _, s := range scores[1:] {
		if s.AIC < best.AIC {
			best = s
		}
	}
	return best, nil
}
