// Package core implements GenClus, the model-based clustering algorithm for
// heterogeneous information networks with incomplete attributes (Sun,
// Aggarwal, Han — VLDB 2012).
//
// The model (paper §3) couples two parts:
//
//   - attribute generation: every attribute on every object is a mixture
//     over the K clusters with the object's membership vector θ_v as mixing
//     proportions — categorical (PLSA-style, Eq. 3) or Gaussian (Eq. 4);
//   - structural consistency: a log-linear model over the membership
//     configuration Θ built from the cross-entropy feature function
//     f(θ_i, θ_j, e, γ) = γ(φ(e))·w(e)·Σ_k θ_jk·log θ_ik (Eq. 6), with a
//     Gaussian prior −‖γ‖²/2σ² on the per-relation strengths (Eq. 8).
//
// Fit alternates the two optimization steps of Algorithm 1: an EM pass over
// Θ and the attribute parameters β given fixed strengths γ (Eqs. 10–12), and
// a Newton–Raphson pass over γ given fixed Θ using the Dirichlet
// pseudo-likelihood (Eqs. 14–17).
package core

import (
	"fmt"
	"math"

	"genclus/internal/hin"
)

// Options configures a GenClus fit. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// K is the number of clusters. Required, ≥ 2.
	K int

	// Attributes is the user-specified attribute subset X ⊆ 𝒳 that defines
	// the clustering purpose (§2.2). Empty means "all attributes declared on
	// the network".
	Attributes []string

	// OuterIters is the number of outer alternations between cluster
	// optimization and strength learning (paper: 10 on DBLP, 5 on weather).
	OuterIters int

	// EMIters bounds the EM iterations inside each cluster optimization
	// step. Algorithm 1 iterates "until reaches precision requirement for
	// Θ"; EMTol implements that requirement and EMIters caps the loop.
	EMIters int

	// EMTol stops the inner EM loop early when max_v,k |θ_t − θ_{t−1}|
	// falls below it. Zero disables early stopping (fixed EMIters loops).
	EMTol float64

	// OuterTol stops the outer alternation early when ‖γ_t − γ_{t−1}‖∞
	// falls below it (Algorithm 1's "precision requirement for γ").
	// Zero disables early stopping.
	OuterTol float64

	// NewtonIters bounds the Newton–Raphson iterations inside each strength
	// learning step.
	NewtonIters int

	// NewtonTol stops the Newton iteration when ‖γ_{s} − γ_{s−1}‖∞ falls
	// below it.
	NewtonTol float64

	// PriorSigma is σ of the zero-mean Gaussian prior on γ (paper: 0.1).
	PriorSigma float64

	// Seed drives all randomness (initialization).
	Seed int64

	// InitSeeds > 1 enables the best-of-seeds initialization from §4.3: run
	// InitSeedSteps EM iterations from each of InitSeeds random starts and
	// keep the one with the highest objective g₁.
	InitSeeds     int
	InitSeedSteps int

	// Parallelism shards the E/M step across this many goroutines (§5.4
	// reports a 3.19× speedup on 4 threads). ≤ 1 means serial.
	Parallelism int

	// Epsilon floors every Θ entry so log θ stays finite (DESIGN.md §4).
	Epsilon float64

	// Precision selects the storage precision of the learned parameters:
	// PrecisionFloat64 (the default; the empty string means the same) or
	// PrecisionFloat32, which rounds Θ/β/γ to float32 values at every point
	// the fit commits them and halves snapshot Θ/β bytes. See the Precision
	// type for the full contract. Validate rejects anything else with a
	// typed *PrecisionError.
	Precision Precision

	// SmoothEta is the Laplace smoothing added to categorical β updates.
	SmoothEta float64

	// VarFloor is the minimum Gaussian component variance.
	VarFloor float64

	// LearnGamma toggles the strength learning step. False freezes γ at the
	// initial vector — the "every relation equally important" ablation that
	// reduces GenClus to an iTopicModel-style network-regularized mixture.
	LearnGamma bool

	// InitialGamma is the uniform starting strength for every relation
	// (Algorithm 1 initializes γ⁰ as all-ones; this scales that vector).
	// Zero means 1.
	InitialGamma float64

	// SymmetricPropagation is an ablation of the feature function's
	// asymmetry (§3.3 criterion 3): when true, the Θ update propagates
	// memberships along both out-links and in-links, approximating a
	// symmetrized feature function.
	SymmetricPropagation bool

	// Note on the KL-divergence feature alternative the paper weighs in
	// §3.3: under the out-link pseudo-likelihood of §4.2 the two choices
	// provably induce the same algorithm — f_KL differs from f_CE by
	// γ·w·H(θ_j), which is constant in θ_i and therefore cancels against
	// the conditional's normalizer. The distinction only matters through
	// the intractable joint partition function Z(γ), which the paper's
	// optimization never touches. (Adding the entropy term to the
	// pseudo-likelihood WITHOUT renormalizing — the tempting shortcut —
	// creates an unnormalized bonus linear in γ and inflates every
	// strength until the prior stops it; we verified this degenerates.)
	// Hence no KL option: cross entropy is the only consistent choice in
	// this scheme, which quietly strengthens the paper's §3.3 argument.

	// TrackHistory records a per-outer-iteration snapshot of Θ and γ
	// (used to regenerate Fig. 10).
	TrackHistory bool

	// InitTheta warm-starts the membership matrix instead of random
	// initialization (|V| rows of K non-negative entries; rows are floored
	// and normalized). When set, InitSeeds is ignored.
	InitTheta [][]float64

	// InitGamma warm-starts the per-relation strengths instead of the
	// uniform InitialGamma vector. Indexed by the network's dense relation
	// ids; entries must be ≥ 0. Model.Refit populates it from a prior fit.
	InitGamma []float64

	// InitAttrs warm-starts the attribute component models. Entries are
	// matched to the network's attributes by name; an entry whose kind or
	// component count disagrees with the fit is rejected by Validate, and
	// names absent from the network are ignored (the network may have
	// dropped an attribute since the source fit). A categorical entry whose
	// vocabulary is smaller than the network's is extended with uniform
	// mass on the new terms, so warm starts survive vocabulary growth.
	InitAttrs []AttrModel

	// Progress, when non-nil, is invoked by FitContext after initialization
	// (Outer = 0) and after each completed outer iteration. It runs on the
	// fitting goroutine and must return promptly.
	Progress func(Progress)
}

// Progress is one fit progress report delivered to Options.Progress.
type Progress struct {
	// Outer counts completed outer iterations; 0 means initialization just
	// finished. OuterTotal echoes Options.OuterIters (the fit may stop
	// before reaching it when OuterTol triggers).
	Outer      int
	OuterTotal int
	// Objective is the cluster-optimization objective g₁ (Eq. 9) at this
	// point of the fit — the per-iteration convergence curve the paper plots.
	// Computing it costs one read-only pass over the data, far below the EM
	// step it reports on, and perturbs no fit state (bitwise determinism
	// holds whether or not a Progress hook is set).
	Objective float64
	// EMIterations is the cumulative count of inner EM iterations executed
	// so far, including best-of-seeds candidate runs — the work axis for the
	// objective curve.
	EMIterations int
}

// DefaultOptions mirrors the paper's experimental configuration.
func DefaultOptions(k int) Options {
	return Options{
		K:             k,
		OuterIters:    10,
		EMIters:       15,
		NewtonIters:   50,
		NewtonTol:     1e-7,
		PriorSigma:    0.1,
		Seed:          1,
		InitSeeds:     4,
		InitSeedSteps: 2,
		Parallelism:   1,
		Epsilon:       1e-9,
		SmoothEta:     1e-3,
		VarFloor:      1e-6,
		LearnGamma:    true,
	}
}

// Validate checks the options against the network without fitting — the
// genclusd API uses it to reject bad job submissions with a 4xx before
// anything is queued. Fit repeats the same checks.
func (o Options) Validate(net *hin.Network) error {
	if net == nil {
		return fmt.Errorf("core: nil network")
	}
	if o.K < 2 {
		return fmt.Errorf("core: K = %d, want ≥ 2", o.K)
	}
	if o.OuterIters < 1 {
		return fmt.Errorf("core: OuterIters = %d, want ≥ 1", o.OuterIters)
	}
	if o.EMIters < 1 {
		return fmt.Errorf("core: EMIters = %d, want ≥ 1", o.EMIters)
	}
	if o.EMTol < 0 || o.OuterTol < 0 {
		return fmt.Errorf("core: tolerances must be ≥ 0 (EMTol=%v, OuterTol=%v)", o.EMTol, o.OuterTol)
	}
	if o.NewtonIters < 1 {
		return fmt.Errorf("core: NewtonIters = %d, want ≥ 1", o.NewtonIters)
	}
	if !(o.PriorSigma > 0) {
		return fmt.Errorf("core: PriorSigma = %v, want > 0", o.PriorSigma)
	}
	if !(o.Epsilon > 0) || o.Epsilon >= 1.0/float64(o.K) {
		return fmt.Errorf("core: Epsilon = %v, want in (0, 1/K)", o.Epsilon)
	}
	if _, err := ParsePrecision(string(o.Precision)); err != nil {
		return err
	}
	if o.SmoothEta < 0 {
		return fmt.Errorf("core: SmoothEta = %v, want ≥ 0", o.SmoothEta)
	}
	if !(o.VarFloor > 0) {
		return fmt.Errorf("core: VarFloor = %v, want > 0", o.VarFloor)
	}
	if o.InitSeeds < 1 {
		return fmt.Errorf("core: InitSeeds = %d, want ≥ 1", o.InitSeeds)
	}
	if o.InitSeeds > 1 && o.InitSeedSteps < 1 {
		return fmt.Errorf("core: InitSeedSteps = %d with InitSeeds > 1", o.InitSeedSteps)
	}
	if o.InitialGamma < 0 {
		return fmt.Errorf("core: InitialGamma = %v, want ≥ 0", o.InitialGamma)
	}
	for _, name := range o.Attributes {
		if _, ok := net.AttrID(name); !ok {
			return fmt.Errorf("core: attribute %q not declared on network", name)
		}
	}
	if o.InitTheta != nil {
		if len(o.InitTheta) != net.NumObjects() {
			return fmt.Errorf("core: InitTheta has %d rows for %d objects", len(o.InitTheta), net.NumObjects())
		}
		for v, row := range o.InitTheta {
			if len(row) != o.K {
				return fmt.Errorf("core: InitTheta row %d has %d entries, want K=%d", v, len(row), o.K)
			}
			for _, x := range row {
				if x < 0 {
					return fmt.Errorf("core: InitTheta row %d has negative entry", v)
				}
			}
		}
	}
	if o.InitGamma != nil {
		if len(o.InitGamma) != net.NumRelations() {
			return fmt.Errorf("core: InitGamma has %d entries for %d relations", len(o.InitGamma), net.NumRelations())
		}
		for r, g := range o.InitGamma {
			if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
				return fmt.Errorf("core: InitGamma[%d] = %v, want finite ≥ 0", r, g)
			}
		}
	}
	for _, am := range o.InitAttrs {
		a, ok := net.AttrID(am.Name)
		if !ok {
			continue // attribute dropped from the network since the source fit
		}
		spec := net.Attr(a)
		if am.Kind != spec.Kind {
			return fmt.Errorf("core: InitAttrs[%q] is %s, network declares %s", am.Name, am.Kind, spec.Kind)
		}
		switch spec.Kind {
		case hin.Categorical:
			if am.Cat == nil || len(am.Cat.Beta) != o.K {
				return fmt.Errorf("core: InitAttrs[%q] has %d categorical components, want K=%d", am.Name, catComponents(am.Cat), o.K)
			}
			for k, row := range am.Cat.Beta {
				if len(row) == 0 || len(row) > spec.VocabSize {
					return fmt.Errorf("core: InitAttrs[%q] component %d has vocabulary %d, network declares %d", am.Name, k, len(row), spec.VocabSize)
				}
				var sum float64
				for _, p := range row {
					if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
						return fmt.Errorf("core: InitAttrs[%q] component %d has invalid term probability %v", am.Name, k, p)
					}
					sum += p
				}
				if sum <= 0 {
					return fmt.Errorf("core: InitAttrs[%q] component %d has zero total mass", am.Name, k)
				}
			}
		case hin.Numeric:
			if am.Gauss == nil || len(am.Gauss.Mu) != o.K || len(am.Gauss.Var) != o.K {
				return fmt.Errorf("core: InitAttrs[%q] has %d Gaussian components, want K=%d", am.Name, gaussComponents(am.Gauss), o.K)
			}
			for k := 0; k < o.K; k++ {
				mu, v := am.Gauss.Mu[k], am.Gauss.Var[k]
				if math.IsNaN(mu) || math.IsInf(mu, 0) {
					return fmt.Errorf("core: InitAttrs[%q] component %d has invalid mean %v", am.Name, k, mu)
				}
				if !(v > 0) || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("core: InitAttrs[%q] component %d has invalid variance %v", am.Name, k, v)
				}
			}
		}
	}
	return nil
}

func catComponents(c *CatParams) int {
	if c == nil {
		return 0
	}
	return len(c.Beta)
}

func gaussComponents(g *GaussParams) int {
	if g == nil {
		return 0
	}
	return len(g.Mu)
}

// attrIDs resolves the attribute subset to dense ids (all attributes when
// the option is empty).
func (o Options) attrIDs(net *hin.Network) []int {
	if len(o.Attributes) == 0 {
		ids := make([]int, net.NumAttrs())
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	ids := make([]int, 0, len(o.Attributes))
	for _, name := range o.Attributes {
		id, _ := net.AttrID(name)
		ids = append(ids, id)
	}
	return ids
}
