package core

import (
	"math"
	"testing"

	"genclus/internal/hin"
	"genclus/internal/mathx"
)

// TestEq10ThetaUpdateByHand verifies one EM iteration against the paper's
// Eq. (10) computed by hand on a two-object network:
//
//	θ_vk ∝ Σ_{e=<v,u>} γ(φ(e))·w(e)·θ_{u,k}^{t−1}
//	       + 1{v∈V_X} Σ_l c_{v,l}·p(z_{v,l} = k | Θ^{t−1}, β^{t−1})
//
// with p(z_{v,l} = k) ∝ θ_{v,k}^{t−1}·β_{k,l}.
func TestEq10ThetaUpdateByHand(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 2})
	b.AddObject("x", "t")
	b.AddObject("y", "t")
	// x has 3 counts of term 0 and 1 count of term 1, and one out-link to y
	// with weight 2.
	b.AddTermCount("x", "text", 0, 3)
	b.AddTermCount("x", "text", 1, 1)
	b.AddLink("x", "y", "r", 2)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.Epsilon = 1e-12 // keep flooring negligible for the hand computation
	s := newState(net, opts, 1, false)

	x, _ := net.IndexOf("x")
	y, _ := net.IndexOf("y")
	r, _ := net.RelationID("r")
	// Fix every quantity by hand.
	s.theta[x][0], s.theta[x][1] = 0.6, 0.4
	s.theta[y][0], s.theta[y][1] = 0.2, 0.8
	a, _ := net.AttrID("text")
	s.cat[a].Beta[0][0], s.cat[a].Beta[0][1] = 0.9, 0.1 // cluster 0 prefers term 0
	s.cat[a].Beta[1][0], s.cat[a].Beta[1][1] = 0.3, 0.7
	gamma := 1.5
	s.gamma[r] = gamma

	// Hand computation.
	// Responsibilities for term 0: p(z=k) ∝ θ_xk·β_k0 → (0.6·0.9, 0.4·0.3)
	// = (0.54, 0.12) → (0.8182, 0.1818).
	r00 := 0.54 / 0.66
	r01 := 0.12 / 0.66
	// Term 1: (0.6·0.1, 0.4·0.7) = (0.06, 0.28) → (0.1765, 0.8235).
	r10 := 0.06 / 0.34
	r11 := 0.28 / 0.34
	// Link term: γ·w·θ_y = 1.5·2·(0.2, 0.8) = (0.6, 2.4).
	link0, link1 := gamma*2*0.2, gamma*2*0.8
	// Attribute term: c_0·resp + c_1·resp = 3·(r00, r01) + 1·(r10, r11).
	attr0 := 3*r00 + 1*r10
	attr1 := 3*r01 + 1*r11
	w0 := link0 + attr0
	w1 := link1 + attr1
	want0 := w0 / (w0 + w1)
	want1 := w1 / (w0 + w1)

	s.snapshotTheta()
	s.emIteration()
	if math.Abs(s.theta[x][0]-want0) > 1e-9 || math.Abs(s.theta[x][1]-want1) > 1e-9 {
		t.Errorf("Eq.10 update: θ_x = (%v, %v), hand computation (%v, %v)",
			s.theta[x][0], s.theta[x][1], want0, want1)
	}
	// y has no out-links and no attributes: its row must be unchanged.
	if s.theta[y][0] != 0.2 || s.theta[y][1] != 0.8 {
		t.Errorf("θ_y should be unchanged, got %v", s.theta[y])
	}
}

// TestEq14PseudoLikelihoodByHand verifies g′₂ (Eq. 14) on a one-patch
// network: a single object with two out-links. The local conditional is
// Dirichlet with α_k = Σ_e γ·w(e)·θ_{j,k} + 1 (Eq. 15), so
//
//	g′₂(γ) = Σ_e γ·w(e)·Σ_k θ_{j,k}·ln θ_{i,k} − ln B(α) − γ²/(2σ²).
func TestEq14PseudoLikelihoodByHand(t *testing.T) {
	b := hin.NewBuilder()
	b.AddObject("i", "t")
	b.AddObject("j1", "t")
	b.AddObject("j2", "t")
	b.AddLink("i", "j1", "r", 1.5)
	b.AddLink("i", "j2", "r", 0.5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	s := newState(net, opts, 1, false)
	i, _ := net.IndexOf("i")
	j1, _ := net.IndexOf("j1")
	j2, _ := net.IndexOf("j2")
	s.theta[i][0], s.theta[i][1] = 0.7, 0.3
	s.theta[j1][0], s.theta[j1][1] = 0.9, 0.1
	s.theta[j2][0], s.theta[j2][1] = 0.4, 0.6

	gamma := 1.2
	sigma := opts.PriorSigma

	// Hand computation.
	f1 := gamma * 1.5 * (0.9*math.Log(0.7) + 0.1*math.Log(0.3))
	f2 := gamma * 0.5 * (0.4*math.Log(0.7) + 0.6*math.Log(0.3))
	alpha0 := gamma*(1.5*0.9+0.5*0.4) + 1
	alpha1 := gamma*(1.5*0.1+0.5*0.6) + 1
	want := f1 + f2 - mathx.LogBeta([]float64{alpha0, alpha1}) - gamma*gamma/(2*sigma*sigma)

	st := s.buildStrengthStats()
	got := st.pseudoLogLikelihood([]float64{gamma}, sigma)
	if math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
		t.Errorf("Eq.14: g2 = %v, hand computation %v", got, want)
	}
}

// TestEq16GradientByHand verifies the gradient formula (Eq. 16) on the same
// one-patch network:
//
//	∇g′₂(r) = Σ_e w·Σ_k θ_jk·ln θ_ik − (Σ_k ψ(α_k)·S_k − ψ(Σ_k α_k)·S) − γ/σ².
func TestEq16GradientByHand(t *testing.T) {
	b := hin.NewBuilder()
	b.AddObject("i", "t")
	b.AddObject("j", "t")
	b.AddLink("i", "j", "r", 2)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	s := newState(net, opts, 1, false)
	i, _ := net.IndexOf("i")
	j, _ := net.IndexOf("j")
	s.theta[i][0], s.theta[i][1] = 0.8, 0.2
	s.theta[j][0], s.theta[j][1] = 0.25, 0.75

	gamma := 0.9
	sigma := opts.PriorSigma
	// Hand computation.
	F := 2 * (0.25*math.Log(0.8) + 0.75*math.Log(0.2))
	s0 := 2 * 0.25 // S_k = w·θ_jk
	s1 := 2 * 0.75
	alpha0 := gamma*s0 + 1
	alpha1 := gamma*s1 + 1
	want := F - (mathx.Digamma(alpha0)*s0 + mathx.Digamma(alpha1)*s1 -
		mathx.Digamma(alpha0+alpha1)*(s0+s1)) - gamma/(sigma*sigma)

	st := s.buildStrengthStats()
	grad, _ := st.gradHess([]float64{gamma}, sigma)
	if math.Abs(grad[0]-want) > 1e-10*math.Max(1, math.Abs(want)) {
		t.Errorf("Eq.16: gradient = %v, hand computation %v", grad[0], want)
	}
}
