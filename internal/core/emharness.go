package core

import (
	"genclus/internal/hin"
)

// EMHarness wraps a fully-initialized fitting state and exposes single EM
// iterations — the benchmarking hook for the hot path (internal/bench and
// BenchmarkEMIteration drive it). It is not part of the fitting API: Fit
// owns the outer alternation; the harness only exists so a benchmark can
// measure one steady-state E+M pass without timing initialization.
type EMHarness struct {
	s *state
}

// NewEMHarness validates opts against net and prepares a fitting state
// exactly as a single-seed Fit would (CSR link views materialized, scratch
// sized). Warm-up: the first RunIteration allocates the per-chunk
// accumulators; every later one is allocation-free.
func NewEMHarness(net *hin.Network, opts Options) (*EMHarness, error) {
	if err := opts.Validate(net); err != nil {
		return nil, err
	}
	return &EMHarness{s: newState(net, opts, opts.Seed, false)}, nil
}

// RunIteration executes one E+M pass: snapshot Θ_{t−1}, compute
// responsibilities, update Θ and every attribute model β.
func (h *EMHarness) RunIteration() {
	h.s.emIteration(h.s.snapshotTheta())
}

// Theta exposes the current membership matrix (shared; do not mutate) so
// benchmarks can keep the result observable to the compiler.
func (h *EMHarness) Theta() [][]float64 { return h.s.theta }
