package core

import (
	"genclus/internal/hin"
)

// EMHarness wraps a fully-initialized fitting state and exposes single EM
// iterations — the benchmarking hook for the hot path (internal/bench and
// BenchmarkEMIteration drive it). It is not part of the fitting API: Fit
// owns the outer alternation; the harness only exists so a benchmark can
// measure one steady-state E+M pass without timing initialization.
type EMHarness struct {
	s *state
}

// NewEMHarness validates opts against net and prepares a fitting state
// exactly as a single-seed Fit would (CSR link views materialized, scratch
// sized). When opts.Parallelism > 1 the harness starts a persistent worker
// pool so parallel iterations dispatch without spawning goroutines — call
// Close when done with the harness to stop it. Warm-up: the first
// RunIteration allocates the per-chunk accumulators; every later one is
// allocation-free (at any Parallelism).
func NewEMHarness(net *hin.Network, opts Options) (*EMHarness, error) {
	if err := opts.Validate(net); err != nil {
		return nil, err
	}
	s := newState(net, opts, opts.Seed, false)
	if opts.Parallelism > 1 {
		chunks := (net.NumObjects() + emChunkSize - 1) / emChunkSize
		workers := opts.Parallelism
		if workers > chunks {
			workers = chunks
		}
		if workers > 1 {
			s.pool = newEMPool(workers)
		}
	}
	return &EMHarness{s: s}, nil
}

// RunIteration executes one E+M pass: snapshot Θ_{t−1}, compute
// responsibilities, update Θ and every attribute model β. It must not be
// called after Close.
func (h *EMHarness) RunIteration() {
	h.s.snapshotTheta()
	h.s.emIteration()
}

// Close stops the harness's worker pool, if any. Safe to call more than
// once; only RunIteration is invalid afterwards.
func (h *EMHarness) Close() {
	if h.s.pool != nil {
		h.s.pool.stop()
		h.s.pool = nil
	}
}

// Theta exposes the current membership matrix (shared; do not mutate) so
// benchmarks can keep the result observable to the compiler.
func (h *EMHarness) Theta() [][]float64 { return h.s.theta }
