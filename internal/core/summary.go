package core

import (
	"fmt"
	"sort"

	"genclus/internal/hin"
)

// TermWeight is one vocabulary entry of a cluster's categorical component.
type TermWeight struct {
	Term   int
	Weight float64
}

// ClusterSummary describes one cluster of a fitted model in the terms a
// human inspects: its size per object type and, per categorical attribute,
// the highest-probability terms of its component (the "top words" view of
// topic models; the workflow behind the paper's Table 1 case study).
type ClusterSummary struct {
	Cluster  int
	Size     int            // objects whose argmax membership is this cluster
	ByType   map[string]int // size split by object type
	TopTerms map[string][]TermWeight
	// GaussMeans maps numeric attribute name → the component mean.
	GaussMeans map[string]float64
}

// Summarize produces per-cluster summaries of a fitted model on the network
// it was fitted to. topN bounds the number of terms reported per
// categorical attribute.
func (r *Result) Summarize(net *hin.Network, topN int) ([]ClusterSummary, error) {
	if net == nil {
		return nil, fmt.Errorf("core: Summarize on nil network")
	}
	if len(r.Theta) != net.NumObjects() {
		return nil, fmt.Errorf("core: result has %d rows for %d objects", len(r.Theta), net.NumObjects())
	}
	if topN < 1 {
		return nil, fmt.Errorf("core: Summarize topN = %d, want ≥ 1", topN)
	}
	labels := r.HardLabels()
	out := make([]ClusterSummary, r.K)
	for k := range out {
		out[k] = ClusterSummary{
			Cluster:    k,
			ByType:     make(map[string]int),
			TopTerms:   make(map[string][]TermWeight),
			GaussMeans: make(map[string]float64),
		}
	}
	for v, lab := range labels {
		out[lab].Size++
		out[lab].ByType[net.TypeOf(v)]++
	}
	for _, am := range r.Attrs {
		switch am.Kind {
		case hin.Categorical:
			for k := 0; k < r.K; k++ {
				row := am.Cat.Beta[k]
				terms := make([]TermWeight, len(row))
				for l, w := range row {
					terms[l] = TermWeight{Term: l, Weight: w}
				}
				sort.Slice(terms, func(i, j int) bool {
					if terms[i].Weight != terms[j].Weight {
						return terms[i].Weight > terms[j].Weight
					}
					return terms[i].Term < terms[j].Term
				})
				n := topN
				if n > len(terms) {
					n = len(terms)
				}
				out[k].TopTerms[am.Name] = terms[:n]
			}
		case hin.Numeric:
			for k := 0; k < r.K; k++ {
				out[k].GaussMeans[am.Name] = am.Gauss.Mu[k]
			}
		}
	}
	return out, nil
}

// String renders a compact single-line description.
func (cs ClusterSummary) String() string {
	return fmt.Sprintf("cluster %d: %d objects %v", cs.Cluster, cs.Size, cs.ByType)
}
