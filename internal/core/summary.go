package core

import (
	"fmt"
	"sort"

	"genclus/internal/hin"
)

// TermWeight is one vocabulary entry of a cluster's categorical component.
type TermWeight struct {
	Term   int
	Weight float64
}

// ClusterSummary describes one cluster of a fitted model in the terms a
// human inspects: its size per object type and, per categorical attribute,
// the highest-probability terms of its component (the "top words" view of
// topic models; the workflow behind the paper's Table 1 case study).
type ClusterSummary struct {
	Cluster  int
	Size     int            // objects whose argmax membership is this cluster
	ByType   map[string]int // size split by object type
	TopTerms map[string][]TermWeight
	// GaussMeans maps numeric attribute name → the component mean.
	GaussMeans map[string]float64
}

// Summarize produces per-cluster summaries of a fitted model on the network
// it was fitted to. topN bounds the number of terms reported per
// categorical attribute.
func (r *Result) Summarize(net *hin.Network, topN int) ([]ClusterSummary, error) {
	if net == nil {
		return nil, fmt.Errorf("core: Summarize on nil network")
	}
	if len(r.Theta) != net.NumObjects() {
		return nil, fmt.Errorf("core: result has %d rows for %d objects", len(r.Theta), net.NumObjects())
	}
	if topN < 1 {
		return nil, fmt.Errorf("core: Summarize topN = %d, want ≥ 1", topN)
	}
	labels := r.HardLabels()
	out := make([]ClusterSummary, r.K)
	for k := range out {
		out[k] = ClusterSummary{
			Cluster:    k,
			ByType:     make(map[string]int),
			TopTerms:   make(map[string][]TermWeight),
			GaussMeans: make(map[string]float64),
		}
	}
	for v, lab := range labels {
		out[lab].Size++
		out[lab].ByType[net.TypeOf(v)]++
	}
	var rs DescWeightSorter
	for _, am := range r.Attrs {
		switch am.Kind {
		case hin.Categorical:
			for k := 0; k < r.K; k++ {
				// Rank the component row with the shared descending-weight
				// sorter (same ordering contract as assign's top-k).
				row := am.Cat.Beta[k]
				rs.Reset(row)
				sort.Sort(&rs)
				n := topN
				if n > len(row) {
					n = len(row)
				}
				terms := make([]TermWeight, n)
				for i := range terms {
					l := rs.Idx[i]
					terms[i] = TermWeight{Term: l, Weight: row[l]}
				}
				out[k].TopTerms[am.Name] = terms
			}
		case hin.Numeric:
			for k := 0; k < r.K; k++ {
				out[k].GaussMeans[am.Name] = am.Gauss.Mu[k]
			}
		}
	}
	return out, nil
}

// String renders a compact single-line description.
func (cs ClusterSummary) String() string {
	return fmt.Sprintf("cluster %d: %d objects %v", cs.Cluster, cs.Size, cs.ByType)
}
