package core

import (
	"math"
	"math/rand"
	"testing"

	"genclus/internal/hin"
)

// twoTopicNetwork builds a clearly separable categorical network: two cliques
// of documents, each clique using a disjoint vocabulary block, linked by a
// within-clique "cites" relation.
func twoTopicNetwork(t *testing.T, docsPerTopic int, seed int64) (*hin.Network, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 20})
	n := 2 * docsPerTopic
	labels := make([]int, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = "d" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "doc")
		topic := i / docsPerTopic
		labels[i] = topic
		for w := 0; w < 12; w++ {
			term := topic*10 + rng.Intn(10)
			b.AddTermCount(ids[i], "text", term, 1)
		}
	}
	for i := 0; i < n; i++ {
		topic := i / docsPerTopic
		for c := 0; c < 2; c++ {
			j := topic*docsPerTopic + rng.Intn(docsPerTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "cites", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, labels
}

// clusterAgreement computes the best-of-two-permutations accuracy for K=2
// hard labels — enough to verify recovery without importing eval.
func clusterAgreement(pred, truth []int) float64 {
	var same, flip int
	for i := range pred {
		if pred[i] == truth[i] {
			same++
		} else {
			flip++
		}
	}
	best := same
	if flip > best {
		best = flip
	}
	return float64(best) / float64(len(pred))
}

func TestThetaSimplexInvariant(t *testing.T) {
	net, _ := twoTopicNetwork(t, 20, 7)
	opts := DefaultOptions(2)
	opts.OuterIters = 3
	opts.EMIters = 5
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v, row := range res.Theta {
		var sum float64
		for _, x := range row {
			if x <= 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("θ[%d] = %v outside (0,1]", v, row)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", v, sum)
		}
	}
}

func TestCategoricalRecovery(t *testing.T) {
	net, labels := twoTopicNetwork(t, 30, 11)
	opts := DefaultOptions(2)
	opts.Seed = 12
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := clusterAgreement(res.HardLabels(), labels)
	if acc < 0.95 {
		t.Errorf("separable two-topic recovery accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestBetaRowsNormalized(t *testing.T) {
	net, _ := twoTopicNetwork(t, 15, 13)
	opts := DefaultOptions(2)
	opts.OuterIters = 2
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, am := range res.Attrs {
		if am.Kind != hin.Categorical {
			continue
		}
		for k, row := range am.Cat.Beta {
			var sum float64
			for _, p := range row {
				if p < 0 {
					t.Fatalf("β[%d] has negative entry", k)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("β[%d] sums to %v", k, sum)
			}
		}
	}
}

// gaussianChainNetwork: two spatial blobs of sensors with numeric
// observations from well-separated Gaussians, chained by within-blob links.
func gaussianChainNetwork(t *testing.T, perBlob int, seed int64) (*hin.Network, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "reading", Kind: hin.Numeric})
	n := 2 * perBlob
	labels := make([]int, n)
	ids := make([]string, n)
	means := []float64{0, 5}
	for i := 0; i < n; i++ {
		ids[i] = "s" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "sensor")
		blob := i / perBlob
		labels[i] = blob
		for o := 0; o < 3; o++ {
			b.AddNumeric(ids[i], "reading", means[blob]+0.3*rng.NormFloat64())
		}
	}
	for i := 0; i < n; i++ {
		blob := i / perBlob
		for c := 0; c < 2; c++ {
			j := blob*perBlob + rng.Intn(perBlob)
			if j != i {
				b.AddLink(ids[i], ids[j], "near", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, labels
}

func TestGaussianRecovery(t *testing.T) {
	net, labels := gaussianChainNetwork(t, 30, 17)
	opts := DefaultOptions(2)
	opts.Seed = 18
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := clusterAgreement(res.HardLabels(), labels)
	if acc < 0.95 {
		t.Errorf("Gaussian recovery accuracy = %v", acc)
	}
	// Fitted means should approximate {0, 5} in some order.
	var gp *GaussParams
	for _, am := range res.Attrs {
		if am.Kind == hin.Numeric {
			gp = am.Gauss
		}
	}
	if gp == nil {
		t.Fatal("no Gaussian attribute model in result")
	}
	lo, hi := math.Min(gp.Mu[0], gp.Mu[1]), math.Max(gp.Mu[0], gp.Mu[1])
	if math.Abs(lo-0) > 0.5 || math.Abs(hi-5) > 0.5 {
		t.Errorf("fitted means = %v, want ≈ {0, 5}", gp.Mu)
	}
}

// TestIncompleteAttributePropagation: an object with NO observations must
// inherit its cluster from its neighbors — the central claim of the paper.
func TestIncompleteAttributePropagation(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 10})
	// Five documents with topic-0 text, five with topic-1 text, and two
	// attribute-free "hub" objects each linked into one group.
	for i := 0; i < 5; i++ {
		id0 := "zero" + string(rune('a'+i))
		id1 := "one" + string(rune('a'+i))
		b.AddObject(id0, "doc")
		b.AddObject(id1, "doc")
		for w := 0; w < 10; w++ {
			b.AddTermCount(id0, "text", w%5, 1)
			b.AddTermCount(id1, "text", 5+w%5, 1)
		}
	}
	b.AddObject("hub0", "hub")
	b.AddObject("hub1", "hub")
	for i := 0; i < 5; i++ {
		b.AddLink("hub0", "zero"+string(rune('a'+i)), "touches", 1)
		b.AddLink("hub1", "one"+string(rune('a'+i)), "touches", 1)
		// Back-links so the docs see the hubs too.
		b.AddLink("zero"+string(rune('a'+i)), "hub0", "touched_by", 1)
		b.AddLink("one"+string(rune('a'+i)), "hub1", "touched_by", 1)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.Seed = 21
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := net.IndexOf("hub0")
	h1, _ := net.IndexOf("hub1")
	z0, _ := net.IndexOf("zeroa")
	o0, _ := net.IndexOf("onea")
	labels := res.HardLabels()
	if labels[h0] != labels[z0] {
		t.Errorf("attribute-free hub0 (cluster %d) did not join its neighbors (cluster %d); θ=%v", labels[h0], labels[z0], res.Theta[h0])
	}
	if labels[h1] != labels[o0] {
		t.Errorf("attribute-free hub1 (cluster %d) did not join its neighbors (cluster %d); θ=%v", labels[h1], labels[o0], res.Theta[h1])
	}
	if labels[h0] == labels[h1] {
		t.Error("the two hubs should land in different clusters")
	}
}

// TestIsolatedObjectKeepsMembership: no links, no attributes → the row must
// survive EM without NaNs (it keeps its initialization).
func TestIsolatedObjectKeepsMembership(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 4})
	b.AddObject("connected1", "doc")
	b.AddObject("connected2", "doc")
	b.AddObject("island", "doc")
	b.AddTermCount("connected1", "text", 0, 5)
	b.AddTermCount("connected2", "text", 3, 5)
	b.AddLink("connected1", "connected2", "r", 1)
	b.AddLink("connected2", "connected1", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.OuterIters = 2
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	isl, _ := net.IndexOf("island")
	var sum float64
	for _, x := range res.Theta[isl] {
		if math.IsNaN(x) || x <= 0 {
			t.Fatalf("island membership corrupted: %v", res.Theta[isl])
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("island membership sums to %v", sum)
	}
}

// TestParallelMatchesSerialOneIteration: one EM iteration must be bitwise
// reproducible across Parallelism settings for Θ (rows are computed
// independently from the same snapshot).
func TestParallelMatchesSerialOneIteration(t *testing.T) {
	net, _ := twoTopicNetwork(t, 25, 23)
	optsSerial := DefaultOptions(2)
	optsSerial.Parallelism = 1
	optsSerial.InitSeeds = 1
	sSerial := newState(net, optsSerial, 24, false)

	optsPar := optsSerial
	optsPar.Parallelism = 4
	sPar := newState(net, optsPar, 24, false)

	// Same seed → identical initial state.
	for v := range sSerial.theta {
		for k := range sSerial.theta[v] {
			if sSerial.theta[v][k] != sPar.theta[v][k] {
				t.Fatal("initial states differ")
			}
		}
	}
	sSerial.snapshotTheta()
	sSerial.emIteration()
	sPar.snapshotTheta()
	sPar.emIteration()
	for v := range sSerial.theta {
		for k := range sSerial.theta[v] {
			if math.Abs(sSerial.theta[v][k]-sPar.theta[v][k]) > 1e-12 {
				t.Fatalf("θ[%d][%d] differs: %v vs %v", v, k, sSerial.theta[v][k], sPar.theta[v][k])
			}
		}
	}
}

// TestParallelFullFitClose: full fits may diverge bit-wise (merge order of β
// statistics) but must agree behaviourally.
func TestParallelFullFitClose(t *testing.T) {
	net, labels := twoTopicNetwork(t, 25, 29)
	opts := DefaultOptions(2)
	opts.Seed = 30
	res1, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 3
	res3, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a1, a3 := clusterAgreement(res1.HardLabels(), labels), clusterAgreement(res3.HardLabels(), labels); math.Abs(a1-a3) > 0.05 {
		t.Errorf("serial accuracy %v vs parallel accuracy %v", a1, a3)
	}
}

func TestFitObjectiveImproves(t *testing.T) {
	net, _ := twoTopicNetwork(t, 20, 31)
	opts := DefaultOptions(2)
	opts.TrackHistory = true
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != opts.OuterIters+1 {
		t.Fatalf("history length %d, want %d", len(res.History), opts.OuterIters+1)
	}
	first := res.History[0].G1
	last := res.History[len(res.History)-1].G1
	if last <= first {
		t.Errorf("objective did not improve: %v → %v", first, last)
	}
}

func TestFitValidation(t *testing.T) {
	net, _ := twoTopicNetwork(t, 5, 37)
	bad := []Options{
		func() Options { o := DefaultOptions(1); return o }(),
		func() Options { o := DefaultOptions(2); o.OuterIters = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.EMIters = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.NewtonIters = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.PriorSigma = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.Epsilon = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.Epsilon = 0.9; return o }(),
		func() Options { o := DefaultOptions(2); o.SmoothEta = -1; return o }(),
		func() Options { o := DefaultOptions(2); o.VarFloor = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.InitSeeds = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.InitSeeds = 3; o.InitSeedSteps = 0; return o }(),
		func() Options { o := DefaultOptions(2); o.Attributes = []string{"ghost"}; return o }(),
	}
	for i, o := range bad {
		if _, err := Fit(net, o); err == nil {
			t.Errorf("options %d should be rejected", i)
		}
	}
	if _, err := Fit(nil, DefaultOptions(2)); err == nil {
		t.Error("nil network should be rejected")
	}
}

func TestFixedGammaAblation(t *testing.T) {
	net, _ := twoTopicNetwork(t, 15, 41)
	opts := DefaultOptions(2)
	opts.LearnGamma = false
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for rel, g := range res.Gamma {
		if g != 1 {
			t.Errorf("LearnGamma=false should keep γ(%s)=1, got %v", rel, g)
		}
	}
}

func TestGammaLearnedAwayFromOnes(t *testing.T) {
	// With learning on, the consistent/noisy construction must move γ.
	rng := rand.New(rand.NewSource(43))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 10})
	const per = 25
	ids := make([]string, 2*per)
	for i := range ids {
		ids[i] = "n" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "doc")
		topic := i / per
		for w := 0; w < 8; w++ {
			b.AddTermCount(ids[i], "text", topic*5+rng.Intn(5), 1)
		}
	}
	for i := range ids {
		topic := i / per
		for c := 0; c < 2; c++ {
			j := topic*per + rng.Intn(per)
			if j != i {
				b.AddLink(ids[i], ids[j], "good", 1)
			}
			j = rng.Intn(len(ids))
			if j != i {
				b.AddLink(ids[i], ids[j], "random", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.Seed = 44
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Gamma["good"] > res.Gamma["random"]) {
		t.Errorf("γ(good)=%v should exceed γ(random)=%v", res.Gamma["good"], res.Gamma["random"])
	}
}

func TestHardLabelsAndMembershipOf(t *testing.T) {
	net, _ := twoTopicNetwork(t, 5, 47)
	opts := DefaultOptions(2)
	opts.OuterIters = 1
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	labels := res.HardLabels()
	if len(labels) != net.NumObjects() {
		t.Fatal("label length mismatch")
	}
	for v, lab := range labels {
		row := res.MembershipOf(v)
		for _, x := range row {
			if x > row[lab] {
				t.Fatal("HardLabels not argmax")
			}
		}
	}
	if res.MembershipOf(-1) != nil || res.MembershipOf(net.NumObjects()) != nil {
		t.Error("MembershipOf out of range should be nil")
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestAttributeSubsetSelection(t *testing.T) {
	// Declare two attributes but cluster on only one; the ignored attribute
	// must not appear in the result models.
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "use", Kind: hin.Categorical, VocabSize: 6})
	b.DeclareAttribute(hin.AttrSpec{Name: "ignore", Kind: hin.Numeric})
	b.AddObject("x", "t")
	b.AddObject("y", "t")
	b.AddTermCount("x", "use", 0, 3)
	b.AddTermCount("y", "use", 5, 3)
	b.AddNumeric("x", "ignore", 100)
	b.AddLink("x", "y", "r", 1)
	b.AddLink("y", "x", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.Attributes = []string{"use"}
	opts.OuterIters = 2
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attrs) != 1 || res.Attrs[0].Name != "use" {
		t.Errorf("result attrs = %+v, want only 'use'", res.Attrs)
	}
}

func TestMixedAttributeKindsTogether(t *testing.T) {
	// Objects carrying a categorical attribute AND a numeric attribute, both
	// informative, must still produce a valid fit (Eq. 5 multi-attribute).
	rng := rand.New(rand.NewSource(51))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 8})
	b.DeclareAttribute(hin.AttrSpec{Name: "value", Kind: hin.Numeric})
	const per = 20
	ids := make([]string, 2*per)
	labels := make([]int, 2*per)
	for i := range ids {
		ids[i] = "m" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "obj")
		g := i / per
		labels[i] = g
		for w := 0; w < 6; w++ {
			b.AddTermCount(ids[i], "text", g*4+rng.Intn(4), 1)
		}
		b.AddNumeric(ids[i], "value", float64(10*g)+rng.NormFloat64())
	}
	for i := range ids {
		g := i / per
		j := g*per + rng.Intn(per)
		if j != i {
			b.AddLink(ids[i], ids[j], "r", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if acc := clusterAgreement(res.HardLabels(), labels); acc < 0.95 {
		t.Errorf("mixed-attribute recovery = %v", acc)
	}
}

func TestSymmetricPropagationOption(t *testing.T) {
	// With symmetric propagation, an object with only IN-links still
	// receives membership information.
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 4})
	b.AddObject("src", "t")
	b.AddObject("sinkOnly", "t")
	b.AddTermCount("src", "text", 0, 10)
	b.AddLink("src", "sinkOnly", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.SymmetricPropagation = true
	opts.OuterIters = 3
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.IndexOf("src")
	sink, _ := net.IndexOf("sinkOnly")
	labels := res.HardLabels()
	if labels[src] != labels[sink] {
		t.Errorf("symmetric propagation should align sink with src: θsink=%v θsrc=%v", res.Theta[sink], res.Theta[src])
	}
}

func TestBestOfSeedsNotWorseThanSingle(t *testing.T) {
	net, _ := twoTopicNetwork(t, 20, 53)
	single := DefaultOptions(2)
	single.InitSeeds = 1
	single.Seed = 54
	multi := DefaultOptions(2)
	multi.InitSeeds = 6
	multi.InitSeedSteps = 2
	multi.Seed = 54
	resS, err := Fit(net, single)
	if err != nil {
		t.Fatal(err)
	}
	resM, err := Fit(net, multi)
	if err != nil {
		t.Fatal(err)
	}
	// Best-of-seeds picks the best initial objective; after the same number
	// of iterations it should typically not be (much) worse.
	if resM.Objective < resS.Objective-math.Abs(resS.Objective)*0.05 {
		t.Errorf("best-of-seeds objective %v much worse than single %v", resM.Objective, resS.Objective)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	net, _ := twoTopicNetwork(t, 15, 61)
	opts := DefaultOptions(2)
	opts.Seed = 62
	res1, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res1.Theta {
		for k := range res1.Theta[v] {
			if res1.Theta[v][k] != res2.Theta[v][k] {
				t.Fatal("same seed produced different Θ")
			}
		}
	}
	for r, g := range res1.GammaVec {
		if res2.GammaVec[r] != g {
			t.Fatal("same seed produced different γ")
		}
	}
}
