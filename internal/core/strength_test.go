package core

import (
	"math"
	"math/rand"
	"testing"

	"genclus/internal/hin"
)

// randomLinkedState builds a random network with two relations and a random
// membership matrix, for derivative and concavity checks.
func randomLinkedState(t *testing.T, seed int64, nObj int) *state {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	ids := make([]string, nObj)
	for i := 0; i < nObj; i++ {
		ids[i] = "o" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "t")
	}
	rels := []string{"r0", "r1"}
	for i := 0; i < nObj*3; i++ {
		from, to := rng.Intn(nObj), rng.Intn(nObj)
		if from == to {
			continue
		}
		b.AddLink(ids[from], ids[to], rels[rng.Intn(2)], 0.2+2*rng.Float64())
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(3)
	s := newState(net, opts, seed, false)
	for v := range s.theta {
		copy(s.theta[v], randSimplex(rng, 3))
	}
	return s
}

// TestStrengthGradientFiniteDifference verifies Eq. 16 against a central
// finite difference of the pseudo-log-likelihood (Eq. 14).
func TestStrengthGradientFiniteDifference(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		s := randomLinkedState(t, seed, 25)
		st := s.buildStrengthStats()
		rng := rand.New(rand.NewSource(seed + 100))
		gamma := []float64{0.5 + rng.Float64(), 0.5 + rng.Float64()}
		grad, _ := st.gradHess(gamma, s.opts.PriorSigma)
		const h = 1e-6
		for r := range gamma {
			gp := append([]float64(nil), gamma...)
			gm := append([]float64(nil), gamma...)
			gp[r] += h
			gm[r] -= h
			fd := (st.pseudoLogLikelihood(gp, s.opts.PriorSigma) -
				st.pseudoLogLikelihood(gm, s.opts.PriorSigma)) / (2 * h)
			if math.Abs(fd-grad[r]) > 1e-3*math.Max(1, math.Abs(fd)) {
				t.Errorf("seed %d: ∂g2/∂γ%d = %v, finite diff %v", seed, r, grad[r], fd)
			}
		}
	}
}

// TestStrengthHessianFiniteDifference verifies Eq. 17 against finite
// differences of the gradient.
func TestStrengthHessianFiniteDifference(t *testing.T) {
	s := randomLinkedState(t, 47, 25)
	st := s.buildStrengthStats()
	gamma := []float64{1.2, 0.8}
	_, hess := st.gradHess(gamma, s.opts.PriorSigma)
	const h = 1e-5
	for r1 := 0; r1 < 2; r1++ {
		gp := append([]float64(nil), gamma...)
		gm := append([]float64(nil), gamma...)
		gp[r1] += h
		gm[r1] -= h
		gradP, _ := st.gradHess(gp, s.opts.PriorSigma)
		gradM, _ := st.gradHess(gm, s.opts.PriorSigma)
		for r2 := 0; r2 < 2; r2++ {
			fd := (gradP[r2] - gradM[r2]) / (2 * h)
			if math.Abs(fd-hess.At(r1, r2)) > 1e-2*math.Max(1, math.Abs(fd)) {
				t.Errorf("H[%d][%d] = %v, finite diff %v", r1, r2, hess.At(r1, r2), fd)
			}
		}
	}
}

// TestStrengthHessianSymmetricNegDef: Appendix B proves Hg′₂ is negative
// definite; verify both properties numerically.
func TestStrengthHessianSymmetricNegDef(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		s := randomLinkedState(t, int64(60+trial), 20)
		st := s.buildStrengthStats()
		gamma := []float64{rng.Float64() * 2, rng.Float64() * 2}
		_, hess := st.gradHess(gamma, s.opts.PriorSigma)
		if !hess.IsSymmetric(1e-9) {
			t.Fatal("Hessian not symmetric")
		}
		// xᵀHx < 0 for random x ≠ 0.
		for probe := 0; probe < 20; probe++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			hx := hess.MulVec(x)
			quad := x[0]*hx[0] + x[1]*hx[1]
			if quad >= 0 {
				t.Fatalf("Hessian not negative definite: xᵀHx = %v", quad)
			}
		}
	}
}

// TestPseudoLikelihoodConcaveAlongLines: g′₂ restricted to any segment in
// the positive orthant must be concave (second differences ≤ 0).
func TestPseudoLikelihoodConcaveAlongLines(t *testing.T) {
	s := randomLinkedState(t, 71, 30)
	st := s.buildStrengthStats()
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		a := []float64{rng.Float64() * 3, rng.Float64() * 3}
		d := []float64{rng.NormFloat64(), rng.NormFloat64()}
		vals := make([]float64, 11)
		feasible := true
		for i := range vals {
			tt := float64(i) / 10
			g := []float64{a[0] + tt*d[0], a[1] + tt*d[1]}
			if g[0] < 0 || g[1] < 0 {
				feasible = false
				break
			}
			vals[i] = st.pseudoLogLikelihood(g, s.opts.PriorSigma)
		}
		if !feasible {
			continue
		}
		for i := 1; i < len(vals)-1; i++ {
			second := vals[i+1] - 2*vals[i] + vals[i-1]
			if second > 1e-8*math.Max(1, math.Abs(vals[i])) {
				t.Fatalf("non-concave second difference %v at %d", second, i)
			}
		}
	}
}

// TestLearnStrengthsPrefersConsistentRelation is the behavioural heart of
// the paper: a relation that links objects with near-identical memberships
// must earn a higher strength than one linking random objects.
func TestLearnStrengthsPrefersConsistentRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	b := hin.NewBuilder()
	const n = 60
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "s" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "t")
	}
	// Two planted groups: objects 0..29 in cluster 0, 30..59 in cluster 1.
	group := func(i int) int { return i / 30 }
	// "consistent" links stay within a group; "noisy" links are random.
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			j := rng.Intn(30) + group(i)*30
			if j != i {
				b.AddLink(ids[i], ids[j], "consistent", 1)
			}
			j = rng.Intn(n)
			if j != i {
				b.AddLink(ids[i], ids[j], "noisy", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	s := newState(net, opts, 82, false)
	for v := range s.theta {
		if group(v) == 0 {
			s.theta[v][0], s.theta[v][1] = 0.95, 0.05
		} else {
			s.theta[v][0], s.theta[v][1] = 0.05, 0.95
		}
	}
	s.learnStrengths()
	cons, _ := net.RelationID("consistent")
	noisy, _ := net.RelationID("noisy")
	if !(s.gamma[cons] > s.gamma[noisy]) {
		t.Errorf("γ(consistent)=%v should exceed γ(noisy)=%v", s.gamma[cons], s.gamma[noisy])
	}
	if s.gamma[noisy] < 0 || s.gamma[cons] < 0 {
		t.Error("strengths must be non-negative")
	}
}

// TestLearnStrengthsIncreasesPseudoLikelihood: the Newton loop must not
// decrease g′₂ relative to the all-ones start.
func TestLearnStrengthsIncreasesPseudoLikelihood(t *testing.T) {
	for _, seed := range []int64{91, 92, 93} {
		s := randomLinkedState(t, seed, 40)
		st := s.buildStrengthStats()
		before := st.pseudoLogLikelihood(s.gamma, s.opts.PriorSigma)
		after := s.learnStrengths()
		if after < before-1e-9 {
			t.Errorf("seed %d: g2 decreased %v → %v", seed, before, after)
		}
		// And the returned value matches re-evaluation at the final γ.
		if math.Abs(after-st.pseudoLogLikelihood(s.gamma, s.opts.PriorSigma)) > 1e-9*math.Max(1, math.Abs(after)) {
			t.Errorf("seed %d: returned g2 inconsistent", seed)
		}
	}
}

// TestLearnStrengthsProjection: strengths never go negative even when the
// unconstrained optimum would.
func TestLearnStrengthsProjection(t *testing.T) {
	// A relation linking maximally dissimilar objects wants γ < 0; the
	// projection must clamp it to 0.
	b := hin.NewBuilder()
	b.AddObject("x", "t")
	b.AddObject("y", "t")
	b.AddLink("x", "y", "bad", 5)
	b.AddLink("y", "x", "bad", 5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	s := newState(net, opts, 99, false)
	x, _ := net.IndexOf("x")
	y, _ := net.IndexOf("y")
	s.theta[x][0], s.theta[x][1] = 0.999, 0.001
	s.theta[y][0], s.theta[y][1] = 0.001, 0.999
	s.learnStrengths()
	bad, _ := net.RelationID("bad")
	if s.gamma[bad] < 0 {
		t.Errorf("γ went negative: %v", s.gamma[bad])
	}
	// With such dissimilar endpoints the learned strength should be tiny.
	if s.gamma[bad] > 0.5 {
		t.Errorf("γ(bad) = %v, expected to be pushed toward 0", s.gamma[bad])
	}
}

// TestStrengthStatsSkipSinkObjects: objects with no out-links must not
// contribute rows.
func TestStrengthStatsSkipSinkObjects(t *testing.T) {
	b := hin.NewBuilder()
	b.AddObject("a", "t")
	b.AddObject("b", "t")
	b.AddObject("sink", "t")
	b.AddLink("a", "sink", "r", 1)
	b.AddLink("b", "sink", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newState(net, DefaultOptions(2), 1, false)
	st := s.buildStrengthStats()
	if len(st.objs) != 2 {
		t.Errorf("expected 2 contributing objects, got %d", len(st.objs))
	}
}

// TestAlphaAlwaysValid: α_ik = Σ γ w θ + 1 ≥ 1 keeps LogBeta finite for any
// non-negative γ, so pseudoLogLikelihood must always be finite.
func TestAlphaAlwaysValid(t *testing.T) {
	s := randomLinkedState(t, 101, 30)
	st := s.buildStrengthStats()
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 50; trial++ {
		gamma := []float64{rng.Float64() * 20, rng.Float64() * 20}
		v := st.pseudoLogLikelihood(gamma, 0.1)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("g2 not finite at γ=%v: %v", gamma, v)
		}
	}
	// Zero strengths are feasible too.
	if v := st.pseudoLogLikelihood([]float64{0, 0}, 0.1); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("g2 not finite at 0: %v", v)
	}
}
