package core

import (
	"fmt"
	"math"
	"testing"

	"genclus/internal/hin"
)

// buildDocNet constructs a clearly two-clustered citation network, fully
// deterministically: perTopic docs per topic with disjoint vocabulary
// blocks and within-topic cites links, plus extraPerTopic "grown" docs per
// topic appended after the base structure. The base part is bit-identical
// across calls with different extraPerTopic, which is what makes warm
// starts across the two networks meaningful.
func buildDocNet(t *testing.T, perTopic, extraPerTopic int) *hin.Network {
	t.Helper()
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 20})
	addDoc := func(topic, i int, tag string) string {
		id := fmt.Sprintf("%s%d_%04d", tag, topic, i)
		b.AddObject(id, "doc")
		for w := 0; w < 8; w++ {
			b.AddTermCount(id, "text", topic*10+(i+w)%10, 1)
		}
		return id
	}
	base := [2][]string{}
	for topic := 0; topic < 2; topic++ {
		for i := 0; i < perTopic; i++ {
			base[topic] = append(base[topic], addDoc(topic, i, "doc"))
		}
	}
	for topic := 0; topic < 2; topic++ {
		for i, id := range base[topic] {
			b.AddLink(id, base[topic][(i+1)%perTopic], "cites", 1)
			b.AddLink(id, base[topic][(i+3)%perTopic], "cites", 1)
		}
	}
	for topic := 0; topic < 2; topic++ {
		for i := 0; i < extraPerTopic; i++ {
			id := addDoc(topic, i, "new")
			b.AddLink(id, base[topic][i%perTopic], "cites", 1)
			b.AddLink(base[topic][(i+5)%perTopic], id, "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// convergedFitOpts fits to a tight fixed point so a refit has a genuinely
// converged starting state.
func convergedFitOpts(k int) Options {
	opts := DefaultOptions(k)
	opts.Seed = 1
	opts.OuterIters = 30
	opts.EMIters = 50
	opts.EMTol = 1e-9
	opts.OuterTol = 1e-9
	return opts
}

// TestRefitUnchangedNetwork is the tentpole warm-start guarantee: refitting
// a converged model on the unchanged network terminates within 2 EM
// iterations and reproduces the hard labels exactly.
func TestRefitUnchangedNetwork(t *testing.T) {
	net := buildDocNet(t, 40, 0)
	m, err := Fit(net, convergedFitOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	refit, err := m.Refit(net, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if refit.EMIterations > 2 {
		t.Errorf("refit of a converged model ran %d EM iterations, want ≤ 2", refit.EMIterations)
	}
	want, got := m.HardLabels(), refit.HardLabels()
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("object %d relabeled by refit: %d → %d", v, want[v], got[v])
		}
	}
	if refit.Objective < m.Objective-1e-6 {
		t.Errorf("refit objective regressed: %v → %v", m.Objective, refit.Objective)
	}
}

// TestRefitGrownNetwork grows the network by 5% and requires the warm
// start to converge in fewer EM iterations than a cold fit, at an equal or
// better objective.
func TestRefitGrownNetwork(t *testing.T) {
	base := buildDocNet(t, 40, 0)
	grown := buildDocNet(t, 40, 2) // 4 new docs on 80 = 5%

	m, err := Fit(base, convergedFitOpts(2))
	if err != nil {
		t.Fatal(err)
	}

	// Cold fit on the grown network with the same stopping rules the refit
	// uses, so iteration counts compare like for like.
	coldOpts := convergedFitOpts(2)
	coldOpts.EMTol = 1e-6
	coldOpts.OuterTol = 1e-6
	cold, err := Fit(grown, coldOpts)
	if err != nil {
		t.Fatal(err)
	}

	refitOpts := DefaultOptions(2)
	refitOpts.OuterIters = 30
	refitOpts.EMIters = 50
	warm, err := m.Refit(grown, refitOpts)
	if err != nil {
		t.Fatal(err)
	}

	if warm.EMIterations >= cold.EMIterations {
		t.Errorf("warm refit ran %d EM iterations, cold fit %d — warm start bought nothing",
			warm.EMIterations, cold.EMIterations)
	}
	tol := 1e-6 * (1 + absFloat(cold.Objective))
	if warm.Objective < cold.Objective-tol {
		t.Errorf("warm refit objective %v worse than cold fit %v", warm.Objective, cold.Objective)
	}

	// Carried-over objects keep their clusters relative to each other: the
	// two topics stay separated and new docs join their topic's cluster.
	labels := warm.HardLabels()
	first := map[int]int{} // topic → cluster of its first doc
	for v := 0; v < grown.NumObjects(); v++ {
		id := grown.Object(v).ID
		var topic int
		if _, err := fmt.Sscanf(id[len(id)-6:], "%d_", &topic); err != nil {
			t.Fatalf("unparseable test id %q", id)
		}
		if c, ok := first[topic]; !ok {
			first[topic] = labels[v]
		} else if c != labels[v] {
			t.Fatalf("topic %d split across clusters (object %s)", topic, id)
		}
	}
	if first[0] == first[1] {
		t.Error("topics merged into one cluster after refit")
	}
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestWarmStartMapping exercises the identity-based carry-over: objects map
// by ID, relations by name, attributes by name with vocabulary growth.
func TestWarmStartMapping(t *testing.T) {
	base := buildDocNet(t, 10, 0)
	m, err := Fit(base, convergedFitOpts(2))
	if err != nil {
		t.Fatal(err)
	}

	// A differently-shaped target: shared doc IDs, one brand-new object, a
	// new relation, and a grown vocabulary.
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 25})
	b.AddObject("doc0_0000", "doc")
	b.AddObject("stranger", "doc")
	b.AddLink("doc0_0000", "stranger", "mentions", 1)
	target, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var opts Options = DefaultOptions(0)
	opts.K = 0
	if err := m.WarmStartOptions(target, &opts); err != nil {
		t.Fatal(err)
	}
	if opts.K != m.K {
		t.Fatalf("warm start K = %d, want model K %d", opts.K, m.K)
	}
	v0, _ := target.IndexOf("doc0_0000")
	u0, _ := base.IndexOf("doc0_0000")
	for k := range opts.InitTheta[v0] {
		if opts.InitTheta[v0][k] != m.Theta[u0][k] {
			t.Fatalf("carried-over object got theta %v, want %v", opts.InitTheta[v0], m.Theta[u0])
		}
	}
	vs, _ := target.IndexOf("stranger")
	for _, x := range opts.InitTheta[vs] {
		if x != 0.5 {
			t.Fatalf("new object not uniform: %v", opts.InitTheta[vs])
		}
	}
	if got := opts.InitGamma[0]; got != 1 {
		t.Errorf("unknown relation strength = %v, want the all-ones default", got)
	}
	if err := opts.Validate(target); err != nil {
		t.Fatalf("warm-start options invalid on vocabulary-grown network: %v", err)
	}

	// The warm categorical model must normalize after vocabulary extension.
	res, err := FitContext(t.Context(), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range res.Attrs[0].Cat.Beta {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if absFloat(sum-1) > 1e-9 {
			t.Errorf("component %d β sums to %v after vocab growth", k, sum)
		}
	}
}

// TestWarmCatUnnormalizedRows: vocabulary-growth fill must scale with the
// row's actual mass, so user-supplied unnormalized warm rows (Validate only
// requires sum > 0) still give unseen terms their documented "one average
// seen term" share.
func TestWarmCatUnnormalizedRows(t *testing.T) {
	src := &CatParams{Beta: [][]float64{{600, 200, 200}}} // sums to 1000, not 1
	got := warmCat(src, 5)
	row := got.Beta[0]
	var sum float64
	for _, p := range row {
		sum += p
	}
	if absFloat(sum-1) > 1e-12 {
		t.Fatalf("warm row not normalized: sum=%v", sum)
	}
	// The two new terms split one average seen term's share: each should be
	// (1/3)/2 of the seen mass, i.e. 1/6 relative to the seen terms — the
	// same outcome as for the normalized row {0.6, 0.2, 0.2}.
	want := warmCat(&CatParams{Beta: [][]float64{{0.6, 0.2, 0.2}}}, 5).Beta[0]
	for l := range row {
		if absFloat(row[l]-want[l]) > 1e-12 {
			t.Fatalf("term %d: unnormalized warm start gives %v, normalized gives %v", l, row[l], want[l])
		}
	}
	if row[3] <= 0 || row[4] <= 0 {
		t.Fatalf("grown-vocabulary terms locked out: %v", row)
	}
}

func TestWarmStartRejectsKMismatch(t *testing.T) {
	net := buildDocNet(t, 10, 0)
	m, err := Fit(net, convergedFitOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refit(net, DefaultOptions(3)); err == nil {
		t.Fatal("refit at a different K succeeded, want error")
	}
}

func TestNewModelValidation(t *testing.T) {
	net := buildDocNet(t, 10, 0)
	m, err := Fit(net, convergedFitOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(nil, nil); err == nil {
		t.Error("NewModel(nil) succeeded")
	}
	if _, err := NewModel(m.Result, []string{"just-one"}); err == nil {
		t.Error("NewModel with mismatched ID count succeeded")
	}
	re, err := NewModel(m.Result, m.ObjectIDs())
	if err != nil {
		t.Fatal(err)
	}
	refit, err := re.Refit(net, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if refit.EMIterations > 2 {
		t.Errorf("rehydrated model refit ran %d EM iterations, want ≤ 2", refit.EMIterations)
	}
}

func TestValidateInitGammaAndAttrs(t *testing.T) {
	net := buildDocNet(t, 5, 0)
	opts := DefaultOptions(2)

	opts.InitGamma = []float64{1, 2}
	if err := opts.Validate(net); err == nil {
		t.Error("wrong-length InitGamma accepted")
	}
	opts.InitGamma = []float64{-1}
	if err := opts.Validate(net); err == nil {
		t.Error("negative InitGamma accepted")
	}
	opts.InitGamma = []float64{1.5}
	if err := opts.Validate(net); err != nil {
		t.Errorf("valid InitGamma rejected: %v", err)
	}

	opts.InitAttrs = []AttrModel{{Name: "text", Kind: hin.Numeric, Gauss: &GaussParams{Mu: []float64{0, 1}, Var: []float64{1, 1}}}}
	if err := opts.Validate(net); err == nil {
		t.Error("kind-mismatched InitAttrs accepted")
	}
	opts.InitAttrs = []AttrModel{{Name: "text", Kind: hin.Categorical, Cat: &CatParams{Beta: [][]float64{{0.5, 0.5}}}}}
	if err := opts.Validate(net); err == nil {
		t.Error("wrong component count accepted")
	}
	opts.InitAttrs = []AttrModel{{Name: "gone", Kind: hin.Numeric}}
	if err := opts.Validate(net); err != nil {
		t.Errorf("InitAttrs naming a dropped attribute rejected: %v", err)
	}

	// Degenerate values must be a validation error, not a NaN fit.
	opts.InitAttrs = []AttrModel{{Name: "text", Kind: hin.Categorical,
		Cat: &CatParams{Beta: [][]float64{{0.5, 0.5}, {}}}}}
	if err := opts.Validate(net); err == nil {
		t.Error("empty categorical component accepted")
	}
	opts.InitAttrs = []AttrModel{{Name: "text", Kind: hin.Categorical,
		Cat: &CatParams{Beta: [][]float64{{0.5, 0.5}, {0, 0}}}}}
	if err := opts.Validate(net); err == nil {
		t.Error("zero-mass categorical component accepted")
	}

	numNet := func() *hin.Network {
		b := hin.NewBuilder()
		b.DeclareAttribute(hin.AttrSpec{Name: "temp", Kind: hin.Numeric})
		b.AddObject("a", "t")
		b.AddObject("c", "t")
		b.AddNumeric("a", "temp", 1)
		b.AddLink("a", "c", "r", 1)
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}()
	nOpts := DefaultOptions(2)
	nOpts.InitAttrs = []AttrModel{{Name: "temp", Kind: hin.Numeric,
		Gauss: &GaussParams{Mu: []float64{0, 1}, Var: []float64{1, 0}}}}
	if err := nOpts.Validate(numNet); err == nil {
		t.Error("zero-variance Gaussian component accepted")
	}
	nOpts.InitAttrs = []AttrModel{{Name: "temp", Kind: hin.Numeric,
		Gauss: &GaussParams{Mu: []float64{0, math.NaN()}, Var: []float64{1, 1}}}}
	if err := nOpts.Validate(numNet); err == nil {
		t.Error("NaN Gaussian mean accepted")
	}
}
