package core

import (
	"context"
	"fmt"
	"math"

	"genclus/internal/hin"
)

// Snapshot captures the model after one outer iteration (used to regenerate
// Fig. 10: accuracy and strengths over iterations).
type Snapshot struct {
	Iter  int
	Gamma []float64
	Theta [][]float64
	G1    float64 // cluster-optimization objective after the EM step
	G2    float64 // pseudo-log-likelihood after the strength step
}

// Result is a fitted GenClus model.
type Result struct {
	// K is the number of clusters.
	K int
	// Theta is the |V|×K soft membership matrix Θ.
	Theta [][]float64
	// Gamma maps relation name → learned strength γ(r).
	Gamma map[string]float64
	// GammaVec is γ indexed by the network's dense relation ids.
	GammaVec []float64
	// Attrs holds the fitted per-attribute component models β.
	Attrs []AttrModel
	// Objective is the final g₁ value (Eq. 9).
	Objective float64
	// PseudoLL is the final g′₂ value (Eq. 14).
	PseudoLL float64
	// History has one snapshot per outer iteration when
	// Options.TrackHistory is set (Snapshot.Iter starts at 0 = initial
	// state, mirroring Fig. 10 which plots the all-one γ at iteration 0).
	History []Snapshot
	// EMIterations counts every inner EM iteration the fit executed,
	// including the best-of-seeds candidate runs — the work metric that
	// makes cold fits and warm-started refits comparable.
	EMIterations int
	// OuterIterations counts the outer alternations actually run (OuterTol
	// may stop the fit before Options.OuterIters).
	OuterIterations int
	// Precision is the storage precision the parameters were fitted under
	// (normalized — never empty on a fit result). Serializers read it so a
	// float32 fit round-trips through a snapshot in the float32 wire
	// layout without the caller re-stating the option.
	Precision Precision
}

// Fit runs GenClus (Algorithm 1) on the network and returns the fitted
// Model. The Model embeds the Result, so res.Theta, res.Gamma and friends
// read as before; it additionally retains enough source-network identity to
// warm-start a later fit via Model.Refit.
func Fit(net *hin.Network, opts Options) (*Model, error) {
	return FitContext(context.Background(), net, opts)
}

// FitContext is Fit with cooperative cancellation: the fit polls ctx
// between EM iterations and between the steps of the outer alternation, and
// returns ctx.Err() once it is cancelled. A cancelled fit returns no
// partial Result. Progress, when set on opts, is invoked after
// initialization and after every completed outer iteration (from the
// calling goroutine, so the callback needs no synchronization with the fit
// itself).
func FitContext(ctx context.Context, net *hin.Network, opts Options) (*Model, error) {
	if err := opts.Validate(net); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, emTotal := initializeState(ctx, net, opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		opts.Progress(Progress{Outer: 0, OuterTotal: opts.OuterIters, Objective: s.objectiveG1(), EMIterations: emTotal})
	}

	var history []Snapshot
	if opts.TrackHistory {
		history = append(history, Snapshot{
			Iter:  0,
			Gamma: append([]float64(nil), s.gamma...),
			Theta: cloneTheta(s.theta),
			G1:    s.objectiveG1(),
		})
	}

	var g2 float64
	outerRun := 0
	for outer := 0; outer < opts.OuterIters; outer++ {
		outerRun = outer + 1
		prevGamma := append([]float64(nil), s.gamma...)
		// Step 1: cluster optimization (EM on Θ, β with γ fixed).
		emTotal += s.runEM(opts.EMIters)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Step 2: link-type strength learning (Newton on γ with Θ fixed).
		if opts.LearnGamma {
			g2 = s.learnStrengths()
			// Commit γ at the configured storage precision (no-op under
			// float64; the frozen-γ branch needs none — its vector was
			// rounded at initialization and never moves).
			s.roundGamma()
		} else {
			g2 = s.buildStrengthStats().pseudoLogLikelihood(s.gamma, opts.PriorSigma)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(Progress{Outer: outer + 1, OuterTotal: opts.OuterIters, Objective: s.objectiveG1(), EMIterations: emTotal})
		}
		if opts.TrackHistory {
			history = append(history, Snapshot{
				Iter:  outer + 1,
				Gamma: append([]float64(nil), s.gamma...),
				Theta: cloneTheta(s.theta),
				G1:    s.objectiveG1(),
				G2:    g2,
			})
		}
		// Algorithm 1's outer "precision requirement for γ".
		if opts.OuterTol > 0 && outer > 0 {
			var move float64
			for r, g := range s.gamma {
				if d := math.Abs(g - prevGamma[r]); d > move {
					move = d
				}
			}
			if move < opts.OuterTol {
				break
			}
		}
	}

	// Validate already vetted the precision; normalize "" to float64 so the
	// result always states what it was fitted under.
	prec, _ := ParsePrecision(string(opts.Precision))
	res := &Result{
		K:               opts.K,
		Theta:           cloneTheta(s.theta),
		Gamma:           make(map[string]float64, net.NumRelations()),
		GammaVec:        append([]float64(nil), s.gamma...),
		Attrs:           s.snapshotModels(),
		Objective:       s.objectiveG1(),
		PseudoLL:        g2,
		History:         history,
		EMIterations:    emTotal,
		OuterIterations: outerRun,
		Precision:       prec,
	}
	for r := 0; r < net.NumRelations(); r++ {
		res.Gamma[net.RelationName(r)] = s.gamma[r]
	}
	ids := make([]string, net.NumObjects())
	for v := range ids {
		ids[v] = net.Object(v).ID
	}
	return &Model{Result: res, objectIDs: ids}, nil
}

// initializeState applies the §4.3 initialization policy: either a single
// random start, or best-of-seeds (run a few EM steps from several random
// starts and keep the one with the highest g₁). ctx aborts the candidate
// EM runs early; the caller notices the cancellation right after. The
// second return value counts the EM iterations spent on seeding.
func initializeState(ctx context.Context, net *hin.Network, opts Options) (*state, int) {
	if opts.InitSeeds <= 1 || opts.InitTheta != nil {
		s := newState(net, opts, opts.Seed, false)
		s.ctx = ctx
		return s, 0
	}
	var best *state
	bestG1 := math.Inf(-1)
	emTotal := 0
	for i := 0; i < opts.InitSeeds; i++ {
		if i > 0 && ctx.Err() != nil {
			break
		}
		// Seed 0 keeps the sorted quantile seeding of Gaussian components
		// (ideal when attributes vary monotonically together); later seeds
		// permute component means per attribute to explore other pairings.
		cand := newState(net, opts, opts.Seed+int64(i)*1_000_003, i > 0)
		cand.ctx = ctx
		emTotal += cand.runEM(opts.InitSeedSteps)
		if best == nil {
			// Fallback so a NaN objective on every candidate (possible with
			// pathological numeric observations) still yields a state
			// instead of a nil dereference downstream.
			best = cand
		}
		if g1 := cand.objectiveG1(); g1 > bestG1 {
			bestG1 = g1
			best = cand
		}
	}
	return best, emTotal
}

// HardLabels converts soft memberships to argmax cluster labels.
func (r *Result) HardLabels() []int {
	out := make([]int, len(r.Theta))
	for v, row := range r.Theta {
		best := 0
		for k := 1; k < len(row); k++ {
			if row[k] > row[best] {
				best = k
			}
		}
		out[v] = best
	}
	return out
}

// MembershipOf returns the Θ row of the object with the given dense index.
func (r *Result) MembershipOf(v int) []float64 {
	if v < 0 || v >= len(r.Theta) {
		return nil
	}
	return r.Theta[v]
}

// String summarizes the fit.
func (r *Result) String() string {
	return fmt.Sprintf("GenClus(K=%d, |V|=%d, g1=%.4g, gamma=%v)", r.K, len(r.Theta), r.Objective, r.Gamma)
}
