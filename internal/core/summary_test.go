package core

import (
	"testing"

	"genclus/internal/hin"
)

func TestSummarize(t *testing.T) {
	net, labels := twoTopicNetwork(t, 15, 77)
	opts := DefaultOptions(2)
	opts.Seed = 78
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := res.Summarize(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	var total int
	for _, cs := range sums {
		total += cs.Size
		if cs.ByType["doc"] != cs.Size {
			t.Errorf("cluster %d ByType inconsistent: %+v", cs.Cluster, cs)
		}
		terms := cs.TopTerms["text"]
		if len(terms) != 5 {
			t.Fatalf("cluster %d has %d top terms", cs.Cluster, len(terms))
		}
		for i := 1; i < len(terms); i++ {
			if terms[i].Weight > terms[i-1].Weight {
				t.Fatal("top terms not sorted by weight")
			}
		}
		if cs.String() == "" {
			t.Error("empty summary string")
		}
	}
	if total != net.NumObjects() {
		t.Errorf("summaries cover %d of %d objects", total, net.NumObjects())
	}
	// The planted topics use disjoint vocabulary blocks (0-9 vs 10-19): the
	// top terms of the two clusters must not overlap.
	seen := map[int]int{}
	for _, cs := range sums {
		for _, tw := range cs.TopTerms["text"] {
			seen[tw.Term]++
		}
	}
	for term, count := range seen {
		if count > 1 {
			t.Errorf("term %d appears in both clusters' top terms", term)
		}
	}
	_ = labels
}

func TestSummarizeGaussMeans(t *testing.T) {
	net, _ := gaussianChainNetwork(t, 15, 79)
	opts := DefaultOptions(2)
	opts.Seed = 80
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := res.Summarize(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	means := map[int]float64{}
	for _, cs := range sums {
		m, ok := cs.GaussMeans["reading"]
		if !ok {
			t.Fatal("missing Gaussian mean in summary")
		}
		means[cs.Cluster] = m
	}
	// The two component means must be well separated (truth: 0 and 5).
	if len(means) != 2 {
		t.Fatal("wrong cluster count")
	}
	diff := means[0] - means[1]
	if diff < 0 {
		diff = -diff
	}
	if diff < 3 {
		t.Errorf("component means not separated: %v", means)
	}
}

func TestSummarizeValidation(t *testing.T) {
	net, _ := twoTopicNetwork(t, 5, 81)
	opts := DefaultOptions(2)
	opts.OuterIters = 1
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Summarize(nil, 3); err == nil {
		t.Error("nil network should error")
	}
	if _, err := res.Summarize(net, 0); err == nil {
		t.Error("topN=0 should error")
	}
	other := hin.NewBuilder()
	other.AddObject("only", "t")
	smallNet, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Summarize(smallNet, 3); err == nil {
		t.Error("mismatched network should error")
	}
}
