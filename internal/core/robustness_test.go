package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"genclus/internal/hin"
)

// TestFitSurvivesExtremeObservations: numeric observations spanning many
// orders of magnitude must not produce NaN memberships (the log-space
// responsibility path).
func TestFitSurvivesExtremeObservations(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "v", Kind: hin.Numeric})
	vals := []float64{1e-12, 1e-6, 1, 1e6, 1e12, -1e12, 3.14, -2.71}
	for i, x := range vals {
		id := "o" + string(rune('a'+i))
		b.AddObject(id, "t")
		b.AddNumeric(id, "v", x)
	}
	for i := 0; i < len(vals); i++ {
		j := (i + 1) % len(vals)
		b.AddLink("o"+string(rune('a'+i)), "o"+string(rune('a'+j)), "r", 1)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(3)
	opts.OuterIters = 3
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertValidTheta(t, res.Theta)
	for _, g := range res.GammaVec {
		if math.IsNaN(g) || g < 0 {
			t.Fatalf("invalid strength %v", g)
		}
	}
}

// TestFitSurvivesExtremeWeights: huge and tiny (but positive finite) link
// weights must not destabilize the strength learner.
func TestFitSurvivesExtremeWeights(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 6})
	for i := 0; i < 6; i++ {
		id := "w" + string(rune('a'+i))
		b.AddObject(id, "t")
		b.AddTermCount(id, "text", (i/3)*3+i%3, 2)
	}
	b.AddLink("wa", "wb", "huge", 1e9)
	b.AddLink("wb", "wa", "huge", 1e9)
	b.AddLink("wd", "we", "tiny", 1e-9)
	b.AddLink("we", "wd", "tiny", 1e-9)
	b.AddLink("wa", "wd", "mid", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.OuterIters = 3
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertValidTheta(t, res.Theta)
	for rel, g := range res.Gamma {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("strength of %s = %v", rel, g)
		}
	}
}

// TestFitAttributeFreeNetwork: a network with a declared attribute but no
// observations at all degenerates to pure link clustering and must not
// crash or NaN.
func TestFitAttributeFreeNetwork(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 4})
	b.DeclareAttribute(hin.AttrSpec{Name: "value", Kind: hin.Numeric})
	rng := rand.New(rand.NewSource(7))
	ids := make([]string, 20)
	for i := range ids {
		ids[i] = "n" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "t")
	}
	for i := range ids {
		group := i / 10
		j := group*10 + rng.Intn(10)
		if j != i {
			b.AddLink(ids[i], ids[j], "r", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.OuterIters = 2
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertValidTheta(t, res.Theta)
}

// TestFitSingleObjectPerCluster: K equal to the number of objects is legal.
func TestFitKEqualsObjects(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 3})
	b.AddObject("x", "t")
	b.AddObject("y", "t")
	b.AddTermCount("x", "text", 0, 2)
	b.AddTermCount("y", "text", 2, 2)
	b.AddLink("x", "y", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.OuterIters = 2
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertValidTheta(t, res.Theta)
}

// TestFitRandomNetworksNeverNaN is the catch-all property test: any valid
// network must produce a valid fit.
func TestFitRandomNetworksNeverNaN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := hin.NewBuilder()
		nObj := 3 + rng.Intn(25)
		hasText := rng.Intn(2) == 0
		hasNum := rng.Intn(2) == 0
		if !hasText && !hasNum {
			hasText = true
		}
		if hasText {
			b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 8})
		}
		if hasNum {
			b.DeclareAttribute(hin.AttrSpec{Name: "num", Kind: hin.Numeric})
		}
		ids := make([]string, nObj)
		for i := range ids {
			ids[i] = "q" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			b.AddObject(ids[i], "t")
			if hasText && rng.Intn(3) > 0 {
				b.AddTermCount(ids[i], "text", rng.Intn(8), 1+float64(rng.Intn(4)))
			}
			if hasNum && rng.Intn(3) > 0 {
				b.AddNumeric(ids[i], "num", rng.NormFloat64()*10)
			}
		}
		rels := []string{"r0", "r1", "r2"}
		for e := 0; e < nObj*2; e++ {
			i, j := rng.Intn(nObj), rng.Intn(nObj)
			if i != j {
				b.AddLink(ids[i], ids[j], rels[rng.Intn(3)], 0.1+rng.Float64()*3)
			}
		}
		net, err := b.Build()
		if err != nil {
			return false
		}
		opts := DefaultOptions(2 + rng.Intn(3))
		opts.OuterIters = 2
		opts.EMIters = 4
		opts.InitSeeds = 1
		opts.Seed = seed
		res, err := Fit(net, opts)
		if err != nil {
			return false
		}
		for _, row := range res.Theta {
			var sum float64
			for _, x := range row {
				if math.IsNaN(x) || x <= 0 {
					return false
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		for _, g := range res.GammaVec {
			if math.IsNaN(g) || g < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInitThetaWarmStart: a warm start from the truth must keep the truth
// on a trivially separable instance.
func TestInitThetaWarmStart(t *testing.T) {
	net, labels := twoTopicNetwork(t, 10, 99)
	init := make([][]float64, net.NumObjects())
	for v := range init {
		row := make([]float64, 2)
		row[labels[v]] = 0.9
		row[1-labels[v]] = 0.1
		init[v] = row
	}
	opts := DefaultOptions(2)
	opts.InitTheta = init
	opts.OuterIters = 2
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if acc := clusterAgreement(res.HardLabels(), labels); acc < 0.99 {
		t.Errorf("warm start lost the truth: accuracy %v", acc)
	}
	// Validation of malformed warm starts.
	bad := DefaultOptions(2)
	bad.InitTheta = init[:2]
	if _, err := Fit(net, bad); err == nil {
		t.Error("short InitTheta should be rejected")
	}
	bad2 := DefaultOptions(2)
	bad2.InitTheta = make([][]float64, net.NumObjects())
	for v := range bad2.InitTheta {
		bad2.InitTheta[v] = []float64{1, 2, 3} // wrong K
	}
	if _, err := Fit(net, bad2); err == nil {
		t.Error("wrong-width InitTheta should be rejected")
	}
	bad3 := DefaultOptions(2)
	bad3.InitTheta = make([][]float64, net.NumObjects())
	for v := range bad3.InitTheta {
		bad3.InitTheta[v] = []float64{-1, 2}
	}
	if _, err := Fit(net, bad3); err == nil {
		t.Error("negative InitTheta should be rejected")
	}
}

// TestInitialGammaOption: the starting strengths must scale as configured.
func TestInitialGammaOption(t *testing.T) {
	net, _ := twoTopicNetwork(t, 8, 101)
	opts := DefaultOptions(2)
	opts.InitialGamma = 2.5
	opts.LearnGamma = false
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for rel, g := range res.Gamma {
		if g != 2.5 {
			t.Errorf("γ(%s) = %v, want 2.5", rel, g)
		}
	}
	bad := DefaultOptions(2)
	bad.InitialGamma = -1
	if _, err := Fit(net, bad); err == nil {
		t.Error("negative InitialGamma should be rejected")
	}
}

func assertValidTheta(t *testing.T, theta [][]float64) {
	t.Helper()
	for v, row := range theta {
		var sum float64
		for _, x := range row {
			if math.IsNaN(x) || x <= 0 || x > 1 {
				t.Fatalf("θ[%d] = %v", v, row)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", v, sum)
		}
	}
}
