package core

import (
	"math"

	"genclus/internal/hin"
)

// This file holds the vectorization-oriented inner loops of the E-step: the
// per-relation link pass and the categorical attribute pass, each with a
// generic form plus K-specialized forms that keep the K accumulators in
// registers across the edge/term loop. Every specialization is bitwise
// identical to the generic form — same operations, same floating-point
// summation order — which TestFitGoldenBitwiseChecksum (K=2) and
// TestKernelSpecializationsBitwise (K=4 vs. the forced-generic path) pin.
//
// Rules these loops obey so the transforms stay bitwise-safe (see
// docs/ARCHITECTURE.md, "Numerics"):
//
//   - Sequential reductions (the per-term responsibility sum) keep their
//     ascending-index association exactly; only independent per-component
//     accumulators are unrolled.
//   - The historical `if g == 0 { continue }` edge guard is dropped rather
//     than restructured: every operand is non-negative and never −0.0, so a
//     zero-strength or zero-weight edge contributes +0.0 and x + (+0.0)
//     is bitwise x for the non-negative accumulators here. Removing the
//     branch changes no bits and unblocks instruction-level parallelism.
//   - Θ_{t−1} is read through the flat panel (tf[c*k+i]) instead of a row
//     header chase; same memory, same values.
//   - Bounds checks are hoisted by full-slice expressions ([lo:hi:hi]) so
//     the compiler proves the inner loop in-bounds once per row/term.
//
// forceGenericKernels routes every dispatch to the generic forms; the
// kernel-equivalence test flips it to prove the specializations change no
// bits. Not for concurrent mutation — tests set it around serial fits only.
var forceGenericKernels bool

// linkPass adds the γ-weighted out-link term of one relation to every
// unnormalized row of the chunk: rows[v][i] += Σ_j gr·w(v,j)·Θold[col(v,j)][i],
// edges in CSR row order (ascending target).
func linkPass(rows, tf []float64, m *hin.CSR, lo, hi, k int, gr float64) {
	start := m.Start
	switch {
	case k == 4 && !forceGenericKernels:
		for v := lo; v < hi; v++ {
			rowLo, rowHi := start[v], start[v+1]
			if rowLo == rowHi {
				continue
			}
			b := (v - lo) * 4
			linkRowK4(rows[b:b+4:b+4], tf, m.Col[rowLo:rowHi], m.Weight[rowLo:rowHi], gr)
		}
	case k == 2 && !forceGenericKernels:
		for v := lo; v < hi; v++ {
			rowLo, rowHi := start[v], start[v+1]
			if rowLo == rowHi {
				continue
			}
			b := (v - lo) * 2
			linkRowK2(rows[b:b+2:b+2], tf, m.Col[rowLo:rowHi], m.Weight[rowLo:rowHi], gr)
		}
	default:
		for v := lo; v < hi; v++ {
			rowLo, rowHi := start[v], start[v+1]
			if rowLo == rowHi {
				continue
			}
			cols := m.Col[rowLo:rowHi]
			wts := m.Weight[rowLo:rowHi]
			b := (v - lo) * k
			nr := rows[b : b+k : b+k]
			for j, c := range cols {
				g := gr * wts[j]
				tb := c * k
				tu := tf[tb : tb+k : tb+k]
				for i := range tu {
					nr[i] += g * tu[i]
				}
			}
		}
	}
}

// linkRowK4 is linkPass's inner loop for K=4 with the four accumulators held
// in registers across the row's edges.
func linkRowK4(nr, tf []float64, cols []int, wts []float64, gr float64) {
	a0, a1, a2, a3 := nr[0], nr[1], nr[2], nr[3]
	for j, c := range cols {
		g := gr * wts[j]
		tb := c * 4
		t := tf[tb : tb+4 : tb+4]
		a0 += g * t[0]
		a1 += g * t[1]
		a2 += g * t[2]
		a3 += g * t[3]
	}
	nr[0], nr[1], nr[2], nr[3] = a0, a1, a2, a3
}

// linkRowK2 is linkRowK4 for K=2.
func linkRowK2(nr, tf []float64, cols []int, wts []float64, gr float64) {
	a0, a1 := nr[0], nr[1]
	for j, c := range cols {
		g := gr * wts[j]
		tb := c * 2
		t := tf[tb : tb+2 : tb+2]
		a0 += g * t[0]
		a1 += g * t[1]
	}
	nr[0], nr[1] = a0, a1
}

// catPass adds one categorical attribute's responsibility terms to every
// unnormalized row of the chunk, with the M-step statistics fused in (the
// EM form; the fold-in Scorer calls the per-object kernels with st == nil).
func catPass(rows, st, resp, betaT []float64, thetaOld [][]float64, terms [][]hin.TermCount, lo, hi, k int) {
	switch {
	case k == 4 && !forceGenericKernels:
		for v := lo; v < hi; v++ {
			tcs := terms[v]
			if len(tcs) == 0 {
				continue
			}
			b := (v - lo) * 4
			scoreCatAttrK4(rows[b:b+4:b+4], st, betaT, thetaOld[v], tcs)
		}
	case k == 2 && !forceGenericKernels:
		for v := lo; v < hi; v++ {
			tcs := terms[v]
			if len(tcs) == 0 {
				continue
			}
			b := (v - lo) * 2
			scoreCatAttrK2(rows[b:b+2:b+2], st, betaT, thetaOld[v], tcs)
		}
	default:
		for v := lo; v < hi; v++ {
			tcs := terms[v]
			if len(tcs) == 0 {
				continue
			}
			b := (v - lo) * k
			scoreCatAttrInto(rows[b:b+k:b+k], st, resp, betaT, thetaOld[v], tcs, k)
		}
	}
}

// scoreCatAttrK4 is scoreCatAttrInto for K=4: the prior row and the four
// row accumulators stay in registers across the term loop, and each term's
// responsibility sum keeps the generic ascending association
// ((r0+r1)+r2)+r3 (the generic loop's (((0+r0)+r1)+r2)+r3 — identical,
// since r0 ≥ +0.0).
func scoreCatAttrK4(nr, st, betaT, th []float64, tcs []hin.TermCount) {
	th0, th1, th2, th3 := th[0], th[1], th[2], th[3]
	a0, a1, a2, a3 := nr[0], nr[1], nr[2], nr[3]
	if st == nil {
		for _, tc := range tcs {
			base := tc.Term * 4
			bt := betaT[base : base+4 : base+4]
			r0, r1, r2, r3 := th0*bt[0], th1*bt[1], th2*bt[2], th3*bt[3]
			sum := ((r0 + r1) + r2) + r3
			if sum <= 0 {
				continue // term impossible under every component
			}
			inv := tc.Count / sum
			a0 += r0 * inv
			a1 += r1 * inv
			a2 += r2 * inv
			a3 += r3 * inv
		}
	} else {
		for _, tc := range tcs {
			base := tc.Term * 4
			bt := betaT[base : base+4 : base+4]
			r0, r1, r2, r3 := th0*bt[0], th1*bt[1], th2*bt[2], th3*bt[3]
			sum := ((r0 + r1) + r2) + r3
			if sum <= 0 {
				continue
			}
			inv := tc.Count / sum
			stt := st[base : base+4 : base+4]
			r0 *= inv
			r1 *= inv
			r2 *= inv
			r3 *= inv
			a0 += r0
			a1 += r1
			a2 += r2
			a3 += r3
			stt[0] += r0
			stt[1] += r1
			stt[2] += r2
			stt[3] += r3
		}
	}
	nr[0], nr[1], nr[2], nr[3] = a0, a1, a2, a3
}

// gaussPass adds one Gaussian attribute's responsibility terms to every
// unnormalized row of the chunk; the K=4 form keeps means, variances and
// accumulators in registers and skips the scratch arrays (the math.Exp
// calls — the pass's real cost — are unchanged).
func gaussPass(rows, gw, gwx, gwx2, resp, logs, logTh, mu, vr, hlv []float64, thetaOld [][]float64, obs [][]float64, lo, hi, k int) {
	if k == 4 && !forceGenericKernels {
		for v := lo; v < hi; v++ {
			xs := obs[v]
			if len(xs) == 0 {
				continue
			}
			b := (v - lo) * 4
			scoreGaussAttrK4(rows[b:b+4:b+4], gw, gwx, gwx2, mu, vr, hlv, thetaOld[v], xs)
		}
		return
	}
	for v := lo; v < hi; v++ {
		xs := obs[v]
		if len(xs) == 0 {
			continue
		}
		b := (v - lo) * k
		scoreGaussAttrInto(rows[b:b+k:b+k], gw, gwx, gwx2, resp, logs, logTh, mu, vr, hlv, thetaOld[v], xs, k)
	}
}

// scoreGaussAttrK4 is scoreGaussAttrInto for K=4. The max shift scans
// components in ascending order exactly like the generic loop, and the
// responsibility sum keeps its ascending association.
func scoreGaussAttrK4(nr, gw, gwx, gwx2, mu, vr, hlv, th, xs []float64) {
	lt0, lt1, lt2, lt3 := math.Log(th[0]), math.Log(th[1]), math.Log(th[2]), math.Log(th[3])
	mu0, mu1, mu2, mu3 := mu[0], mu[1], mu[2], mu[3]
	vr0, vr1, vr2, vr3 := vr[0], vr[1], vr[2], vr[3]
	h0, h1, h2, h3 := hlv[0], hlv[1], hlv[2], hlv[3]
	a0, a1, a2, a3 := nr[0], nr[1], nr[2], nr[3]
	fused := gw != nil
	var w0, w1, w2, w3, x0, x1, x2, x3, q0, q1, q2, q3 float64
	if fused {
		w0, w1, w2, w3 = gw[0], gw[1], gw[2], gw[3]
		x0, x1, x2, x3 = gwx[0], gwx[1], gwx[2], gwx[3]
		q0, q1, q2, q3 = gwx2[0], gwx2[1], gwx2[2], gwx2[3]
	}
	for _, x := range xs {
		d0 := x - mu0
		l0 := lt0 - 0.5*d0*d0/vr0 - h0
		d1 := x - mu1
		l1 := lt1 - 0.5*d1*d1/vr1 - h1
		d2 := x - mu2
		l2 := lt2 - 0.5*d2*d2/vr2 - h2
		d3 := x - mu3
		l3 := lt3 - 0.5*d3*d3/vr3 - h3
		m := math.Inf(-1)
		if l0 > m {
			m = l0
		}
		if l1 > m {
			m = l1
		}
		if l2 > m {
			m = l2
		}
		if l3 > m {
			m = l3
		}
		if math.IsInf(m, -1) {
			continue
		}
		r0 := math.Exp(l0 - m)
		r1 := math.Exp(l1 - m)
		r2 := math.Exp(l2 - m)
		r3 := math.Exp(l3 - m)
		sum := ((r0 + r1) + r2) + r3
		r0 /= sum
		r1 /= sum
		r2 /= sum
		r3 /= sum
		a0 += r0
		a1 += r1
		a2 += r2
		a3 += r3
		if fused {
			w0 += r0
			w1 += r1
			w2 += r2
			w3 += r3
			x0 += r0 * x
			x1 += r1 * x
			x2 += r2 * x
			x3 += r3 * x
			q0 += r0 * x * x
			q1 += r1 * x * x
			q2 += r2 * x * x
			q3 += r3 * x * x
		}
	}
	nr[0], nr[1], nr[2], nr[3] = a0, a1, a2, a3
	if fused {
		gw[0], gw[1], gw[2], gw[3] = w0, w1, w2, w3
		gwx[0], gwx[1], gwx[2], gwx[3] = x0, x1, x2, x3
		gwx2[0], gwx2[1], gwx2[2], gwx2[3] = q0, q1, q2, q3
	}
}

// normalizePass runs the E-step's final pass over the chunk: every
// unnormalized row becomes a proper membership row in Θ_t, objects with no
// information keep their prior row.
func normalizePass(rows []float64, theta, thetaOld [][]float64, lo, hi, k int, eps float64) {
	if k == 4 && !forceGenericKernels {
		for v := lo; v < hi; v++ {
			b := (v - lo) * 4
			if !normalizeRowK4(theta[v][:4:4], rows[b:b+4:b+4], eps) {
				copy(theta[v][:4:4], thetaOld[v])
			}
		}
		return
	}
	for v := lo; v < hi; v++ {
		b := (v - lo) * k
		dst := theta[v][:k:k]
		if !normalizeRowInto(dst, rows[b:b+k:b+k], eps) {
			copy(dst, thetaOld[v])
		}
	}
}

// normalizeRowK4 is normalizeRowInto for K=4, the whole row in registers.
// Both reductions keep the generic ascending association (the leading +0.0
// of the generic fold is bitwise-absorbed by the non-negative operands).
func normalizeRowK4(dst, nr []float64, eps float64) bool {
	n0, n1, n2, n3 := nr[0], nr[1], nr[2], nr[3]
	mass := ((n0 + n1) + n2) + n3
	if mass <= 0 || math.IsNaN(mass) || math.IsInf(mass, 0) {
		return false
	}
	x0 := n0 / mass
	if !(x0 >= eps) {
		x0 = eps
	}
	x1 := n1 / mass
	if !(x1 >= eps) {
		x1 = eps
	}
	x2 := n2 / mass
	if !(x2 >= eps) {
		x2 = eps
	}
	x3 := n3 / mass
	if !(x3 >= eps) {
		x3 = eps
	}
	sum := ((x0 + x1) + x2) + x3
	dst[0] = x0 / sum
	dst[1] = x1 / sum
	dst[2] = x2 / sum
	dst[3] = x3 / sum
	return true
}

// scoreCatAttrK2 is scoreCatAttrK4 for K=2.
func scoreCatAttrK2(nr, st, betaT, th []float64, tcs []hin.TermCount) {
	th0, th1 := th[0], th[1]
	a0, a1 := nr[0], nr[1]
	if st == nil {
		for _, tc := range tcs {
			base := tc.Term * 2
			bt := betaT[base : base+2 : base+2]
			r0, r1 := th0*bt[0], th1*bt[1]
			sum := r0 + r1
			if sum <= 0 {
				continue
			}
			inv := tc.Count / sum
			a0 += r0 * inv
			a1 += r1 * inv
		}
	} else {
		for _, tc := range tcs {
			base := tc.Term * 2
			bt := betaT[base : base+2 : base+2]
			r0, r1 := th0*bt[0], th1*bt[1]
			sum := r0 + r1
			if sum <= 0 {
				continue
			}
			inv := tc.Count / sum
			stt := st[base : base+2 : base+2]
			r0 *= inv
			r1 *= inv
			a0 += r0
			a1 += r1
			stt[0] += r0
			stt[1] += r1
		}
	}
	nr[0], nr[1] = a0, a1
}
