package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"genclus/internal/hin"
)

// mixedNetwork builds a network big enough to span several EM reduction
// chunks (> emChunkSize objects), with both a categorical and a numeric
// attribute so every accumulator kind participates in the merge.
func mixedNetwork(t *testing.T, perTopic int, seed int64) *hin.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 40})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	n := 2 * perTopic
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = "o" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		b.AddObject(ids[i], "doc")
		topic := i / perTopic
		for w := 0; w < 8; w++ {
			b.AddTermCount(ids[i], "text", topic*20+rng.Intn(20), 1)
		}
		// Attribute incompleteness: only a third of the objects carry the
		// numeric attribute.
		if i%3 == 0 {
			b.AddNumeric(ids[i], "score", float64(topic*10)+rng.NormFloat64())
		}
	}
	for i := 0; i < n; i++ {
		topic := i / perTopic
		for c := 0; c < 3; c++ {
			j := topic*perTopic + rng.Intn(perTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "cites", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestFitDeterministicAcrossParallelism is the golden guarantee the server
// relies on: the same seed must produce bitwise-identical fits regardless
// of the worker count, because the β-statistics reduction runs over fixed
// emChunkSize chunks merged in chunk order (see emIteration). A regression
// here means the accumulator-merge order leaked the parallelism level into
// the floating point summation tree.
func TestFitDeterministicAcrossParallelism(t *testing.T) {
	net := mixedNetwork(t, 700, 11) // 1400 objects → 3 reduction chunks

	opts := DefaultOptions(2)
	opts.Seed = 42
	opts.OuterIters = 3
	opts.EMIters = 5

	opts.Parallelism = 1
	serial, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	parallel, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}

	sl, pl := serial.HardLabels(), parallel.HardLabels()
	for v := range sl {
		if sl[v] != pl[v] {
			t.Fatalf("cluster assignment of object %d differs: %d (serial) vs %d (parallel)", v, sl[v], pl[v])
		}
	}
	for v := range serial.Theta {
		for k, x := range serial.Theta[v] {
			if parallel.Theta[v][k] != x {
				t.Fatalf("θ[%d][%d] differs: %v vs %v", v, k, x, parallel.Theta[v][k])
			}
		}
	}
	for r, g := range serial.GammaVec {
		if parallel.GammaVec[r] != g {
			t.Fatalf("γ[%d] differs: %v (serial) vs %v (parallel)", r, g, parallel.GammaVec[r])
		}
	}
	for i, am := range serial.Attrs {
		pm := parallel.Attrs[i]
		switch am.Kind {
		case hin.Categorical:
			for k, row := range am.Cat.Beta {
				for l, x := range row {
					if pm.Cat.Beta[k][l] != x {
						t.Fatalf("β[%s][%d][%d] differs: %v vs %v", am.Name, k, l, x, pm.Cat.Beta[k][l])
					}
				}
			}
		case hin.Numeric:
			for k := range am.Gauss.Mu {
				if pm.Gauss.Mu[k] != am.Gauss.Mu[k] || pm.Gauss.Var[k] != am.Gauss.Var[k] {
					t.Fatalf("gaussian β[%s][%d] differs: (%v,%v) vs (%v,%v)",
						am.Name, k, am.Gauss.Mu[k], am.Gauss.Var[k], pm.Gauss.Mu[k], pm.Gauss.Var[k])
				}
			}
		}
	}
}

// fitChecksum digests every fitted quantity of a Result bit for bit
// (FNV-1a over the IEEE-754 representations), so two fits compare equal
// exactly when they are bitwise identical.
func fitChecksum(res *Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	f := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	for _, row := range res.Theta {
		for _, x := range row {
			f(x)
		}
	}
	for _, g := range res.GammaVec {
		f(g)
	}
	for _, am := range res.Attrs {
		switch am.Kind {
		case hin.Categorical:
			for _, row := range am.Cat.Beta {
				for _, x := range row {
					f(x)
				}
			}
		case hin.Numeric:
			for _, x := range am.Gauss.Mu {
				f(x)
			}
			for _, x := range am.Gauss.Var {
				f(x)
			}
		}
	}
	f(res.Objective)
	f(res.PseudoLL)
	f(float64(res.EMIterations))
	return h.Sum64()
}

// interleavedNetwork builds a two-relation network whose in-links
// interleave relations (objects receive "cites" and "refs" links from
// alternating sources), exercising the symmetric-propagation summation
// order — the one EM path that walks the merged in-link view instead of
// the per-relation CSR matrices.
func interleavedNetwork(tb testing.TB, perTopic int, seed int64) *hin.Network {
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 60})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	n := 3 * perTopic
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("x%04d", i)
		b.AddObject(ids[i], "doc")
		topic := i / perTopic
		for w := 0; w < 5; w++ {
			b.AddTermCount(ids[i], "text", topic*20+rng.Intn(20), 1)
		}
		if i%4 == 0 {
			b.AddNumeric(ids[i], "score", float64(topic*8)+rng.NormFloat64())
		}
	}
	for i := 0; i < n; i++ {
		topic := i / perTopic
		for c := 0; c < 2; c++ {
			j := topic*perTopic + rng.Intn(perTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "cites", 1)
			}
			j = topic*perTopic + rng.Intn(perTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "refs", 0.7)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// Golden checksums captured from the pre-CSR implementation (PR 2, commit
// 048ba35) on the exact fits below, on linux/amd64. The CSR link storage
// and the zero-allocation EM scratch were introduced under the contract
// that they change neither an operand nor the summation order of any
// floating-point reduction, so on the capture architecture these digests
// must never move — across code changes AND across Parallelism settings.
// If a change legitimately needs to alter the arithmetic (a new reduction
// shape, a different feature function), that is a determinism-contract
// change: call it out in docs/ARCHITECTURE.md and re-capture the constants
// in the same commit.
//
// The constants are only asserted on amd64: architectures with fused
// multiply-add (arm64, ppc64, s390x) contract `a += b*c` into FMA, which
// legitimately produces different low-order bits for the same code. The
// cross-Parallelism bitwise comparison below still runs everywhere — the
// determinism contract is per-binary, the golden pin is per-architecture.
const (
	goldenChecksumArch      = "amd64"
	goldenPlainChecksum     = 0x728637d2d1a07a0e
	goldenSymmetricChecksum = 0xf4560d9951a246b0
)

// TestFitGoldenBitwiseChecksum pins the CSR-path fits to the recorded
// pre-CSR results, bit for bit, at every Parallelism level — the plain
// (out-link) path on the multi-chunk mixed network, and the symmetric
// propagation path on a multi-relation network with interleaved in-links.
// On non-amd64 hosts it still requires bitwise identity across
// Parallelism, just not the amd64 golden constants.
func TestFitGoldenBitwiseChecksum(t *testing.T) {
	pinGolden := runtime.GOARCH == goldenChecksumArch
	if !pinGolden {
		t.Logf("GOARCH=%s: skipping the %s golden constants (FMA contraction changes low-order bits); still requiring cross-Parallelism identity", runtime.GOARCH, goldenChecksumArch)
	}
	check := func(name string, golden uint64, fit func(parallelism int) *Result, pars []int) {
		var first uint64
		for i, par := range pars {
			got := fitChecksum(fit(par))
			if i == 0 {
				first = got
			} else if got != first {
				t.Errorf("%s fit checksum differs across Parallelism (%#x at %d vs %#x at %d)", name, got, par, first, pars[0])
			}
			if pinGolden && got != golden {
				t.Errorf("%s fit (Parallelism=%d) checksum %#x, want golden %#x — the floating-point summation tree changed", name, par, got, golden)
			}
		}
	}

	plain := mixedNetwork(t, 700, 11)
	popts := DefaultOptions(2)
	popts.Seed = 42
	popts.OuterIters = 3
	popts.EMIters = 5
	check("plain", goldenPlainChecksum, func(par int) *Result {
		popts.Parallelism = par
		res, err := Fit(plain, popts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Result
	}, []int{1, 4})

	sym := interleavedNetwork(t, 300, 17)
	sopts := DefaultOptions(3)
	sopts.Seed = 5
	sopts.OuterIters = 3
	sopts.EMIters = 4
	sopts.SymmetricPropagation = true
	check("symmetric", goldenSymmetricChecksum, func(par int) *Result {
		sopts.Parallelism = par
		res, err := Fit(sym, sopts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Result
	}, []int{1, 2})
}

// TestFitSurvivesExtremeNumeric: observations near ±MaxFloat64 overflow
// the pooled variance to +Inf and NaN every candidate's objective — the
// best-of-seeds selection must still return a state (not nil) and Fit must
// not panic, because genclusd feeds untrusted networks through here.
func TestFitSurvivesExtremeNumeric(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "x", Kind: hin.Numeric})
	b.AddObject("a", "t")
	b.AddObject("c", "t")
	b.AddNumeric("a", "x", 1e308)
	b.AddNumeric("c", "x", -1e308)
	b.AddLink("a", "c", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	opts.OuterIters = 2
	opts.EMIters = 2
	if _, err := Fit(net, opts); err != nil {
		t.Fatalf("Fit returned error (a result, even a degenerate one, is fine; a panic is not): %v", err)
	}
}

func TestFitContextPreCancelled(t *testing.T) {
	net := mixedNetwork(t, 30, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FitContext(ctx, net, DefaultOptions(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFitContextCancelMidFit cancels from the Progress hook once the fit is
// demonstrably underway, and requires the fit to abandon work promptly
// rather than finish its (otherwise very long) schedule.
func TestFitContextCancelMidFit(t *testing.T) {
	net := mixedNetwork(t, 200, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opts := DefaultOptions(2)
	opts.OuterIters = 100000 // would run for minutes if the cancel leaked
	opts.EMIters = 50
	opts.Progress = func(p Progress) {
		if p.Outer >= 1 {
			cancel()
		}
	}

	start := time.Now()
	_, err := FitContext(ctx, net, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled fit took %v", elapsed)
	}
}

func TestFitProgressReports(t *testing.T) {
	net := mixedNetwork(t, 30, 9)
	opts := DefaultOptions(2)
	opts.OuterIters = 4
	var got []Progress
	opts.Progress = func(p Progress) { got = append(got, p) }
	if _, err := Fit(net, opts); err != nil {
		t.Fatal(err)
	}
	if len(got) != opts.OuterIters+1 {
		t.Fatalf("got %d progress reports, want %d", len(got), opts.OuterIters+1)
	}
	for i, p := range got {
		if p.Outer != i || p.OuterTotal != opts.OuterIters {
			t.Fatalf("report %d = %+v", i, p)
		}
	}
}
