package core

import (
	"fmt"
	"math"

	"genclus/internal/hin"
)

// Precision selects the storage precision of a fit's learned parameters
// (Θ, β, γ). It is an API surface, not an internal knob: the value travels
// from Options through the snapshot format, the genclusd job spec, the
// assign engine, the SDK and the CLI, and every layer validates it with
// ParsePrecision.
//
// Arithmetic always runs in float64. Under PrecisionFloat32 every learned
// parameter is rounded to the nearest float32 at each point the fit commits
// it (Θ after each EM normalization, β/µ/σ² after each M-step, γ after each
// strength-learning step and at initialization), so the stored model is
// exactly representable in 32 bits: snapshots carry 4-byte floats losslessly
// and halve Θ/β wire size, and the fit remains bitwise deterministic across
// Parallelism with its own per-precision golden checksums. The accuracy
// contract (NMI parity ≥ 0.99 against float64 on the synthetic suites) is
// documented in docs/ARCHITECTURE.md, "Numerics".
type Precision string

// The supported precisions. The empty string is accepted everywhere and
// means PrecisionFloat64 — existing callers and serialized options are
// unaffected by the option's existence.
const (
	// PrecisionFloat64 is the default full-precision storage mode.
	PrecisionFloat64 Precision = "float64"
	// PrecisionFloat32 stores Θ/β/γ rounded to float32 values.
	PrecisionFloat32 Precision = "float32"
)

// PrecisionError reports an unknown Options.Precision value. It is a typed
// error so trust boundaries can distinguish a caller mistake (genclusd
// answers 400) from internal failures.
type PrecisionError struct {
	// Value is the rejected precision string.
	Value string
}

// Error implements the error interface.
func (e *PrecisionError) Error() string {
	return fmt.Sprintf("core: unknown precision %q (want %q or %q)", e.Value, PrecisionFloat64, PrecisionFloat32)
}

// ParsePrecision validates a precision string from any outer layer (job
// spec, CLI flag, snapshot meta) and normalizes the empty string to
// PrecisionFloat64. Unknown values return a *PrecisionError.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", PrecisionFloat64:
		return PrecisionFloat64, nil
	case PrecisionFloat32:
		return PrecisionFloat32, nil
	}
	return "", &PrecisionError{Value: s}
}

// WithPrecision returns a copy of the options with Precision set — the
// construction-helper form of the fit configuration (o stays unmodified, so
// a shared base Options can fan out per-job variants).
func (o Options) WithPrecision(p Precision) Options {
	o.Precision = p
	return o
}

// WithParallelism returns a copy of the options with Parallelism set; see
// WithPrecision.
func (o Options) WithParallelism(n int) Options {
	o.Parallelism = n
	return o
}

// f32 rounds x to the nearest float32 value, clamping overflow to
// ±MaxFloat32 so a finite float64 parameter never becomes infinite by
// changing storage precision (NaN passes through; the fit's validation
// layers reject it elsewhere).
func f32(x float64) float64 {
	r := float64(float32(x))
	if math.IsInf(r, 0) && !math.IsInf(x, 0) {
		return math.Copysign(math.MaxFloat32, x)
	}
	return r
}

// f32Slice rounds every entry of xs in place.
func f32Slice(xs []float64) {
	for i, x := range xs {
		xs[i] = f32(x)
	}
}

// roundTheta applies the storage precision to every Θ row in the range
// [lo, hi). Rounding is pointwise, so it is safe per chunk under the
// parallel E-step and cannot depend on Parallelism.
func (s *state) roundTheta(lo, hi int) {
	if s.opts.Precision != PrecisionFloat32 {
		return
	}
	for v := lo; v < hi; v++ {
		f32Slice(s.theta[v])
	}
}

// roundGamma applies the storage precision to the strength vector.
func (s *state) roundGamma() {
	if s.opts.Precision != PrecisionFloat32 {
		return
	}
	f32Slice(s.gamma)
}

// roundAttrModels applies the storage precision to every attribute
// component model (categorical β rows, Gaussian µ and σ²).
func (s *state) roundAttrModels() {
	if s.opts.Precision != PrecisionFloat32 {
		return
	}
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			for _, row := range s.cat[a].Beta {
				f32Slice(row)
			}
		case hin.Numeric:
			f32Slice(s.gauss[a].Mu)
			f32Slice(s.gauss[a].Var)
		}
	}
}
