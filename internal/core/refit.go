package core

import (
	"context"
	"fmt"

	"genclus/internal/hin"
)

// Model is a fitted GenClus model. It embeds the Result (so all fitted
// quantities — Θ, γ, attribute models, objectives — read directly off it)
// and retains the source network's object identities, which is what lets it
// warm-start a later fit on a network that has since grown, shrunk, or been
// rewired: memberships are carried over by object ID, strengths by relation
// name, and attribute models by attribute name.
type Model struct {
	*Result

	// objectIDs are the source network's object IDs in dense order:
	// Theta[v] is the membership of objectIDs[v].
	objectIDs []string
}

// NewModel reassembles a Model from a Result and the source network's
// object IDs in dense order (Theta row order) — the rehydration path for
// fitted state that crossed a serialization boundary (a persisted result,
// a result fetched from a remote service) and should seed a local Refit.
func NewModel(res *Result, objectIDs []string) (*Model, error) {
	if res == nil {
		return nil, fmt.Errorf("core: NewModel: nil result")
	}
	if len(objectIDs) != len(res.Theta) {
		return nil, fmt.Errorf("core: NewModel: %d object IDs for %d Theta rows", len(objectIDs), len(res.Theta))
	}
	return &Model{Result: res, objectIDs: append([]string(nil), objectIDs...)}, nil
}

// ObjectIDs returns the source network's object IDs in Theta row order.
// The slice is shared; callers must not mutate it.
func (m *Model) ObjectIDs() []string { return m.objectIDs }

// Refit defaults: warm starts are expected to be near a fixed point, so
// unlike Fit (where zero tolerances mean "run the full budget"), Refit
// enables early stopping unless the caller chose explicit tolerances.
const (
	defaultRefitEMTol    = 1e-6
	defaultRefitOuterTol = 1e-6
)

// WarmStartOptions maps the fitted state onto net and fills opts.InitTheta,
// opts.InitGamma and opts.InitAttrs accordingly:
//
//   - objects present in the source fit keep their Θ row; new objects start
//     uniform (the EM link term pulls them toward their neighborhood on the
//     first iteration);
//   - relations are matched by name; new relations start at
//     opts.InitialGamma (1 when unset);
//   - attribute models are matched by name (vocabulary growth handled by
//     uniform extension — see Options.InitAttrs).
//
// opts.K must be zero (inherits the model's K) or equal to it: component
// identities are only meaningful at the fitted K.
func (m *Model) WarmStartOptions(net *hin.Network, opts *Options) error {
	if net == nil {
		return fmt.Errorf("core: warm start: nil network")
	}
	if opts.K != 0 && opts.K != m.K {
		return fmt.Errorf("core: warm start with K=%d from a model fitted at K=%d", opts.K, m.K)
	}
	opts.K = m.K

	srcIndex := make(map[string]int, len(m.objectIDs))
	for v, id := range m.objectIDs {
		srcIndex[id] = v
	}
	uniform := 1.0 / float64(m.K)
	theta := make([][]float64, net.NumObjects())
	for v := range theta {
		row := make([]float64, m.K)
		if u, ok := srcIndex[net.Object(v).ID]; ok {
			copy(row, m.Theta[u])
		} else {
			for k := range row {
				row[k] = uniform
			}
		}
		theta[v] = row
	}
	opts.InitTheta = theta

	g0 := opts.InitialGamma
	if g0 == 0 {
		g0 = 1
	}
	gamma := make([]float64, net.NumRelations())
	for r := range gamma {
		if g, ok := m.Gamma[net.RelationName(r)]; ok {
			gamma[r] = g
		} else {
			gamma[r] = g0
		}
	}
	opts.InitGamma = gamma
	opts.InitAttrs = m.Attrs
	return nil
}

// RefitOptions returns opts prepared for a warm-started fit from this
// model: the Init* fields are filled via WarmStartOptions and zero
// EMTol/OuterTol take the refit defaults. Use it when the fit itself runs
// elsewhere (genclusd threads a prior job's state into a new submission
// this way); Refit is the one-call form.
func (m *Model) RefitOptions(net *hin.Network, opts Options) (Options, error) {
	if err := m.WarmStartOptions(net, &opts); err != nil {
		return Options{}, err
	}
	if opts.EMTol == 0 {
		opts.EMTol = defaultRefitEMTol
	}
	if opts.OuterTol == 0 {
		opts.OuterTol = defaultRefitOuterTol
	}
	return opts, nil
}

// Refit re-runs GenClus on net warm-started from this model; see
// RefitContext.
func (m *Model) Refit(net *hin.Network, opts Options) (*Model, error) {
	return m.RefitContext(context.Background(), net, opts)
}

// RefitContext warm-starts a fit on net from this model's fitted state —
// the cheap way to re-cluster an evolving network: a converged model
// refitted on an unchanged network terminates in a couple of EM iterations,
// and a network grown by a few percent converges in a fraction of a cold
// start's iterations (see BENCH_fit.json).
//
// opts configures the fit exactly as for FitContext, except that the Init*
// fields are overwritten from the model, opts.K must be zero or the model's
// K, and zero EMTol/OuterTol default to 1e-6 instead of "disabled" (a warm
// start that is already converged should stop immediately rather than burn
// the full iteration budget). InitSeeds is ignored — there is exactly one
// start, the model.
func (m *Model) RefitContext(ctx context.Context, net *hin.Network, opts Options) (*Model, error) {
	opts, err := m.RefitOptions(net, opts)
	if err != nil {
		return nil, err
	}
	return FitContext(ctx, net, opts)
}
