package core

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"genclus/internal/hin"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", PrecisionFloat64},
		{"float64", PrecisionFloat64},
		{"float32", PrecisionFloat32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = (%q, %v), want (%q, nil)", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"float16", "FLOAT32", "double", " float64"} {
		_, err := ParsePrecision(bad)
		var perr *PrecisionError
		if !errors.As(err, &perr) {
			t.Errorf("ParsePrecision(%q) err = %v, want *PrecisionError", bad, err)
		} else if perr.Value != bad {
			t.Errorf("ParsePrecision(%q) PrecisionError.Value = %q", bad, perr.Value)
		}
	}
}

// TestOptionsPrecisionHelpers: the With* helpers return modified copies and
// leave the receiver untouched, so a shared base Options can fan out
// per-job variants.
func TestOptionsPrecisionHelpers(t *testing.T) {
	base := DefaultOptions(3)
	derived := base.WithPrecision(PrecisionFloat32).WithParallelism(8)
	if derived.Precision != PrecisionFloat32 || derived.Parallelism != 8 {
		t.Fatalf("derived = {Precision: %q, Parallelism: %d}", derived.Precision, derived.Parallelism)
	}
	if base.Precision != "" || base.Parallelism != DefaultOptions(3).Parallelism {
		t.Fatalf("base options mutated: {Precision: %q, Parallelism: %d}", base.Precision, base.Parallelism)
	}
	if derived.K != base.K {
		t.Fatalf("helpers dropped unrelated fields: K = %d", derived.K)
	}
}

// TestValidateRejectsUnknownPrecision: Options.Validate surfaces the typed
// *PrecisionError genclusd maps to 400.
func TestValidateRejectsUnknownPrecision(t *testing.T) {
	net := mixedNetwork(t, 10, 1)
	opts := DefaultOptions(2)
	opts.Precision = "float16"
	var perr *PrecisionError
	if err := opts.Validate(net); !errors.As(err, &perr) {
		t.Fatalf("Validate() = %v, want *PrecisionError", err)
	}
	opts.Precision = PrecisionFloat32
	if err := opts.Validate(net); err != nil {
		t.Fatalf("Validate() rejected float32: %v", err)
	}
}

func TestF32ClampsOverflowToMaxFloat32(t *testing.T) {
	if got := f32(1e300); got != math.MaxFloat32 {
		t.Errorf("f32(1e300) = %v, want MaxFloat32", got)
	}
	if got := f32(-1e300); got != -math.MaxFloat32 {
		t.Errorf("f32(-1e300) = %v, want -MaxFloat32", got)
	}
	if got := f32(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("f32(+Inf) = %v, want +Inf", got)
	}
	if got := f32(0.1); got != float64(float32(0.1)) {
		t.Errorf("f32(0.1) = %v", got)
	}
}

// requireF32Representable asserts every learned parameter of a float32-mode
// fit is exactly representable in 32 bits — the invariant that makes 4-byte
// snapshot storage lossless.
func requireF32Representable(t *testing.T, res *Result) {
	t.Helper()
	check := func(what string, x float64) {
		t.Helper()
		if float64(float32(x)) != x {
			t.Fatalf("%s = %v is not float32-representable", what, x)
		}
	}
	for _, row := range res.Theta {
		for _, x := range row {
			check("theta", x)
		}
	}
	for _, g := range res.GammaVec {
		check("gamma", g)
	}
	for _, am := range res.Attrs {
		switch am.Kind {
		case hin.Categorical:
			for _, row := range am.Cat.Beta {
				for _, x := range row {
					check("beta", x)
				}
			}
		case hin.Numeric:
			for _, x := range am.Gauss.Mu {
				check("mu", x)
			}
			for _, x := range am.Gauss.Var {
				check("var", x)
			}
		}
	}
}

// TestFloat32FitStoresRepresentableParameters: under PrecisionFloat32 every
// committed parameter (Θ, γ, β, µ, σ²) must round-trip float64→float32→
// float64 exactly, on both the plain and the symmetric-propagation paths.
func TestFloat32FitStoresRepresentableParameters(t *testing.T) {
	net := mixedNetwork(t, 300, 11)
	opts := DefaultOptions(2).WithPrecision(PrecisionFloat32)
	opts.Seed = 42
	opts.OuterIters = 2
	opts.EMIters = 3
	res, err := Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireF32Representable(t, res.Result)

	sym := interleavedNetwork(t, 150, 17)
	sopts := DefaultOptions(3).WithPrecision(PrecisionFloat32)
	sopts.Seed = 5
	sopts.OuterIters = 2
	sopts.EMIters = 3
	sopts.SymmetricPropagation = true
	sres, err := Fit(sym, sopts)
	if err != nil {
		t.Fatal(err)
	}
	requireF32Representable(t, sres.Result)
}

// Float32-mode golden checksums, captured on linux/amd64 with this PR's
// kernels — the float32 siblings of goldenPlainChecksum and
// goldenSymmetricChecksum, under the same re-capture policy (see the
// comment on those constants).
const (
	goldenPlainChecksumF32     = 0x0a9dca056cf6025a
	goldenSymmetricChecksumF32 = 0xca55ae9bf4eca5f8
)

// TestFitGoldenBitwiseChecksumFloat32 pins the float32 storage mode to its
// own golden digests at every Parallelism level, including P=16 (more
// workers than reduction chunks). Float32 rounding is pointwise per Θ row,
// so the parallel merge tree must not leak into the rounded values any more
// than it does in float64 mode.
func TestFitGoldenBitwiseChecksumFloat32(t *testing.T) {
	pinGolden := runtime.GOARCH == goldenChecksumArch
	if !pinGolden {
		t.Logf("GOARCH=%s: requiring only cross-Parallelism identity (see TestFitGoldenBitwiseChecksum)", runtime.GOARCH)
	}
	check := func(name string, golden uint64, fit func(parallelism int) *Result, pars []int) {
		var first uint64
		for i, par := range pars {
			got := fitChecksum(fit(par))
			if i == 0 {
				first = got
			} else if got != first {
				t.Errorf("%s float32 fit checksum differs across Parallelism (%#x at %d vs %#x at %d)", name, got, par, first, pars[0])
			}
			if pinGolden && got != golden {
				t.Errorf("%s float32 fit (Parallelism=%d) checksum %#x, want golden %#x", name, par, got, golden)
			}
		}
	}

	plain := mixedNetwork(t, 700, 11)
	popts := DefaultOptions(2).WithPrecision(PrecisionFloat32)
	popts.Seed = 42
	popts.OuterIters = 3
	popts.EMIters = 5
	check("plain", goldenPlainChecksumF32, func(par int) *Result {
		res, err := Fit(plain, popts.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return res.Result
	}, []int{1, 4, 16})

	sym := interleavedNetwork(t, 300, 17)
	sopts := DefaultOptions(3).WithPrecision(PrecisionFloat32)
	sopts.Seed = 5
	sopts.OuterIters = 3
	sopts.EMIters = 4
	sopts.SymmetricPropagation = true
	check("symmetric", goldenSymmetricChecksumF32, func(par int) *Result {
		res, err := Fit(sym, sopts.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return res.Result
	}, []int{1, 2, 16})
}

// TestKernelSpecializationsBitwiseIdentical proves the K-specialized E-step
// kernels (linkRowK2/K4, scoreCatAttrK2/K4, scoreGaussAttrK4,
// normalizeRowK4) compute bit-for-bit what the generic loops compute: the
// entire fit digest must match with specialization forced off. K=2 and K=4
// cover every specialized width, on the multi-chunk network with both
// attribute kinds; the symmetric K=3 configuration covers the
// generic-only path staying generic.
func TestKernelSpecializationsBitwiseIdentical(t *testing.T) {
	if forceGenericKernels {
		t.Fatal("forceGenericKernels left set by another test")
	}
	fitOnce := func(k int, symmetric bool) uint64 {
		var net *hin.Network
		opts := DefaultOptions(k)
		if symmetric {
			net = interleavedNetwork(t, 300, 17)
			opts.Seed = 5
			opts.OuterIters = 2
			opts.EMIters = 3
			opts.SymmetricPropagation = true
		} else {
			net = mixedNetwork(t, 400, 11)
			opts.Seed = 42
			opts.OuterIters = 2
			opts.EMIters = 4
		}
		res, err := Fit(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fitChecksum(res.Result)
	}
	for _, tc := range []struct {
		name      string
		k         int
		symmetric bool
	}{
		{"K2", 2, false},
		{"K4", 4, false},
		{"K3-symmetric", 3, true},
	} {
		specialized := fitOnce(tc.k, tc.symmetric)
		forceGenericKernels = true
		generic := fitOnce(tc.k, tc.symmetric)
		forceGenericKernels = false
		if specialized != generic {
			t.Errorf("%s: specialized kernels digest %#x, generic %#x — a specialization changed the arithmetic", tc.name, specialized, generic)
		}
	}
}
