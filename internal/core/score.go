package core

import (
	"fmt"
	"math"
	"sort"

	"genclus/internal/hin"
)

// This file is the E-step scoring kernel: the per-object arithmetic that
// turns links and attribute observations into an unnormalized membership
// row, factored out of emRange so the online fold-in path (Scorer, consumed
// by internal/infer) replays exactly the arithmetic — same operations, same
// floating-point summation order — that the fit itself runs. emRange calls
// the same functions with the M-step accumulators attached; the Scorer calls
// them without. Any change here changes fitted models bit for bit and is
// pinned by TestFitGoldenBitwiseChecksum.

// scoreCatAttrInto adds the responsibility mass of one object's term
// observations of a single categorical attribute to the unnormalized row nr:
// for every observation, resp_i = θ_i·β_i(term) normalized over i and scaled
// by the term count (the 1{v∈V_X}·p(z = k | obs) term of Eq. 10). betaT is
// the flat term-major transpose of β; th is the object's prior membership
// row θ^{t−1}; resp is k-sized scratch. When st is non-nil the same
// responsibilities accumulate into the M-step sufficient statistics (flat,
// term-major, aligned with betaT) — the fused form the EM loop uses; the
// fold-in path passes nil and leaves the model untouched.
func scoreCatAttrInto(nr, st, resp, betaT, th []float64, tcs []hin.TermCount, k int) {
	nr = nr[:k:k]
	th = th[:k:k]
	resp = resp[:k:k]
	for _, tc := range tcs {
		base := tc.Term * k
		bt := betaT[base : base+k : base+k]
		var sum float64
		for i := range bt {
			resp[i] = th[i] * bt[i]
			sum += resp[i]
		}
		if sum <= 0 {
			continue // term impossible under every component
		}
		inv := tc.Count / sum
		if st != nil {
			stt := st[base : base+k : base+k]
			for i := range stt {
				r := resp[i] * inv
				nr[i] += r
				stt[i] += r
			}
		} else {
			for i := range resp {
				nr[i] += resp[i] * inv
			}
		}
	}
}

// scoreGaussAttrInto adds the responsibility mass of one object's numeric
// observations of a single Gaussian attribute to nr. Responsibilities are
// computed in log space (ln θ_i − (x−µ_i)²/2σ_i² − ½ln σ_i²) with a max
// shift so distant observations cannot underflow every component; an
// observation that still underflows contributes nothing — the same rule the
// EM loop applies. mu, vr and hlv are the component means, variances and
// precomputed ½·ln σ² constants; th is the prior row; resp, logs and logTh
// are k-sized scratch. When gw is non-nil the responsibilities also
// accumulate into the Gaussian M-step statistics (gw, gwx, gwx2); the
// fold-in path passes nil for all three.
func scoreGaussAttrInto(nr, gw, gwx, gwx2, resp, logs, logTh, mu, vr, hlv, th, xs []float64, k int) {
	nr = nr[:k:k]
	th = th[:k:k]
	resp = resp[:k:k]
	logs = logs[:k:k]
	logTh = logTh[:k:k]
	mu = mu[:k:k]
	vr = vr[:k:k]
	hlv = hlv[:k:k]
	// ln θ_v is shared by every observation of v.
	for i := range th {
		logTh[i] = math.Log(th[i])
	}
	for _, x := range xs {
		// Log-space responsibilities guard against distant observations
		// underflowing every component.
		maxLog := math.Inf(-1)
		for i := range logs {
			d := x - mu[i]
			logs[i] = logTh[i] - 0.5*d*d/vr[i] - hlv[i]
			if logs[i] > maxLog {
				maxLog = logs[i]
			}
		}
		if math.IsInf(maxLog, -1) {
			continue
		}
		var sum float64
		for i := range logs {
			resp[i] = math.Exp(logs[i] - maxLog)
			sum += resp[i]
		}
		if gw != nil {
			gwk, gwxk, gwx2k := gw[:k:k], gwx[:k:k], gwx2[:k:k]
			for i := range resp {
				r := resp[i] / sum
				nr[i] += r
				gwk[i] += r
				gwxk[i] += r * x
				gwx2k[i] += r * x * x
			}
		} else {
			for i := range resp {
				nr[i] += resp[i] / sum
			}
		}
	}
}

// normalizeRowInto turns the unnormalized row nr into a proper membership
// row in dst: divide by the total mass, floor every entry at eps (NaN
// entries too), renormalize. It reports false — leaving dst untouched —
// when nr carries no information (non-positive or non-finite mass), in
// which case the caller keeps its prior row. This is the final pass of the
// E-step, applied identically by the EM loop and the fold-in scorer.
func normalizeRowInto(dst, nr []float64, eps float64) bool {
	nr = nr[:len(dst):len(dst)]
	var mass float64
	for _, x := range nr {
		mass += x
	}
	if mass <= 0 || math.IsNaN(mass) || math.IsInf(mass, 0) {
		return false
	}
	for i := range dst {
		x := nr[i] / mass
		// Single-comparison floor: !(x >= eps) is exactly (x < eps || NaN),
		// folded into one branch the compiler can turn into a select.
		if !(x >= eps) {
			x = eps
		}
		dst[i] = x
	}
	// Re-normalize after flooring.
	var sum float64
	for _, x := range dst {
		sum += x
	}
	for i := range dst {
		dst[i] /= sum
	}
	return true
}

// ScorerOptions configures a Scorer. The zero value takes the documented
// defaults.
type ScorerOptions struct {
	// Epsilon floors every posterior entry exactly as Options.Epsilon floors
	// Θ during a fit (default 1e-9 — DefaultOptions' value). Reproducing a
	// model's training rows bit for bit requires the model's own epsilon.
	Epsilon float64
	// MaxIters caps the fold-in fixed-point iteration for queries with
	// attribute observations (default 100). Link-only queries always finish
	// in one pass.
	MaxIters int
	// Tol stops the fold-in iteration once max_k |Δθ| falls below it. Zero
	// (the default) iterates until the row is bitwise stationary or MaxIters
	// is exhausted — the setting the bitwise reproduction contract needs.
	Tol float64
	// Precision mirrors the fit's Options.Precision: under "float32" every
	// normalized posterior row is rounded to float32-representable values
	// exactly as the fit rounds Θ, which the bitwise reproduction contract
	// requires against float32-fitted models. Empty or "float64" rounds
	// nothing; unknown values are rejected.
	Precision Precision
}

// defaults for ScorerOptions.
const (
	defaultScorerEpsilon  = 1e-9
	defaultScorerMaxIters = 100
)

// Scorer is the fold-in kernel: it evaluates the E-step posterior of
// out-of-sample objects against a fitted model's frozen state — Θ for the
// linked neighbors, γ for the link weights, and the per-attribute component
// models — without touching the model. A query is accumulated through
// Begin/AddLink/AddTermCount/AddNumeric (dense indices resolved via the
// Index lookups) and evaluated by Score, which runs the same per-object
// arithmetic as one EM E-step: the γ-weighted link term, the per-attribute
// responsibility terms (a missing attribute simply contributes no term),
// and the epsilon-floored normalization. Queries with attribute
// observations iterate the object's own mixing proportions to a fixed
// point, since the responsibility terms depend on them; everything else in
// the model stays frozen.
//
// All scratch is allocated at construction or grown on first use and
// reused, so steady-state scoring performs no allocation. A Scorer is NOT
// safe for concurrent use; create one per goroutine (internal/infer wraps
// it in the serving engine and owns the locking).
//
// Scope of the bitwise reproduction contract (assigning a converged
// model's training objects returns its Θ rows exactly): it requires the
// fit's own Epsilon, SymmetricPropagation off (a query has no in-links,
// so the Scorer computes the out-link term only), and relation names
// declared in lexicographic order (the Scorer's summation order — see
// below — coincides with the fit's dense declaration order exactly then).
// Outside those conditions assignments are still valid posteriors of the
// same model; they just may differ from the training rows in the last
// bits (or, under symmetric propagation, by the missing in-link term).
type Scorer struct {
	k   int
	eps float64

	maxIters int
	tol      float64
	f32      bool // round posterior rows to float32 storage (fit parity)

	theta [][]float64 // model Θ rows, shared with the model (read-only)

	relNames []string  // lexicographically sorted relation names
	gamma    []float64 // γ by sorted-relation index
	relIndex map[string]int

	objIndex map[string]int

	attrs     []scorerAttr // model attribute order
	attrIndex map[string]int

	// Per-query accumulation state, reset by Begin.
	links  []scorerLink
	lsort  linkSorter        // reusable link sorter (no allocation per query)
	catBuf [][]hin.TermCount // by attr position; nil for numeric attrs
	numBuf [][]float64       // by attr position; nil for categorical attrs
	hasObs bool

	// Fold-in scratch.
	linkVec, row, cur, prior []float64
	resp, logs, logTh        []float64
}

// scorerAttr is one attribute's frozen component model in the layout the
// E-step consumes.
type scorerAttr struct {
	kind  hin.Kind
	vocab int
	betaT []float64 // categorical: flat term-major transpose of β
	mu    []float64 // numeric: component means
	vr    []float64 // numeric: component variances
	hlv   []float64 // numeric: ½·ln σ² per component
}

// scorerLink is one resolved query link.
type scorerLink struct {
	rel int
	to  int
	w   float64
}

// NewScorer builds the fold-in kernel for a fitted model. It precomputes
// the derived read-only views the E-step consumes (term-major β transposes,
// ½·ln σ² constants) and the name→index tables queries resolve against.
// The model is shared, not copied: it must not be mutated while the Scorer
// lives (fitted models are immutable in practice).
func NewScorer(m *Model, opts ScorerOptions) (*Scorer, error) {
	if m == nil {
		return nil, fmt.Errorf("core: NewScorer: nil model")
	}
	if m.Result == nil || m.K < 2 || len(m.Theta) == 0 {
		return nil, fmt.Errorf("core: NewScorer: model has no fitted state")
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = defaultScorerEpsilon
	}
	if !(opts.Epsilon > 0) || opts.Epsilon >= 1.0/float64(m.K) {
		return nil, fmt.Errorf("core: NewScorer: Epsilon = %v, want in (0, 1/K)", opts.Epsilon)
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = defaultScorerMaxIters
	}
	if opts.MaxIters < 1 {
		return nil, fmt.Errorf("core: NewScorer: MaxIters = %d, want ≥ 1", opts.MaxIters)
	}
	if opts.Tol < 0 || math.IsNaN(opts.Tol) {
		return nil, fmt.Errorf("core: NewScorer: Tol = %v, want ≥ 0", opts.Tol)
	}
	prec, err := ParsePrecision(string(opts.Precision))
	if err != nil {
		return nil, fmt.Errorf("core: NewScorer: %w", err)
	}
	k := m.K
	s := &Scorer{
		k:        k,
		eps:      opts.Epsilon,
		maxIters: opts.MaxIters,
		tol:      opts.Tol,
		f32:      prec == PrecisionFloat32,
		theta:    m.Theta,
		relIndex: make(map[string]int, len(m.Gamma)),
		objIndex: make(map[string]int, len(m.objectIDs)),
		attrs:    make([]scorerAttr, 0, len(m.Attrs)),
		catBuf:   make([][]hin.TermCount, len(m.Attrs)),
		numBuf:   make([][]float64, len(m.Attrs)),
		linkVec:  make([]float64, k),
		row:      make([]float64, k),
		cur:      make([]float64, k),
		prior:    make([]float64, k),
		resp:     make([]float64, k),
		logs:     make([]float64, k),
		logTh:    make([]float64, k),
	}
	for v, row := range m.Theta {
		if len(row) != k {
			return nil, fmt.Errorf("core: NewScorer: Theta row %d has %d entries, want K=%d", v, len(row), k)
		}
	}
	// Relations in lexicographic name order: the model's dense source-network
	// ids are not portable across serialization (only the name→γ map is), so
	// the Scorer's relation order — and with it the link summation order —
	// is defined by sorted names. That order is part of the determinism
	// contract (see docs/ARCHITECTURE.md, "Inference").
	s.relNames = make([]string, 0, len(m.Gamma))
	for name := range m.Gamma {
		s.relNames = append(s.relNames, name)
	}
	sort.Strings(s.relNames)
	s.gamma = make([]float64, len(s.relNames))
	for r, name := range s.relNames {
		s.gamma[r] = m.Gamma[name]
		s.relIndex[name] = r
	}
	for v, id := range m.objectIDs {
		s.objIndex[id] = v
	}
	s.attrIndex = make(map[string]int, len(m.Attrs))
	for pos, am := range m.Attrs {
		if _, dup := s.attrIndex[am.Name]; dup {
			return nil, fmt.Errorf("core: NewScorer: duplicate attribute %q", am.Name)
		}
		sa := scorerAttr{kind: am.Kind}
		switch am.Kind {
		case hin.Categorical:
			if am.Cat == nil || len(am.Cat.Beta) != k {
				return nil, fmt.Errorf("core: NewScorer: attribute %q has %d categorical components, want K=%d", am.Name, catComponents(am.Cat), k)
			}
			sa.vocab = len(am.Cat.Beta[0])
			sa.betaT = make([]float64, sa.vocab*k)
			for i, row := range am.Cat.Beta {
				if len(row) != sa.vocab {
					return nil, fmt.Errorf("core: NewScorer: attribute %q has ragged β rows", am.Name)
				}
				for l, x := range row {
					sa.betaT[l*k+i] = x
				}
			}
		case hin.Numeric:
			if am.Gauss == nil || len(am.Gauss.Mu) != k || len(am.Gauss.Var) != k {
				return nil, fmt.Errorf("core: NewScorer: attribute %q has %d Gaussian components, want K=%d", am.Name, gaussComponents(am.Gauss), k)
			}
			sa.mu = append([]float64(nil), am.Gauss.Mu...)
			sa.vr = append([]float64(nil), am.Gauss.Var...)
			sa.hlv = make([]float64, k)
			for i := 0; i < k; i++ {
				if !(sa.vr[i] > 0) {
					return nil, fmt.Errorf("core: NewScorer: attribute %q component %d has variance %v, want > 0", am.Name, i, sa.vr[i])
				}
				sa.hlv[i] = 0.5 * math.Log(sa.vr[i])
			}
		default:
			return nil, fmt.Errorf("core: NewScorer: attribute %q has unknown kind %v", am.Name, am.Kind)
		}
		s.attrIndex[am.Name] = pos
		s.attrs = append(s.attrs, sa)
	}
	return s, nil
}

// K returns the model's cluster count — the length Score's dst must have.
func (s *Scorer) K() int { return s.k }

// NumObjects returns the number of known (training) objects queries may
// link to.
func (s *Scorer) NumObjects() int { return len(s.theta) }

// ObjectIndex resolves a known object's ID to its dense row index.
func (s *Scorer) ObjectIndex(id string) (int, bool) {
	v, ok := s.objIndex[id]
	return v, ok
}

// Theta returns the membership row of known object v (shared; do not
// mutate).
func (s *Scorer) Theta(v int) []float64 { return s.theta[v] }

// NumRelations returns the number of relations with a learned strength.
func (s *Scorer) NumRelations() int { return len(s.relNames) }

// RelationIndex resolves a relation name to the Scorer's dense relation
// index (lexicographic name order).
func (s *Scorer) RelationIndex(name string) (int, bool) {
	r, ok := s.relIndex[name]
	return r, ok
}

// NumAttrs returns the number of attributes the model fitted.
func (s *Scorer) NumAttrs() int { return len(s.attrs) }

// AttrIndex resolves an attribute name to its position in the model's
// attribute order.
func (s *Scorer) AttrIndex(name string) (int, bool) {
	a, ok := s.attrIndex[name]
	return a, ok
}

// AttrKind returns the kind of attribute position a.
func (s *Scorer) AttrKind(a int) hin.Kind { return s.attrs[a].kind }

// VocabSize returns the vocabulary size of categorical attribute position a
// (0 for numeric attributes).
func (s *Scorer) VocabSize(a int) int { return s.attrs[a].vocab }

// Begin resets the per-query accumulation state. Every query starts with
// Begin, adds its links and observations, and ends with Score.
func (s *Scorer) Begin() {
	s.links = s.links[:0]
	for a := range s.catBuf {
		s.catBuf[a] = s.catBuf[a][:0]
	}
	for a := range s.numBuf {
		s.numBuf[a] = s.numBuf[a][:0]
	}
	s.hasObs = false
}

// AddLink adds one link from the query object to known object `to` under
// relation index rel (RelationIndex order) with the given positive weight.
// Indices must be valid — the serving engine validates at its trust
// boundary before resolving.
func (s *Scorer) AddLink(rel, to int, w float64) {
	s.links = append(s.links, scorerLink{rel: rel, to: to, w: w})
}

// AddTermCount adds one categorical observation (term index within the
// attribute's vocabulary, positive count) of attribute position a.
func (s *Scorer) AddTermCount(a, term int, count float64) {
	s.catBuf[a] = append(s.catBuf[a], hin.TermCount{Term: term, Count: count})
	s.hasObs = true
}

// AddNumeric adds one numeric observation of attribute position a.
func (s *Scorer) AddNumeric(a int, x float64) {
	s.numBuf[a] = append(s.numBuf[a], x)
	s.hasObs = true
}

// Score evaluates the accumulated query and writes the posterior membership
// row into dst (length K). It returns the number of fold-in iterations run:
// 1 for queries whose posterior is closed-form (no attribute observations),
// up to MaxIters otherwise. A query with no links and no observations gets
// the uniform row — the E-step's "no information" rule folded in from a
// uniform prior.
//
// Link contributions accumulate in (relation, addition order) order after a
// stable sort by (relation index, target index) — the same
// relation-major, ascending-target order the EM loop walks its CSR views
// in — and attribute terms follow in the model's attribute order, so
// scoring a training object with its own links and observations replays
// the fit's summation tree exactly.
func (s *Scorer) Score(dst []float64) int {
	k := s.k
	uniform := 1.0 / float64(k)
	for i := range s.prior {
		s.prior[i] = uniform
	}

	// Link term: constant across fold-in iterations (the neighbors' Θ rows
	// are frozen), computed once.
	clear(s.linkVec)
	s.lsort.links = s.links
	sort.Stable(&s.lsort)
	lv := s.linkVec[:k:k]
	for _, l := range s.links {
		g := s.gamma[l.rel] * l.w
		if g == 0 {
			continue
		}
		tu := s.theta[l.to][:k:k]
		for i := range tu {
			lv[i] += g * tu[i]
		}
	}

	if !s.hasObs {
		// No attribute terms: the posterior is closed-form in one pass.
		if !normalizeRowInto(dst, s.linkVec, s.eps) {
			copy(dst, s.prior)
		}
		if s.f32 {
			f32Slice(dst)
		}
		return 1
	}

	// Attribute responsibilities depend on the query's own mixing
	// proportions; iterate them to a fixed point from the uniform prior
	// with every model parameter frozen.
	iters := 0
	for iters < s.maxIters {
		iters++
		copy(s.row, s.linkVec)
		for a := range s.attrs {
			sa := &s.attrs[a]
			switch sa.kind {
			case hin.Categorical:
				if tcs := s.catBuf[a]; len(tcs) > 0 {
					scoreCatAttrInto(s.row, nil, s.resp, sa.betaT, s.prior, tcs, k)
				}
			case hin.Numeric:
				if xs := s.numBuf[a]; len(xs) > 0 {
					scoreGaussAttrInto(s.row, nil, nil, nil, s.resp, s.logs, s.logTh, sa.mu, sa.vr, sa.hlv, s.prior, xs, k)
				}
			}
		}
		if !normalizeRowInto(s.cur, s.row, s.eps) {
			copy(s.cur, s.prior)
		}
		if s.f32 {
			// Same per-row commit the fit applies after its normalization
			// pass, so fixed points land on float32-representable rows.
			f32Slice(s.cur)
		}
		stationary := true
		if s.tol > 0 {
			for i, x := range s.cur {
				if math.Abs(x-s.prior[i]) >= s.tol {
					stationary = false
					break
				}
			}
		} else {
			for i, x := range s.cur {
				if x != s.prior[i] {
					stationary = false
					break
				}
			}
		}
		s.prior, s.cur = s.cur, s.prior
		if stationary {
			break
		}
	}
	copy(dst, s.prior)
	return iters
}

// linkSorter stable-sorts a query's links by (relation, target) through a
// pointer receiver, so sorting allocates nothing: stability keeps
// duplicate links in their added order — matching the CSR contract that
// duplicates are kept as adjacent entries in build order — and
// sort.Stable's O(n log n) bounds the cost of a hostile link list (the
// serving limit allows thousands of links per query; an insertion sort
// there would be quadratic CPU inside the serialized dispatcher pass).
type linkSorter struct {
	links []scorerLink
}

// Len implements sort.Interface.
func (s *linkSorter) Len() int { return len(s.links) }

// Less implements sort.Interface: ascending (relation, target).
func (s *linkSorter) Less(i, j int) bool {
	a, b := s.links[i], s.links[j]
	if a.rel != b.rel {
		return a.rel < b.rel
	}
	return a.to < b.to
}

// Swap implements sort.Interface.
func (s *linkSorter) Swap(i, j int) { s.links[i], s.links[j] = s.links[j], s.links[i] }
