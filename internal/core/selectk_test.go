package core

import (
	"math/rand"
	"testing"

	"genclus/internal/hin"
)

// threeTopicNetwork plants three clearly separated topics.
func threeTopicNetwork(t *testing.T, perTopic int, seed int64) *hin.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 30})
	n := 3 * perTopic
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = "d" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddObject(ids[i], "doc")
		topic := i / perTopic
		for w := 0; w < 15; w++ {
			b.AddTermCount(ids[i], "text", topic*10+rng.Intn(10), 1)
		}
	}
	for i := 0; i < n; i++ {
		topic := i / perTopic
		j := topic*perTopic + rng.Intn(perTopic)
		if j != i {
			b.AddLink(ids[i], ids[j], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSelectKValidation(t *testing.T) {
	net := threeTopicNetwork(t, 5, 1)
	opts := DefaultOptions(2)
	if _, err := SelectK(net, opts, 1, 3); err == nil {
		t.Error("kMin < 2 should error")
	}
	if _, err := SelectK(net, opts, 4, 3); err == nil {
		t.Error("kMax < kMin should error")
	}
	if _, err := BestBIC(nil); err == nil {
		t.Error("empty scores should error")
	}
}

func TestSelectKOrdersCandidates(t *testing.T) {
	net := threeTopicNetwork(t, 25, 3)
	opts := DefaultOptions(2)
	opts.OuterIters = 4
	opts.EMIters = 8
	opts.Seed = 4
	scores, err := SelectK(net, opts, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("got %d scores", len(scores))
	}
	for _, s := range scores {
		if s.Params <= 0 {
			t.Errorf("K=%d: params = %d", s.K, s.Params)
		}
		// AIC and BIC must be consistent with their definitions.
		if s.AIC != -2*s.LogLik+2*float64(s.Params) {
			t.Errorf("K=%d: AIC inconsistent", s.K)
		}
		if s.BIC <= s.AIC && s.Params > 0 && s.BIC == s.AIC {
			t.Errorf("K=%d: BIC suspiciously equal to AIC", s.K)
		}
	}
	// The attribute likelihood must improve (weakly) from K=2 to the true
	// K=3 — with three disjoint vocab blocks, two components cannot explain
	// the data as well as three.
	var k2, k3 float64
	for _, s := range scores {
		if s.K == 2 {
			k2 = s.LogLik
		}
		if s.K == 3 {
			k3 = s.LogLik
		}
	}
	if k3 <= k2 {
		t.Errorf("loglik(K=3)=%v should exceed loglik(K=2)=%v on 3-topic data", k3, k2)
	}
	best, err := BestBIC(scores)
	if err != nil {
		t.Fatal(err)
	}
	if best.K < 3 {
		t.Errorf("BIC selected K=%d on clearly 3-topic data", best.K)
	}
}

// The KL-divergence feature alternative of §3.3 needs no runtime test: the
// Options documentation records the derivation showing it coincides with
// cross entropy under the out-link pseudo-likelihood (the neighbor-entropy
// shift is constant in θ_i and cancels against the conditional's
// normalizer), so there is deliberately no KLFeature code path to exercise.
