package core

import (
	"math"

	"genclus/internal/linalg"
	"genclus/internal/mathx"
)

// strengthStats holds the per-object, per-relation aggregates the
// pseudo-likelihood g′₂ (Eq. 14) and its derivatives (Eqs. 16–17) are built
// from. With Θ fixed they are constants of the Newton iteration:
//
//	S_i^{(r)}   = Σ_{e=<i,j>, φ(e)=r} w(e)                  (weight mass)
//	Sik^{(r)}   = Σ_{e=<i,j>, φ(e)=r} w(e)·θ_{j,k}          (α contributions)
//	F_i^{(r)}   = Σ_{e=<i,j>, φ(e)=r} w(e)·Σ_k θ_{j,k}·ln θ_{i,k}
//
// so that α_{ik}(γ) = Σ_r γ_r·Sik^{(r)} + 1 and the feature sum restricted
// to relation r is Σ_i γ_r·F_i^{(r)}.
type strengthStats struct {
	nRel, k int
	objs    []int     // objects with ≥ 1 out-link (others contribute nothing)
	s       []float64 // len(objs)×nRel
	sik     []float64 // len(objs)×nRel×k
	f       []float64 // len(objs)×nRel

	logTheta []float64 // k-sized fill scratch
}

// buildStrengthStats (re)fills the state's reusable strength statistics
// from the current Θ. The aggregate arrays are sized once per fit — their
// shape depends only on the immutable network and K — and zeroed on reuse,
// so the per-outer-iteration strength step allocates nothing in steady
// state. Links are walked through the per-relation CSR views in the same
// (relation, target) order the sorted edge list yields, keeping the sums
// bitwise identical to the pre-CSR path.
func (s *state) buildStrengthStats() *strengthStats {
	st := &s.strength
	if !s.strengthReady {
		nRel := s.net.NumRelations()
		k := s.opts.K
		var objs []int
		for v := 0; v < s.net.NumObjects(); v++ {
			if s.net.OutDegree(v) > 0 {
				objs = append(objs, v)
			}
		}
		st.nRel, st.k = nRel, k
		st.objs = objs
		st.s = make([]float64, len(objs)*nRel)
		st.sik = make([]float64, len(objs)*nRel*k)
		st.f = make([]float64, len(objs)*nRel)
		st.logTheta = make([]float64, k)
		s.strengthReady = true
	} else {
		clear(st.s)
		clear(st.sik)
		clear(st.f)
	}

	nRel, k := st.nRel, st.k
	logTheta := st.logTheta
	for oi, v := range st.objs {
		ti := s.theta[v]
		for c := 0; c < k; c++ {
			logTheta[c] = math.Log(ti[c])
		}
		for r := 0; r < nRel; r++ {
			m := &s.outCSR[r]
			lo, hi := m.Start[v], m.Start[v+1]
			if lo == hi {
				continue
			}
			base := (oi*nRel + r) * k
			for j := lo; j < hi; j++ {
				w := m.Weight[j]
				tj := s.theta[m.Col[j]]
				var ce float64
				for c := 0; c < k; c++ {
					st.sik[base+c] += w * tj[c]
					ce += tj[c] * logTheta[c]
				}
				st.s[oi*nRel+r] += w
				st.f[oi*nRel+r] += w * ce
			}
		}
	}
	return st
}

// pseudoLogLikelihood evaluates g′₂(γ) (Eq. 14):
//
//	g′₂(γ) = Σ_i ( Σ_r γ_r·F_i^{(r)} − ln B(α_i(γ)) ) − ‖γ‖²/(2σ²).
func (st *strengthStats) pseudoLogLikelihood(gamma []float64, priorSigma float64) float64 {
	k := st.k
	alpha := make([]float64, k)
	var g2 float64
	for oi := range st.objs {
		for c := 0; c < k; c++ {
			alpha[c] = 1
		}
		for r := 0; r < st.nRel; r++ {
			gr := gamma[r]
			if gr == 0 {
				continue
			}
			g2 += gr * st.f[oi*st.nRel+r]
			base := (oi*st.nRel + r) * k
			for c := 0; c < k; c++ {
				alpha[c] += gr * st.sik[base+c]
			}
		}
		g2 -= mathx.LogBeta(alpha)
	}
	var norm2 float64
	for _, g := range gamma {
		norm2 += g * g
	}
	return g2 - norm2/(2*priorSigma*priorSigma)
}

// gradHess evaluates ∇g′₂ (Eq. 16) and the Hessian Hg′₂ (Eq. 17) at γ.
func (st *strengthStats) gradHess(gamma []float64, priorSigma float64) (grad []float64, hess *linalg.Matrix) {
	nRel, k := st.nRel, st.k
	grad = make([]float64, nRel)
	hess = linalg.NewMatrix(nRel, nRel)
	alpha := make([]float64, k)
	psiA := make([]float64, k)
	psi1A := make([]float64, k)

	for oi := range st.objs {
		var alpha0 float64
		for c := 0; c < k; c++ {
			alpha[c] = 1
		}
		for r := 0; r < nRel; r++ {
			gr := gamma[r]
			if gr == 0 {
				continue
			}
			base := (oi*nRel + r) * k
			for c := 0; c < k; c++ {
				alpha[c] += gr * st.sik[base+c]
			}
		}
		for c := 0; c < k; c++ {
			alpha0 += alpha[c]
			psiA[c] = mathx.Digamma(alpha[c])
			psi1A[c] = mathx.Trigamma(alpha[c])
		}
		psiA0 := mathx.Digamma(alpha0)
		psi1A0 := mathx.Trigamma(alpha0)

		for r1 := 0; r1 < nRel; r1++ {
			s1 := st.s[oi*nRel+r1]
			if s1 == 0 {
				continue
			}
			base1 := (oi*nRel + r1) * k
			// Gradient: F_i^{(r)} − Σ_k ψ(α_ik)·Sik^{(r)} + ψ(α_i0)·S_i^{(r)}.
			g := st.f[oi*nRel+r1] + psiA0*s1
			for c := 0; c < k; c++ {
				g -= psiA[c] * st.sik[base1+c]
			}
			grad[r1] += g
			// Hessian row.
			for r2 := r1; r2 < nRel; r2++ {
				s2 := st.s[oi*nRel+r2]
				if s2 == 0 {
					continue
				}
				base2 := (oi*nRel + r2) * k
				h := psi1A0 * s1 * s2
				for c := 0; c < k; c++ {
					h -= psi1A[c] * st.sik[base1+c] * st.sik[base2+c]
				}
				hess.Add(r1, r2, h)
				if r2 != r1 {
					hess.Add(r2, r1, h)
				}
			}
		}
	}
	inv := 1 / (priorSigma * priorSigma)
	for r := 0; r < nRel; r++ {
		grad[r] -= gamma[r] * inv
		hess.Add(r, r, -inv)
	}
	return grad, hess
}

// learnStrengths runs the safeguarded Newton–Raphson iteration of §4.2 with
// the γ ≥ 0 projection from Algorithm 1. It returns the achieved g′₂.
func (s *state) learnStrengths() float64 {
	st := s.buildStrengthStats()
	sigma := s.opts.PriorSigma
	gamma := s.gamma
	cur := st.pseudoLogLikelihood(gamma, sigma)

	for it := 0; it < s.opts.NewtonIters; it++ {
		grad, hess := st.gradHess(gamma, sigma)
		// Newton direction Δ solves H·Δ = ∇; the step is γ − Δ. H is
		// negative definite (Appendix B), so −H is SPD and Cholesky is the
		// natural factorization — it also asserts definiteness for free.
		delta := newtonDirection(grad, hess)
		// Backtracking line search on the Newton step, projecting onto the
		// feasible set γ ≥ 0 at every trial point.
		step := 1.0
		improved := false
		var trial []float64
		for ls := 0; ls < 40; ls++ {
			trial = make([]float64, len(gamma))
			for r := range gamma {
				trial[r] = gamma[r] - step*delta[r]
				if trial[r] < 0 {
					trial[r] = 0
				}
			}
			val := st.pseudoLogLikelihood(trial, sigma)
			if val >= cur {
				maxMove := 0.0
				for r := range gamma {
					if d := math.Abs(trial[r] - gamma[r]); d > maxMove {
						maxMove = d
					}
				}
				copy(gamma, trial)
				improvedEnough := val > cur+math.Abs(cur)*1e-12
				cur = val
				improved = true
				if maxMove < s.opts.NewtonTol || !improvedEnough {
					return cur
				}
				break
			}
			step /= 2
		}
		if !improved {
			break // no ascent along the Newton direction: converged
		}
	}
	return cur
}

// newtonDirection solves H·Δ = ∇ for the negative definite Hessian. It
// negates the system to use Cholesky on the SPD −H; if rounding has
// destroyed definiteness it retries with LU, and as a last resort falls
// back to a small gradient step so the line search can still make progress.
func newtonDirection(grad []float64, hess *linalg.Matrix) []float64 {
	neg := hess.Clone().Scale(-1)
	if x, err := linalg.SolveSPD(neg, grad); err == nil {
		for i := range x {
			x[i] = -x[i]
		}
		return x
	}
	if x, err := linalg.Solve(hess, grad); err == nil {
		return x
	}
	delta := make([]float64, len(grad))
	for r := range grad {
		delta[r] = -1e-3 * grad[r]
	}
	return delta
}
