package core

import (
	"math"
	"sync"
	"sync/atomic"

	"genclus/internal/hin"
)

// emAccum collects the per-chunk sufficient statistics of one EM iteration,
// plus the chunk-local E-step scratch. One accumulator per reduction chunk
// is allocated lazily on the first iteration and reused (zeroed) on every
// subsequent one, so the steady-state EM loop performs no allocation.
//
// Every slice is carved out of one flat backing array with cache-line
// guard pads at both ends and 64-byte spacing between sections, so two
// accumulators — always written by different goroutines under parallel EM —
// can never place their statistics on a shared cache line. Without the pads
// the K-length Gaussian accumulators of adjacent chunks are small enough to
// land on one line and false-share on every observation.
type emAccum struct {
	// cat[a] is the flat accumulator of categorical attribute a in
	// term-major layout: cat[a][l*K+k] = Σ_v c_{v,l} p(z_{v,l} = k). Nil for
	// numeric or out-of-play attributes.
	cat [][]float64
	// Gaussian accumulators by attribute id (weight, weighted x, weighted
	// x²), each of length K. Nil for categorical or out-of-play attributes.
	gaussW, gaussWX, gaussWX2 [][]float64

	// E-step scratch local to the goroutine running this chunk. rows is the
	// chunk's flat newRow matrix (emChunkSize×K): the E-step accumulates
	// every object's unnormalized Θ_t row in it across the link and
	// attribute passes, then normalizes in a final pass.
	rows              []float64
	resp, logs, logTh []float64
}

// padFloats rounds a float64 count up to a whole number of 64-byte cache
// lines (8 floats), the section spacing inside an emAccum backing.
func padFloats(n int) int { return (n + 7) &^ 7 }

func (s *state) newAccum() *emAccum {
	k := s.opts.K
	nAttr := s.net.NumAttrs()
	acc := &emAccum{
		cat:      make([][]float64, nAttr),
		gaussW:   make([][]float64, nAttr),
		gaussWX:  make([][]float64, nAttr),
		gaussWX2: make([][]float64, nAttr),
	}
	// One guard line leads and trails the backing; every section starts on
	// its own 8-float boundary relative to it.
	total := 16
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			total += padFloats(spec.VocabSize * k)
		case hin.Numeric:
			total += 3 * padFloats(k)
		}
	}
	total += padFloats(emChunkSize*k) + 3*padFloats(k)
	backing := make([]float64, total)
	off := 8
	take := func(n int) []float64 {
		sl := backing[off : off+n : off+n]
		off += padFloats(n)
		return sl
	}
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			acc.cat[a] = take(spec.VocabSize * k)
		case hin.Numeric:
			acc.gaussW[a] = take(k)
			acc.gaussWX[a] = take(k)
			acc.gaussWX2[a] = take(k)
		}
	}
	acc.rows = take(emChunkSize * k)
	acc.resp = take(k)
	acc.logs = take(k)
	acc.logTh = take(k)
	return acc
}

// reset zeroes the sufficient statistics for reuse in the next iteration.
func (acc *emAccum) reset() {
	for _, m := range acc.cat {
		clear(m)
	}
	for _, w := range acc.gaussW {
		clear(w)
	}
	for _, w := range acc.gaussWX {
		clear(w)
	}
	for _, w := range acc.gaussWX2 {
		clear(w)
	}
}

func (acc *emAccum) merge(other *emAccum) {
	for a, dst := range acc.cat {
		if dst == nil {
			continue
		}
		for i, x := range other.cat[a] {
			dst[i] += x
		}
	}
	for a, w := range acc.gaussW {
		if w == nil {
			continue
		}
		ow, owx, owx2 := other.gaussW[a], other.gaussWX[a], other.gaussWX2[a]
		wx, wx2 := acc.gaussWX[a], acc.gaussWX2[a]
		for c := range w {
			w[c] += ow[c]
			wx[c] += owx[c]
			wx2[c] += owx2[c]
		}
	}
}

// emChunkSize fixes the granularity of the β-statistics reduction
// independently of Options.Parallelism: the object range is split into
// chunks of this size, each chunk accumulates into its own emAccum, and the
// accumulators merge in chunk order after all chunks finish. Worker count
// only decides how many chunks run at once, never the shape of the floating
// point summation tree — so a fit is bitwise identical for any Parallelism.
const emChunkSize = 512

// mergeSegDefaultSpan bounds the categorical entries one merge segment
// covers, so large vocabularies split across workers while each entry still
// folds its chunks in order.
const mergeSegDefaultSpan = 1024

// mergeSeg is one disjoint ownership range of the statistics merge: either
// a span of a categorical attribute's flat accumulator, or one Gaussian
// attribute's (weight, Σx, Σx²) triple. The parallel merge partitions the
// entry space into these segments; each segment is folded by exactly one
// worker, chunk 0 through chunk C−1 in order — the same left fold per entry
// the serial merge performs, so the summation tree is unchanged.
type mergeSeg struct {
	attr   int
	lo, hi int // categorical entry range; unused for Gaussian segments
	gauss  bool
}

// ensureEMScratch lazily allocates the per-chunk accumulators and the merge
// segmentation. The chunk count is a pure function of the (immutable)
// object count, so the scratch is sized exactly once per state.
func (s *state) ensureEMScratch(chunks int) {
	if s.accums != nil {
		return
	}
	s.accums = make([]*emAccum, chunks)
	for c := range s.accums {
		s.accums[c] = s.newAccum()
	}
	k := s.opts.K
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			n := spec.VocabSize * k
			for lo := 0; lo < n; lo += mergeSegDefaultSpan {
				hi := lo + mergeSegDefaultSpan
				if hi > n {
					hi = n
				}
				s.mergeSegs = append(s.mergeSegs, mergeSeg{attr: a, lo: lo, hi: hi})
			}
		case hin.Numeric:
			s.mergeSegs = append(s.mergeSegs, mergeSeg{attr: a, gauss: true})
		}
	}
}

// refreshModelScratch rebuilds the derived read-only views of the attribute
// models the E-step consumes: the term-major transpose of every categorical
// β (so responsibilities read K contiguous floats per term instead of
// striding across K rows) and the per-component 0.5·ln σ² constants of every
// Gaussian. Values are copied bit-for-bit from the canonical parameters, so
// the arithmetic of the E-step is unchanged.
func (s *state) refreshModelScratch() {
	k := s.opts.K
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			beta := s.cat[a].Beta
			bt := s.catT[a]
			for i := 0; i < k; i++ {
				for l, x := range beta[i] {
					bt[l*k+i] = x
				}
			}
		case hin.Numeric:
			vr := s.gauss[a].Var
			hlv := s.halfLogVar[a]
			for i := 0; i < k; i++ {
				hlv[i] = 0.5 * math.Log(vr[i])
			}
		}
	}
}

// emPool is a persistent set of worker goroutines the parallel EM phases
// dispatch to. Spawning goroutines per iteration costs allocations and
// scheduler latency that dominate short iterations at high Parallelism; the
// pool amortizes both, keeping steady-state parallel iterations at zero
// allocations. runEM owns a pool for the duration of one EM run; EMHarness
// owns one for its lifetime (Close stops it). Workers hold no state between
// tasks — they drain the state's atomic work counter and signal the shared
// WaitGroup — so a stopped pool leaves nothing behind.
type emPool struct {
	work    chan emTask
	workers int
}

// emTask asks one pool worker to help drain the current phase's counter.
type emTask struct {
	s     *state
	phase uint8
	wg    *sync.WaitGroup
}

// phases of one parallel EM iteration.
const (
	emPhaseChunks uint8 = iota // E-step + Θ update over reduction chunks
	emPhaseMerge               // statistics merge over ownership segments
)

// newEMPool starts a pool of n workers.
func newEMPool(n int) *emPool {
	p := &emPool{work: make(chan emTask), workers: n}
	for w := 0; w < n; w++ {
		go func() {
			for t := range p.work {
				t.s.drainPhase(t.phase)
				t.wg.Done()
			}
		}()
	}
	return p
}

// stop terminates the pool's workers. The pool must not be used afterwards.
func (p *emPool) stop() { close(p.work) }

// drainPhase claims work units off the phase's atomic counter until none
// remain. Chunk execution order does not affect the result — every chunk
// owns its accumulator, every merge segment owns its entry range — so
// first-come dispatch is deterministic-safe.
func (s *state) drainPhase(phase uint8) {
	switch phase {
	case emPhaseChunks:
		n := s.net.NumObjects()
		chunks := len(s.accums)
		for {
			c := int(s.emNext.Add(1)) - 1
			if c >= chunks {
				return
			}
			s.emChunk(c, n)
		}
	case emPhaseMerge:
		for {
			i := int(s.mergeNext.Add(1)) - 1
			if i >= len(s.mergeSegs) {
				return
			}
			s.mergeSegment(s.mergeSegs[i])
		}
	}
}

// runPhase executes one parallel phase across the pool (or, when the state
// has no pool, across freshly spawned goroutines — the path direct
// emIteration callers without a pool take).
func (s *state) runPhase(workers int, phase uint8, next *atomic.Int64) {
	next.Store(0)
	if s.pool != nil {
		s.emWG.Add(s.pool.workers)
		for i := 0; i < s.pool.workers; i++ {
			s.pool.work <- emTask{s: s, phase: phase, wg: &s.emWG}
		}
		s.emWG.Wait()
		return
	}
	s.emWG.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer s.emWG.Done()
			s.drainPhase(phase)
		}()
	}
	s.emWG.Wait()
}

// mergeSegment folds one ownership segment of the per-chunk statistics into
// accumulator 0, chunk by chunk in index order — per entry, exactly the
// serial merge's left fold.
func (s *state) mergeSegment(seg mergeSeg) {
	accs := s.accums
	if seg.gauss {
		a := seg.attr
		w, wx, wx2 := accs[0].gaussW[a], accs[0].gaussWX[a], accs[0].gaussWX2[a]
		for _, acc := range accs[1:] {
			ow, owx, owx2 := acc.gaussW[a], acc.gaussWX[a], acc.gaussWX2[a]
			for c := range w {
				w[c] += ow[c]
				wx[c] += owx[c]
				wx2[c] += owx2[c]
			}
		}
		return
	}
	dst := accs[0].cat[seg.attr][seg.lo:seg.hi]
	for _, acc := range accs[1:] {
		src := acc.cat[seg.attr][seg.lo:seg.hi]
		for i, x := range src {
			dst[i] += x
		}
	}
}

// emIteration performs one E+M pass: responsibilities under (Θ_{t−1}, β_{t−1}),
// then the simultaneous Θ and β updates of Eqs. 10–12 (generalized to any
// set of categorical and Gaussian attributes). The Θ_{t−1} snapshot is the
// state's own thetaOld buffer (callers run snapshotTheta first); Θ_t is
// written into s.theta.
func (s *state) emIteration() {
	n := s.net.NumObjects()
	chunks := (n + emChunkSize - 1) / emChunkSize
	if chunks < 1 {
		chunks = 1
	}
	workers := s.opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > chunks {
		workers = chunks
	}

	s.ensureEMScratch(chunks)
	s.refreshModelScratch()
	for _, acc := range s.accums {
		acc.reset()
	}

	if workers == 1 {
		// Serial path still accumulates per chunk so its summation tree
		// matches the parallel path exactly.
		for c := 0; c < chunks; c++ {
			s.emChunk(c, n)
		}
		total := s.accums[0]
		for _, acc := range s.accums[1:] {
			total.merge(acc)
		}
		s.mStepModels(total)
		return
	}

	s.runPhase(workers, emPhaseChunks, &s.emNext)
	// Merge the per-chunk statistics. Parallel when the entry space splits
	// into enough segments to matter; per entry the fold order over chunks
	// is identical either way.
	if len(s.mergeSegs) >= 2 && chunks >= 2 {
		s.runPhase(workers, emPhaseMerge, &s.mergeNext)
	} else {
		total := s.accums[0]
		for _, acc := range s.accums[1:] {
			total.merge(acc)
		}
	}
	s.mStepModels(s.accums[0])
}

// emChunk runs emRange over chunk c of the object range, accumulating into
// the chunk's dedicated emAccum.
func (s *state) emChunk(c, n int) {
	lo := c * emChunkSize
	hi := lo + emChunkSize
	if hi > n {
		hi = n
	}
	s.emRange(lo, hi, s.accums[c])
}

// emRange runs the E-step and Θ update for objects in [lo, hi), accumulating
// β sufficient statistics into acc. Θ rows in the range are written in
// place; all reads go through the thetaOld snapshot, so ranges can run
// concurrently.
//
// The work is organized as chunk-wide passes — one per relation over the
// CSR rows, one per attribute, then a normalization pass — with every
// object's unnormalized row accumulating in acc.rows. Each Θ_t entry still
// receives its contributions in exactly the pre-CSR order (out-links
// relation-major with ascending targets, then in-links in edge order, then
// attributes in declaration order), so the floating-point summation tree —
// and therefore the fit — is bitwise unchanged; the passes only hoist model
// pointers out of the object loop, walk each CSR sequentially, and read
// Θ_{t−1} through the flat panel (see kernels.go for the inner loops and
// the vectorization-safety rules they obey).
func (s *state) emRange(lo, hi int, acc *emAccum) {
	// K-sized buffers are resliced to [:k:k] so the compiler can prove the
	// inner loops in-bounds and drop the checks.
	k := s.opts.K
	nv := hi - lo
	rows := acc.rows[: nv*k : nv*k]
	clear(rows)
	resp := acc.resp[:k:k]
	logs := acc.logs[:k:k]
	logTh := acc.logTh[:k:k]
	gamma := s.gamma
	thetaOld := s.thetaOld
	tf := s.thetaOldF

	// Link passes: Σ_{e=<v,u>} γ(φ(e)) w(e) θ_{u,k}^{t−1}, one relation at
	// a time.
	for r := 0; r < s.nRel; r++ {
		gr := gamma[r]
		if gr == 0 {
			continue
		}
		linkPass(rows, tf, &s.outCSR[r], lo, hi, k, gr)
	}
	if s.opts.SymmetricPropagation {
		// Merged in-link view in global edge order: matches the pre-CSR
		// edge-index iteration bit for bit. A zero-strength or zero-weight
		// in-link contributes +0.0 to non-negative accumulators — exactly
		// what skipping it would leave — so no branch guards it.
		for v := lo; v < hi; v++ {
			nr := rows[(v-lo)*k : (v-lo)*k+k : (v-lo)*k+k]
			for j, end := s.inStart[v], s.inStart[v+1]; j < end; j++ {
				g := gamma[s.inRel[j]] * s.inWeight[j]
				tb := s.inFrom[j] * k
				tu := tf[tb : tb+k : tb+k]
				for i := range tu {
					nr[i] += g * tu[i]
				}
			}
		}
	}

	// Attribute passes: 1{v∈V_X} Σ_obs p(z = k | obs), in attribute
	// declaration order (the per-object accumulation order of the
	// pre-pass-structured loop). The per-object arithmetic lives in the
	// shared E-step scoring kernels (score.go, kernels.go) so the online
	// fold-in path replays it exactly; here it runs with the M-step
	// accumulators attached.
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			betaT := s.catT[a]
			st := acc.cat[a]
			terms := s.termRows[a]
			catPass(rows, st, resp, betaT, thetaOld, terms, lo, hi, k)
		case hin.Numeric:
			gp := s.gauss[a]
			gw, gwx, gwx2 := acc.gaussW[a], acc.gaussWX[a], acc.gaussWX2[a]
			gaussPass(rows, gw, gwx, gwx2, resp, logs, logTh, gp.Mu, gp.Var, s.halfLogVar[a], thetaOld, s.numRows[a], lo, hi, k)
		}
	}

	// Normalization pass into Θ_t (the shared kernel's final pass). An
	// object with no out-links and no observations receives no information
	// this round: keep its row.
	normalizePass(rows, s.theta, thetaOld, lo, hi, k, s.opts.Epsilon)
	// Commit the range's Θ_t rows at the configured storage precision
	// (pointwise, so chunks stay independent; no-op under float64).
	s.roundTheta(lo, hi)
}

// mStepModels applies the β updates from the accumulated sufficient
// statistics (Eq. 10 for categorical, Eqs. 11–12 for Gaussians).
func (s *state) mStepModels(acc *emAccum) {
	k := s.opts.K
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			beta := s.cat[a].Beta
			vocab := len(beta[0])
			eta := s.opts.SmoothEta
			st := acc.cat[a]
			for c := 0; c < k; c++ {
				var sum float64
				for l := 0; l < vocab; l++ {
					sum += st[l*k+c] + eta
				}
				if sum <= 0 {
					continue // no evidence for this cluster at all: keep β_k
				}
				row := beta[c]
				for l := 0; l < vocab; l++ {
					row[l] = (st[l*k+c] + eta) / sum
				}
			}
		case hin.Numeric:
			gp := s.gauss[a]
			w := acc.gaussW[a]
			wx, wx2 := acc.gaussWX[a], acc.gaussWX2[a]
			for c := range w {
				if w[c] <= 1e-12 {
					continue // dead component: keep previous parameters
				}
				mu := wx[c] / w[c]
				variance := wx2[c]/w[c] - mu*mu
				if variance < s.opts.VarFloor {
					variance = s.opts.VarFloor
				}
				gp.Mu[c] = mu
				gp.Var[c] = variance
			}
		}
	}
	// Commit the updated component models at the configured storage
	// precision (no-op under float64).
	s.roundAttrModels()
}

// snapshotTheta makes the current Θ the Θ_{t−1} snapshot and hands the
// state a scratch buffer to write Θ_t into, by swapping the two row sets
// (and their flat backing panels) — no copy, no allocation after the first
// call. This is sound because emRange fully writes every row of s.theta
// (either the normalized update or a copy of the old row), so the stale
// contents of the swapped-in buffer are never observed. Callers must treat
// the returned snapshot as owned by the state: the next call recycles it.
func (s *state) snapshotTheta() [][]float64 {
	if s.thetaOld == nil {
		n := len(s.theta)
		k := s.opts.K
		backing := make([]float64, n*k)
		s.thetaOldF = backing
		s.thetaOld = make([][]float64, n)
		for v := range s.thetaOld {
			s.thetaOld[v] = backing[v*k : (v+1)*k]
		}
	}
	s.theta, s.thetaOld = s.thetaOld, s.theta
	s.thetaF, s.thetaOldF = s.thetaOldF, s.thetaF
	return s.thetaOld
}

// runEM executes up to `iters` EM iterations (one cluster-optimization step
// of Algorithm 1), stopping early once Θ moves less than opts.EMTol between
// iterations or once s.ctx is cancelled. It returns the number of
// iterations actually run. A parallel run owns a worker pool for its
// duration (unless the caller installed a longer-lived one).
func (s *state) runEM(iters int) int {
	if s.opts.Parallelism > 1 && s.pool == nil {
		n := s.net.NumObjects()
		chunks := (n + emChunkSize - 1) / emChunkSize
		workers := s.opts.Parallelism
		if workers > chunks {
			workers = chunks
		}
		if workers > 1 {
			s.pool = newEMPool(workers)
			defer func() {
				s.pool.stop()
				s.pool = nil
			}()
		}
	}
	for t := 0; t < iters; t++ {
		if s.ctx.Err() != nil {
			return t
		}
		old := s.snapshotTheta()
		s.emIteration()
		if s.opts.EMTol > 0 {
			var move float64
			for v, row := range s.theta {
				for k, x := range row {
					if d := math.Abs(x - old[v][k]); d > move {
						move = d
					}
				}
			}
			if move < s.opts.EMTol {
				return t + 1
			}
		}
	}
	return iters
}
