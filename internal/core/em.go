package core

import (
	"math"
	"sync"

	"genclus/internal/hin"
)

// emAccum collects the per-chunk sufficient statistics of one EM iteration,
// plus the chunk-local E-step scratch. One accumulator per reduction chunk
// is allocated lazily on the first iteration and reused (zeroed) on every
// subsequent one, so the steady-state EM loop performs no allocation.
type emAccum struct {
	// cat[a] is the flat accumulator of categorical attribute a in
	// term-major layout: cat[a][l*K+k] = Σ_v c_{v,l} p(z_{v,l} = k). Nil for
	// numeric or out-of-play attributes.
	cat [][]float64
	// Gaussian accumulators by attribute id (weight, weighted x, weighted
	// x²), each of length K. Nil for categorical or out-of-play attributes.
	gaussW, gaussWX, gaussWX2 [][]float64

	// E-step scratch local to the goroutine running this chunk. rows is the
	// chunk's flat newRow matrix (emChunkSize×K): the E-step accumulates
	// every object's unnormalized Θ_t row in it across the link and
	// attribute passes, then normalizes in a final pass.
	rows              []float64
	resp, logs, logTh []float64
}

func (s *state) newAccum() *emAccum {
	k := s.opts.K
	nAttr := s.net.NumAttrs()
	acc := &emAccum{
		cat:      make([][]float64, nAttr),
		gaussW:   make([][]float64, nAttr),
		gaussWX:  make([][]float64, nAttr),
		gaussWX2: make([][]float64, nAttr),
		rows:     make([]float64, emChunkSize*k),
		resp:     make([]float64, k),
		logs:     make([]float64, k),
		logTh:    make([]float64, k),
	}
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			acc.cat[a] = make([]float64, spec.VocabSize*k)
		case hin.Numeric:
			acc.gaussW[a] = make([]float64, k)
			acc.gaussWX[a] = make([]float64, k)
			acc.gaussWX2[a] = make([]float64, k)
		}
	}
	return acc
}

// reset zeroes the sufficient statistics for reuse in the next iteration.
func (acc *emAccum) reset() {
	for _, m := range acc.cat {
		clear(m)
	}
	for _, w := range acc.gaussW {
		clear(w)
	}
	for _, w := range acc.gaussWX {
		clear(w)
	}
	for _, w := range acc.gaussWX2 {
		clear(w)
	}
}

func (acc *emAccum) merge(other *emAccum) {
	for a, dst := range acc.cat {
		if dst == nil {
			continue
		}
		for i, x := range other.cat[a] {
			dst[i] += x
		}
	}
	for a, w := range acc.gaussW {
		if w == nil {
			continue
		}
		ow, owx, owx2 := other.gaussW[a], other.gaussWX[a], other.gaussWX2[a]
		wx, wx2 := acc.gaussWX[a], acc.gaussWX2[a]
		for c := range w {
			w[c] += ow[c]
			wx[c] += owx[c]
			wx2[c] += owx2[c]
		}
	}
}

// emChunkSize fixes the granularity of the β-statistics reduction
// independently of Options.Parallelism: the object range is split into
// chunks of this size, each chunk accumulates into its own emAccum, and the
// accumulators merge in chunk order after all chunks finish. Worker count
// only decides how many chunks run at once, never the shape of the floating
// point summation tree — so a fit is bitwise identical for any Parallelism.
const emChunkSize = 512

// ensureEMScratch lazily allocates the per-chunk accumulators. The chunk
// count is a pure function of the (immutable) object count, so the scratch
// is sized exactly once per state.
func (s *state) ensureEMScratch(chunks int) {
	if s.accums != nil {
		return
	}
	s.accums = make([]*emAccum, chunks)
	for c := range s.accums {
		s.accums[c] = s.newAccum()
	}
}

// refreshModelScratch rebuilds the derived read-only views of the attribute
// models the E-step consumes: the term-major transpose of every categorical
// β (so responsibilities read K contiguous floats per term instead of
// striding across K rows) and the per-component 0.5·ln σ² constants of every
// Gaussian. Values are copied bit-for-bit from the canonical parameters, so
// the arithmetic of the E-step is unchanged.
func (s *state) refreshModelScratch() {
	k := s.opts.K
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			beta := s.cat[a].Beta
			bt := s.catT[a]
			for i := 0; i < k; i++ {
				for l, x := range beta[i] {
					bt[l*k+i] = x
				}
			}
		case hin.Numeric:
			vr := s.gauss[a].Var
			hlv := s.halfLogVar[a]
			for i := 0; i < k; i++ {
				hlv[i] = 0.5 * math.Log(vr[i])
			}
		}
	}
}

// emIteration performs one E+M pass: responsibilities under (Θ_{t−1}, β_{t−1}),
// then the simultaneous Θ and β updates of Eqs. 10–12 (generalized to any
// set of categorical and Gaussian attributes). thetaOld must be a snapshot
// of Θ_{t−1}; Θ_t is written into s.theta.
func (s *state) emIteration(thetaOld [][]float64) {
	n := s.net.NumObjects()
	chunks := (n + emChunkSize - 1) / emChunkSize
	if chunks < 1 {
		chunks = 1
	}
	workers := s.opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > chunks {
		workers = chunks
	}

	s.ensureEMScratch(chunks)
	s.refreshModelScratch()
	for _, acc := range s.accums {
		acc.reset()
	}

	if workers == 1 {
		// Serial path still accumulates per chunk so its summation tree
		// matches the parallel path exactly.
		for c := 0; c < chunks; c++ {
			s.emChunk(thetaOld, c, n)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range next {
					s.emChunk(thetaOld, c, n)
				}
			}()
		}
		for c := 0; c < chunks; c++ {
			next <- c
		}
		close(next)
		wg.Wait()
	}

	total := s.accums[0]
	for _, acc := range s.accums[1:] {
		total.merge(acc)
	}
	s.mStepModels(total)
}

// emChunk runs emRange over chunk c of the object range, accumulating into
// the chunk's dedicated emAccum.
func (s *state) emChunk(thetaOld [][]float64, c, n int) {
	lo := c * emChunkSize
	hi := lo + emChunkSize
	if hi > n {
		hi = n
	}
	s.emRange(thetaOld, lo, hi, s.accums[c])
}

// emRange runs the E-step and Θ update for objects in [lo, hi), accumulating
// β sufficient statistics into acc. Θ rows in the range are written in
// place; all reads go through thetaOld, so ranges can run concurrently.
//
// The work is organized as chunk-wide passes — one per relation over the
// CSR rows, one per attribute, then a normalization pass — with every
// object's unnormalized row accumulating in acc.rows. Each Θ_t entry still
// receives its contributions in exactly the pre-CSR order (out-links
// relation-major with ascending targets, then in-links in edge order, then
// attributes in declaration order), so the floating-point summation tree —
// and therefore the fit — is bitwise unchanged; the passes only hoist model
// pointers out of the object loop and walk each CSR sequentially.
func (s *state) emRange(thetaOld [][]float64, lo, hi int, acc *emAccum) {
	// K-sized buffers are resliced to [:k:k] so the compiler can prove the
	// inner loops in-bounds and drop the checks.
	k := s.opts.K
	nv := hi - lo
	rows := acc.rows[: nv*k : nv*k]
	clear(rows)
	resp := acc.resp[:k:k]
	logs := acc.logs[:k:k]
	logTh := acc.logTh[:k:k]
	gamma := s.gamma

	// Link passes: Σ_{e=<v,u>} γ(φ(e)) w(e) θ_{u,k}^{t−1}, one relation at
	// a time.
	for r := 0; r < s.nRel; r++ {
		gr := gamma[r]
		if gr == 0 {
			continue
		}
		m := &s.outCSR[r]
		for v := lo; v < hi; v++ {
			rowLo, rowHi := m.Start[v], m.Start[v+1]
			if rowLo == rowHi {
				continue
			}
			cols := m.Col[rowLo:rowHi]
			wts := m.Weight[rowLo:rowHi]
			nr := rows[(v-lo)*k : (v-lo)*k+k : (v-lo)*k+k]
			for j, c := range cols {
				g := gr * wts[j]
				if g == 0 {
					continue
				}
				tu := thetaOld[c][:k:k]
				for i := range tu {
					nr[i] += g * tu[i]
				}
			}
		}
	}
	if s.opts.SymmetricPropagation {
		// Merged in-link view in global edge order: matches the pre-CSR
		// edge-index iteration bit for bit.
		for v := lo; v < hi; v++ {
			nr := rows[(v-lo)*k : (v-lo)*k+k : (v-lo)*k+k]
			for j, end := s.inStart[v], s.inStart[v+1]; j < end; j++ {
				g := gamma[s.inRel[j]] * s.inWeight[j]
				if g == 0 {
					continue
				}
				tu := thetaOld[s.inFrom[j]][:k:k]
				for i := range tu {
					nr[i] += g * tu[i]
				}
			}
		}
	}

	// Attribute passes: 1{v∈V_X} Σ_obs p(z = k | obs), in attribute
	// declaration order (the per-object accumulation order of the
	// pre-pass-structured loop). The per-object arithmetic lives in the
	// shared E-step scoring kernel (score.go) so the online fold-in path
	// replays it exactly; here it runs with the M-step accumulators
	// attached.
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			betaT := s.catT[a]
			st := acc.cat[a]
			terms := s.termRows[a]
			for v := lo; v < hi; v++ {
				tcs := terms[v]
				if len(tcs) == 0 {
					continue
				}
				nr := rows[(v-lo)*k : (v-lo)*k+k : (v-lo)*k+k]
				scoreCatAttrInto(nr, st, resp, betaT, thetaOld[v], tcs, k)
			}
		case hin.Numeric:
			gp := s.gauss[a]
			mu, vr, hlv := gp.Mu, gp.Var, s.halfLogVar[a]
			gw, gwx, gwx2 := acc.gaussW[a], acc.gaussWX[a], acc.gaussWX2[a]
			obs := s.numRows[a]
			for v := lo; v < hi; v++ {
				xs := obs[v]
				if len(xs) == 0 {
					continue
				}
				nr := rows[(v-lo)*k : (v-lo)*k+k : (v-lo)*k+k]
				scoreGaussAttrInto(nr, gw, gwx, gwx2, resp, logs, logTh, mu, vr, hlv, thetaOld[v], xs, k)
			}
		}
	}

	// Normalization pass into Θ_t (the shared kernel's final pass). An
	// object with no out-links and no observations receives no information
	// this round: keep its row.
	eps := s.opts.Epsilon
	for v := lo; v < hi; v++ {
		nr := rows[(v-lo)*k : (v-lo)*k+k : (v-lo)*k+k]
		dst := s.theta[v][:k:k]
		if !normalizeRowInto(dst, nr, eps) {
			copy(dst, thetaOld[v])
		}
	}
}

// mStepModels applies the β updates from the accumulated sufficient
// statistics (Eq. 10 for categorical, Eqs. 11–12 for Gaussians).
func (s *state) mStepModels(acc *emAccum) {
	k := s.opts.K
	for _, a := range s.attrs {
		switch s.kind[a] {
		case hin.Categorical:
			beta := s.cat[a].Beta
			vocab := len(beta[0])
			eta := s.opts.SmoothEta
			st := acc.cat[a]
			for c := 0; c < k; c++ {
				var sum float64
				for l := 0; l < vocab; l++ {
					sum += st[l*k+c] + eta
				}
				if sum <= 0 {
					continue // no evidence for this cluster at all: keep β_k
				}
				row := beta[c]
				for l := 0; l < vocab; l++ {
					row[l] = (st[l*k+c] + eta) / sum
				}
			}
		case hin.Numeric:
			gp := s.gauss[a]
			w := acc.gaussW[a]
			wx, wx2 := acc.gaussWX[a], acc.gaussWX2[a]
			for c := range w {
				if w[c] <= 1e-12 {
					continue // dead component: keep previous parameters
				}
				mu := wx[c] / w[c]
				variance := wx2[c]/w[c] - mu*mu
				if variance < s.opts.VarFloor {
					variance = s.opts.VarFloor
				}
				gp.Mu[c] = mu
				gp.Var[c] = variance
			}
		}
	}
}

// snapshotTheta makes the current Θ the Θ_{t−1} snapshot and hands the
// state a scratch buffer to write Θ_t into, by swapping the two row sets —
// no copy, no allocation after the first call. This is sound because
// emRange fully writes every row of s.theta (either the normalized update
// or a copy of the old row), so the stale contents of the swapped-in buffer
// are never observed. Callers must treat the returned snapshot as owned by
// the state: the next call recycles it.
func (s *state) snapshotTheta() [][]float64 {
	if s.thetaOld == nil {
		n := len(s.theta)
		k := s.opts.K
		backing := make([]float64, n*k)
		s.thetaOld = make([][]float64, n)
		for v := range s.thetaOld {
			s.thetaOld[v] = backing[v*k : (v+1)*k]
		}
	}
	s.theta, s.thetaOld = s.thetaOld, s.theta
	return s.thetaOld
}

// runEM executes up to `iters` EM iterations (one cluster-optimization step
// of Algorithm 1), stopping early once Θ moves less than opts.EMTol between
// iterations or once s.ctx is cancelled. It returns the number of
// iterations actually run.
func (s *state) runEM(iters int) int {
	for t := 0; t < iters; t++ {
		if s.ctx.Err() != nil {
			return t
		}
		old := s.snapshotTheta()
		s.emIteration(old)
		if s.opts.EMTol > 0 {
			var move float64
			for v, row := range s.theta {
				for k, x := range row {
					if d := math.Abs(x - old[v][k]); d > move {
						move = d
					}
				}
			}
			if move < s.opts.EMTol {
				return t + 1
			}
		}
	}
	return iters
}
