package core

import (
	"math"
	"sync"

	"genclus/internal/hin"
)

// emAccum collects the per-worker sufficient statistics of one EM iteration.
type emAccum struct {
	// catStat[a][k][l] = Σ_v c_{v,l} p(z_{v,l} = k) for categorical attr a.
	catStat map[int][][]float64
	// Gaussian accumulators: weight, weighted x, weighted x².
	gaussW, gaussWX, gaussWX2 map[int][]float64
}

func (s *state) newAccum() *emAccum {
	acc := &emAccum{
		catStat:  make(map[int][][]float64),
		gaussW:   make(map[int][]float64),
		gaussWX:  make(map[int][]float64),
		gaussWX2: make(map[int][]float64),
	}
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			m := make([][]float64, s.opts.K)
			for k := range m {
				m[k] = make([]float64, spec.VocabSize)
			}
			acc.catStat[a] = m
		case hin.Numeric:
			acc.gaussW[a] = make([]float64, s.opts.K)
			acc.gaussWX[a] = make([]float64, s.opts.K)
			acc.gaussWX2[a] = make([]float64, s.opts.K)
		}
	}
	return acc
}

func (acc *emAccum) merge(other *emAccum) {
	for a, m := range other.catStat {
		dst := acc.catStat[a]
		for k := range m {
			for l, v := range m[k] {
				dst[k][l] += v
			}
		}
	}
	for a, w := range other.gaussW {
		for k := range w {
			acc.gaussW[a][k] += w[k]
			acc.gaussWX[a][k] += other.gaussWX[a][k]
			acc.gaussWX2[a][k] += other.gaussWX2[a][k]
		}
	}
}

// emChunkSize fixes the granularity of the β-statistics reduction
// independently of Options.Parallelism: the object range is split into
// chunks of this size, each chunk accumulates into its own emAccum, and the
// accumulators merge in chunk order after all chunks finish. Worker count
// only decides how many chunks run at once, never the shape of the floating
// point summation tree — so a fit is bitwise identical for any Parallelism.
const emChunkSize = 512

// emIteration performs one E+M pass: responsibilities under (Θ_{t−1}, β_{t−1}),
// then the simultaneous Θ and β updates of Eqs. 10–12 (generalized to any
// set of categorical and Gaussian attributes). thetaOld must be a snapshot
// of Θ_{t−1}; Θ_t is written into s.theta.
func (s *state) emIteration(thetaOld [][]float64) {
	n := s.net.NumObjects()
	chunks := (n + emChunkSize - 1) / emChunkSize
	if chunks < 1 {
		chunks = 1
	}
	workers := s.opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > chunks {
		workers = chunks
	}

	accums := make([]*emAccum, chunks)
	if workers == 1 {
		// Serial path still accumulates per chunk so its summation tree
		// matches the parallel path exactly.
		for c := 0; c < chunks; c++ {
			accums[c] = s.emChunk(thetaOld, c, n)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range next {
					accums[c] = s.emChunk(thetaOld, c, n)
				}
			}()
		}
		for c := 0; c < chunks; c++ {
			next <- c
		}
		close(next)
		wg.Wait()
	}

	total := accums[0]
	for _, acc := range accums[1:] {
		total.merge(acc)
	}
	s.mStepModels(total)
}

// emChunk runs emRange over chunk c of the object range.
func (s *state) emChunk(thetaOld [][]float64, c, n int) *emAccum {
	lo := c * emChunkSize
	hi := lo + emChunkSize
	if hi > n {
		hi = n
	}
	acc := s.newAccum()
	s.emRange(thetaOld, lo, hi, acc)
	return acc
}

// emRange runs the E-step and Θ update for objects in [lo, hi), accumulating
// β sufficient statistics into acc. Θ rows in the range are written in
// place; all reads go through thetaOld, so ranges can run concurrently.
func (s *state) emRange(thetaOld [][]float64, lo, hi int, acc *emAccum) {
	k := s.opts.K
	newRow := make([]float64, k)
	resp := make([]float64, k)
	logs := make([]float64, k)

	for v := lo; v < hi; v++ {
		for i := range newRow {
			newRow[i] = 0
		}
		// Link term: Σ_{e=<v,u>} γ(φ(e)) w(e) θ_{u,k}^{t−1}.
		for _, e := range s.net.OutEdges(v) {
			g := s.gamma[e.Rel] * e.Weight
			if g == 0 {
				continue
			}
			tu := thetaOld[e.To]
			for i := 0; i < k; i++ {
				newRow[i] += g * tu[i]
			}
		}
		if s.opts.SymmetricPropagation {
			for _, ei := range s.net.InEdgeIndices(v) {
				e := s.net.Edges()[ei]
				g := s.gamma[e.Rel] * e.Weight
				if g == 0 {
					continue
				}
				tu := thetaOld[e.From]
				for i := 0; i < k; i++ {
					newRow[i] += g * tu[i]
				}
			}
		}

		// Attribute terms: 1{v∈V_X} Σ_obs p(z = k | obs).
		thOld := thetaOld[v]
		for _, a := range s.attrs {
			switch s.net.Attr(a).Kind {
			case hin.Categorical:
				beta := s.cat[a].Beta
				st := acc.catStat[a]
				for _, tc := range s.net.TermCounts(a, v) {
					var sum float64
					for i := 0; i < k; i++ {
						resp[i] = thOld[i] * beta[i][tc.Term]
						sum += resp[i]
					}
					if sum <= 0 {
						continue // term impossible under every component
					}
					inv := tc.Count / sum
					for i := 0; i < k; i++ {
						r := resp[i] * inv
						newRow[i] += r
						st[i][tc.Term] += r
					}
				}
			case hin.Numeric:
				gp := s.gauss[a]
				for _, x := range s.net.NumericObs(a, v) {
					// Log-space responsibilities guard against distant
					// observations underflowing every component.
					maxLog := math.Inf(-1)
					for i := 0; i < k; i++ {
						d := x - gp.Mu[i]
						logs[i] = math.Log(thOld[i]) - 0.5*d*d/gp.Var[i] - 0.5*math.Log(gp.Var[i])
						if logs[i] > maxLog {
							maxLog = logs[i]
						}
					}
					if math.IsInf(maxLog, -1) {
						continue
					}
					var sum float64
					for i := 0; i < k; i++ {
						resp[i] = math.Exp(logs[i] - maxLog)
						sum += resp[i]
					}
					for i := 0; i < k; i++ {
						r := resp[i] / sum
						newRow[i] += r
						acc.gaussW[a][i] += r
						acc.gaussWX[a][i] += r * x
						acc.gaussWX2[a][i] += r * x * x
					}
				}
			}
		}

		// Normalize into Θ_t. An object with no out-links and no
		// observations receives no information this round: keep its row.
		var mass float64
		for _, x := range newRow {
			mass += x
		}
		dst := s.theta[v]
		if mass <= 0 || math.IsNaN(mass) || math.IsInf(mass, 0) {
			copy(dst, thOld)
			continue
		}
		for i := 0; i < k; i++ {
			x := newRow[i] / mass
			if x < s.opts.Epsilon || math.IsNaN(x) {
				x = s.opts.Epsilon
			}
			dst[i] = x
		}
		// Re-normalize after flooring.
		var sum float64
		for _, x := range dst {
			sum += x
		}
		for i := range dst {
			dst[i] /= sum
		}
	}
}

// mStepModels applies the β updates from the accumulated sufficient
// statistics (Eq. 10 for categorical, Eqs. 11–12 for Gaussians).
func (s *state) mStepModels(acc *emAccum) {
	for a, st := range acc.catStat {
		beta := s.cat[a].Beta
		vocab := len(beta[0])
		eta := s.opts.SmoothEta
		for k := range beta {
			var sum float64
			for l := 0; l < vocab; l++ {
				sum += st[k][l] + eta
			}
			if sum <= 0 {
				continue // no evidence for this cluster at all: keep β_k
			}
			for l := 0; l < vocab; l++ {
				beta[k][l] = (st[k][l] + eta) / sum
			}
		}
	}
	for a, w := range acc.gaussW {
		gp := s.gauss[a]
		for k := range w {
			if w[k] <= 1e-12 {
				continue // dead component: keep previous parameters
			}
			mu := acc.gaussWX[a][k] / w[k]
			variance := acc.gaussWX2[a][k]/w[k] - mu*mu
			if variance < s.opts.VarFloor {
				variance = s.opts.VarFloor
			}
			gp.Mu[k] = mu
			gp.Var[k] = variance
		}
	}
}

// runEM executes up to `iters` EM iterations (one cluster-optimization step
// of Algorithm 1), stopping early once Θ moves less than opts.EMTol between
// iterations or once s.ctx is cancelled. It returns the number of
// iterations actually run.
func (s *state) runEM(iters int) int {
	for t := 0; t < iters; t++ {
		if s.ctx.Err() != nil {
			return t
		}
		old := cloneTheta(s.theta)
		s.emIteration(old)
		if s.opts.EMTol > 0 {
			var move float64
			for v, row := range s.theta {
				for k, x := range row {
					if d := math.Abs(x - old[v][k]); d > move {
						move = d
					}
				}
			}
			if move < s.opts.EMTol {
				return t + 1
			}
		}
	}
	return iters
}
