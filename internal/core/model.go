package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"genclus/internal/hin"
	"genclus/internal/stats"
)

// CatParams are the fitted parameters of a categorical attribute: Beta[k][l]
// is the probability of term l in cluster k (β in Eq. 3).
type CatParams struct {
	Beta [][]float64
}

// GaussParams are the fitted parameters of a numeric attribute: per-cluster
// mean and variance (β_k = (µ_k, σ_k²) in Eq. 4).
type GaussParams struct {
	Mu  []float64
	Var []float64
}

// AttrModel is the fitted component model of one attribute.
type AttrModel struct {
	Name  string
	Kind  hin.Kind
	Cat   *CatParams   // set when Kind == Categorical
	Gauss *GaussParams // set when Kind == Numeric
}

// state is the mutable fitting state.
type state struct {
	net   *hin.Network
	opts  Options
	attrs []int      // dense attribute ids in play
	kind  []hin.Kind // attribute kind by dense attr id

	// ctx aborts the fit between EM iterations; never nil.
	ctx context.Context

	theta [][]float64 // |V| × K
	gamma []float64   // |R|

	cat   []*CatParams   // by attr id; nil for numeric/out-of-play attrs
	gauss []*GaussParams // by attr id; nil for categorical/out-of-play attrs

	// Sparse link views cached from the network at construction: the
	// per-relation out-link CSR matrices the E-step and strength statistics
	// walk, and the merged in-link arrays symmetric propagation walks.
	nRel     int
	outCSR   []hin.CSR
	inStart  []int
	inFrom   []int
	inRel    []int
	inWeight []float64

	// Raw observation rows cached from the network by attr id, so the
	// E-step walks observations without per-object accessor calls.
	termRows [][][]hin.TermCount
	numRows  [][][]float64

	// Per-iteration EM scratch, allocated once and reused so the
	// steady-state EM loop is allocation-free (see em.go).
	catT       [][]float64 // by attr id: term-major transpose of β, flat Vocab×K
	halfLogVar [][]float64 // by attr id: 0.5·ln σ²_k per Gaussian component
	thetaOld   [][]float64 // Θ_{t−1} snapshot buffer (snapshotTheta)
	accums     []*emAccum  // one per reduction chunk (ensureEMScratch)

	// Flat contiguous panels backing the theta/thetaOld row sets, kept in
	// lockstep by snapshotTheta. The E-step link kernels index Θ_{t−1}
	// through thetaOldF (one bounds-checked load per edge instead of a row
	// header chase); the values are the same memory the rows alias, so the
	// arithmetic is unchanged.
	thetaF    []float64
	thetaOldF []float64

	// Parallel EM machinery (see em.go): an optional persistent worker pool,
	// the atomic work counters the workers drain, the shared WaitGroup, and
	// the precomputed entry-range segments of the parallel statistics merge.
	pool      *emPool
	emNext    atomic.Int64
	mergeNext atomic.Int64
	emWG      sync.WaitGroup
	mergeSegs []mergeSeg

	// Reusable strength-learning statistics (see strength.go).
	strength      strengthStats
	strengthReady bool

	rng *rand.Rand
	// permuteGaussInit shuffles the quantile-seeded Gaussian means per
	// attribute. Best-of-seeds initialization sets it on all but the first
	// seed so the restarts explore different cross-attribute component
	// pairings (e.g. the anti-diagonal corners of weather Setting 2, which
	// sorted quantile seeding can never express).
	permuteGaussInit bool
}

func newState(net *hin.Network, opts Options, seed int64, permuteGauss bool) *state {
	nAttr := net.NumAttrs()
	s := &state{
		net:              net,
		opts:             opts,
		ctx:              context.Background(),
		attrs:            opts.attrIDs(net),
		kind:             make([]hin.Kind, nAttr),
		rng:              rand.New(rand.NewSource(seed)),
		cat:              make([]*CatParams, nAttr),
		gauss:            make([]*GaussParams, nAttr),
		catT:             make([][]float64, nAttr),
		halfLogVar:       make([][]float64, nAttr),
		nRel:             net.NumRelations(),
		permuteGaussInit: permuteGauss,
	}
	for a := 0; a < nAttr; a++ {
		s.kind[a] = net.Attr(a).Kind
	}
	// Materialize the sparse link views once; PrepareCSR is idempotent, so
	// concurrent fits of a shared network build them exactly once.
	s.outCSR = net.RelationCSRs()
	s.inStart, s.inFrom, s.inRel, s.inWeight = net.InLinkArrays()
	s.termRows = make([][][]hin.TermCount, nAttr)
	s.numRows = make([][][]float64, nAttr)
	for _, a := range s.attrs {
		spec := net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			s.catT[a] = make([]float64, spec.VocabSize*opts.K)
			s.termRows[a] = net.AttrTermCounts(a)
		case hin.Numeric:
			s.halfLogVar[a] = make([]float64, opts.K)
			s.numRows[a] = net.AttrNumericObs(a)
		}
	}
	g0 := opts.InitialGamma
	if g0 == 0 {
		g0 = 1 // "initially all link types equally important" (§4.3)
	}
	s.gamma = make([]float64, net.NumRelations())
	for r := range s.gamma {
		s.gamma[r] = g0
	}
	if opts.InitGamma != nil {
		copy(s.gamma, opts.InitGamma)
	}
	s.initTheta()
	s.initAttrModels()
	// Commit the initial state at the configured storage precision, so the
	// first E-step already reads float32-representable parameters (no-ops
	// under the float64 default).
	s.roundTheta(0, net.NumObjects())
	s.roundGamma()
	s.roundAttrModels()
	return s
}

func (s *state) initTheta() {
	n := s.net.NumObjects()
	k := s.opts.K
	backing := make([]float64, n*k)
	s.thetaF = backing
	s.theta = make([][]float64, n)
	for v := 0; v < n; v++ {
		row := backing[v*k : (v+1)*k]
		if s.opts.InitTheta != nil {
			copy(row, s.opts.InitTheta[v])
		} else {
			copy(row, stats.SampleSimplexUniform(s.rng, k))
		}
		stats.FloorAndNormalize(row, s.opts.Epsilon)
		s.theta[v] = row
	}
}

func (s *state) initAttrModels() {
	warm := make(map[string]AttrModel, len(s.opts.InitAttrs))
	for _, am := range s.opts.InitAttrs {
		warm[am.Name] = am
	}
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			if am, ok := warm[spec.Name]; ok && am.Kind == hin.Categorical {
				s.cat[a] = warmCat(am.Cat, spec.VocabSize)
			} else {
				s.cat[a] = s.initCat(a, spec)
			}
		case hin.Numeric:
			if am, ok := warm[spec.Name]; ok && am.Kind == hin.Numeric {
				s.gauss[a] = &GaussParams{
					Mu:  append([]float64(nil), am.Gauss.Mu...),
					Var: append([]float64(nil), am.Gauss.Var...),
				}
			} else {
				s.gauss[a] = s.initGauss(a)
			}
		}
	}
}

// warmCat deep-copies a warm-start categorical model onto the network's
// vocabulary. A grown vocabulary gets uniform residual mass on the new
// terms: each component keeps its learned shape but can still claim terms
// it has never seen.
func warmCat(src *CatParams, vocab int) *CatParams {
	beta := make([][]float64, len(src.Beta))
	for k, row := range src.Beta {
		dst := make([]float64, vocab)
		copy(dst, row)
		if extra := vocab - len(row); extra > 0 {
			// Give the unseen tail the mass of one average seen term,
			// spread uniformly, then renormalize. Scale by the row's actual
			// mass so unnormalized warm-start rows (Validate only requires
			// sum > 0) get the same relative share as normalized ones.
			var mass float64
			for _, p := range row {
				mass += p
			}
			fill := mass / float64(len(row)*(extra))
			for l := len(row); l < vocab; l++ {
				dst[l] = fill
			}
		}
		stats.Normalize(dst)
		beta[k] = dst
	}
	return &CatParams{Beta: beta}
}

// initCat gives each cluster a perturbed-uniform term distribution — the
// standard PLSA initialization.
func (s *state) initCat(a int, spec hin.AttrSpec) *CatParams {
	k := s.opts.K
	beta := make([][]float64, k)
	for c := 0; c < k; c++ {
		row := make([]float64, spec.VocabSize)
		for l := range row {
			row[l] = 1 + 0.5*s.rng.Float64()
		}
		stats.Normalize(row)
		beta[c] = row
	}
	return &CatParams{Beta: beta}
}

// initGauss seeds component k of every numeric attribute at the
// (k+½)/K-quantile of the attribute's pooled observations, with a shared
// global variance. Quantile seeding keeps component indices aligned across
// attributes (component k is "low" for every attribute, component K−1
// "high"), which matters when several incomplete numeric attributes must
// agree on a joint hidden space — random seeding routinely permutes the
// attributes against each other and strands EM in a misaligned optimum.
func (s *state) initGauss(a int) *GaussParams {
	k := s.opts.K
	var all []float64
	for v := 0; v < s.net.NumObjects(); v++ {
		all = append(all, s.net.NumericObs(a, v)...)
	}
	gp := &GaussParams{Mu: make([]float64, k), Var: make([]float64, k)}
	if len(all) == 0 {
		// No observations anywhere: arbitrary unit-spread components.
		for c := 0; c < k; c++ {
			gp.Mu[c] = float64(c)
			gp.Var[c] = 1
		}
		return gp
	}
	sort.Float64s(all)
	var mean, ss float64
	for _, x := range all {
		mean += x
	}
	mean /= float64(len(all))
	for _, x := range all {
		d := x - mean
		ss += d * d
	}
	globalVar := ss / float64(len(all))
	if globalVar < s.opts.VarFloor {
		globalVar = s.opts.VarFloor
	}
	n := len(all)
	order := make([]int, k)
	for c := range order {
		order[c] = c
	}
	if s.permuteGaussInit {
		s.rng.Shuffle(k, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for c := 0; c < k; c++ {
		q := (float64(order[c]) + 0.5) / float64(k)
		idx := int(q * float64(n))
		if idx >= n {
			idx = n - 1
		}
		gp.Mu[c] = all[idx]
		gp.Var[c] = globalVar
	}
	return gp
}

// cloneTheta deep-copies the membership matrix (used for snapshots and for
// best-of-seeds bookkeeping).
func cloneTheta(theta [][]float64) [][]float64 {
	if theta == nil {
		return nil
	}
	k := 0
	if len(theta) > 0 {
		k = len(theta[0])
	}
	backing := make([]float64, len(theta)*k)
	out := make([][]float64, len(theta))
	for v, row := range theta {
		dst := backing[v*k : (v+1)*k]
		copy(dst, row)
		out[v] = dst
	}
	return out
}

// snapshotModels deep-copies the fitted attribute models for the Result.
func (s *state) snapshotModels() []AttrModel {
	out := make([]AttrModel, 0, len(s.attrs))
	for _, a := range s.attrs {
		spec := s.net.Attr(a)
		m := AttrModel{Name: spec.Name, Kind: spec.Kind}
		switch spec.Kind {
		case hin.Categorical:
			src := s.cat[a]
			beta := make([][]float64, len(src.Beta))
			for i, row := range src.Beta {
				beta[i] = append([]float64(nil), row...)
			}
			m.Cat = &CatParams{Beta: beta}
		case hin.Numeric:
			src := s.gauss[a]
			m.Gauss = &GaussParams{
				Mu:  append([]float64(nil), src.Mu...),
				Var: append([]float64(nil), src.Var...),
			}
		}
		out = append(out, m)
	}
	return out
}

// featureSum computes Σ_e f(θ_i, θ_j, e, γ) — the structural part of the
// objective g₁ (Eq. 9) under the current Θ and the given γ.
func (s *state) featureSum(gamma []float64) float64 {
	var sum float64
	for _, e := range s.net.Edges() {
		ti := s.theta[e.From]
		tj := s.theta[e.To]
		var ce float64
		for k := range ti {
			ce += tj[k] * math.Log(ti[k])
		}
		sum += gamma[e.Rel] * e.Weight * ce
	}
	return sum
}

// attrLogLikelihood computes Σ_X Σ_v Σ_x log Σ_k θ_vk p(x|β_k) — the
// generative part of the objective (Eqs. 3–4).
func (s *state) attrLogLikelihood() float64 {
	var ll float64
	for _, a := range s.attrs {
		switch s.net.Attr(a).Kind {
		case hin.Categorical:
			beta := s.cat[a].Beta
			for v := 0; v < s.net.NumObjects(); v++ {
				tcs := s.net.TermCounts(a, v)
				if len(tcs) == 0 {
					continue
				}
				th := s.theta[v]
				for _, tc := range tcs {
					var p float64
					for k := range th {
						p += th[k] * beta[k][tc.Term]
					}
					if p > 0 {
						ll += tc.Count * math.Log(p)
					} else {
						ll += tc.Count * math.Log(s.opts.Epsilon)
					}
				}
			}
		case hin.Numeric:
			gp := s.gauss[a]
			for v := 0; v < s.net.NumObjects(); v++ {
				xs := s.net.NumericObs(a, v)
				if len(xs) == 0 {
					continue
				}
				th := s.theta[v]
				for _, x := range xs {
					// Log-space mixture for numerical stability.
					maxLog := math.Inf(-1)
					logs := make([]float64, len(th))
					for k := range th {
						g := stats.Gaussian{Mu: gp.Mu[k], Sigma: math.Sqrt(gp.Var[k])}
						logs[k] = math.Log(th[k]) + g.LogPDF(x)
						if logs[k] > maxLog {
							maxLog = logs[k]
						}
					}
					var sum float64
					for _, lg := range logs {
						sum += math.Exp(lg - maxLog)
					}
					ll += maxLog + math.Log(sum)
				}
			}
		}
	}
	return ll
}

// objectiveG1 is g₁(Θ, β) from Eq. 9 — the cluster-optimization objective
// with γ held fixed.
func (s *state) objectiveG1() float64 {
	return s.featureSum(s.gamma) + s.attrLogLikelihood()
}
