package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"genclus/internal/hin"
)

// featureValue computes f(θ_i, θ_j, e, γ) = γ·w·Σ_k θ_jk·log θ_ik (Eq. 6)
// exactly as featureSum does per edge; exposed here for direct property
// tests of the three desiderata in §3.3.
func featureValue(thetaI, thetaJ []float64, gamma, w float64) float64 {
	var ce float64
	for k := range thetaI {
		ce += thetaJ[k] * math.Log(thetaI[k])
	}
	return gamma * w * ce
}

// TestFeatureFunctionFig4 reproduces the worked example of Fig. 4: the
// seven-object bibliographic fragment with membership vectors given in the
// paper and the three computed feature values (±1e-4 as printed).
func TestFeatureFunctionFig4(t *testing.T) {
	theta1 := []float64{5.0 / 6, 1.0 / 12, 1.0 / 12}
	theta3 := []float64{7.0 / 8, 1.0 / 16, 1.0 / 16}
	theta4 := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	theta5 := []float64{1.0 / 16, 1.0 / 16, 7.0 / 8}

	cases := []struct {
		name   string
		i, j   []float64
		expect float64
	}{
		{"f(<1,3>)", theta1, theta3, -0.4701},
		{"f(<1,4>)", theta1, theta4, -1.7174},
		{"f(<1,5>)", theta1, theta5, -2.3410},
		{"f(<4,1>)", theta4, theta1, -1.0986},
	}
	for _, c := range cases {
		got := featureValue(c.i, c.j, 1, 1)
		if math.Abs(got-c.expect) > 1e-4 {
			t.Errorf("%s = %.4f, want %.4f", c.name, got, c.expect)
		}
	}
	// Paper's ordering claim: f(<1,3>) ≥ f(<1,4>) ≥ f(<1,5>).
	if !(featureValue(theta1, theta3, 1, 1) >= featureValue(theta1, theta4, 1, 1) &&
		featureValue(theta1, theta4, 1, 1) >= featureValue(theta1, theta5, 1, 1)) {
		t.Error("similarity ordering violated")
	}
	// Asymmetry claim: f(<1,4>) < f(<4,1>) even with equal strengths.
	if !(featureValue(theta1, theta4, 1, 1) < featureValue(theta4, theta1, 1, 1)) {
		t.Error("asymmetry f(<1,4>) < f(<4,1>) violated")
	}
}

// Desideratum 1: f increases with similarity of θ_i and θ_j — maximal over
// θ_j at θ_j = point mass on argmax θ_i... the paper's criterion is that f
// grows as the vectors agree; we test that f(θ, θ) ≥ f(θ, q) for q obtained
// by moving mass away from θ's dominant component.
func TestFeatureSimilarityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		theta := randSimplex(rng, 4)
		// Perturb q away from theta's argmax.
		q := append([]float64(nil), theta...)
		hi, lo := argmax(q), argmin(q)
		shift := q[hi] * rng.Float64() * 0.9
		q[hi] -= shift
		q[lo] += shift
		if featureValue(theta, theta, 1, 1) < featureValue(theta, q, 1, 1)-1e-12 {
			t.Fatalf("f(θ,θ) < f(θ,q): θ=%v q=%v", theta, q)
		}
	}
}

// Desideratum 2: f decreases (more negative) as γ or w grows, for any fixed
// pair of distinct distributions (cross entropy is positive).
func TestFeatureStrengthMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ti := randSimplex(rng, 3)
		tj := randSimplex(rng, 3)
		g1, g2 := 0.5+rng.Float64(), 1.5+rng.Float64()
		w1, w2 := 0.5+rng.Float64(), 1.5+rng.Float64()
		base := featureValue(ti, tj, g1, w1)
		moreGamma := featureValue(ti, tj, g2, w1)
		moreWeight := featureValue(ti, tj, g1, w2)
		return moreGamma <= base+1e-12 && moreWeight <= base+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Desideratum 3: f is not symmetric in its first two arguments.
func TestFeatureAsymmetry(t *testing.T) {
	ti := []float64{0.8, 0.1, 0.1}
	tj := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if featureValue(ti, tj, 1, 1) == featureValue(tj, ti, 1, 1) {
		t.Error("feature function should be asymmetric for these vectors")
	}
}

// f is always non-positive for γ, w ≥ 0 (log of probabilities).
func TestFeatureNonPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ti := randSimplex(rng, 5)
		tj := randSimplex(rng, 5)
		return featureValue(ti, tj, rng.Float64()*10, rng.Float64()*10) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randSimplex(rng *rand.Rand, k int) []float64 {
	v := make([]float64, k)
	var sum float64
	for i := range v {
		v[i] = rng.Float64() + 0.01
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func argmin(v []float64) int {
	best := 0
	for i := range v {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// featureSum over a tiny network must equal the hand-computed edge sum.
func TestFeatureSumMatchesManual(t *testing.T) {
	b := hin.NewBuilder()
	b.AddObject("x", "t")
	b.AddObject("y", "t")
	b.AddLink("x", "y", "r1", 2)
	b.AddLink("y", "x", "r2", 3)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(2)
	s := newState(net, opts, 7, false)
	x, _ := net.IndexOf("x")
	y, _ := net.IndexOf("y")
	s.theta[x][0], s.theta[x][1] = 0.7, 0.3
	s.theta[y][0], s.theta[y][1] = 0.2, 0.8
	r1, _ := net.RelationID("r1")
	r2, _ := net.RelationID("r2")
	gamma := make([]float64, 2)
	gamma[r1], gamma[r2] = 1.5, 0.5

	want := featureValue(s.theta[x], s.theta[y], gamma[r1], 2) +
		featureValue(s.theta[y], s.theta[x], gamma[r2], 3)
	got := s.featureSum(gamma)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("featureSum = %v, want %v", got, want)
	}
}
