package datagen

import (
	"testing"

	"genclus/internal/hin"
)

func TestSocialConfigValidation(t *testing.T) {
	base := DefaultSocialConfig(1)
	mutations := []func(*SocialConfig){
		func(c *SocialConfig) { c.NumCommunities = 1 },
		func(c *SocialConfig) { c.NumUsers = 0 },
		func(c *SocialConfig) { c.NumVideos = 0 },
		func(c *SocialConfig) { c.NumComments = -1 },
		func(c *SocialConfig) { c.ProfileFrac = 1.5 },
		func(c *SocialConfig) { c.LikesPerUser = 0 },
		func(c *SocialConfig) { c.FriendsPerUser = -1 },
		func(c *SocialConfig) { c.LikeFidelity = 0 },
		func(c *SocialConfig) { c.FriendFidelity = 1.2 },
		func(c *SocialConfig) { c.ProfileTerms = 0 },
		func(c *SocialConfig) { c.VideoTerms = 0 },
		func(c *SocialConfig) { c.ClipLengthStep = 0 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if _, err := Social(cfg); err == nil {
			t.Errorf("mutation %d should have been rejected", i)
		}
	}
}

func smallSocial(seed int64) SocialConfig {
	cfg := DefaultSocialConfig(seed)
	cfg.NumUsers = 90
	cfg.NumVideos = 45
	cfg.NumComments = 120
	return cfg
}

func TestSocialShape(t *testing.T) {
	cfg := smallSocial(3)
	ds, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	if got := len(net.ObjectsOfType(TypeUser)); got != cfg.NumUsers {
		t.Errorf("users = %d", got)
	}
	if got := len(net.ObjectsOfType(TypeVideo)); got != cfg.NumVideos {
		t.Errorf("videos = %d", got)
	}
	if got := len(net.ObjectsOfType(TypeComment)); got != cfg.NumComments {
		t.Errorf("comments = %d", got)
	}
	// Attribute incompleteness pattern: every video has text + length; only
	// some users have profiles; comments carry nothing.
	vt, _ := net.AttrID(AttrVideoText)
	cl, _ := net.AttrID(AttrClipLength)
	pr, _ := net.AttrID(AttrProfile)
	for _, v := range net.ObjectsOfType(TypeVideo) {
		if !net.HasObservation(vt, v) || !net.HasObservation(cl, v) {
			t.Fatal("video missing attributes")
		}
	}
	profiled := 0
	for _, u := range net.ObjectsOfType(TypeUser) {
		if net.HasObservation(pr, u) {
			profiled++
		}
		if net.HasObservation(vt, u) || net.HasObservation(cl, u) {
			t.Fatal("user carries video attributes")
		}
	}
	if profiled == 0 || profiled == cfg.NumUsers {
		t.Errorf("profiles should be incomplete: %d of %d observed", profiled, cfg.NumUsers)
	}
	for _, cm := range net.ObjectsOfType(TypeComment) {
		for a := 0; a < net.NumAttrs(); a++ {
			if net.HasObservation(a, cm) {
				t.Fatal("comment carries an attribute")
			}
		}
	}
	// Every object labeled.
	if len(ds.Labels) != net.NumObjects() {
		t.Errorf("labels cover %d of %d objects", len(ds.Labels), net.NumObjects())
	}
}

func TestSocialSchemaWellFormed(t *testing.T) {
	ds, err := Social(smallSocial(5))
	if err != nil {
		t.Fatal(err)
	}
	schema, err := hin.InferSchema(ds.Net)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		RelUploads:    {TypeUser, TypeVideo},
		RelUploadedBy: {TypeVideo, TypeUser},
		RelLike:       {TypeUser, TypeVideo},
		RelLikedBy:    {TypeVideo, TypeUser},
		RelPost:       {TypeUser, TypeComment},
		RelPostedBy:   {TypeComment, TypeUser},
		RelOn:         {TypeComment, TypeVideo},
		RelFriend:     {TypeUser, TypeUser},
	}
	got := map[string][2]string{}
	for _, sig := range schema.Relations {
		got[sig.Relation] = [2]string{sig.SrcType, sig.DstType}
	}
	for rel, pair := range want {
		if got[rel] != pair {
			t.Errorf("relation %s signature = %v, want %v", rel, got[rel], pair)
		}
	}
	if err := schema.Validate(ds.Net); err != nil {
		t.Errorf("schema self-validation failed: %v", err)
	}
}

func TestSocialDeterministicSeed(t *testing.T) {
	a, err := Social(smallSocial(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Social(smallSocial(7))
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.Net.MarshalJSON()
	db, _ := b.Net.MarshalJSON()
	if string(da) != string(db) {
		t.Error("same seed should generate identical social networks")
	}
}
