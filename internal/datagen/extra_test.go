package datagen

import (
	"fmt"
	"strings"
	"testing"
)

func TestSchemaString(t *testing.T) {
	if SchemaAC.String() != "AC" || SchemaACP.String() != "ACP" {
		t.Error("schema names wrong")
	}
	if !strings.Contains(Schema(9).String(), "9") {
		t.Error("unknown schema should show its value")
	}
}

func TestBiblioAuthorCoverageWithFewPapers(t *testing.T) {
	// More authors than papers: the coverage guarantee must attach every
	// author to some paper even when their own area has no papers at all.
	cfg := DefaultBiblioConfig(SchemaAC, 21)
	cfg.NumAuthors = 40
	cfg.NumPapers = 2 // at most 2 of the 4 areas can have papers
	cfg.LabeledPapers = 0
	ds, err := Biblio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := ds.Net.AttrID(AttrText)
	for _, v := range ds.Net.ObjectsOfType(TypeAuthor) {
		if !ds.Net.HasObservation(text, v) {
			t.Fatalf("author %s has no text despite coverage guarantee", ds.Net.Object(v).ID)
		}
	}
}

func TestBiblioCoauthorNoiseAddsCrossAreaLinks(t *testing.T) {
	mk := func(noise int) float64 {
		cfg := DefaultBiblioConfig(SchemaAC, 31)
		cfg.NumAuthors = 200
		cfg.NumPapers = 300
		cfg.CoauthorNoise = noise
		ds, err := Biblio(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := ds.Net.RelationID(RelCoauthor)
		var cross, total float64
		for _, e := range ds.Net.Edges() {
			if e.Rel != rel {
				continue
			}
			total += e.Weight
			// Ground-truth areas follow the round-robin construction.
			fromArea := authorIndexOf(t, ds, e.From) % cfg.NumAreas
			toArea := authorIndexOf(t, ds, e.To) % cfg.NumAreas
			if fromArea != toArea {
				cross += e.Weight
			}
		}
		if total == 0 {
			t.Fatal("no coauthor links")
		}
		return cross / total
	}
	clean := mk(0)
	noisy := mk(5)
	if noisy <= clean {
		t.Errorf("coauthor noise should raise the cross-area fraction: clean=%v noisy=%v", clean, noisy)
	}
}

func authorIndexOf(t *testing.T, ds *Dataset, v int) int {
	t.Helper()
	id := ds.Net.Object(v).ID
	var n int
	if _, err := fmt.Sscanf(id, "author%d", &n); err != nil {
		t.Fatalf("unexpected author id %q", id)
	}
	return n
}
