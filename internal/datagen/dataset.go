// Package datagen generates the synthetic networks the paper evaluates on:
// the weather sensor network of Appendix C, and a bibliographic network
// calibrated to the DBLP four-area dataset's schema and labeling (the real
// dataset is not redistributable; DESIGN.md documents the substitution).
package datagen

import (
	"fmt"

	"genclus/internal/hin"
)

// Dataset bundles a generated network with its ground truth.
type Dataset struct {
	Name string
	Net  *hin.Network
	// NumClusters is the ground-truth cluster count K.
	NumClusters int
	// Labels maps dense object index → ground-truth cluster for the labeled
	// subset (evaluation ignores unlabeled objects, mirroring the partially
	// labeled DBLP data).
	Labels map[int]int
	// TrueMembership, when the generator knows it (weather network), maps
	// dense object index → the generating soft membership vector.
	TrueMembership map[int][]float64
}

// LabeledOfType returns the labeled object indices of the given object type,
// in ascending index order.
func (d *Dataset) LabeledOfType(objType string) []int {
	var out []int
	for _, v := range d.Net.ObjectsOfType(objType) {
		if _, ok := d.Labels[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Validate performs internal consistency checks; generators call it before
// returning and tests call it directly.
func (d *Dataset) Validate() error {
	if d.Net == nil {
		return fmt.Errorf("datagen: dataset %q has no network", d.Name)
	}
	if d.NumClusters <= 1 {
		return fmt.Errorf("datagen: dataset %q has K=%d, want > 1", d.Name, d.NumClusters)
	}
	for v, lab := range d.Labels {
		if v < 0 || v >= d.Net.NumObjects() {
			return fmt.Errorf("datagen: label on out-of-range object %d", v)
		}
		if lab < 0 || lab >= d.NumClusters {
			return fmt.Errorf("datagen: object %d labeled %d outside 0..%d", v, lab, d.NumClusters-1)
		}
	}
	for v, mem := range d.TrueMembership {
		if v < 0 || v >= d.Net.NumObjects() {
			return fmt.Errorf("datagen: membership on out-of-range object %d", v)
		}
		if len(mem) != d.NumClusters {
			return fmt.Errorf("datagen: object %d membership has %d components, want %d", v, len(mem), d.NumClusters)
		}
		var sum float64
		for _, p := range mem {
			if p < 0 {
				return fmt.Errorf("datagen: object %d has negative membership", v)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("datagen: object %d membership sums to %v", v, sum)
		}
	}
	return nil
}
