package datagen

import (
	"fmt"
	"math/rand"

	"genclus/internal/hin"
	"genclus/internal/textgen"
)

// Object types and relation names used by the bibliographic networks,
// matching the paper's §5.1 nomenclature.
const (
	TypeAuthor = "author"
	TypeConf   = "conference"
	TypePaper  = "paper"

	AttrText = "text"

	// AC network relations.
	RelPublishIn   = "publish_in"   // 〈A,C〉, weighted by #papers
	RelPublishedBy = "published_by" // 〈C,A〉
	RelCoauthor    = "coauthor"     // 〈A,A〉

	// ACP network relations (binary weights).
	RelWrite        = "write"           // 〈A,P〉
	RelWrittenBy    = "written_by"      // 〈P,A〉
	RelPublishCP    = "publish"         // 〈C,P〉
	RelPublishedByP = "published_by_pc" // 〈P,C〉
)

// Schema selects which of the two DBLP-style networks to build.
type Schema int

const (
	// SchemaAC builds the author–conference network: text on all objects
	// (complete attribute), weighted 〈A,C〉 / 〈C,A〉 / 〈A,A〉 links.
	SchemaAC Schema = iota
	// SchemaACP builds the author–conference–paper network: text only on
	// papers (incomplete attribute), binary 〈A,P〉/〈P,A〉/〈C,P〉/〈P,C〉 links.
	SchemaACP
)

func (s Schema) String() string {
	switch s {
	case SchemaAC:
		return "AC"
	case SchemaACP:
		return "ACP"
	default:
		return fmt.Sprintf("Schema(%d)", int(s))
	}
}

// BiblioConfig parameterizes the bibliographic generator. The defaults
// (DefaultBiblioConfig) are a scaled-down DBLP four-area: same schema, same
// relative labeling, smaller object counts so experiments finish quickly;
// FullScaleBiblioConfig reproduces the paper's counts.
type BiblioConfig struct {
	Schema      Schema
	NumAreas    int // research areas / clusters (paper: 4)
	NumConfs    int // conferences (paper: 20)
	NumAuthors  int // paper: 14475
	NumPapers   int // paper: 14376
	TitleLength int // terms per paper title

	// AuthorsPerPaper is the maximum number of authors drawn per paper
	// (uniform in 1..AuthorsPerPaper).
	AuthorsPerPaper int

	// AreaFidelity is the probability that a paper's conference and authors
	// come from the paper's own area (the rest leak uniformly); conference
	// leakage is what makes venues "broad" and authorship what makes the
	// 〈P,A〉 relation more reliable than 〈P,C〉 (Fig. 9's finding).
	ConfFidelity   float64
	AuthorFidelity float64

	// TitleOwnAreaMass is the mixture weight of the paper's own area when
	// sampling its title terms.
	TitleOwnAreaMass float64

	// CoauthorNoise adds this many random coauthor pairs per author to the
	// AC network. DBLP coauthorship spans areas freely ("the spectrum of
	// co-authors may often be quite broad", §5.2.3 — the learned strength
	// of 〈A,A〉 is 0.01); these incidental collaborations are what makes
	// the relation noisy and what the baselines, which weight every link
	// type equally, are hurt by.
	CoauthorNoise int

	// LabeledAuthorFrac / LabeledPapers control ground-truth availability,
	// mirroring DBLP's partial labels (4236 of 14475 authors; 100 papers;
	// all conferences).
	LabeledAuthorFrac float64
	LabeledPapers     int

	Text textgen.Config
	Seed int64
}

// DefaultBiblioConfig is the harness default: the paper's schema at ~1/8
// scale.
func DefaultBiblioConfig(schema Schema, seed int64) BiblioConfig {
	return BiblioConfig{
		Schema:            schema,
		NumAreas:          4,
		NumConfs:          20,
		NumAuthors:        1200,
		NumPapers:         1800,
		TitleLength:       9,
		AuthorsPerPaper:   3,
		ConfFidelity:      0.72,
		AuthorFidelity:    0.92,
		TitleOwnAreaMass:  0.85,
		CoauthorNoise:     3,
		LabeledAuthorFrac: 0.3,
		LabeledPapers:     100,
		Text:              textgen.DefaultConfig(4),
		Seed:              seed,
	}
}

// FullScaleBiblioConfig matches the DBLP four-area counts from §5.1.
func FullScaleBiblioConfig(schema Schema, seed int64) BiblioConfig {
	cfg := DefaultBiblioConfig(schema, seed)
	cfg.NumAuthors = 14475
	cfg.NumPapers = 14376
	cfg.LabeledAuthorFrac = 4236.0 / 14475.0
	cfg.LabeledPapers = 100
	return cfg
}

func (c BiblioConfig) validate() error {
	if c.NumAreas < 2 {
		return fmt.Errorf("datagen: biblio needs ≥ 2 areas, got %d", c.NumAreas)
	}
	if c.NumConfs < c.NumAreas {
		return fmt.Errorf("datagen: biblio needs ≥ %d conferences, got %d", c.NumAreas, c.NumConfs)
	}
	if c.NumAuthors <= 0 || c.NumPapers <= 0 {
		return fmt.Errorf("datagen: biblio needs positive author/paper counts")
	}
	if c.TitleLength <= 0 {
		return fmt.Errorf("datagen: biblio TitleLength = %d, want > 0", c.TitleLength)
	}
	if c.AuthorsPerPaper <= 0 {
		return fmt.Errorf("datagen: biblio AuthorsPerPaper = %d, want > 0", c.AuthorsPerPaper)
	}
	for _, p := range []float64{c.ConfFidelity, c.AuthorFidelity, c.TitleOwnAreaMass} {
		if !(p > 0 && p <= 1) {
			return fmt.Errorf("datagen: biblio fidelity %v outside (0,1]", p)
		}
	}
	if c.LabeledAuthorFrac < 0 || c.LabeledAuthorFrac > 1 {
		return fmt.Errorf("datagen: LabeledAuthorFrac = %v", c.LabeledAuthorFrac)
	}
	if c.LabeledPapers < 0 {
		return fmt.Errorf("datagen: LabeledPapers = %d", c.LabeledPapers)
	}
	if c.CoauthorNoise < 0 {
		return fmt.Errorf("datagen: CoauthorNoise = %d", c.CoauthorNoise)
	}
	return nil
}

// Biblio generates a DBLP-four-area-style network (see DESIGN.md for the
// substitution rationale). Conference c belongs to area c mod NumAreas;
// author a's primary area is a mod NumAreas. Papers pick an area uniformly,
// then a venue and authors mostly from that area.
func Biblio(cfg BiblioConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cfg.Text.NumAreas = cfg.NumAreas
	corpus, err := textgen.NewCorpusModel(cfg.Text, rng)
	if err != nil {
		return nil, fmt.Errorf("datagen: corpus: %w", err)
	}

	confArea := make([]int, cfg.NumConfs)
	for c := range confArea {
		confArea[c] = c % cfg.NumAreas
	}
	authorArea := make([]int, cfg.NumAuthors)
	for a := range authorArea {
		authorArea[a] = a % cfg.NumAreas
	}

	papers := make([]paperRec, cfg.NumPapers)

	pickFrom := func(area int, fidelity float64, total int, areaOf []int) int {
		if rng.Float64() < fidelity {
			// Rejection-sample a member of the area (areas are balanced by
			// construction, so this terminates fast).
			for {
				i := rng.Intn(total)
				if areaOf[i] == area {
					return i
				}
			}
		}
		return rng.Intn(total)
	}

	for p := range papers {
		area := rng.Intn(cfg.NumAreas)
		conf := pickFrom(area, cfg.ConfFidelity, cfg.NumConfs, confArea)
		nAuth := 1 + rng.Intn(cfg.AuthorsPerPaper)
		authorSet := make(map[int]bool, nAuth)
		for len(authorSet) < nAuth {
			authorSet[pickFrom(area, cfg.AuthorFidelity, cfg.NumAuthors, authorArea)] = true
		}
		authors := make([]int, 0, len(authorSet))
		for a := range authorSet {
			authors = append(authors, a)
		}
		mixture := make([]float64, cfg.NumAreas)
		leak := (1 - cfg.TitleOwnAreaMass) / float64(cfg.NumAreas)
		for k := range mixture {
			mixture[k] = leak
		}
		mixture[area] += cfg.TitleOwnAreaMass
		terms, err := corpus.SampleTermCounts(rng, mixture, cfg.TitleLength)
		if err != nil {
			return nil, fmt.Errorf("datagen: paper %d title: %w", p, err)
		}
		papers[p] = paperRec{area: area, conf: conf, authors: authors, terms: terms}
	}

	// In DBLP an author exists because they wrote something; guarantee every
	// author appears on at least one paper (preferably of their own area) so
	// no object is fully disconnected.
	hasPaper := make([]bool, cfg.NumAuthors)
	byArea := make([][]int, cfg.NumAreas)
	for p, rec := range papers {
		byArea[rec.area] = append(byArea[rec.area], p)
		for _, a := range rec.authors {
			hasPaper[a] = true
		}
	}
	for a, ok := range hasPaper {
		if ok {
			continue
		}
		pool := byArea[authorArea[a]]
		if len(pool) == 0 {
			pool = allPapers(cfg.NumPapers)
		}
		p := pool[rng.Intn(len(pool))]
		papers[p].authors = append(papers[p].authors, a)
	}

	switch cfg.Schema {
	case SchemaAC:
		return buildAC(cfg, corpus, confArea, authorArea, papers, rng)
	case SchemaACP:
		return buildACP(cfg, corpus, confArea, authorArea, papers, rng)
	default:
		return nil, fmt.Errorf("datagen: unknown schema %v", cfg.Schema)
	}
}

func allPapers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// paperRec is the intermediate record the generator materializes per paper
// before projecting it into the AC or ACP schema.
type paperRec struct {
	area    int
	conf    int
	authors []int
	terms   map[int]float64
}

func buildAC(cfg BiblioConfig, corpus *textgen.CorpusModel, confArea, authorArea []int, papers []paperRec, rng *rand.Rand) (*Dataset, error) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: AttrText, Kind: hin.Categorical, VocabSize: corpus.VocabSize})
	authorIdx := make([]int, cfg.NumAuthors)
	for a := 0; a < cfg.NumAuthors; a++ {
		authorIdx[a] = b.AddObject(fmt.Sprintf("author%05d", a), TypeAuthor)
	}
	confIdx := make([]int, cfg.NumConfs)
	for c := 0; c < cfg.NumConfs; c++ {
		confIdx[c] = b.AddObject(fmt.Sprintf("conf%02d", c), TypeConf)
	}

	// Aggregate paper titles onto authors and conferences; count link
	// multiplicities for the weighted AC relations.
	acWeight := make(map[[2]int]float64) // (author, conf) → #papers
	coWeight := make(map[[2]int]float64) // (author, author) → #coauthored
	for _, p := range papers {
		for _, a := range p.authors {
			acWeight[[2]int{a, p.conf}]++
			for term, c := range p.terms {
				b.AddTermCountByIndex(authorIdx[a], AttrText, term, c)
			}
		}
		for term, c := range p.terms {
			b.AddTermCountByIndex(confIdx[p.conf], AttrText, term, c)
		}
		for i := 0; i < len(p.authors); i++ {
			for j := 0; j < len(p.authors); j++ {
				if i != j {
					coWeight[[2]int{p.authors[i], p.authors[j]}]++
				}
			}
		}
	}
	for key, w := range acWeight {
		b.AddLinkByIndex(authorIdx[key[0]], confIdx[key[1]], RelPublishIn, w)
		b.AddLinkByIndex(confIdx[key[1]], authorIdx[key[0]], RelPublishedBy, w)
	}
	// Incidental cross-area collaborations (see BiblioConfig.CoauthorNoise).
	for a := 0; a < cfg.NumAuthors; a++ {
		for n := 0; n < cfg.CoauthorNoise; n++ {
			other := rng.Intn(cfg.NumAuthors)
			if other != a {
				coWeight[[2]int{a, other}]++
				coWeight[[2]int{other, a}]++
			}
		}
	}
	for key, w := range coWeight {
		b.AddLinkByIndex(authorIdx[key[0]], authorIdx[key[1]], RelCoauthor, w)
	}

	net, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datagen: build AC network: %w", err)
	}
	ds := &Dataset{
		Name:        fmt.Sprintf("biblio-AC(A=%d,C=%d,P=%d)", cfg.NumAuthors, cfg.NumConfs, cfg.NumPapers),
		Net:         net,
		NumClusters: cfg.NumAreas,
		Labels:      make(map[int]int),
	}
	for c := 0; c < cfg.NumConfs; c++ {
		ds.Labels[confIdx[c]] = confArea[c]
	}
	labelAuthors(ds, cfg, authorIdx, authorArea, rng)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func buildACP(cfg BiblioConfig, corpus *textgen.CorpusModel, confArea, authorArea []int, papers []paperRec, rng *rand.Rand) (*Dataset, error) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: AttrText, Kind: hin.Categorical, VocabSize: corpus.VocabSize})
	authorIdx := make([]int, cfg.NumAuthors)
	for a := 0; a < cfg.NumAuthors; a++ {
		authorIdx[a] = b.AddObject(fmt.Sprintf("author%05d", a), TypeAuthor)
	}
	confIdx := make([]int, cfg.NumConfs)
	for c := 0; c < cfg.NumConfs; c++ {
		confIdx[c] = b.AddObject(fmt.Sprintf("conf%02d", c), TypeConf)
	}
	paperIdx := make([]int, cfg.NumPapers)
	for p := 0; p < cfg.NumPapers; p++ {
		paperIdx[p] = b.AddObject(fmt.Sprintf("paper%05d", p), TypePaper)
	}
	for p, rec := range papers {
		for term, c := range rec.terms {
			b.AddTermCountByIndex(paperIdx[p], AttrText, term, c)
		}
		for _, a := range rec.authors {
			b.AddLinkByIndex(authorIdx[a], paperIdx[p], RelWrite, 1)
			b.AddLinkByIndex(paperIdx[p], authorIdx[a], RelWrittenBy, 1)
		}
		b.AddLinkByIndex(confIdx[rec.conf], paperIdx[p], RelPublishCP, 1)
		b.AddLinkByIndex(paperIdx[p], confIdx[rec.conf], RelPublishedByP, 1)
	}

	net, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datagen: build ACP network: %w", err)
	}
	ds := &Dataset{
		Name:        fmt.Sprintf("biblio-ACP(A=%d,C=%d,P=%d)", cfg.NumAuthors, cfg.NumConfs, cfg.NumPapers),
		Net:         net,
		NumClusters: cfg.NumAreas,
		Labels:      make(map[int]int),
	}
	for c := 0; c < cfg.NumConfs; c++ {
		ds.Labels[confIdx[c]] = confArea[c]
	}
	labelAuthors(ds, cfg, authorIdx, authorArea, rng)
	// Label a random subset of papers (DBLP labels 100 of 14376).
	perm := rng.Perm(cfg.NumPapers)
	n := cfg.LabeledPapers
	if n > cfg.NumPapers {
		n = cfg.NumPapers
	}
	for _, p := range perm[:n] {
		ds.Labels[paperIdx[p]] = papers[p].area
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func labelAuthors(ds *Dataset, cfg BiblioConfig, authorIdx, authorArea []int, rng *rand.Rand) {
	n := int(cfg.LabeledAuthorFrac * float64(cfg.NumAuthors))
	perm := rng.Perm(cfg.NumAuthors)
	for _, a := range perm[:n] {
		ds.Labels[authorIdx[a]] = authorArea[a]
	}
}
