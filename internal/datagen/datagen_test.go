package datagen

import (
	"fmt"
	"math"
	"testing"

	"genclus/internal/hin"
)

func TestWeatherConfigValidation(t *testing.T) {
	bad := []WeatherConfig{
		{NumT: 0, NumP: 10, K: 4, Means: make([][2]float64, 4), StdDev: 0.2, NumObs: 1, Neighbors: 5, TSpread: 2, PSpread: 3},
		{NumT: 10, NumP: 0, K: 4, Means: make([][2]float64, 4), StdDev: 0.2, NumObs: 1, Neighbors: 5, TSpread: 2, PSpread: 3},
		{NumT: 10, NumP: 10, K: 1, Means: make([][2]float64, 1), StdDev: 0.2, NumObs: 1, Neighbors: 5, TSpread: 1, PSpread: 1},
		{NumT: 10, NumP: 10, K: 4, Means: make([][2]float64, 3), StdDev: 0.2, NumObs: 1, Neighbors: 5, TSpread: 2, PSpread: 3},
		{NumT: 10, NumP: 10, K: 4, Means: make([][2]float64, 4), StdDev: 0, NumObs: 1, Neighbors: 5, TSpread: 2, PSpread: 3},
		{NumT: 10, NumP: 10, K: 4, Means: make([][2]float64, 4), StdDev: 0.2, NumObs: -1, Neighbors: 5, TSpread: 2, PSpread: 3},
		{NumT: 10, NumP: 10, K: 4, Means: make([][2]float64, 4), StdDev: 0.2, NumObs: 1, Neighbors: 0, TSpread: 2, PSpread: 3},
		{NumT: 10, NumP: 10, K: 4, Means: make([][2]float64, 4), StdDev: 0.2, NumObs: 1, Neighbors: 5, TSpread: 0, PSpread: 3},
		{NumT: 10, NumP: 10, K: 4, Means: make([][2]float64, 4), StdDev: 0.2, NumObs: 1, Neighbors: 5, TSpread: 2, PSpread: 9},
	}
	for i, cfg := range bad {
		if _, err := Weather(cfg); err == nil {
			t.Errorf("config %d should have been rejected", i)
		}
	}
}

func TestWeatherShape(t *testing.T) {
	cfg := WeatherSetting1(120, 60, 5, 7)
	ds, err := Weather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	if net.NumObjects() != 180 {
		t.Errorf("objects = %d, want 180", net.NumObjects())
	}
	if got := len(net.ObjectsOfType(TypeTempSensor)); got != 120 {
		t.Errorf("temp sensors = %d", got)
	}
	if got := len(net.ObjectsOfType(TypePrecipSensor)); got != 60 {
		t.Errorf("precip sensors = %d", got)
	}
	// Every sensor links to exactly Neighbors sensors of each type
	// (both types have > Neighbors members here).
	for v := 0; v < net.NumObjects(); v++ {
		perRel := map[string]int{}
		for _, e := range net.OutEdges(v) {
			perRel[net.RelationName(e.Rel)]++
			if e.Weight != 1 {
				t.Fatal("weather links must be binary")
			}
		}
		isTemp := net.TypeOf(v) == TypeTempSensor
		if isTemp {
			if perRel[RelTT] != cfg.Neighbors || perRel[RelTP] != cfg.Neighbors {
				t.Fatalf("temp sensor %d out-links: %v", v, perRel)
			}
		} else {
			if perRel[RelPT] != cfg.Neighbors || perRel[RelPP] != cfg.Neighbors {
				t.Fatalf("precip sensor %d out-links: %v", v, perRel)
			}
		}
	}
	if net.NumRelations() != 4 {
		t.Errorf("relations = %d", net.NumRelations())
	}
}

func TestWeatherIncompleteAttributes(t *testing.T) {
	ds, err := Weather(WeatherSetting1(50, 30, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	tempAttr, _ := net.AttrID(AttrTemperature)
	precAttr, _ := net.AttrID(AttrPrecipitation)
	for _, v := range net.ObjectsOfType(TypeTempSensor) {
		if !net.HasObservation(tempAttr, v) {
			t.Fatalf("temp sensor %d missing temperature obs", v)
		}
		if net.HasObservation(precAttr, v) {
			t.Fatalf("temp sensor %d has precipitation obs", v)
		}
		if len(net.NumericObs(tempAttr, v)) != 5 {
			t.Fatalf("temp sensor %d has %d obs, want 5", v, len(net.NumericObs(tempAttr, v)))
		}
	}
	for _, v := range net.ObjectsOfType(TypePrecipSensor) {
		if net.HasObservation(tempAttr, v) || !net.HasObservation(precAttr, v) {
			t.Fatalf("precip sensor %d attribute assignment wrong", v)
		}
	}
}

func TestWeatherMembershipSpread(t *testing.T) {
	ds, err := Weather(WeatherSetting1(80, 80, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	for v, mem := range ds.TrueMembership {
		nonzero := 0
		for _, p := range mem {
			if p > 0 {
				nonzero++
			}
		}
		if net.TypeOf(v) == TypeTempSensor && nonzero != 2 {
			t.Fatalf("temp sensor %d mixes over %d clusters, want 2", v, nonzero)
		}
		if net.TypeOf(v) == TypePrecipSensor && nonzero != 3 {
			t.Fatalf("precip sensor %d mixes over %d clusters, want 3", v, nonzero)
		}
	}
}

func TestWeatherObservationsNearMeans(t *testing.T) {
	// With tight σ and well-separated means (Setting 1), each observation
	// should fall near one of the cluster means of the sensor's attribute.
	cfg := WeatherSetting1(100, 100, 10, 10)
	ds, err := Weather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	tempAttr, _ := net.AttrID(AttrTemperature)
	for _, v := range net.ObjectsOfType(TypeTempSensor) {
		for _, x := range net.NumericObs(tempAttr, v) {
			nearest := math.Inf(1)
			for _, m := range cfg.Means {
				if d := math.Abs(x - m[0]); d < nearest {
					nearest = d
				}
			}
			if nearest > 5*cfg.StdDev {
				t.Fatalf("observation %v is %v σ away from every mean", x, nearest/cfg.StdDev)
			}
		}
	}
}

func TestWeatherDeterministicSeed(t *testing.T) {
	a, err := Weather(WeatherSetting1(40, 20, 3, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Weather(WeatherSetting1(40, 20, 3, 42))
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.Net.MarshalJSON()
	db, _ := b.Net.MarshalJSON()
	if string(da) != string(db) {
		t.Error("same seed should generate identical networks")
	}
	c, err := Weather(WeatherSetting1(40, 20, 3, 43))
	if err != nil {
		t.Fatal(err)
	}
	dc, _ := c.Net.MarshalJSON()
	if string(da) == string(dc) {
		t.Error("different seeds should differ")
	}
}

func TestWeatherSetting2Means(t *testing.T) {
	cfg := WeatherSetting2(10, 10, 1, 1)
	if cfg.Means[1][0] != -1 || cfg.Means[3][1] != -1 {
		t.Errorf("Setting 2 means wrong: %v", cfg.Means)
	}
}

func TestRingMembership(t *testing.T) {
	lo := []float64{0, 0.25, 0.5, 0.75}
	hi := []float64{0.25, 0.5, 0.75, 1}
	// A point deep inside ring 1 with spread 2 and sharp softness loads
	// most mass on ring 1.
	mem := ringMembership(0.375, lo, hi, 2, 0.01)
	if mem[1] < 0.9 {
		t.Errorf("in-band membership = %v", mem)
	}
	var sum float64
	for _, p := range mem {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("membership sums to %v", sum)
	}
	// A point exactly on the ring 1/2 boundary splits evenly between them.
	memB := ringMembership(0.5, lo, hi, 2, 0.01)
	if math.Abs(memB[1]-memB[2]) > 1e-12 {
		t.Errorf("boundary membership not symmetric: %v", memB)
	}
	// Spread 3 touches exactly 3 rings.
	mem3 := ringMembership(0.5, lo, hi, 3, 0.05)
	nonzero := 0
	for _, p := range mem3 {
		if p > 0 {
			nonzero++
		}
	}
	if nonzero != 3 {
		t.Errorf("spread-3 membership has %d nonzero entries", nonzero)
	}
	// Flatter softness yields flatter memberships.
	sharp := ringMembership(0.6, lo, hi, 3, 0.01)
	flat := ringMembership(0.6, lo, hi, 3, 0.5)
	if maxOf(flat) >= maxOf(sharp) {
		t.Errorf("softness should flatten: sharp %v flat %v", sharp, flat)
	}
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func TestBiblioConfigValidation(t *testing.T) {
	base := DefaultBiblioConfig(SchemaAC, 1)
	mutations := []func(*BiblioConfig){
		func(c *BiblioConfig) { c.NumAreas = 1 },
		func(c *BiblioConfig) { c.NumConfs = 2 },
		func(c *BiblioConfig) { c.NumAuthors = 0 },
		func(c *BiblioConfig) { c.NumPapers = 0 },
		func(c *BiblioConfig) { c.TitleLength = 0 },
		func(c *BiblioConfig) { c.AuthorsPerPaper = 0 },
		func(c *BiblioConfig) { c.ConfFidelity = 0 },
		func(c *BiblioConfig) { c.AuthorFidelity = 1.5 },
		func(c *BiblioConfig) { c.TitleOwnAreaMass = -0.1 },
		func(c *BiblioConfig) { c.LabeledAuthorFrac = 1.2 },
		func(c *BiblioConfig) { c.LabeledPapers = -5 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if _, err := Biblio(cfg); err == nil {
			t.Errorf("mutation %d should have been rejected", i)
		}
	}
}

func smallBiblio(schema Schema, seed int64) BiblioConfig {
	cfg := DefaultBiblioConfig(schema, seed)
	cfg.NumAuthors = 120
	cfg.NumPapers = 200
	cfg.LabeledPapers = 40
	return cfg
}

func TestBiblioACShape(t *testing.T) {
	cfg := smallBiblio(SchemaAC, 11)
	ds, err := Biblio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	if got := len(net.ObjectsOfType(TypeAuthor)); got != cfg.NumAuthors {
		t.Errorf("authors = %d", got)
	}
	if got := len(net.ObjectsOfType(TypeConf)); got != cfg.NumConfs {
		t.Errorf("conferences = %d", got)
	}
	if len(net.ObjectsOfType(TypePaper)) != 0 {
		t.Error("AC network must not contain paper objects")
	}
	// Relations: publish_in, published_by, coauthor.
	if _, ok := net.RelationID(RelPublishIn); !ok {
		t.Error("missing publish_in")
	}
	if _, ok := net.RelationID(RelPublishedBy); !ok {
		t.Error("missing published_by")
	}
	if _, ok := net.RelationID(RelCoauthor); !ok {
		t.Error("missing coauthor")
	}
	// Text is complete: every object has text.
	text, _ := net.AttrID(AttrText)
	for v := 0; v < net.NumObjects(); v++ {
		if !net.HasObservation(text, v) {
			t.Fatalf("object %s has no text in AC network", net.Object(v).ID)
		}
	}
	// 〈A,C〉 and 〈C,A〉 must mirror each other with equal weights.
	rPub, _ := net.RelationID(RelPublishIn)
	rRev, _ := net.RelationID(RelPublishedBy)
	fwd := map[[2]int]float64{}
	rev := map[[2]int]float64{}
	for _, e := range net.Edges() {
		if e.Rel == rPub {
			fwd[[2]int{e.From, e.To}] = e.Weight
		}
		if e.Rel == rRev {
			rev[[2]int{e.To, e.From}] = e.Weight
		}
	}
	if len(fwd) == 0 || len(fwd) != len(rev) {
		t.Fatalf("AC link mirror counts: %d vs %d", len(fwd), len(rev))
	}
	for k, w := range fwd {
		if rev[k] != w {
			t.Fatalf("mirror weight mismatch at %v: %v vs %v", k, w, rev[k])
		}
	}
}

func TestBiblioACPShape(t *testing.T) {
	cfg := smallBiblio(SchemaACP, 12)
	ds, err := Biblio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	if got := len(net.ObjectsOfType(TypePaper)); got != cfg.NumPapers {
		t.Errorf("papers = %d", got)
	}
	// Text is incomplete: only papers carry it.
	text, _ := net.AttrID(AttrText)
	for _, v := range net.ObjectsOfType(TypePaper) {
		if !net.HasObservation(text, v) {
			t.Fatal("paper without text")
		}
	}
	for _, v := range net.ObjectsOfType(TypeAuthor) {
		if net.HasObservation(text, v) {
			t.Fatal("author with text in ACP network")
		}
	}
	for _, v := range net.ObjectsOfType(TypeConf) {
		if net.HasObservation(text, v) {
			t.Fatal("conference with text in ACP network")
		}
	}
	// Every paper has exactly one publishing conference and ≥1 author.
	rByC, _ := net.RelationID(RelPublishedByP)
	rByA, _ := net.RelationID(RelWrittenBy)
	for _, p := range net.ObjectsOfType(TypePaper) {
		confs, authors := 0, 0
		for _, e := range net.OutEdges(p) {
			switch e.Rel {
			case rByC:
				confs++
			case rByA:
				authors++
			}
			if e.Weight != 1 {
				t.Fatal("ACP links must be binary")
			}
		}
		if confs != 1 {
			t.Fatalf("paper %d has %d conference links", p, confs)
		}
		// The coverage guarantee can attach extra paperless authors, so only
		// the lower bound is exact.
		if authors < 1 {
			t.Fatalf("paper %d has no authors", p)
		}
	}
}

func TestBiblioLabels(t *testing.T) {
	cfg := smallBiblio(SchemaACP, 13)
	ds, err := Biblio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All conferences labeled.
	if got := len(ds.LabeledOfType(TypeConf)); got != cfg.NumConfs {
		t.Errorf("labeled conferences = %d", got)
	}
	// ~30% of authors labeled.
	wantAuthors := int(cfg.LabeledAuthorFrac * float64(cfg.NumAuthors))
	if got := len(ds.LabeledOfType(TypeAuthor)); got != wantAuthors {
		t.Errorf("labeled authors = %d, want %d", got, wantAuthors)
	}
	if got := len(ds.LabeledOfType(TypePaper)); got != cfg.LabeledPapers {
		t.Errorf("labeled papers = %d, want %d", got, cfg.LabeledPapers)
	}
	// Labels are within range (Validate covers this, but double-check the
	// conference labels match the round-robin construction).
	for c := 0; c < cfg.NumConfs; c++ {
		v, ok := ds.Net.IndexOf(fmt.Sprintf("conf%02d", c))
		if !ok {
			t.Fatalf("conf %d missing", c)
		}
		if ds.Labels[v] != c%cfg.NumAreas {
			t.Fatalf("conference %d labeled %d, want %d", c, ds.Labels[v], c%cfg.NumAreas)
		}
	}
}

func TestBiblioDeterministicSeed(t *testing.T) {
	a, err := Biblio(smallBiblio(SchemaAC, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Biblio(smallBiblio(SchemaAC, 99))
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.Net.MarshalJSON()
	db, _ := b.Net.MarshalJSON()
	if string(da) != string(db) {
		t.Error("same seed should generate identical networks")
	}
}

func TestBiblioTextSignal(t *testing.T) {
	// Conference text should be dominated by its own area's vocabulary
	// block — this is the signal GenClus clusters on.
	cfg := smallBiblio(SchemaAC, 14)
	cfg.NumPapers = 600
	ds, err := Biblio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net
	text, _ := net.AttrID(AttrText)
	termsPerArea := cfg.Text.TermsPerArea
	correct := 0
	for c := 0; c < cfg.NumConfs; c++ {
		v, _ := net.IndexOf(fmt.Sprintf("conf%02d", c))
		perArea := make([]float64, cfg.NumAreas)
		for _, tc := range net.TermCounts(text, v) {
			if tc.Term < cfg.NumAreas*termsPerArea {
				perArea[tc.Term/termsPerArea] += tc.Count
			}
		}
		if bestArea(perArea) == c%cfg.NumAreas {
			correct++
		}
	}
	if correct < cfg.NumConfs*3/4 {
		t.Errorf("only %d/%d conferences have dominant own-area text", correct, cfg.NumConfs)
	}
}

func bestArea(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func TestDatasetValidateCatchesCorruption(t *testing.T) {
	ds, err := Weather(WeatherSetting1(20, 20, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	ds.Labels[99999] = 0
	if err := ds.Validate(); err == nil {
		t.Error("out-of-range label index should fail validation")
	}
	delete(ds.Labels, 99999)
	ds.Labels[0] = 77
	if err := ds.Validate(); err == nil {
		t.Error("out-of-range label value should fail validation")
	}
	ds.Labels[0] = 0
	ds.TrueMembership[0] = []float64{0.5, 0.5} // wrong K
	if err := ds.Validate(); err == nil {
		t.Error("wrong membership length should fail validation")
	}
}

func TestFullScaleConfigCounts(t *testing.T) {
	cfg := FullScaleBiblioConfig(SchemaACP, 1)
	if cfg.NumAuthors != 14475 || cfg.NumPapers != 14376 || cfg.NumConfs != 20 {
		t.Errorf("full-scale counts wrong: %+v", cfg)
	}
	if math.Abs(cfg.LabeledAuthorFrac*float64(cfg.NumAuthors)-4236) > 1 {
		t.Errorf("labeled author fraction wrong: %v", cfg.LabeledAuthorFrac)
	}
}

// Ensure the dataset JSON round-trips through hin (generators feed files to
// cmd/genclus).
func TestWeatherNetworkRoundTrip(t *testing.T) {
	ds, err := Weather(WeatherSetting1(30, 15, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ds.Net.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := hin.FromJSONLimited(data, hin.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects() != ds.Net.NumObjects() || back.NumEdges() != ds.Net.NumEdges() {
		t.Error("round trip changed shape")
	}
}
