package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"genclus/internal/hin"
	"genclus/internal/spatial"
	"genclus/internal/stats"
)

// Attribute and relation names used by the weather network.
const (
	AttrTemperature   = "temperature"
	AttrPrecipitation = "precipitation"
	RelTT             = "<T,T>"
	RelTP             = "<T,P>"
	RelPT             = "<P,T>"
	RelPP             = "<P,P>"
	TypeTempSensor    = "temp_sensor"
	TypePrecipSensor  = "precip_sensor"
)

// WeatherConfig parameterizes the Appendix C generator.
type WeatherConfig struct {
	NumT int // number of temperature sensors (paper: 1000)
	NumP int // number of precipitation sensors (paper: 250/500/1000)
	K    int // number of weather patterns / clusters (paper: 4)
	// Means[k] is the (temperature, precipitation) mean of pattern k.
	Means [][2]float64
	// StdDev is the per-attribute standard deviation (paper: 0.2, with zero
	// temperature–precipitation correlation).
	StdDev float64
	// NumObs is the number of observations per sensor (paper: 1, 5, or 20).
	NumObs int
	// Neighbors is k in the kNN link construction, per sensor type
	// (paper: 5 per type, 10 links total per sensor).
	Neighbors int
	// TSpread / PSpread are how many nearest ring-patterns a sensor mixes
	// over. The paper's setup makes temperature sensors mix over 2 (less
	// noisy) and precipitation sensors over 3 (more noisy).
	TSpread, PSpread int
	// TSoftness / PSoftness smooth the reciprocal-distance membership: the
	// larger the value, the flatter the mixture a sensor draws observations
	// from. The paper describes P sensors as markedly noisier than T
	// sensors; the defaults encode that asymmetry.
	TSoftness, PSoftness float64
	Seed                 int64
}

// WeatherSetting1 returns the paper's Setting 1: well-separated diagonal
// means (1,1), (2,2), (3,3), (4,4), σ = 0.2.
func WeatherSetting1(numT, numP, numObs int, seed int64) WeatherConfig {
	return WeatherConfig{
		NumT: numT, NumP: numP, K: 4,
		Means:  [][2]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}},
		StdDev: 0.2, NumObs: numObs, Neighbors: 5,
		TSpread: 2, PSpread: 3,
		TSoftness: 0.01, PSoftness: 0.01, Seed: seed,
	}
}

// WeatherSetting2 returns the paper's Setting 2: means (1,1), (−1,1),
// (−1,−1), (1,−1) — a pattern is identifiable only from both attributes
// jointly, which no single sensor observes (the hard case).
func WeatherSetting2(numT, numP, numObs int, seed int64) WeatherConfig {
	return WeatherConfig{
		NumT: numT, NumP: numP, K: 4,
		Means:  [][2]float64{{1, 1}, {-1, 1}, {-1, -1}, {1, -1}},
		StdDev: 0.2, NumObs: numObs, Neighbors: 5,
		TSpread: 2, PSpread: 3,
		TSoftness: 0.01, PSoftness: 0.01, Seed: seed,
	}
}

func (c WeatherConfig) validate() error {
	if c.NumT <= 0 || c.NumP <= 0 {
		return fmt.Errorf("datagen: weather needs positive sensor counts, got T=%d P=%d", c.NumT, c.NumP)
	}
	if c.K < 2 {
		return fmt.Errorf("datagen: weather needs K ≥ 2, got %d", c.K)
	}
	if len(c.Means) != c.K {
		return fmt.Errorf("datagen: weather has %d means for K=%d", len(c.Means), c.K)
	}
	if !(c.StdDev > 0) {
		return fmt.Errorf("datagen: weather StdDev = %v, want > 0", c.StdDev)
	}
	if c.NumObs < 0 {
		return fmt.Errorf("datagen: weather NumObs = %d, want ≥ 0", c.NumObs)
	}
	if c.Neighbors <= 0 {
		return fmt.Errorf("datagen: weather Neighbors = %d, want > 0", c.Neighbors)
	}
	if c.TSpread < 1 || c.TSpread > c.K || c.PSpread < 1 || c.PSpread > c.K {
		return fmt.Errorf("datagen: membership spreads out of range (T=%d, P=%d, K=%d)", c.TSpread, c.PSpread, c.K)
	}
	if !(c.TSoftness > 0) || !(c.PSoftness > 0) {
		return fmt.Errorf("datagen: membership softness must be positive (T=%v, P=%v)", c.TSoftness, c.PSoftness)
	}
	return nil
}

// Weather generates a weather sensor network following Appendix C:
//
//  1. sensors get uniform random locations in the unit circle;
//  2. the circle is partitioned into K equal-width rings, each ring carrying
//     one weather pattern (a Gaussian over temperature and precipitation);
//  3. a sensor's soft membership over the Spread nearest rings is the
//     normalized reciprocal of its distance to each ring's center radius;
//  4. every sensor links to its Neighbors nearest sensors of each type
//     (binary weights, typed relations 〈T,T〉, 〈T,P〉, 〈P,T〉, 〈P,P〉);
//  5. each sensor draws NumObs observations from its membership-weighted
//     mixture — temperature sensors observe only temperature, precipitation
//     sensors only precipitation (the incomplete-attribute setting).
func Weather(cfg WeatherConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.NumT + cfg.NumP

	// Locations uniform in the unit disk.
	locs := make([]spatial.Point, total)
	for i := range locs {
		for {
			p := spatial.Point{X: 2*rng.Float64() - 1, Y: 2*rng.Float64() - 1}
			if p.Norm() <= 1 {
				locs[i] = p
				break
			}
		}
	}
	isTemp := func(i int) bool { return i < cfg.NumT }

	// Ring bands: the unit disk is "partitioned equally into K rings"
	// (Appendix C). We read "equally" as equal *area* so every weather
	// pattern covers the same expected number of sensors: ring k spans
	// radius [√(k/K), √((k+1)/K)).
	ringLo := make([]float64, cfg.K)
	ringHi := make([]float64, cfg.K)
	for k := 0; k < cfg.K; k++ {
		ringLo[k] = math.Sqrt(float64(k) / float64(cfg.K))
		ringHi[k] = math.Sqrt(float64(k+1) / float64(cfg.K))
	}

	membership := make([][]float64, total)
	labels := make(map[int]int, total)
	for i := range locs {
		spread, softness := cfg.PSpread, cfg.PSoftness
		if isTemp(i) {
			spread, softness = cfg.TSpread, cfg.TSoftness
		}
		mem := ringMembership(locs[i].Norm(), ringLo, ringHi, spread, softness)
		membership[i] = mem
		labels[i] = stats.ArgMax(mem)
	}

	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: AttrTemperature, Kind: hin.Numeric})
	b.DeclareAttribute(hin.AttrSpec{Name: AttrPrecipitation, Kind: hin.Numeric})
	for i := 0; i < total; i++ {
		if isTemp(i) {
			b.AddObject(fmt.Sprintf("T%04d", i), TypeTempSensor)
		} else {
			b.AddObject(fmt.Sprintf("P%04d", i-cfg.NumT), TypePrecipSensor)
		}
	}

	// kNN links per sensor type via two kd-trees. Neighbor indices returned
	// by each tree are local to its point subset and must be shifted back.
	tempTree := spatial.Build(locs[:cfg.NumT])
	precTree := spatial.Build(locs[cfg.NumT:])
	for i := 0; i < total; i++ {
		// Links to temperature sensors.
		excl := -1
		if isTemp(i) {
			excl = i
		}
		for _, nb := range tempTree.KNN(locs[i], cfg.Neighbors, excl) {
			rel := RelPT
			if isTemp(i) {
				rel = RelTT
			}
			b.AddLinkByIndex(i, nb.Index, rel, 1)
		}
		// Links to precipitation sensors.
		excl = -1
		if !isTemp(i) {
			excl = i - cfg.NumT
		}
		for _, nb := range precTree.KNN(locs[i], cfg.Neighbors, excl) {
			rel := RelPP
			if isTemp(i) {
				rel = RelTP
			}
			b.AddLinkByIndex(i, nb.Index+cfg.NumT, rel, 1)
		}
	}

	// Observations from the membership-weighted Gaussian mixture.
	for i := 0; i < total; i++ {
		cat, err := stats.NewCategorical(membership[i])
		if err != nil {
			return nil, fmt.Errorf("datagen: sensor %d membership: %w", i, err)
		}
		for o := 0; o < cfg.NumObs; o++ {
			z := cat.Sample(rng)
			if isTemp(i) {
				g := stats.Gaussian{Mu: cfg.Means[z][0], Sigma: cfg.StdDev}
				b.AddNumericByIndex(i, AttrTemperature, g.Sample(rng))
			} else {
				g := stats.Gaussian{Mu: cfg.Means[z][1], Sigma: cfg.StdDev}
				b.AddNumericByIndex(i, AttrPrecipitation, g.Sample(rng))
			}
		}
	}

	net, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datagen: build weather network: %w", err)
	}
	ds := &Dataset{
		Name:           fmt.Sprintf("weather(T=%d,P=%d,obs=%d)", cfg.NumT, cfg.NumP, cfg.NumObs),
		Net:            net,
		NumClusters:    cfg.K,
		Labels:         labels,
		TrueMembership: make(map[int][]float64, total),
	}
	for i, mem := range membership {
		ds.TrueMembership[i] = mem
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ringMembership computes the soft membership of a sensor at radius r over
// the `spread` nearest weather regions: the normalized reciprocal of the
// sensor's distance to each region's center radius (Appendix C: "The
// cluster membership for each sensor is determined by their reciprocal of
// the distance to the center for each weather region"). Membership varies
// smoothly with radius — the continuous gradient is what lets membership
// similarity predict kNN links in Table 4 — and eps sets how concentrated
// an on-center sensor is.
func ringMembership(r float64, lo, hi []float64, spread int, eps float64) []float64 {
	k := len(lo)
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, k)
	for i := 0; i < k; i++ {
		center := (lo[i] + hi[i]) / 2
		cands[i] = cand{idx: i, dist: math.Abs(r - center)}
	}
	// Partial selection sort of the `spread` nearest rings — K is tiny.
	for i := 0; i < spread; i++ {
		best := i
		for j := i + 1; j < k; j++ {
			if cands[j].dist < cands[best].dist {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	mem := make([]float64, k)
	var sum float64
	for i := 0; i < spread; i++ {
		w := 1 / (cands[i].dist + eps)
		mem[cands[i].idx] = w
		sum += w
	}
	for i := range mem {
		mem[i] /= sum
	}
	return mem
}
