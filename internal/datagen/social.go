package datagen

import (
	"fmt"
	"math/rand"

	"genclus/internal/hin"
	"genclus/internal/stats"
	"genclus/internal/textgen"
)

// Object types, relations and attributes of the social media network —
// the paper's introductory YouTube scenario: users, videos and comments;
// publish/like/post/friendship relations; text attributes on videos and
// comments, a numeric clip-length attribute on videos, and (incomplete)
// profile text on some users.
const (
	TypeUser    = "user"
	TypeVideo   = "video"
	TypeComment = "comment"

	AttrProfile    = "profile"     // categorical, on a subset of users
	AttrVideoText  = "video_text"  // categorical, on all videos
	AttrClipLength = "clip_length" // numeric, on all videos

	RelUploads    = "uploads"      // 〈U,V〉
	RelUploadedBy = "uploaded_by"  // 〈V,U〉
	RelLike       = "likes"        // 〈U,V〉
	RelLikedBy    = "liked_by"     // 〈V,U〉
	RelPost       = "posts"        // 〈U,Cm〉
	RelPostedBy   = "posted_by"    // 〈Cm,U〉
	RelOn         = "commented_on" // 〈Cm,V〉
	RelFriend     = "friend"       // 〈U,U〉
)

// SocialConfig parameterizes the social media generator. The network
// exercises the one combination the paper's two evaluation networks never
// do: categorical AND numeric attributes, incomplete on different types,
// in one fit.
type SocialConfig struct {
	NumCommunities int // hidden interest communities (clusters)
	NumUsers       int
	NumVideos      int
	NumComments    int

	// ProfileFrac is the fraction of users whose profile text is observed
	// (the Fig. 1 motivation: "not all the users listed their political
	// interests in their profiles").
	ProfileFrac float64

	// LikesPerUser and FriendsPerUser control link density; likes stay
	// within the user's community with probability LikeFidelity while
	// friendship crosses communities freely with probability 1−FriendFidelity.
	LikesPerUser   int
	FriendsPerUser int
	LikeFidelity   float64
	FriendFidelity float64

	// ClipLengthMeans gives each community a distinct mean video length —
	// the numeric attribute (σ fixed at 1/6 of the smallest mean gap).
	ClipLengthBase float64
	ClipLengthStep float64

	ProfileTerms int // terms per observed profile
	VideoTerms   int // terms per video description

	Text textgen.Config
	Seed int64
}

// DefaultSocialConfig returns a moderate-size social network.
func DefaultSocialConfig(seed int64) SocialConfig {
	return SocialConfig{
		NumCommunities: 3,
		NumUsers:       300,
		NumVideos:      150,
		NumComments:    450,
		ProfileFrac:    0.3,
		LikesPerUser:   4,
		FriendsPerUser: 3,
		LikeFidelity:   0.9,
		FriendFidelity: 0.55,
		ClipLengthBase: 60,
		ClipLengthStep: 120,
		ProfileTerms:   6,
		VideoTerms:     10,
		Text:           textgen.DefaultConfig(3),
		Seed:           seed,
	}
}

func (c SocialConfig) validate() error {
	if c.NumCommunities < 2 {
		return fmt.Errorf("datagen: social needs ≥ 2 communities, got %d", c.NumCommunities)
	}
	if c.NumUsers <= 0 || c.NumVideos <= 0 || c.NumComments < 0 {
		return fmt.Errorf("datagen: social needs positive user/video counts")
	}
	if c.ProfileFrac < 0 || c.ProfileFrac > 1 {
		return fmt.Errorf("datagen: ProfileFrac = %v", c.ProfileFrac)
	}
	if c.LikesPerUser < 1 || c.FriendsPerUser < 0 {
		return fmt.Errorf("datagen: social link counts invalid")
	}
	for _, p := range []float64{c.LikeFidelity, c.FriendFidelity} {
		if !(p > 0 && p <= 1) {
			return fmt.Errorf("datagen: social fidelity %v outside (0,1]", p)
		}
	}
	if c.ProfileTerms < 1 || c.VideoTerms < 1 {
		return fmt.Errorf("datagen: social term counts invalid")
	}
	if !(c.ClipLengthStep > 0) {
		return fmt.Errorf("datagen: ClipLengthStep = %v, want > 0", c.ClipLengthStep)
	}
	return nil
}

// Social generates the YouTube-style network of the paper's introduction.
// Ground truth labels cover every object (users and comments inherit the
// community of their interests/author).
func Social(cfg SocialConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cfg.Text.NumAreas = cfg.NumCommunities
	corpus, err := textgen.NewCorpusModel(cfg.Text, rng)
	if err != nil {
		return nil, fmt.Errorf("datagen: social corpus: %w", err)
	}

	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: AttrProfile, Kind: hin.Categorical, VocabSize: corpus.VocabSize})
	b.DeclareAttribute(hin.AttrSpec{Name: AttrVideoText, Kind: hin.Categorical, VocabSize: corpus.VocabSize})
	b.DeclareAttribute(hin.AttrSpec{Name: AttrClipLength, Kind: hin.Numeric})

	userIdx := make([]int, cfg.NumUsers)
	userCom := make([]int, cfg.NumUsers)
	for u := range userIdx {
		userIdx[u] = b.AddObject(fmt.Sprintf("user%04d", u), TypeUser)
		userCom[u] = u % cfg.NumCommunities
	}
	videoIdx := make([]int, cfg.NumVideos)
	videoCom := make([]int, cfg.NumVideos)
	for v := range videoIdx {
		videoIdx[v] = b.AddObject(fmt.Sprintf("video%04d", v), TypeVideo)
		videoCom[v] = v % cfg.NumCommunities
	}
	commentIdx := make([]int, cfg.NumComments)
	commentCom := make([]int, cfg.NumComments)
	for cm := range commentIdx {
		commentIdx[cm] = b.AddObject(fmt.Sprintf("comment%04d", cm), TypeComment)
	}

	mixtureFor := func(com int, own float64) []float64 {
		mix := make([]float64, cfg.NumCommunities)
		leak := (1 - own) / float64(cfg.NumCommunities)
		for k := range mix {
			mix[k] = leak
		}
		mix[com] += own
		return mix
	}

	// Video attributes: description text + clip length.
	sigma := cfg.ClipLengthStep / 6
	for v := range videoIdx {
		terms, err := corpus.SampleTermCounts(rng, mixtureFor(videoCom[v], 0.85), cfg.VideoTerms)
		if err != nil {
			return nil, err
		}
		for term, c := range terms {
			b.AddTermCountByIndex(videoIdx[v], AttrVideoText, term, c)
		}
		mean := cfg.ClipLengthBase + float64(videoCom[v])*cfg.ClipLengthStep
		g := stats.Gaussian{Mu: mean, Sigma: sigma}
		b.AddNumericByIndex(videoIdx[v], AttrClipLength, g.Sample(rng))
	}

	// Users: publisher of ~NumVideos/NumUsers videos of their community,
	// likes mostly within community, friendships that cross freely,
	// profiles observed for a fraction only.
	pickCommunityMember := func(com int, count int, areaOf []int, fidelity float64) int {
		if rng.Float64() < fidelity {
			for {
				i := rng.Intn(count)
				if areaOf[i] == com {
					return i
				}
			}
		}
		return rng.Intn(count)
	}
	for v := range videoIdx {
		u := pickCommunityMember(videoCom[v], cfg.NumUsers, userCom, 0.95)
		b.AddLinkByIndex(userIdx[u], videoIdx[v], RelUploads, 1)
		b.AddLinkByIndex(videoIdx[v], userIdx[u], RelUploadedBy, 1)
	}
	for u := range userIdx {
		for i := 0; i < cfg.LikesPerUser; i++ {
			v := pickCommunityMember(userCom[u], cfg.NumVideos, videoCom, cfg.LikeFidelity)
			b.AddLinkByIndex(userIdx[u], videoIdx[v], RelLike, 1)
			b.AddLinkByIndex(videoIdx[v], userIdx[u], RelLikedBy, 1)
		}
		for i := 0; i < cfg.FriendsPerUser; i++ {
			o := pickCommunityMember(userCom[u], cfg.NumUsers, userCom, cfg.FriendFidelity)
			if o != u {
				b.AddLinkByIndex(userIdx[u], userIdx[o], RelFriend, 1)
			}
		}
		if rng.Float64() < cfg.ProfileFrac {
			terms, err := corpus.SampleTermCounts(rng, mixtureFor(userCom[u], 0.8), cfg.ProfileTerms)
			if err != nil {
				return nil, err
			}
			for term, c := range terms {
				b.AddTermCountByIndex(userIdx[u], AttrProfile, term, c)
			}
		}
	}

	// Comments: authored by a user, attached to a video of the author's
	// community; carry no attributes at all (clustered purely via links).
	for cm := range commentIdx {
		u := rng.Intn(cfg.NumUsers)
		com := userCom[u]
		commentCom[cm] = com
		v := pickCommunityMember(com, cfg.NumVideos, videoCom, 0.9)
		b.AddLinkByIndex(userIdx[u], commentIdx[cm], RelPost, 1)
		b.AddLinkByIndex(commentIdx[cm], userIdx[u], RelPostedBy, 1)
		b.AddLinkByIndex(commentIdx[cm], videoIdx[v], RelOn, 1)
	}

	net, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datagen: build social network: %w", err)
	}
	ds := &Dataset{
		Name:        fmt.Sprintf("social(U=%d,V=%d,Cm=%d)", cfg.NumUsers, cfg.NumVideos, cfg.NumComments),
		Net:         net,
		NumClusters: cfg.NumCommunities,
		Labels:      make(map[int]int),
	}
	for u := range userIdx {
		ds.Labels[userIdx[u]] = userCom[u]
	}
	for v := range videoIdx {
		ds.Labels[videoIdx[v]] = videoCom[v]
	}
	for cm := range commentIdx {
		ds.Labels[commentIdx[cm]] = commentCom[cm]
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
