package infer

import (
	"fmt"
	"math"
	"sort"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// Engine assigns query objects against one fitted model. It wraps the
// shared E-step scoring kernel (core.Scorer) with ID resolution, the
// Limits trust boundary, top-k selection and a reusable result arena.
// Construction precomputes the model-derived views (β transposes, ½·ln σ²
// constants, name→index tables); genclusd caches engines per model keyed
// by snapshot digest so concurrent traffic shares that work.
//
// Not safe for concurrent use — see the package comment.
type Engine struct {
	sc   *core.Scorer
	k    int
	topK int
	lim  Limits

	// Result arena, grown to the largest batch seen and reused: the
	// assignments themselves, one flat Θ backing array, and one flat top-k
	// backing array. Steady-state AssignBatch performs no allocation.
	results  []Assignment
	thetaBuf []float64
	topBuf   []ClusterProb

	// sorter is the shared descending-weight index sorter (selectTopK
	// reuses it across queries, so top-k selection allocates nothing in
	// steady state); its idx scratch is sized K once at construction.
	sorter core.DescWeightSorter
}

// NewEngine validates the model's fitted state and builds the assignment
// engine.
func NewEngine(m *core.Model, opts Options) (*Engine, error) {
	sc, err := core.NewScorer(m, core.ScorerOptions{
		Epsilon:   opts.Epsilon,
		MaxIters:  opts.MaxFoldInIters,
		Tol:       opts.Tol,
		Precision: opts.Precision,
	})
	if err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	k := sc.K()
	topK := opts.TopK
	if topK == 0 {
		topK = 1
	}
	if topK < 0 {
		return nil, fmt.Errorf("infer: TopK = %d, want ≥ 0", opts.TopK)
	}
	if topK > k {
		topK = k
	}
	lim := opts.Limits
	if lim == (Limits{}) && !opts.Unbounded {
		lim = DefaultLimits()
	}
	e := &Engine{sc: sc, k: k, topK: topK, lim: lim}
	e.sorter.Idx = make([]int, k)
	return e, nil
}

// K returns the model's cluster count.
func (e *Engine) K() int { return e.k }

// TopK returns the configured top-k list length.
func (e *Engine) TopK() int { return e.topK }

// Assign scores a single query; it is AssignBatch for a one-element batch,
// with the same arena-lifetime rules on the returned Assignment.
func (e *Engine) Assign(q Query) (Assignment, error) {
	out, err := e.AssignBatch([]Query{q})
	if err != nil {
		return Assignment{}, err
	}
	return out[0], nil
}

// Validate checks a batch against the Limits bounds and resolves every
// name and index without scoring, returning the same typed *QueryError /
// *LimitError AssignBatch would. Unlike scoring, validation touches only
// the engine's immutable lookup tables, so it IS safe to call concurrently
// — genclusd validates each request on its own goroutine before handing
// the queries to the serialized micro-batching pass.
func (e *Engine) Validate(queries []Query) error {
	if e.lim.MaxBatch > 0 && len(queries) > e.lim.MaxBatch {
		return &LimitError{Query: -1, What: "batch size", Got: len(queries), Limit: e.lim.MaxBatch}
	}
	for i := range queries {
		if err := e.validate(i, &queries[i]); err != nil {
			return err
		}
	}
	return nil
}

// AssignBatch validates and scores a batch of queries, returning one
// Assignment per query in order. The whole batch is validated before any
// scoring: a bad query rejects the batch with a typed *QueryError or
// *LimitError and no partial results. The returned slice and its Theta/Top
// entries alias the engine's arena and stay valid until the next call.
func (e *Engine) AssignBatch(queries []Query) ([]Assignment, error) {
	if err := e.Validate(queries); err != nil {
		return nil, err
	}

	e.grow(len(queries))
	out := e.results[:len(queries)]
	for i := range queries {
		q := &queries[i]
		dst := e.thetaBuf[i*e.k : (i+1)*e.k : (i+1)*e.k]
		top := e.topBuf[i*e.topK : (i+1)*e.topK : (i+1)*e.topK]

		e.sc.Begin()
		for _, l := range q.Links {
			rel, _ := e.sc.RelationIndex(l.Relation)
			to, _ := e.sc.ObjectIndex(l.To)
			e.sc.AddLink(rel, to, l.Weight)
		}
		for _, co := range q.Terms {
			a, _ := e.sc.AttrIndex(co.Attr)
			for _, tc := range co.Terms {
				e.sc.AddTermCount(a, tc.Term, tc.Count)
			}
		}
		for _, no := range q.Numeric {
			a, _ := e.sc.AttrIndex(no.Attr)
			for _, x := range no.Values {
				e.sc.AddNumeric(a, x)
			}
		}
		iters := e.sc.Score(dst)

		e.selectTopK(top, dst)
		out[i] = Assignment{
			ID:          q.ID,
			Cluster:     top[0].Cluster,
			Theta:       dst,
			Top:         top,
			FoldInIters: iters,
		}
	}
	return out, nil
}

// validate enforces the Limits bounds and resolves every name and index in
// one query against the model, so the scoring pass runs on trusted input.
func (e *Engine) validate(i int, q *Query) error {
	if e.lim.MaxLinks > 0 && len(q.Links) > e.lim.MaxLinks {
		return &LimitError{Query: i, What: "links", Got: len(q.Links), Limit: e.lim.MaxLinks}
	}
	bad := func(format string, args ...any) error {
		return &QueryError{Query: i, ID: q.ID, Msg: fmt.Sprintf(format, args...)}
	}
	for _, l := range q.Links {
		if _, ok := e.sc.RelationIndex(l.Relation); !ok {
			return bad("unknown relation %q", l.Relation)
		}
		if _, ok := e.sc.ObjectIndex(l.To); !ok {
			return bad("link to unknown object %q", l.To)
		}
		if !(l.Weight > 0) || math.IsInf(l.Weight, 0) {
			return bad("link to %q has weight %v, want positive finite", l.To, l.Weight)
		}
	}
	terms, values := 0, 0
	for _, co := range q.Terms {
		a, ok := e.sc.AttrIndex(co.Attr)
		if !ok {
			return bad("unknown attribute %q", co.Attr)
		}
		if e.sc.AttrKind(a) != hin.Categorical {
			return bad("attribute %q is numeric, got term counts", co.Attr)
		}
		vocab := e.sc.VocabSize(a)
		terms += len(co.Terms)
		if e.lim.MaxTerms > 0 && terms > e.lim.MaxTerms {
			return &LimitError{Query: i, What: "term counts", Got: terms, Limit: e.lim.MaxTerms}
		}
		for _, tc := range co.Terms {
			if tc.Term < 0 || tc.Term >= vocab {
				return bad("attribute %q term %d outside vocabulary [0, %d)", co.Attr, tc.Term, vocab)
			}
			if !(tc.Count > 0) || math.IsInf(tc.Count, 0) {
				return bad("attribute %q term %d has count %v, want positive finite", co.Attr, tc.Term, tc.Count)
			}
		}
	}
	for _, no := range q.Numeric {
		a, ok := e.sc.AttrIndex(no.Attr)
		if !ok {
			return bad("unknown attribute %q", no.Attr)
		}
		if e.sc.AttrKind(a) != hin.Numeric {
			return bad("attribute %q is categorical, got numeric values", no.Attr)
		}
		values += len(no.Values)
		if e.lim.MaxValues > 0 && values > e.lim.MaxValues {
			return &LimitError{Query: i, What: "numeric observations", Got: values, Limit: e.lim.MaxValues}
		}
		for _, x := range no.Values {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return bad("attribute %q has non-finite observation %v", no.Attr, x)
			}
		}
	}
	return nil
}

// grow sizes the result arena for a batch of n queries, reusing prior
// capacity.
func (e *Engine) grow(n int) {
	if cap(e.results) < n {
		e.results = make([]Assignment, n)
	}
	e.results = e.results[:cap(e.results)]
	if need := n * e.k; cap(e.thetaBuf) < need {
		e.thetaBuf = make([]float64, need)
	}
	e.thetaBuf = e.thetaBuf[:cap(e.thetaBuf)]
	if need := n * e.topK; cap(e.topBuf) < need {
		e.topBuf = make([]ClusterProb, need)
	}
	e.topBuf = e.topBuf[:cap(e.topBuf)]
}

// selectTopK fills top with the len(top) most probable clusters of theta,
// descending by probability with ties broken by ascending cluster index.
// A full O(K log K) index sort over the engine's reusable scratch
// (core.DescWeightSorter — the system-wide "best first" comparator):
// deterministic, allocation-free, and cheap even at top-k = K.
func (e *Engine) selectTopK(top []ClusterProb, theta []float64) {
	e.sorter.Reset(theta)
	sort.Sort(&e.sorter)
	for j := range top {
		c := e.sorter.Idx[j]
		top[j] = ClusterProb{Cluster: c, P: theta[c]}
	}
}
