package infer

import (
	"fmt"
	"math"
	"testing"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// testNet builds a deterministic two-topic document network: categorical
// text over disjoint vocabulary blocks, a cites-ring plus a sparser
// second "extends" relation inside each topic, and a numeric "score"
// attribute observed on a subset of the docs — so the fold-in path
// exercises multi-relation links, categorical and Gaussian terms, and
// incompleteness at once. The relations are declared in lexicographic
// order (cites before extends), which is the ordering condition of the
// bitwise reproduction contract (see core.Scorer).
func testNet(t testing.TB, perTopic int, withNumeric bool) *hin.Network {
	t.Helper()
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 40})
	if withNumeric {
		b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	}
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = fmt.Sprintf("d%d_%03d", topic, i)
			b.AddObject(ids[i], "doc")
			for w := 0; w < 8; w++ {
				b.AddTermCount(ids[i], "text", topic*20+(i+w)%20, 1)
			}
			if withNumeric && i%3 == 0 {
				b.AddNumeric(ids[i], "score", float64(topic*10)+float64(i%5)*0.1)
			}
		}
		for i, id := range ids {
			b.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			b.AddLink(id, ids[(i+7)%perTopic], "cites", 1)
			if i%4 == 0 {
				b.AddLink(id, ids[(i+3)%perTopic], "extends", 0.5)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumRelations() != 2 {
		t.Fatalf("test network declares %d relations, want 2", net.NumRelations())
	}
	return net
}

// fitStationary fits the network until EM reaches an exact floating-point
// fixed point: LearnGamma off (so the final Θ is converged under the γ the
// model serves), a single seed, and an effectively-zero EMTol that only
// triggers once an iteration moves Θ by exactly nothing.
func fitStationary(t testing.TB, net *hin.Network, parallelism int) *core.Model {
	t.Helper()
	opts := core.DefaultOptions(2)
	opts.LearnGamma = false
	opts.InitSeeds = 1
	opts.OuterIters = 1
	opts.EMIters = 5000
	opts.EMTol = 1e-300
	opts.Parallelism = parallelism
	m, err := core.Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.EMIterations >= opts.EMIters {
		t.Fatalf("EM did not reach an exact fixed point within %d iterations", opts.EMIters)
	}
	return m
}

// trainingQuery rebuilds object v's own links and observations as a Query.
func trainingQuery(net *hin.Network, v int) Query {
	q := Query{ID: net.Object(v).ID}
	for _, e := range net.OutEdges(v) {
		q.Links = append(q.Links, Link{
			Relation: net.RelationName(e.Rel),
			To:       net.Object(e.To).ID,
			Weight:   e.Weight,
		})
	}
	for a := 0; a < net.NumAttrs(); a++ {
		spec := net.Attr(a)
		switch spec.Kind {
		case hin.Categorical:
			if tcs := net.TermCounts(a, v); len(tcs) > 0 {
				q.Terms = append(q.Terms, CatObs{Attr: spec.Name, Terms: tcs})
			}
		case hin.Numeric:
			if xs := net.NumericObs(a, v); len(xs) > 0 {
				q.Numeric = append(q.Numeric, NumObs{Attr: spec.Name, Values: xs})
			}
		}
	}
	return q
}

// TestAssignTrainingObjectsGolden is the bitwise reproduction contract:
// assigning a converged model's own training objects — their links and
// observations presented as fold-in queries — must reproduce the model's Θ
// rows bit for bit, at Parallelism 1 and 4 (the fit is bitwise identical
// across parallelism, so the assignments must be too). This is what pins
// the engine to the EM E-step kernel: any divergence in arithmetic or
// summation order fails here on the exact bits.
func TestAssignTrainingObjectsGolden(t *testing.T) {
	net := testNet(t, 60, true)
	for _, parallelism := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism-%d", parallelism), func(t *testing.T) {
			m := fitStationary(t, net, parallelism)
			eng, err := NewEngine(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			queries := make([]Query, net.NumObjects())
			for v := range queries {
				queries[v] = trainingQuery(net, v)
			}
			out, err := eng.AssignBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			labels := m.HardLabels()
			for v, a := range out {
				for k, x := range a.Theta {
					if x != m.Theta[v][k] {
						t.Fatalf("object %s theta[%d]: assigned %v, fitted %v (fold-in iters %d)",
							net.Object(v).ID, k, x, m.Theta[v][k], a.FoldInIters)
					}
				}
				if a.Cluster != labels[v] {
					t.Fatalf("object %s: assigned cluster %d, fitted %d", net.Object(v).ID, a.Cluster, labels[v])
				}
			}
		})
	}
}

// TestAssignDeterministicAcrossLinkOrder pins the engine's ordering
// contract: the same query with links presented in any order scores to the
// same bits (the engine stable-sorts by relation then target).
func TestAssignDeterministicAcrossLinkOrder(t *testing.T) {
	net := testNet(t, 40, false)
	m := fitStationary(t, net, 1)
	eng, err := NewEngine(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := trainingQuery(net, 3)
	fwd, err := eng.Assign(q)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), fwd.Theta...)
	// Reverse the links.
	rev := q
	rev.Links = append([]Link(nil), q.Links...)
	for i, j := 0, len(rev.Links)-1; i < j; i, j = i+1, j-1 {
		rev.Links[i], rev.Links[j] = rev.Links[j], rev.Links[i]
	}
	got, err := eng.Assign(rev)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range got.Theta {
		if x != want[k] {
			t.Fatalf("theta[%d]: %v with reversed links, %v in order", k, x, want[k])
		}
	}
}

// TestAssignNoInformationUniform checks the E-step's "no information" rule
// folded in: a query with neither links nor observations gets the uniform
// posterior.
func TestAssignNoInformationUniform(t *testing.T) {
	net := testNet(t, 40, false)
	m := fitStationary(t, net, 1)
	eng, err := NewEngine(m, Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Assign(Query{ID: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range a.Theta {
		if x != 0.5 {
			t.Fatalf("theta[%d] = %v, want 0.5", k, x)
		}
	}
	if a.Cluster != 0 || a.FoldInIters != 1 {
		t.Fatalf("empty query: cluster %d iters %d, want 0 and 1", a.Cluster, a.FoldInIters)
	}
	if len(a.Top) != 2 || a.Top[0].Cluster != 0 || a.Top[1].Cluster != 1 {
		t.Fatalf("uniform top-k = %v, want clusters 0 then 1 (tie broken by index)", a.Top)
	}
}

// TestAssignTopK checks the top-k list: descending probability, Cluster
// mirrors Top[0], probabilities echo Theta.
func TestAssignTopK(t *testing.T) {
	net := testNet(t, 40, false)
	m := fitStationary(t, net, 1)
	eng, err := NewEngine(m, Options{TopK: 5}) // clamped to K=2
	if err != nil {
		t.Fatal(err)
	}
	if eng.TopK() != 2 {
		t.Fatalf("TopK() = %d, want clamped 2", eng.TopK())
	}
	a, err := eng.Assign(trainingQuery(net, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Top) != 2 {
		t.Fatalf("len(Top) = %d, want 2", len(a.Top))
	}
	if a.Top[0].P < a.Top[1].P {
		t.Fatalf("top-k not descending: %v", a.Top)
	}
	if a.Cluster != a.Top[0].Cluster {
		t.Fatalf("Cluster %d != Top[0].Cluster %d", a.Cluster, a.Top[0].Cluster)
	}
	for _, cp := range a.Top {
		if cp.P != a.Theta[cp.Cluster] {
			t.Fatalf("Top entry %v does not echo Theta %v", cp, a.Theta)
		}
	}
}

// TestAssignValidation drives every typed rejection of the trust boundary.
func TestAssignValidation(t *testing.T) {
	net := testNet(t, 40, true)
	m := fitStationary(t, net, 1)
	eng, err := NewEngine(m, Options{Limits: Limits{MaxBatch: 2, MaxLinks: 2, MaxTerms: 3, MaxValues: 2}})
	if err != nil {
		t.Fatal(err)
	}
	queryErr := func(q Query) *QueryError {
		t.Helper()
		_, err := eng.AssignBatch([]Query{q})
		qe, ok := err.(*QueryError)
		if !ok {
			t.Fatalf("want *QueryError, got %v", err)
		}
		return qe
	}
	limitErr := func(qs []Query) *LimitError {
		t.Helper()
		_, err := eng.AssignBatch(qs)
		le, ok := err.(*LimitError)
		if !ok {
			t.Fatalf("want *LimitError, got %v", err)
		}
		return le
	}

	queryErr(Query{Links: []Link{{Relation: "ghost", To: "d0_000", Weight: 1}}})
	queryErr(Query{Links: []Link{{Relation: "cites", To: "ghost", Weight: 1}}})
	queryErr(Query{Links: []Link{{Relation: "cites", To: "d0_000", Weight: -1}}})
	queryErr(Query{Links: []Link{{Relation: "cites", To: "d0_000", Weight: math.Inf(1)}}})
	queryErr(Query{Terms: []CatObs{{Attr: "ghost", Terms: []hin.TermCount{{Term: 0, Count: 1}}}}})
	queryErr(Query{Terms: []CatObs{{Attr: "score", Terms: []hin.TermCount{{Term: 0, Count: 1}}}}})
	queryErr(Query{Terms: []CatObs{{Attr: "text", Terms: []hin.TermCount{{Term: 40, Count: 1}}}}})
	queryErr(Query{Terms: []CatObs{{Attr: "text", Terms: []hin.TermCount{{Term: 0, Count: math.NaN()}}}}})
	queryErr(Query{Numeric: []NumObs{{Attr: "text", Values: []float64{1}}}})
	queryErr(Query{Numeric: []NumObs{{Attr: "score", Values: []float64{math.NaN()}}}})
	if qe := queryErr(Query{ID: "q7", Links: []Link{{Relation: "ghost", To: "d0_000", Weight: 1}}}); qe.ID != "q7" {
		t.Fatalf("QueryError.ID = %q, want q7", qe.ID)
	}

	if le := limitErr([]Query{{}, {}, {}}); le.Query != -1 || le.What != "batch size" {
		t.Fatalf("batch overflow: %v", le)
	}
	links := []Link{{Relation: "cites", To: "d0_000", Weight: 1}, {Relation: "cites", To: "d0_001", Weight: 1}, {Relation: "cites", To: "d0_002", Weight: 1}}
	if le := limitErr([]Query{{Links: links}}); le.Query != 0 || le.What != "links" {
		t.Fatalf("link overflow: %v", le)
	}
	many := make([]hin.TermCount, 4)
	for i := range many {
		many[i] = hin.TermCount{Term: i, Count: 1}
	}
	if le := limitErr([]Query{{Terms: []CatObs{{Attr: "text", Terms: many}}}}); le.What != "term counts" {
		t.Fatalf("terms overflow: %v", le)
	}
	if le := limitErr([]Query{{Numeric: []NumObs{{Attr: "score", Values: []float64{1, 2, 3}}}}}); le.What != "numeric observations" {
		t.Fatalf("values overflow: %v", le)
	}

	// A rejected batch returns no partial results, and the engine still
	// works afterwards (a query inside every bound).
	a, err := eng.Assign(Query{Links: links[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Theta) != 2 {
		t.Fatalf("engine unusable after rejection: %v", a)
	}
}

// TestAssignPartialAttributes exercises the incomplete-attributes story the
// subsystem exists for: the same object scored with progressively less
// evidence stays on its cluster, and subsets never error.
func TestAssignPartialAttributes(t *testing.T) {
	net := testNet(t, 60, true)
	m := fitStationary(t, net, 1)
	eng, err := NewEngine(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := trainingQuery(net, 0) // topic-0 doc with text, score and links
	want := m.HardLabels()[0]

	linksOnly := Query{Links: full.Links}
	textOnly := Query{Terms: full.Terms}
	for name, q := range map[string]Query{"full": full, "links-only": linksOnly, "text-only": textOnly} {
		a, err := eng.Assign(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Cluster != want {
			t.Errorf("%s: cluster %d, want %d (theta %v)", name, a.Cluster, want, a.Theta)
		}
	}
}

// TestAssignBatchSteadyStateZeroAlloc pins the arena contract: after the
// first call sized the scratch, AssignBatch allocates nothing.
func TestAssignBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not exact under -race")
	}
	net := testNet(t, 60, true)
	m := fitStationary(t, net, 1)
	eng, err := NewEngine(m, Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 32)
	for v := range queries {
		queries[v] = trainingQuery(net, v)
	}
	if _, err := eng.AssignBatch(queries); err != nil { // warm-up sizes the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.AssignBatch(queries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AssignBatch allocates %v allocs/op, want 0", allocs)
	}
}
