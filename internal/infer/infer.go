// Package infer is the online inference subsystem: fold-in assignment of
// out-of-sample objects against a fitted GenClus model, without refitting.
//
// The paper's generative model (Sun, Aggarwal, Han — VLDB 2012) gives a
// closed-form posterior p(k | object) from the learned memberships Θ, the
// relation strengths γ and the per-attribute component models — and its
// incomplete-attributes design means a query object described by links to
// known objects plus *any subset* of attribute observations can be scored
// with the same E-step arithmetic the fit runs: the γ-weighted link term
// over the neighbors' frozen Θ rows, one responsibility term per observed
// attribute (a missing attribute simply contributes no term), and the
// epsilon-floored normalization. Queries with attribute observations
// iterate their own mixing proportions to a fixed point; every model
// parameter stays frozen, so inference is read-only and embarrassingly
// cheap next to a refit.
//
// Engine is the serving form: it resolves ID-based queries against the
// model's object/relation/attribute tables, validates them behind Limits
// (the assign trust boundary), and scores batches through a reusable
// scratch arena — steady-state AssignBatch performs no allocation. The
// scoring arithmetic itself lives in core.Scorer, shared instruction for
// instruction with the EM loop, which is what makes assignment of a
// converged model's own training objects reproduce its Θ rows bit for bit
// (see TestAssignTrainingObjectsGolden).
//
// An Engine is NOT safe for concurrent use: it owns one scratch arena.
// genclusd wraps each cached engine in a micro-batching dispatcher that
// serializes passes (see internal/server); local callers create one engine
// per goroutine or lock around it.
package infer

import (
	"fmt"

	"genclus/internal/core"
	"genclus/internal/hin"
)

// Link is one directed link from a query object to a known (training)
// object of the model, under a named relation.
type Link struct {
	// Relation is the relation name (must carry a learned strength in the
	// model).
	Relation string
	// To is the ID of the known object the query links to.
	To string
	// Weight is the positive finite link weight.
	Weight float64
}

// CatObs is a query object's observation of one categorical attribute: a
// sparse bag of term counts over the attribute's vocabulary.
type CatObs struct {
	// Attr is the attribute name (must be a categorical attribute the model
	// fitted).
	Attr string
	// Terms are the observed term counts; indices must lie inside the
	// model's vocabulary and counts must be positive and finite.
	Terms []hin.TermCount
}

// NumObs is a query object's observation list of one numeric attribute.
type NumObs struct {
	// Attr is the attribute name (must be a numeric attribute the model
	// fitted).
	Attr string
	// Values are the observed readings; every value must be finite.
	Values []float64
}

// Query describes one object to assign: links into the known network plus
// optional partial attribute observations. A query with neither links nor
// observations carries no information and receives the uniform posterior.
type Query struct {
	// ID is an optional caller-side identifier echoed on the Assignment.
	ID string
	// Links are the query's out-links to known objects.
	Links []Link
	// Terms are categorical observations, at most one entry per attribute.
	Terms []CatObs
	// Numeric are numeric observations, at most one entry per attribute.
	Numeric []NumObs
}

// ClusterProb is one entry of an assignment's top-k list.
type ClusterProb struct {
	// Cluster is the cluster index.
	Cluster int
	// P is the posterior probability of that cluster.
	P float64
}

// Assignment is one query's scored result. Theta and Top alias the engine's
// reusable arena: they are valid until the next AssignBatch/Assign call on
// the same engine, and callers that retain them across calls must copy.
type Assignment struct {
	// ID echoes Query.ID.
	ID string
	// Cluster is the argmax hard assignment (lowest index wins ties —
	// the same rule as Result.HardLabels).
	Cluster int
	// Theta is the soft posterior row (length K, sums to 1).
	Theta []float64
	// Top lists the TopK most probable clusters, descending probability,
	// ties broken by ascending cluster index.
	Top []ClusterProb
	// FoldInIters is the number of fold-in iterations the query took: 1
	// when the posterior is closed-form (no attribute observations), more
	// when the query's own mixing proportions had to be iterated to a
	// fixed point.
	FoldInIters int
}

// Limits bounds what one AssignBatch call may make the engine chew on —
// the assign trust boundary. A zero field means "no limit on that
// dimension"; the zero value disables bounding entirely. Serving paths
// should start from DefaultLimits.
type Limits struct {
	// MaxBatch caps the number of queries per AssignBatch call.
	MaxBatch int
	// MaxLinks caps the links of a single query.
	MaxLinks int
	// MaxTerms caps the total term-count observations of a single query.
	MaxTerms int
	// MaxValues caps the total numeric observations of a single query.
	MaxValues int
}

// DefaultLimits is the bound serving paths apply: generous for real
// queries, tight enough that a single hostile request cannot schedule
// unbounded scoring work.
func DefaultLimits() Limits {
	return Limits{
		MaxBatch:  1024,
		MaxLinks:  4096,
		MaxTerms:  4096,
		MaxValues: 4096,
	}
}

// Options configures an Engine. The zero value takes the documented
// defaults.
type Options struct {
	// TopK is the number of entries in every Assignment.Top (default 1;
	// clamped to K).
	TopK int
	// Epsilon floors posterior entries exactly as Options.Epsilon floors Θ
	// during a fit (default 1e-9, the fit default). Bitwise reproduction of
	// training rows requires the model's own epsilon.
	Epsilon float64
	// MaxFoldInIters caps the fixed-point iteration for queries with
	// attribute observations (default 100).
	MaxFoldInIters int
	// Tol stops the fold-in iteration once max_k |Δθ| falls below it; zero
	// (the default) iterates to bitwise stationarity.
	Tol float64
	// Precision mirrors the fit's storage precision: "float32" rounds every
	// posterior row like a float32 fit rounds Θ, which reproducing a
	// float32 model's training rows requires. Empty means float64.
	Precision core.Precision
	// Limits bounds AssignBatch inputs; the zero value takes DefaultLimits.
	// Use Unbounded to disable bounding explicitly.
	Limits Limits
	// Unbounded disables the Limits defaulting: a zero Limits then means
	// "no limits" instead of DefaultLimits. Offline tools (the CLI's
	// -assign mode) set it; the serving path never does.
	Unbounded bool
}

// LimitError reports a query batch rejected because it exceeded a Limits
// bound. Serving paths map it to 413.
type LimitError struct {
	// Query is the offending query's index in the batch, or -1 when the
	// batch itself overflowed.
	Query int
	// What names the exceeded dimension.
	What string
	// Got and Limit are the offending and permitted sizes.
	Got, Limit int
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	if e.Query < 0 {
		return fmt.Sprintf("infer: %s %d exceeds limit %d", e.What, e.Got, e.Limit)
	}
	return fmt.Sprintf("infer: query %d: %s %d exceeds limit %d", e.Query, e.What, e.Got, e.Limit)
}

// QueryError reports a malformed or unresolvable query — an unknown object,
// relation or attribute, an out-of-vocabulary term, or a non-finite weight,
// count or value. Serving paths map it to 400.
type QueryError struct {
	// Query is the offending query's index in the batch.
	Query int
	// ID echoes the query's ID, when set.
	ID string
	// Msg describes what was rejected.
	Msg string
}

// Error implements the error interface.
func (e *QueryError) Error() string {
	if e.ID != "" {
		return fmt.Sprintf("infer: query %d (id %q): %s", e.Query, e.ID, e.Msg)
	}
	return fmt.Sprintf("infer: query %d: %s", e.Query, e.Msg)
}
