package infer

import (
	"encoding/json"
	"fmt"
	"maps"
	"slices"

	"genclus/internal/hin"
)

// The assign request document: the one JSON shape both serving surfaces
// accept — the daemon's POST /v1/models/{id}/assign body and the CLI's
// -assign queries file. A single decoder keeps the two surfaces from
// drifting apart, which is what makes their outputs bitwise comparable.

// RequestDoc is an assign request document.
type RequestDoc struct {
	// Objects are the query objects to fold in.
	Objects []ObjectDoc `json:"objects"`
	// TopK sizes each assignment's top list (0 means the consumer's
	// default of 1; capped at the model's K).
	TopK int `json:"top_k"`
}

// ObjectDoc is one query object in the document shape: links by relation
// name and known-object id, observations as attribute-name keyed maps —
// the same idiom as the hin network document.
type ObjectDoc struct {
	// ID is an optional caller-side identifier echoed on the assignment.
	ID string `json:"id,omitempty"`
	// Links are the object's links to known objects.
	Links []LinkDoc `json:"links,omitempty"`
	// Terms maps categorical attribute name → sparse term counts.
	Terms map[string][]TermDoc `json:"terms,omitempty"`
	// Numeric maps numeric attribute name → observations.
	Numeric map[string][]float64 `json:"numeric,omitempty"`
}

// LinkDoc is one link from a query object to a known object.
type LinkDoc struct {
	// Relation is the relation name.
	Relation string `json:"rel"`
	// To is the known object's ID.
	To string `json:"to"`
	// Weight is the positive finite link weight.
	Weight float64 `json:"w"`
}

// TermDoc is one sparse term count, matching the network document format.
type TermDoc struct {
	// Term is the term index within the attribute's vocabulary.
	Term int `json:"t"`
	// Count is the positive finite count.
	Count float64 `json:"c"`
}

// ClusterProbDoc is one top-k entry in the response document shape.
type ClusterProbDoc struct {
	// Cluster is the cluster index.
	Cluster int `json:"cluster"`
	// P is the posterior probability of the cluster.
	P float64 `json:"p"`
}

// AssignmentDoc is one scored object in the response document shape,
// shared — like the request document — by the daemon's assign endpoint
// and the CLI's -assign output, so the two surfaces stay byte-comparable.
type AssignmentDoc struct {
	// ID echoes the query object's id.
	ID string `json:"id,omitempty"`
	// Cluster is the argmax hard assignment.
	Cluster int `json:"cluster"`
	// Theta is the soft posterior row (sums to 1).
	Theta []float64 `json:"theta"`
	// Top lists the top-k clusters, descending probability.
	Top []ClusterProbDoc `json:"top"`
	// FoldInIters is the fold-in iteration count (see Assignment).
	FoldInIters int `json:"fold_in_iters"`
}

// AssignmentDocs deep-copies engine results out of the arena into response
// documents, trimming each top list to topK entries (values ≥ the engine's
// TopK keep the full list).
func AssignmentDocs(res []Assignment, topK int) []AssignmentDoc {
	out := make([]AssignmentDoc, len(res))
	for i, a := range res {
		top := a.Top
		if topK >= 0 && topK < len(top) {
			top = top[:topK]
		}
		doc := AssignmentDoc{
			ID:          a.ID,
			Cluster:     a.Cluster,
			Theta:       append([]float64(nil), a.Theta...),
			Top:         make([]ClusterProbDoc, len(top)),
			FoldInIters: a.FoldInIters,
		}
		for j, cp := range top {
			doc.Top[j] = ClusterProbDoc{Cluster: cp.Cluster, P: cp.P}
		}
		out[i] = doc
	}
	return out
}

// DecodeError reports a structurally malformed assign request document —
// unparsable JSON, no objects, a negative top_k. Serving paths map it to
// 400; limit overflows come back as *LimitError instead.
type DecodeError struct {
	// Msg describes what was rejected.
	Msg string
}

// Error implements the error interface.
func (e *DecodeError) Error() string { return e.Msg }

// DecodeRequest parses an assign request document and converts it into
// engine queries, in request order. maxBatch > 0 bounds the number of
// objects (overflow is a *LimitError); structural problems are a
// *DecodeError. Map-keyed attribute observations are sorted by name, so
// the decoded queries — and any later validation error — are a pure
// function of the document bytes. Semantic validation (unknown names,
// out-of-vocabulary terms, non-finite values) is Engine.Validate's job.
func DecodeRequest(data []byte, maxBatch int) (*RequestDoc, []Query, error) {
	var req RequestDoc
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, nil, &DecodeError{Msg: fmt.Sprintf("parse assign request: %v", err)}
	}
	if len(req.Objects) == 0 {
		return nil, nil, &DecodeError{Msg: "assign request has no objects"}
	}
	if maxBatch > 0 && len(req.Objects) > maxBatch {
		return nil, nil, &LimitError{Query: -1, What: "batch size", Got: len(req.Objects), Limit: maxBatch}
	}
	if req.TopK < 0 {
		return nil, nil, &DecodeError{Msg: "top_k must be ≥ 0"}
	}
	queries := make([]Query, len(req.Objects))
	for i, o := range req.Objects {
		q := Query{ID: o.ID}
		if len(o.Links) > 0 {
			q.Links = make([]Link, len(o.Links))
			for j, l := range o.Links {
				q.Links[j] = Link{Relation: l.Relation, To: l.To, Weight: l.Weight}
			}
		}
		for _, name := range slices.Sorted(maps.Keys(o.Terms)) {
			src := o.Terms[name]
			co := CatObs{Attr: name, Terms: make([]hin.TermCount, len(src))}
			for j, t := range src {
				co.Terms[j] = hin.TermCount{Term: t.Term, Count: t.Count}
			}
			q.Terms = append(q.Terms, co)
		}
		for _, name := range slices.Sorted(maps.Keys(o.Numeric)) {
			q.Numeric = append(q.Numeric, NumObs{Attr: name, Values: o.Numeric[name]})
		}
		queries[i] = q
	}
	return &req, queries, nil
}
