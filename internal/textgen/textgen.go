// Package textgen synthesizes the text attribute used by the bibliographic
// network generator. The DBLP four-area dataset attaches bag-of-words titles
// to papers (and aggregated titles to authors/conferences in the AC network);
// since that dataset is not redistributable, this package builds a vocabulary
// with per-area term distributions — a block of area-specific terms per
// research area plus a shared background block (the "of/for/with" of paper
// titles) — and samples term lists from area mixtures.
//
// The construction mirrors what makes the real corpus clusterable: terms
// mostly identify one area, diluted by background words common to all areas.
package textgen

import (
	"fmt"
	"math/rand"

	"genclus/internal/stats"
)

// CorpusModel holds per-area term distributions over a shared vocabulary.
type CorpusModel struct {
	NumAreas  int
	VocabSize int
	// AreaDist[a] is the term distribution of area a over the whole
	// vocabulary.
	AreaDist []stats.Categorical
	// vocabulary bookkeeping (exported for inspection/tests)
	TermsPerArea int
	SharedTerms  int
}

// Config parameterizes a corpus model.
type Config struct {
	NumAreas      int     // number of research areas (paper: 4)
	TermsPerArea  int     // area-specific vocabulary block size
	SharedTerms   int     // background terms shared by all areas
	Specificity   float64 // fraction of an area's mass on its own block, in (0, 1]
	Concentration float64 // Dirichlet concentration for within-block term weights (>0)
}

// DefaultConfig returns the configuration used by the experiment harness:
// a vocabulary in the spirit of paper-title text (small, highly indicative).
func DefaultConfig(numAreas int) Config {
	return Config{
		NumAreas:      numAreas,
		TermsPerArea:  300,
		SharedTerms:   200,
		Specificity:   0.8,
		Concentration: 5,
	}
}

// NewCorpusModel builds per-area term distributions.
//
// The vocabulary is laid out as numAreas blocks of TermsPerArea terms each,
// followed by SharedTerms background terms. Area a puts Specificity of its
// probability mass on block a (with Dirichlet-perturbed within-block
// weights) and 1−Specificity on the shared block.
func NewCorpusModel(cfg Config, rng *rand.Rand) (*CorpusModel, error) {
	if cfg.NumAreas <= 0 {
		return nil, fmt.Errorf("textgen: NumAreas = %d, want > 0", cfg.NumAreas)
	}
	if cfg.TermsPerArea <= 0 || cfg.SharedTerms < 0 {
		return nil, fmt.Errorf("textgen: invalid vocabulary sizes (%d per area, %d shared)", cfg.TermsPerArea, cfg.SharedTerms)
	}
	if !(cfg.Specificity > 0 && cfg.Specificity <= 1) {
		return nil, fmt.Errorf("textgen: Specificity = %v, want (0, 1]", cfg.Specificity)
	}
	if !(cfg.Concentration > 0) {
		return nil, fmt.Errorf("textgen: Concentration = %v, want > 0", cfg.Concentration)
	}
	vocab := cfg.NumAreas*cfg.TermsPerArea + cfg.SharedTerms
	m := &CorpusModel{
		NumAreas:     cfg.NumAreas,
		VocabSize:    vocab,
		AreaDist:     make([]stats.Categorical, cfg.NumAreas),
		TermsPerArea: cfg.TermsPerArea,
		SharedTerms:  cfg.SharedTerms,
	}
	sharedWeights := dirichletWeights(rng, cfg.SharedTerms, cfg.Concentration)
	for a := 0; a < cfg.NumAreas; a++ {
		w := make([]float64, vocab)
		own := dirichletWeights(rng, cfg.TermsPerArea, cfg.Concentration)
		base := a * cfg.TermsPerArea
		for i, v := range own {
			w[base+i] = cfg.Specificity * v
		}
		sharedMass := 1 - cfg.Specificity
		if cfg.SharedTerms > 0 {
			offset := cfg.NumAreas * cfg.TermsPerArea
			for i, v := range sharedWeights {
				w[offset+i] = sharedMass * v
			}
		} else if sharedMass > 0 {
			// No shared block: fold the residual mass back into the area block.
			for i := range own {
				w[base+i] += sharedMass * own[i]
			}
		}
		cat, err := stats.NewCategorical(w)
		if err != nil {
			return nil, fmt.Errorf("textgen: area %d distribution: %w", a, err)
		}
		m.AreaDist[a] = cat
	}
	return m, nil
}

func dirichletWeights(rng *rand.Rand, n int, conc float64) []float64 {
	if n == 0 {
		return nil
	}
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = conc
	}
	w, err := stats.SampleDirichlet(rng, alpha)
	if err != nil {
		// conc > 0 and n > 0 make this unreachable; keep a deterministic
		// uniform fallback rather than panicking inside a generator.
		w = make([]float64, n)
		for i := range w {
			w[i] = 1 / float64(n)
		}
	}
	return w
}

// SampleTermCounts samples `length` terms from the mixture Σ_a mixture[a] ·
// AreaDist[a] and returns sparse term counts (term id → count). The mixture
// must have NumAreas components summing to ~1.
func (m *CorpusModel) SampleTermCounts(rng *rand.Rand, mixture []float64, length int) (map[int]float64, error) {
	if len(mixture) != m.NumAreas {
		return nil, fmt.Errorf("textgen: mixture has %d components, want %d", len(mixture), m.NumAreas)
	}
	mixCat, err := stats.NewCategorical(mixture)
	if err != nil {
		return nil, fmt.Errorf("textgen: bad mixture: %w", err)
	}
	counts := make(map[int]float64, length)
	for i := 0; i < length; i++ {
		area := mixCat.Sample(rng)
		term := m.AreaDist[area].Sample(rng)
		counts[term]++
	}
	return counts, nil
}

// AreaOfTerm returns which area block the term belongs to, or −1 for a
// shared background term. Useful for tests and diagnostics.
func (m *CorpusModel) AreaOfTerm(term int) int {
	if term < 0 || term >= m.VocabSize {
		return -1
	}
	if term >= m.NumAreas*m.TermsPerArea {
		return -1
	}
	return term / m.TermsPerArea
}
