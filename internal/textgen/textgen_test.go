package textgen

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewCorpusModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{NumAreas: 0, TermsPerArea: 10, SharedTerms: 5, Specificity: 0.8, Concentration: 1},
		{NumAreas: 4, TermsPerArea: 0, SharedTerms: 5, Specificity: 0.8, Concentration: 1},
		{NumAreas: 4, TermsPerArea: 10, SharedTerms: -1, Specificity: 0.8, Concentration: 1},
		{NumAreas: 4, TermsPerArea: 10, SharedTerms: 5, Specificity: 0, Concentration: 1},
		{NumAreas: 4, TermsPerArea: 10, SharedTerms: 5, Specificity: 1.2, Concentration: 1},
		{NumAreas: 4, TermsPerArea: 10, SharedTerms: 5, Specificity: 0.8, Concentration: 0},
	}
	for i, cfg := range bad {
		if _, err := NewCorpusModel(cfg, rng); err == nil {
			t.Errorf("config %d should have been rejected: %+v", i, cfg)
		}
	}
}

func TestCorpusModelShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{NumAreas: 4, TermsPerArea: 50, SharedTerms: 30, Specificity: 0.8, Concentration: 5}
	m, err := NewCorpusModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.VocabSize != 4*50+30 {
		t.Errorf("VocabSize = %d", m.VocabSize)
	}
	for a, dist := range m.AreaDist {
		var sum, own, shared float64
		for term, p := range dist.P {
			sum += p
			switch m.AreaOfTerm(term) {
			case a:
				own += p
			case -1:
				shared += p
			default:
				if p != 0 {
					t.Fatalf("area %d puts mass %v on foreign term %d", a, p, term)
				}
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("area %d distribution sums to %v", a, sum)
		}
		if math.Abs(own-0.8) > 1e-9 {
			t.Errorf("area %d own-block mass = %v, want 0.8", a, own)
		}
		if math.Abs(shared-0.2) > 1e-9 {
			t.Errorf("area %d shared mass = %v, want 0.2", a, shared)
		}
	}
}

func TestCorpusModelNoSharedBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{NumAreas: 2, TermsPerArea: 20, SharedTerms: 0, Specificity: 0.7, Concentration: 2}
	m, err := NewCorpusModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for a, dist := range m.AreaDist {
		var sum float64
		for term, p := range dist.P {
			if p > 0 && m.AreaOfTerm(term) != a {
				t.Fatalf("mass outside own block with no shared terms (term %d)", term)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("area %d sums to %v", a, sum)
		}
	}
}

func TestSampleTermCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewCorpusModel(DefaultConfig(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := m.SampleTermCounts(rng, []float64{1, 0, 0, 0}, 500)
	if err != nil {
		t.Fatal(err)
	}
	var total, ownArea float64
	for term, c := range counts {
		if c <= 0 {
			t.Fatal("non-positive count")
		}
		total += c
		if m.AreaOfTerm(term) == 0 {
			ownArea += c
		} else if m.AreaOfTerm(term) >= 0 {
			t.Fatalf("pure area-0 doc contains term of area %d", m.AreaOfTerm(term))
		}
	}
	if total != 500 {
		t.Errorf("total terms = %v, want 500", total)
	}
	// Specificity 0.8 → own-block fraction ≈ 0.8.
	if frac := ownArea / total; math.Abs(frac-0.8) > 0.08 {
		t.Errorf("own-area fraction = %v, want ≈ 0.8", frac)
	}
}

func TestSampleTermCountsMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewCorpusModel(DefaultConfig(2), rng)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := m.SampleTermCounts(rng, []float64{0.5, 0.5}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	perArea := map[int]float64{}
	for term, c := range counts {
		perArea[m.AreaOfTerm(term)] += c
	}
	// Both areas should appear with roughly equal mass.
	if perArea[0] == 0 || perArea[1] == 0 {
		t.Fatal("mixture sampling ignored one component")
	}
	ratio := perArea[0] / perArea[1]
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("area balance ratio = %v", ratio)
	}
}

func TestSampleTermCountsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := NewCorpusModel(DefaultConfig(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SampleTermCounts(rng, []float64{1, 0}, 10); err == nil {
		t.Error("wrong mixture length should error")
	}
	if _, err := m.SampleTermCounts(rng, []float64{0, 0, 0}, 10); err == nil {
		t.Error("zero mixture should error")
	}
}

func TestAreaOfTermBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{NumAreas: 2, TermsPerArea: 10, SharedTerms: 5, Specificity: 0.9, Concentration: 1}
	m, err := NewCorpusModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.AreaOfTerm(-1) != -1 || m.AreaOfTerm(25) != -1 || m.AreaOfTerm(100) != -1 {
		t.Error("out-of-range terms should map to -1")
	}
	if m.AreaOfTerm(0) != 0 || m.AreaOfTerm(9) != 0 || m.AreaOfTerm(10) != 1 || m.AreaOfTerm(19) != 1 {
		t.Error("block mapping wrong")
	}
	if m.AreaOfTerm(20) != -1 {
		t.Error("shared term should map to -1")
	}
}
