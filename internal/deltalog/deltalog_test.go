package deltalog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"genclus/internal/hin"
	"genclus/internal/store"
)

// testNetwork builds the shared fixture: three typed objects, two
// relations, one categorical and one numeric attribute.
func testNetwork(t *testing.T) *hin.Network {
	t.Helper()
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 8})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	b.AddObject("p1", "paper")
	b.AddObject("p2", "paper")
	b.AddObject("a1", "author")
	b.AddLink("a1", "p1", "writes", 1)
	b.AddLink("p1", "p2", "cites", 2)
	b.AddTermCount("p1", "text", 0, 3)
	b.AddNumeric("p2", "score", 1.5)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func noLimits() hin.Limits { return hin.Limits{} }

// TestDecodeRejects pins the trust boundary: each malformed document is a
// *FormatError, each oversized one a *hin.LimitError, and valid documents
// pass.
func TestDecodeRejects(t *testing.T) {
	lim := hin.Limits{MaxObjects: 2, MaxLinks: 2, MaxVocab: 8, MaxObservations: 3}
	cases := []struct {
		name  string
		op    Op
		doc   string
		limit bool // expect *hin.LimitError instead of *FormatError
	}{
		{name: "bad json", op: OpEdges, doc: `{`},
		{name: "op mismatch", op: OpEdges, doc: `{"op":"objects","objects":[{"id":"x","type":"t"}]}`},
		{name: "empty edges", op: OpEdges, doc: `{}`},
		{name: "edges with objects payload", op: OpEdges, doc: `{"add":[{"from":"a","to":"b","rel":"r","w":1}],"objects":[{"id":"x","type":"t"}]}`},
		{name: "link empty endpoint", op: OpEdges, doc: `{"add":[{"from":"","to":"b","rel":"r","w":1}]}`},
		{name: "link zero weight", op: OpEdges, doc: `{"add":[{"from":"a","to":"b","rel":"r","w":0}]}`},
		{name: "link nan weight", op: OpEdges, doc: `{"add":[{"from":"a","to":"b","rel":"r","w":"x"}]}`},
		{name: "remove empty rel", op: OpEdges, doc: `{"remove":[{"from":"a","to":"b","rel":""}]}`},
		{name: "too many links", op: OpEdges, limit: true,
			doc: `{"add":[{"from":"a","to":"b","rel":"r","w":1},{"from":"b","to":"c","rel":"r","w":1},{"from":"c","to":"d","rel":"r","w":1}]}`},
		{name: "empty objects", op: OpObjects, doc: `{}`},
		{name: "object no type", op: OpObjects, doc: `{"objects":[{"id":"x"}]}`},
		{name: "duplicate object ids", op: OpObjects, doc: `{"objects":[{"id":"x","type":"t"},{"id":"x","type":"t"}]}`},
		{name: "too many objects", op: OpObjects, limit: true,
			doc: `{"objects":[{"id":"x","type":"t"},{"id":"y","type":"t"},{"id":"z","type":"t"}]}`},
		{name: "negative term", op: OpObjects, doc: `{"objects":[{"id":"x","type":"t","terms":{"text":[{"t":-1,"c":1}]}}]}`},
		{name: "term past vocab cap", op: OpObjects, limit: true,
			doc: `{"objects":[{"id":"x","type":"t","terms":{"text":[{"t":9,"c":1}]}}]}`},
		{name: "zero count", op: OpObjects, doc: `{"objects":[{"id":"x","type":"t","terms":{"text":[{"t":0,"c":0}]}}]}`},
		{name: "attr both kinds", op: OpObjects, doc: `{"objects":[{"id":"x","type":"t","terms":{"a":[{"t":0,"c":1}]},"numeric":{"a":[1]}}]}`},
		{name: "too many observations", op: OpObjects, limit: true,
			doc: `{"objects":[{"id":"x","type":"t","numeric":{"score":[1,2,3,4]}}]}`},
		{name: "empty attributes", op: OpAttributes, doc: `{}`},
		{name: "patch names nothing", op: OpAttributes, doc: `{"set":[{"id":"x"}]}`},
		{name: "duplicate patch ids", op: OpAttributes, doc: `{"set":[{"id":"x","numeric":{"score":[1]}},{"id":"x","numeric":{"score":[2]}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.op, []byte(tc.doc), lim)
			if err == nil {
				t.Fatalf("decode accepted %s", tc.doc)
			}
			var le *hin.LimitError
			if got := errors.As(err, &le); got != tc.limit {
				t.Fatalf("limit error = %v, want %v (%v)", got, tc.limit, err)
			}
			if !tc.limit {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("not a FormatError: %v", err)
				}
			}
		})
	}

	if _, err := Decode(OpEdges, []byte(`{"op":"edges","add":[{"from":"a","to":"b","rel":"r","w":1}]}`), lim); err != nil {
		t.Fatalf("valid edges rejected: %v", err)
	}
	if _, err := Decode(OpAttributes, []byte(`{"set":[{"id":"x","terms":{"text":[]}}]}`), lim); err != nil {
		t.Fatalf("observation clear rejected: %v", err)
	}
}

// TestApplySemantics pins apply-time contradictions (all *ApplyError) and
// the immutability of the input view.
func TestApplySemantics(t *testing.T) {
	n := testNetwork(t)
	before, _ := n.MarshalJSON()

	bad := []struct {
		name string
		op   Op
		doc  string
	}{
		{name: "add edge unknown object", op: OpEdges, doc: `{"add":[{"from":"p1","to":"ghost","rel":"cites","w":1}]}`},
		{name: "remove unknown relation", op: OpEdges, doc: `{"remove":[{"from":"p1","to":"p2","rel":"ghost"}]}`},
		{name: "remove missing edge", op: OpEdges, doc: `{"remove":[{"from":"p2","to":"p1","rel":"cites"}]}`},
		{name: "duplicate object id", op: OpObjects, doc: `{"objects":[{"id":"p1","type":"paper"}]}`},
		{name: "link to unknown object", op: OpObjects, doc: `{"objects":[{"id":"p9","type":"paper"}],"links":[{"from":"p9","to":"ghost","rel":"cites","w":1}]}`},
		{name: "unknown attribute", op: OpObjects, doc: `{"objects":[{"id":"p9","type":"paper","terms":{"ghost":[{"t":0,"c":1}]}}]}`},
		{name: "kind mismatch", op: OpObjects, doc: `{"objects":[{"id":"p9","type":"paper","numeric":{"text":[1]}}]}`},
		{name: "term outside vocab", op: OpObjects, doc: `{"objects":[{"id":"p9","type":"paper","terms":{"text":[{"t":99,"c":1}]}}]}`},
		{name: "patch unknown object", op: OpAttributes, doc: `{"set":[{"id":"ghost","numeric":{"score":[1]}}]}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Decode(tc.op, []byte(tc.doc), noLimits())
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if _, err := Apply(n, m); err == nil {
				t.Fatal("apply accepted a contradiction")
			} else {
				var ae *ApplyError
				if !errors.As(err, &ae) {
					t.Fatalf("not an ApplyError: %v", err)
				}
			}
		})
	}

	// A successful apply yields a new view and leaves the input untouched.
	m, err := Decode(OpObjects, []byte(`{"objects":[{"id":"p3","type":"paper","terms":{"text":[{"t":2,"c":1}]}}],"links":[{"from":"p3","to":"p1","rel":"cites","w":1}]}`), noLimits())
	if err != nil {
		t.Fatal(err)
	}
	next, err := Apply(n, m)
	if err != nil {
		t.Fatal(err)
	}
	if next.NumObjects() != 4 || next.NumEdges() != 3 {
		t.Fatalf("next view: %d objects %d edges, want 4 and 3", next.NumObjects(), next.NumEdges())
	}
	after, _ := n.MarshalJSON()
	if !bytes.Equal(before, after) {
		t.Fatal("Apply mutated the input network")
	}

	// Removing the just-added parallel triple removes every matching edge.
	b := hin.NewBuilder()
	hin.CloneInto(b, next, nil, nil)
	b.AddLink("p3", "p1", "cites", 5) // second parallel edge
	withDup, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rm, _ := Decode(OpEdges, []byte(`{"remove":[{"from":"p3","to":"p1","rel":"cites"}]}`), noLimits())
	pruned, err := Apply(withDup, rm)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumEdges() != 2 {
		t.Fatalf("parallel removal left %d edges, want 2", pruned.NumEdges())
	}
}

// TestApplyDeterminism pins the canonicalization contract the refit
// bitwise-identity guarantee rests on: a network mutated into shape X is
// byte-for-byte the network built from scratch with content X, regardless
// of how the mutations were chunked.
func TestApplyDeterminism(t *testing.T) {
	n := testNetwork(t)
	docs := []struct {
		op  Op
		doc string
	}{
		{OpObjects, `{"objects":[{"id":"p3","type":"paper","terms":{"text":[{"t":1,"c":2}]}}],"links":[{"from":"p3","to":"p2","rel":"cites","w":1}]}`},
		{OpEdges, `{"add":[{"from":"a1","to":"p3","rel":"writes","w":1}],"remove":[{"from":"p1","to":"p2","rel":"cites"}]}`},
		{OpAttributes, `{"set":[{"id":"p1","terms":{"text":[{"t":4,"c":1}]},"numeric":{"score":[2.5]}}]}`},
	}
	for _, d := range docs {
		m, err := Decode(d.op, []byte(d.doc), noLimits())
		if err != nil {
			t.Fatal(err)
		}
		if n, err = Apply(n, m); err != nil {
			t.Fatal(err)
		}
	}

	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 8})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	b.AddObject("p1", "paper")
	b.AddObject("p2", "paper")
	b.AddObject("a1", "author")
	b.AddObject("p3", "paper")
	b.AddLink("a1", "p1", "writes", 1)
	b.AddLink("p3", "p2", "cites", 1)
	b.AddLink("a1", "p3", "writes", 1)
	b.AddTermCount("p1", "text", 4, 1)
	b.AddNumeric("p1", "score", 2.5)
	b.AddNumeric("p2", "score", 1.5)
	b.AddTermCount("p3", "text", 1, 2)
	scratch, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	got, _ := n.MarshalJSON()
	want, _ := scratch.MarshalJSON()
	if !bytes.Equal(got, want) {
		t.Fatalf("mutated network diverges from from-scratch build:\n got %s\nwant %s", got, want)
	}
}

// TestTouched pins the drift-sample source: first-appearance order,
// duplicates dropped, every surface contributing.
func TestTouched(t *testing.T) {
	m := &Mutation{
		Op:     OpEdges,
		Add:    []Link{{From: "a", To: "b", Relation: "r", Weight: 1}, {From: "b", To: "c", Relation: "r", Weight: 1}},
		Remove: []EdgeRef{{From: "a", To: "d", Relation: "r"}},
	}
	got := m.Touched()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("touched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("touched %v, want %v", got, want)
		}
	}
}

// TestLogAppendReplay drives the durability loop: append N records, reopen
// the store, and replay them in order; a corrupt mid-log record truncates
// the prefix there and deletes the tail.
func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	blobs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(blobs, "netA")
	if err != nil {
		t.Fatal(err)
	}
	muts := []*Mutation{
		{Op: OpEdges, Add: []Link{{From: "a", To: "b", Relation: "r", Weight: 1}}},
		{Op: OpObjects, Objects: []Object{{ID: "x", Type: "t"}}},
		{Op: OpAttributes, Set: []AttrPatch{{ID: "x", Numeric: map[string][]float64{"score": {1}}}}},
	}
	for i, m := range muts {
		seq, err := l.Append(m)
		if err != nil {
			t.Fatal(err)
		}
		if seq != i {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if l.Depth() != 3 {
		t.Fatalf("depth %d, want 3", l.Depth())
	}

	// A second log on the same bucket must not see netA's records.
	other, err := Open(blobs, "netB")
	if err != nil {
		t.Fatal(err)
	}
	if other.Depth() != 0 {
		t.Fatalf("netB depth %d, want 0", other.Depth())
	}

	// Reopen: the sequence resumes past the durable records.
	reopened, err := Open(blobs, "netA")
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Depth() != 3 {
		t.Fatalf("reopened depth %d, want 3", reopened.Depth())
	}
	var ops []Op
	applied, err := reopened.Replay(noLimits(), func(seq int, m *Mutation) error {
		if seq != len(ops) {
			t.Fatalf("replay seq %d out of order", seq)
		}
		ops = append(ops, m.Op)
		return nil
	})
	if err != nil || applied != 3 {
		t.Fatalf("replay: %d, %v", applied, err)
	}
	if ops[0] != OpEdges || ops[1] != OpObjects || ops[2] != OpAttributes {
		t.Fatalf("replay order %v", ops)
	}

	// Corrupt the middle record: replay recovers only the prefix before it
	// and durably removes everything from the corruption onward.
	path := filepath.Join(dir, Bucket, recordName("netA", 1)+".bin")
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	damaged, err := Open(blobs, "netA")
	if err != nil {
		t.Fatal(err)
	}
	applied, err = damaged.Replay(noLimits(), func(int, *Mutation) error { return nil })
	if err != nil || applied != 1 {
		t.Fatalf("post-corruption replay: %d, %v", applied, err)
	}
	ids, err := blobs.List(Bucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != recordName("netA", 0) {
		t.Fatalf("post-truncation records %v, want only seq 0", ids)
	}
	// The next append continues the truncated prefix.
	if seq, err := damaged.Append(muts[0]); err != nil || seq != 1 {
		t.Fatalf("post-truncation append seq %d, %v", seq, err)
	}

	// Purge leaves nothing behind.
	if err := damaged.Purge(); err != nil {
		t.Fatal(err)
	}
	if ids, _ := blobs.List(Bucket); len(ids) != 0 {
		t.Fatalf("purge left %v", ids)
	}
}

// TestMemoryOnlyLog pins the nil-store degradation: appends advance the
// sequence, replay restores nothing, purge is a no-op.
func TestMemoryOnlyLog(t *testing.T) {
	l, err := Open(nil, "net")
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append(&Mutation{Op: OpEdges, Add: []Link{{From: "a", To: "b", Relation: "r", Weight: 1}}}); err != nil || seq != 0 {
		t.Fatalf("append: %d, %v", seq, err)
	}
	if l.Depth() != 1 {
		t.Fatalf("depth %d", l.Depth())
	}
	applied, err := l.Replay(noLimits(), func(int, *Mutation) error { t.Fatal("replayed a memory-only log"); return nil })
	if err != nil || applied != 0 {
		t.Fatalf("replay: %d, %v", applied, err)
	}
	if err := l.Purge(); err != nil {
		t.Fatal(err)
	}
}

// TestListNetworkIDs pins the recovery scan: distinct IDs, sorted, with
// dotted network IDs resolved by the LAST dot (IDs may contain dots).
func TestListNetworkIDs(t *testing.T) {
	dir := t.TempDir()
	blobs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &Mutation{Op: OpEdges, Add: []Link{{From: "a", To: "b", Relation: "r", Weight: 1}}}
	for _, id := range []string{"zz", "net.v2", "aa"} {
		l, err := Open(blobs, id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(m); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := ListNetworkIDs(blobs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aa", "net.v2", "zz"}
	if len(ids) != len(want) {
		t.Fatalf("ids %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v, want %v", ids, want)
		}
	}
}
