// Package deltalog is the streaming-mutation subsystem under genclusd's
// network mutation API: a typed mutation wire format with a bounded
// decoder (the mutation trust boundary), a pure apply step that turns a
// mutation plus an immutable hin.Network into the next immutable view
// generation, and a crash-safe per-network delta log built on the
// internal/store blob envelope (CRC-32C, temp+rename+fsync — when Append
// returns nil the record is on disk).
//
// The paper's model (Sun, Aggarwal, Han — VLDB 2012) fits a fixed network;
// the serving reality is a network that never stops changing. The delta
// log is what connects the two: every mutation is validated, logged, and
// applied as a full rebuild through hin.CloneInto + Builder.Build, whose
// canonicalization makes generation N of a mutated network bit-for-bit the
// network a from-scratch build of the same content would produce. In-flight
// fits and assigns keep the generation they started with — a live view is
// never edited — and recovery replays base + log to reconstruct the exact
// live generation after a SIGKILL.
package deltalog

import (
	"encoding/json"
	"fmt"
	"math"

	"genclus/internal/hin"
)

// Op identifies which mutation surface a record came from; it is stored in
// every log record so replay dispatches without out-of-band context.
type Op string

// The three mutation surfaces, matching the HTTP routes one-to-one.
const (
	// OpEdges adds and/or removes links between existing objects
	// (POST /v1/networks/{id}/edges).
	OpEdges Op = "edges"
	// OpObjects adds new objects, optionally with observations and links
	// (POST /v1/networks/{id}/objects).
	OpObjects Op = "objects"
	// OpAttributes replaces per-object attribute observations
	// (PATCH /v1/networks/{id}/attributes).
	OpAttributes Op = "attributes"
)

// Link is one link to add: object IDs, a relation name (which may be new
// to the network) and a positive finite weight. The field tags match the
// network document's link shape.
type Link struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Relation string  `json:"rel"`
	Weight   float64 `json:"w"`
}

// EdgeRef names an edge to remove by its (from, relation, to) triple.
// Removal deletes every parallel edge matching the triple.
type EdgeRef struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Relation string `json:"rel"`
}

// TermCount is one sparse categorical observation entry, in the network
// document's compact {"t":term,"c":count} shape.
type TermCount struct {
	Term  int     `json:"t"`
	Count float64 `json:"c"`
}

// Object is one object to add: an ID new to the network, a type, and
// optional attribute observations keyed by attribute name.
type Object struct {
	ID      string                 `json:"id"`
	Type    string                 `json:"type"`
	Terms   map[string][]TermCount `json:"terms,omitempty"`
	Numeric map[string][]float64   `json:"numeric,omitempty"`
}

// AttrPatch replaces one existing object's observations for the named
// attributes. An attribute present with an empty list clears the object's
// observation (the incomplete-attribute case); attributes not named are
// untouched.
type AttrPatch struct {
	ID      string                 `json:"id"`
	Terms   map[string][]TermCount `json:"terms,omitempty"`
	Numeric map[string][]float64   `json:"numeric,omitempty"`
}

// Mutation is one decoded mutation — the union of the three op payloads,
// discriminated by Op. Only the fields of the matching op may be set.
type Mutation struct {
	Op Op `json:"op"`
	// OpEdges payload.
	Add    []Link    `json:"add,omitempty"`
	Remove []EdgeRef `json:"remove,omitempty"`
	// OpObjects payload. Links may reference both existing and newly added
	// objects.
	Objects []Object `json:"objects,omitempty"`
	Links   []Link   `json:"links,omitempty"`
	// OpAttributes payload.
	Set []AttrPatch `json:"set,omitempty"`
}

// FormatError reports a malformed mutation document — bad JSON, an empty
// or self-contradictory payload, a non-finite number. Servers map it
// to 400.
type FormatError struct {
	// Msg describes what was rejected.
	Msg string
}

// Error implements the error interface.
func (e *FormatError) Error() string { return "deltalog: " + e.Msg }

// ApplyError reports a structurally valid mutation that contradicts the
// network it is applied to — an unknown object or edge, a duplicate ID, a
// term outside an attribute's vocabulary. Servers map it to 400.
type ApplyError struct {
	// Msg describes the contradiction.
	Msg string
}

// Error implements the error interface.
func (e *ApplyError) Error() string { return "deltalog: " + e.Msg }

func formatErrf(format string, args ...interface{}) error {
	return &FormatError{Msg: fmt.Sprintf(format, args...)}
}

func applyErrf(format string, args ...interface{}) error {
	return &ApplyError{Msg: fmt.Sprintf(format, args...)}
}

// Decode parses and validates one mutation body for the given op — the
// mutation trust boundary. Structure is validated unconditionally (IDs
// non-empty, weights and counts positive finite, payload matching the op
// and non-empty); lim bounds what a single mutation may carry, with limit
// breaches reported as *hin.LimitError so servers answer 413, and
// everything else as *FormatError (400). Semantic validation against the
// target network happens in Apply.
func Decode(op Op, data []byte, lim hin.Limits) (*Mutation, error) {
	m := &Mutation{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, formatErrf("parse mutation: %v", err)
	}
	if m.Op != "" && m.Op != op {
		return nil, formatErrf("document op %q does not match endpoint op %q", m.Op, op)
	}
	m.Op = op
	if err := m.validate(lim); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeRecord parses and validates one logged mutation record, using the
// record's own op discriminator. Replay and fuzzing go through it.
func DecodeRecord(data []byte, lim hin.Limits) (*Mutation, error) {
	m := &Mutation{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, formatErrf("parse mutation record: %v", err)
	}
	switch m.Op {
	case OpEdges, OpObjects, OpAttributes:
	default:
		return nil, formatErrf("unknown mutation op %q", m.Op)
	}
	if err := m.validate(lim); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the mutation as a log record payload; DecodeRecord
// reverses it.
func (m *Mutation) Encode() ([]byte, error) {
	return json.Marshal(m)
}

// validate runs the op-specific structural checks and limit bounds.
func (m *Mutation) validate(lim hin.Limits) error {
	switch m.Op {
	case OpEdges:
		if len(m.Objects) != 0 || len(m.Links) != 0 || len(m.Set) != 0 {
			return formatErrf("edges mutation carries non-edges fields")
		}
		if len(m.Add) == 0 && len(m.Remove) == 0 {
			return formatErrf("edges mutation adds and removes nothing")
		}
		if lim.MaxLinks > 0 && len(m.Add)+len(m.Remove) > lim.MaxLinks {
			return &hin.LimitError{Dimension: "links", Got: len(m.Add) + len(m.Remove), Max: lim.MaxLinks}
		}
		if err := validLinks("add", m.Add); err != nil {
			return err
		}
		for i, ref := range m.Remove {
			if ref.From == "" || ref.To == "" || ref.Relation == "" {
				return formatErrf("remove[%d]: from, to and rel must be non-empty", i)
			}
		}
	case OpObjects:
		if len(m.Add) != 0 || len(m.Remove) != 0 || len(m.Set) != 0 {
			return formatErrf("objects mutation carries non-objects fields")
		}
		if len(m.Objects) == 0 {
			return formatErrf("objects mutation adds no objects")
		}
		if lim.MaxObjects > 0 && len(m.Objects) > lim.MaxObjects {
			return &hin.LimitError{Dimension: "objects", Got: len(m.Objects), Max: lim.MaxObjects}
		}
		if lim.MaxLinks > 0 && len(m.Links) > lim.MaxLinks {
			return &hin.LimitError{Dimension: "links", Got: len(m.Links), Max: lim.MaxLinks}
		}
		if err := validLinks("links", m.Links); err != nil {
			return err
		}
		seen := make(map[string]bool, len(m.Objects))
		var obs int
		for i, o := range m.Objects {
			if o.ID == "" {
				return formatErrf("objects[%d]: id must be non-empty", i)
			}
			if o.Type == "" {
				return formatErrf("objects[%d] (%q): type must be non-empty", i, o.ID)
			}
			if seen[o.ID] {
				return formatErrf("objects[%d]: duplicate id %q", i, o.ID)
			}
			seen[o.ID] = true
			n, err := validObs(fmt.Sprintf("objects[%d] (%q)", i, o.ID), o.Terms, o.Numeric, lim)
			if err != nil {
				return err
			}
			obs += n
			if lim.MaxObservations > 0 && obs > lim.MaxObservations {
				return &hin.LimitError{Dimension: "observations", Got: obs, Max: lim.MaxObservations}
			}
		}
	case OpAttributes:
		if len(m.Add) != 0 || len(m.Remove) != 0 || len(m.Objects) != 0 || len(m.Links) != 0 {
			return formatErrf("attributes mutation carries non-attributes fields")
		}
		if len(m.Set) == 0 {
			return formatErrf("attributes mutation patches nothing")
		}
		if lim.MaxObjects > 0 && len(m.Set) > lim.MaxObjects {
			return &hin.LimitError{Dimension: "objects", Got: len(m.Set), Max: lim.MaxObjects}
		}
		seen := make(map[string]bool, len(m.Set))
		var obs int
		for i, p := range m.Set {
			if p.ID == "" {
				return formatErrf("set[%d]: id must be non-empty", i)
			}
			if seen[p.ID] {
				return formatErrf("set[%d]: duplicate id %q", i, p.ID)
			}
			seen[p.ID] = true
			if len(p.Terms) == 0 && len(p.Numeric) == 0 {
				return formatErrf("set[%d] (%q): patch names no attributes", i, p.ID)
			}
			n, err := validObs(fmt.Sprintf("set[%d] (%q)", i, p.ID), p.Terms, p.Numeric, lim)
			if err != nil {
				return err
			}
			obs += n
			if lim.MaxObservations > 0 && obs > lim.MaxObservations {
				return &hin.LimitError{Dimension: "observations", Got: obs, Max: lim.MaxObservations}
			}
		}
	default:
		return formatErrf("unknown mutation op %q", m.Op)
	}
	return nil
}

// validLinks checks link structure: non-empty endpoints and relation,
// positive finite weight.
func validLinks(what string, links []Link) error {
	for i, l := range links {
		if l.From == "" || l.To == "" || l.Relation == "" {
			return formatErrf("%s[%d]: from, to and rel must be non-empty", what, i)
		}
		if !(l.Weight > 0) || math.IsInf(l.Weight, 0) || math.IsNaN(l.Weight) {
			return formatErrf("%s[%d] (%s -[%s]-> %s): weight %v must be positive finite", what, i, l.From, l.Relation, l.To, l.Weight)
		}
	}
	return nil
}

// validObs checks one object's observation maps: attribute names non-empty,
// the same attribute not both categorical and numeric, term indices inside
// [0, MaxVocab), counts positive finite, values finite. It returns the
// number of observation entries for the caller's MaxObservations budget.
func validObs(what string, terms map[string][]TermCount, numeric map[string][]float64, lim hin.Limits) (int, error) {
	var obs int
	for attr, tcs := range terms {
		if attr == "" {
			return 0, formatErrf("%s: empty attribute name", what)
		}
		if _, dup := numeric[attr]; dup {
			return 0, formatErrf("%s: attribute %q is both categorical and numeric", what, attr)
		}
		for _, tc := range tcs {
			if tc.Term < 0 {
				return 0, formatErrf("%s: attribute %q term %d is negative", what, attr, tc.Term)
			}
			if lim.MaxVocab > 0 && tc.Term >= lim.MaxVocab {
				return 0, &hin.LimitError{Dimension: "vocabulary", Got: tc.Term + 1, Max: lim.MaxVocab}
			}
			if !(tc.Count > 0) || math.IsInf(tc.Count, 0) || math.IsNaN(tc.Count) {
				return 0, formatErrf("%s: attribute %q count %v must be positive finite", what, attr, tc.Count)
			}
		}
		obs += len(tcs)
	}
	for attr, xs := range numeric {
		if attr == "" {
			return 0, formatErrf("%s: empty attribute name", what)
		}
		for _, x := range xs {
			if math.IsInf(x, 0) || math.IsNaN(x) {
				return 0, formatErrf("%s: attribute %q value %v must be finite", what, attr, x)
			}
		}
		obs += len(xs)
	}
	return obs, nil
}
