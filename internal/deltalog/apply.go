package deltalog

import (
	"genclus/internal/hin"
)

// edgeKey identifies an edge by dense endpoint and relation indices for
// removal matching.
type edgeKey struct {
	from, to, rel int
}

// Apply materializes the next view generation: the mutation, already past
// Decode, is validated against the network's actual content and replayed
// with it into a fresh Builder via hin.CloneInto. The input network is
// never touched — callers holding it (in-flight fits, assigns, drift
// scoring) keep a consistent snapshot. Semantic contradictions come back
// as *ApplyError; the returned network, when non-nil, is fully built but
// not CSR-prepared (the serving layer calls PrepareCSR at publish time,
// mirroring the upload path).
//
// Determinism: Builder.Build canonicalizes edge order and observation
// storage, so Apply(n, m) is bit-for-bit the network a from-scratch build
// of the mutated content would produce, independent of mutation history
// chunking. Warm-start refits of generation G therefore reproduce a manual
// fit of the same generation exactly.
func Apply(n *hin.Network, m *Mutation) (*hin.Network, error) {
	switch m.Op {
	case OpEdges:
		return applyEdges(n, m)
	case OpObjects:
		return applyObjects(n, m)
	case OpAttributes:
		return applyAttributes(n, m)
	}
	return nil, applyErrf("unknown mutation op %q", m.Op)
}

func applyEdges(n *hin.Network, m *Mutation) (*hin.Network, error) {
	// Resolve removals to dense keys up front so unknown references fail
	// before any building happens. The count tracks parallel-edge triples:
	// one EdgeRef removes every matching edge, duplicated refs are
	// redundant but harmless.
	remove := make(map[edgeKey]bool, len(m.Remove))
	matched := make(map[edgeKey]bool, len(m.Remove))
	for _, ref := range m.Remove {
		from, ok := n.IndexOf(ref.From)
		if !ok {
			return nil, applyErrf("remove: unknown object %q", ref.From)
		}
		to, ok := n.IndexOf(ref.To)
		if !ok {
			return nil, applyErrf("remove: unknown object %q", ref.To)
		}
		rel, ok := n.RelationID(ref.Relation)
		if !ok {
			return nil, applyErrf("remove: unknown relation %q", ref.Relation)
		}
		remove[edgeKey{from, to, rel}] = true
	}
	for _, l := range m.Add {
		if _, ok := n.IndexOf(l.From); !ok {
			return nil, applyErrf("add: unknown object %q", l.From)
		}
		if _, ok := n.IndexOf(l.To); !ok {
			return nil, applyErrf("add: unknown object %q", l.To)
		}
	}
	b := hin.NewBuilder()
	hin.CloneInto(b, n, func(e hin.Edge) bool {
		k := edgeKey{e.From, e.To, e.Rel}
		if remove[k] {
			matched[k] = true
			return false
		}
		return true
	}, nil)
	for k := range remove {
		if !matched[k] {
			return nil, applyErrf("remove: no edge %s -[%s]-> %s",
				n.Object(k.from).ID, n.RelationName(k.rel), n.Object(k.to).ID)
		}
	}
	for _, l := range m.Add {
		b.AddLink(l.From, l.To, l.Relation, l.Weight)
	}
	net, err := b.Build()
	if err != nil {
		return nil, &ApplyError{Msg: err.Error()}
	}
	return net, nil
}

func applyObjects(n *hin.Network, m *Mutation) (*hin.Network, error) {
	added := make(map[string]bool, len(m.Objects))
	for _, o := range m.Objects {
		if _, exists := n.IndexOf(o.ID); exists {
			return nil, applyErrf("objects: id %q already exists", o.ID)
		}
		added[o.ID] = true
		if err := checkObs(n, o.ID, o.Terms, o.Numeric); err != nil {
			return nil, err
		}
	}
	for _, l := range m.Links {
		if _, ok := n.IndexOf(l.From); !ok && !added[l.From] {
			return nil, applyErrf("links: unknown object %q", l.From)
		}
		if _, ok := n.IndexOf(l.To); !ok && !added[l.To] {
			return nil, applyErrf("links: unknown object %q", l.To)
		}
	}
	b := hin.NewBuilder()
	hin.CloneInto(b, n, nil, nil)
	for _, o := range m.Objects {
		b.AddObject(o.ID, o.Type)
		addObs(b, o.ID, o.Terms, o.Numeric)
	}
	for _, l := range m.Links {
		b.AddLink(l.From, l.To, l.Relation, l.Weight)
	}
	net, err := b.Build()
	if err != nil {
		return nil, &ApplyError{Msg: err.Error()}
	}
	return net, nil
}

func applyAttributes(n *hin.Network, m *Mutation) (*hin.Network, error) {
	// patched[objID] is the set of attribute names whose observations the
	// patch replaces; CloneInto drops exactly those, then the patch's lists
	// (possibly empty — a clear) are added back.
	patched := make(map[string]map[string]bool, len(m.Set))
	for _, p := range m.Set {
		if _, ok := n.IndexOf(p.ID); !ok {
			return nil, applyErrf("set: unknown object %q", p.ID)
		}
		if err := checkObs(n, p.ID, p.Terms, p.Numeric); err != nil {
			return nil, err
		}
		attrs := make(map[string]bool, len(p.Terms)+len(p.Numeric))
		for attr := range p.Terms {
			attrs[attr] = true
		}
		for attr := range p.Numeric {
			attrs[attr] = true
		}
		patched[p.ID] = attrs
	}
	b := hin.NewBuilder()
	hin.CloneInto(b, n, nil, func(objID, attr string) bool {
		return !patched[objID][attr]
	})
	for _, p := range m.Set {
		addObs(b, p.ID, p.Terms, p.Numeric)
	}
	net, err := b.Build()
	if err != nil {
		return nil, &ApplyError{Msg: err.Error()}
	}
	return net, nil
}

// checkObs validates one object's observation maps against the network's
// declared attributes: the attribute must exist, its kind must match the
// map it appears in, and categorical terms must lie inside the declared
// vocabulary.
func checkObs(n *hin.Network, objID string, terms map[string][]TermCount, numeric map[string][]float64) error {
	for attr, tcs := range terms {
		a, ok := n.AttrID(attr)
		if !ok {
			return applyErrf("object %q: unknown attribute %q", objID, attr)
		}
		spec := n.Attr(a)
		if spec.Kind != hin.Categorical {
			return applyErrf("object %q: attribute %q is numeric, not categorical", objID, attr)
		}
		for _, tc := range tcs {
			if tc.Term >= spec.VocabSize {
				return applyErrf("object %q: attribute %q term %d outside vocabulary of %d", objID, attr, tc.Term, spec.VocabSize)
			}
		}
	}
	for attr := range numeric {
		a, ok := n.AttrID(attr)
		if !ok {
			return applyErrf("object %q: unknown attribute %q", objID, attr)
		}
		if n.Attr(a).Kind != hin.Numeric {
			return applyErrf("object %q: attribute %q is categorical, not numeric", objID, attr)
		}
	}
	return nil
}

// addObs replays one object's observation maps into the builder. Map
// iteration order does not affect the result: distinct attributes feed
// distinct observation lists, entries within one attribute keep their
// slice order, and Build canonicalizes term storage.
func addObs(b *hin.Builder, objID string, terms map[string][]TermCount, numeric map[string][]float64) {
	for attr, tcs := range terms {
		for _, tc := range tcs {
			b.AddTermCount(objID, attr, tc.Term, tc.Count)
		}
	}
	for attr, xs := range numeric {
		for _, x := range xs {
			b.AddNumeric(objID, attr, x)
		}
	}
}

// Touched returns the IDs of objects a mutation bears evidence about — the
// endpoints of added and removed edges, newly added objects, and patched
// objects — in first-appearance order with duplicates removed. The refit
// supervisor samples these for drift scoring.
func (m *Mutation) Touched() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, l := range m.Add {
		add(l.From)
		add(l.To)
	}
	for _, r := range m.Remove {
		add(r.From)
		add(r.To)
	}
	for _, o := range m.Objects {
		add(o.ID)
	}
	for _, l := range m.Links {
		add(l.From)
		add(l.To)
	}
	for _, p := range m.Set {
		add(p.ID)
	}
	return out
}
