package deltalog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"genclus/internal/hin"
)

// fuzzLimits bounds hostile mutations the way the mutation endpoints do in
// production — without them a single fuzz input could allocate unbounded
// link or observation slices.
var fuzzLimits = hin.Limits{
	MaxObjects:      2000,
	MaxLinks:        10000,
	MaxAttributes:   32,
	MaxVocab:        4096,
	MaxObservations: 20000,
}

// FuzzDecodeMutation hammers the mutation wire format (the fourth trust
// boundary, behind POST /v1/networks/{id}/edges|objects and PATCH
// .../attributes): any byte slice must either fail with a typed error or
// produce a mutation that survives an Encode → DecodeRecord round trip
// and applies (or is rejected) against a live network without panicking.
func FuzzDecodeMutation(f *testing.F) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(fixtures) == 0 {
		f.Fatal("no testdata fixtures to seed the corpus")
	}
	for _, path := range fixtures {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"op":"edges","add":[{"from":"a","to":"a","rel":"self","w":1}]}`))
	// Duplicate edges (same triple twice) are legal adds; duplicate object
	// IDs are not. Hostile IDs probe the blob-name and JSON-escape seams.
	f.Add([]byte(`{"op":"edges","add":[{"from":"a","to":"b","rel":"r","w":1},{"from":"a","to":"b","rel":"r","w":1}]}`))
	f.Add([]byte(`{"op":"objects","objects":[{"id":"x","type":"t"},{"id":"x","type":"t"}]}`))
	f.Add([]byte(`{"op":"objects","objects":[{"id":"../../../etc/passwd","type":"t"},{"id":"ab","type":"‮"}]}`))
	f.Add([]byte("{\"op\":\"objects\",\"objects\":[{\"id\":\"a\\u0000b\",\"type\":\"t\"}]}"))
	f.Add([]byte(`{"op":"edges","add":[{"from":"a","to":"b","rel":"r","w":1e308}],"remove":[{"from":"a","to":"b","rel":"r"}]}`))
	f.Add([]byte(`{"op":"attributes","set":[{"id":"p1","terms":{"text":[{"t":0,"c":1}]},"numeric":{"score":[-0]}}]}`))

	// A small live network gives Apply real indices, vocabularies and
	// relation tables to contradict.
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 8})
	b.DeclareAttribute(hin.AttrSpec{Name: "score", Kind: hin.Numeric})
	b.AddObject("p1", "paper")
	b.AddObject("p2", "paper")
	b.AddObject("a", "author")
	b.AddLink("a", "p1", "writes", 1)
	b.AddLink("p1", "p2", "cites", 1)
	base, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeRecord(data, fuzzLimits)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("mutation decoded from %q fails to encode: %v", data, err)
		}
		again, err := DecodeRecord(enc, fuzzLimits)
		if err != nil {
			t.Fatalf("round trip rejects own output: %v\ninput: %q\nencoded: %q", err, data, enc)
		}
		enc2, err := again.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not stable across a round trip:\n first %q\nsecond %q", enc, enc2)
		}
		// Touched never panics and never returns empty IDs or duplicates.
		seen := map[string]bool{}
		for _, id := range m.Touched() {
			if id == "" || seen[id] {
				t.Fatalf("touched has empty or duplicate id in %v", m.Touched())
			}
			seen[id] = true
		}
		// Apply against the live network: a typed rejection or a valid next
		// view, never a panic, never mutation of the input.
		next, err := Apply(base, m)
		if err != nil {
			return
		}
		if next == base {
			t.Fatal("Apply returned the input network")
		}
		if next.NumObjects() < base.NumObjects() {
			t.Fatalf("apply shrank objects: %d → %d", base.NumObjects(), next.NumObjects())
		}
	})
}
