package deltalog

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"genclus/internal/hin"
	"genclus/internal/store"
)

// Bucket is the blob-store bucket delta logs live in, next to "models" and
// "jobs" under the daemon's -data-dir.
const Bucket = "deltas"

// recordName is the blob id of one log record: "<netID>.<seq>" with the
// sequence zero-padded so List's lexicographic order is replay order.
func recordName(netID string, seq int) string {
	return fmt.Sprintf("%s.%08d", netID, seq)
}

// Log is one network's append-only mutation log. Every record rides the
// internal/store envelope — CRC-32C checksummed, written temp+fsync+rename
// — so a nil Append means the mutation is durable (done ⇒ durable), and a
// SIGKILL at any point leaves a valid contiguous prefix. A Log with a nil
// blob store tracks depth in memory only (the daemon without -data-dir);
// mutations still apply, they just do not survive a restart.
//
// Append serializes internally; the caller additionally serializes whole
// mutations per network (decode→apply→append→publish) so sequence numbers
// match publication order.
type Log struct {
	blobs *store.Store // nil → memory-only
	netID string

	mu   sync.Mutex
	next int // next sequence number == records appended so far
}

// Open attaches a log for one network, scanning existing records to resume
// the sequence after a restart. A nil blobs store yields a memory-only log.
func Open(blobs *store.Store, netID string) (*Log, error) {
	l := &Log{blobs: blobs, netID: netID}
	if blobs == nil {
		return l, nil
	}
	seqs, err := l.listSeqs()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		l.next = seqs[len(seqs)-1] + 1
	}
	return l, nil
}

// listSeqs returns this network's record sequence numbers, ascending.
func (l *Log) listSeqs() ([]int, error) {
	ids, err := l.blobs.List(Bucket)
	if err != nil {
		return nil, err
	}
	prefix := l.netID + "."
	var seqs []int
	for _, id := range ids {
		if !strings.HasPrefix(id, prefix) {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
		if err != nil || seq < 0 {
			continue // not a record of ours
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Append assigns the mutation the next sequence number and, when backed by
// disk, writes it through the store's atomic-Put discipline. The sequence
// advances even when the disk write fails — the live view moved regardless
// — so a degraded daemon keeps serving; replay later recovers the durable
// contiguous prefix and discards anything past the first gap.
func (l *Log) Append(m *Mutation) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.next
	l.next++
	if l.blobs == nil {
		return seq, nil
	}
	data, err := m.Encode()
	if err != nil {
		return seq, err
	}
	return seq, l.blobs.Put(Bucket, recordName(l.netID, seq), data)
}

// Depth returns the number of records appended over the log's lifetime
// (including any that failed to reach disk — see Append).
func (l *Log) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Replay feeds the durable contiguous prefix of records — sequence 0
// upward, stopping at the first missing or corrupt record — to fn in
// order, deletes anything past the prefix (records after a gap can no
// longer be applied consistently), and resets the sequence so the next
// Append continues the prefix. fn returning an error stops the replay and
// truncates there too: what fn refused, and everything after it, is gone.
// Returns the number of records applied.
func (l *Log) Replay(lim hin.Limits, fn func(seq int, m *Mutation) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.blobs == nil {
		return 0, nil
	}
	applied := 0
	for {
		data, err := l.blobs.Get(Bucket, recordName(l.netID, applied))
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				break
			}
			var corrupt *store.CorruptError
			if errors.As(err, &corrupt) {
				break // torn tail or damaged record: the prefix ends here
			}
			return applied, err
		}
		m, err := DecodeRecord(data, lim)
		if err != nil {
			break
		}
		if err := fn(applied, m); err != nil {
			break
		}
		applied++
	}
	// Drop everything past the replayed prefix so stale post-gap records
	// cannot resurface in a later recovery.
	seqs, err := l.listSeqs()
	if err != nil {
		return applied, err
	}
	for _, seq := range seqs {
		if seq >= applied {
			if err := l.blobs.Delete(Bucket, recordName(l.netID, seq)); err != nil && !errors.Is(err, store.ErrNotFound) {
				return applied, err
			}
		}
	}
	l.next = applied
	return applied, nil
}

// Purge removes every record of this network from disk — the eviction
// path: once the network itself is gone its log is garbage, and leaving it
// behind would resurrect a stale network on the next restart. The
// underlying deletes fsync the bucket directory, so a returned nil means
// the log is durably gone.
func (l *Log) Purge() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.blobs == nil {
		return nil
	}
	seqs, err := l.listSeqs()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if err := l.blobs.Delete(Bucket, recordName(l.netID, seq)); err != nil && !errors.Is(err, store.ErrNotFound) {
			return err
		}
	}
	return nil
}

// ListNetworkIDs scans the bucket and returns the distinct network IDs that
// have at least one log record — the recovery entry point.
func ListNetworkIDs(blobs *store.Store) ([]string, error) {
	ids, err := blobs.List(Bucket)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, id := range ids {
		dot := strings.LastIndexByte(id, '.')
		if dot <= 0 {
			continue
		}
		if _, err := strconv.Atoi(id[dot+1:]); err != nil {
			continue
		}
		netID := id[:dot]
		if !seen[netID] {
			seen[netID] = true
			out = append(out, netID)
		}
	}
	sort.Strings(out)
	return out, nil
}
