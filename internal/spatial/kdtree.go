// Package spatial provides k-nearest-neighbor search over low-dimensional
// points. The weather sensor network generator (paper Appendix C) links each
// sensor to its k nearest neighbors of each sensor type under geo-distance;
// this package supplies the kd-tree that makes generating thousand-sensor
// networks fast, plus a brute-force reference used to property-test the tree.
package spatial

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Point is a 2-D location (the paper places sensors in a unit circle).
type Point struct {
	X, Y float64
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Norm returns the distance from the origin.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// KDTree is a static 2-d tree over a fixed point set. Indices returned by
// queries refer to the point slice passed to Build.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	root  int
}

type kdNode struct {
	idx         int // index into pts
	axis        int // 0 = X, 1 = Y
	left, right int // node indices, −1 when absent
}

// Build constructs a balanced kd-tree over pts. The tree keeps a reference
// to the slice; callers must not mutate it afterwards.
func Build(pts []Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idxs := make([]int, len(pts))
	for i := range idxs {
		idxs[i] = i
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idxs, 0)
	return t
}

func (t *KDTree) build(idxs []int, depth int) int {
	if len(idxs) == 0 {
		return -1
	}
	axis := depth % 2
	sort.Slice(idxs, func(a, b int) bool {
		pa, pb := t.pts[idxs[a]], t.pts[idxs[b]]
		if axis == 0 {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	mid := len(idxs) / 2
	node := kdNode{idx: idxs[mid], axis: axis}
	self := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(idxs[:mid], depth+1)
	right := t.build(idxs[mid+1:], depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Neighbor is one kNN result.
type Neighbor struct {
	Index int
	Dist2 float64
}

// maxHeap of neighbors ordered by distance (largest on top) so the current
// worst candidate can be evicted in O(log k).
type nnHeap []Neighbor

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].Dist2 > h[j].Dist2 }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k nearest neighbors of query, sorted by ascending
// distance. exclude, when ≥ 0, removes that point index from consideration
// (a sensor is not its own neighbor). If fewer than k points qualify, all of
// them are returned.
func (t *KDTree) KNN(query Point, k int, exclude int) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := make(nnHeap, 0, k+1)
	t.search(t.root, query, k, exclude, &h)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist2 != out[b].Dist2 {
			return out[a].Dist2 < out[b].Dist2
		}
		return out[a].Index < out[b].Index
	})
	return out
}

func (t *KDTree) search(ni int, q Point, k, exclude int, h *nnHeap) {
	if ni < 0 {
		return
	}
	node := t.nodes[ni]
	p := t.pts[node.idx]
	if node.idx != exclude {
		d2 := q.Dist2(p)
		if h.Len() < k {
			heap.Push(h, Neighbor{Index: node.idx, Dist2: d2})
		} else if d2 < (*h)[0].Dist2 {
			(*h)[0] = Neighbor{Index: node.idx, Dist2: d2}
			heap.Fix(h, 0)
		}
	}
	var diff float64
	if node.axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, q, k, exclude, h)
	// Prune the far subtree when the splitting plane is farther away than the
	// current worst candidate (and we already have k candidates).
	if h.Len() < k || diff*diff < (*h)[0].Dist2 {
		t.search(far, q, k, exclude, h)
	}
}

// BruteKNN is the O(n) reference used to validate the kd-tree in tests and
// as a fallback for tiny point sets.
func BruteKNN(pts []Point, query Point, k int, exclude int) []Neighbor {
	if k <= 0 {
		return nil
	}
	all := make([]Neighbor, 0, len(pts))
	for i, p := range pts {
		if i == exclude {
			continue
		}
		all = append(all, Neighbor{Index: i, Dist2: query.Dist2(p)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist2 != all[b].Dist2 {
			return all[a].Dist2 < all[b].Dist2
		}
		return all[a].Index < all[b].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Validate checks the kd-tree structural invariant (every node's point lies
// on the correct side of each ancestor's splitting plane). It exists for
// tests and debugging; Build always produces a valid tree.
func (t *KDTree) Validate() error {
	if t.root < 0 {
		return nil
	}
	return t.validate(t.root, Point{math.Inf(-1), math.Inf(-1)}, Point{math.Inf(1), math.Inf(1)})
}

func (t *KDTree) validate(ni int, lo, hi Point) error {
	if ni < 0 {
		return nil
	}
	node := t.nodes[ni]
	p := t.pts[node.idx]
	if p.X < lo.X || p.X > hi.X || p.Y < lo.Y || p.Y > hi.Y {
		return fmt.Errorf("spatial: node %d at %v violates bounds [%v, %v]", node.idx, p, lo, hi)
	}
	leftHi, rightLo := hi, lo
	if node.axis == 0 {
		leftHi.X = p.X
		rightLo.X = p.X
	} else {
		leftHi.Y = p.Y
		rightLo.Y = p.Y
	}
	if err := t.validate(node.left, lo, leftHi); err != nil {
		return err
	}
	return t.validate(node.right, rightLo, hi)
}
