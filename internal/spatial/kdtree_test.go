package spatial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	return pts
}

func TestPointDistance(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if p.Dist(q) != 5 || p.Dist2(q) != 25 {
		t.Error("3-4-5 triangle broken")
	}
	if q.Norm() != 5 {
		t.Error("Norm wrong")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		pts := randomPoints(rng, n)
		tree := Build(pts)
		if err := tree.Validate(); err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(12)
		for q := 0; q < 10; q++ {
			query := Point{rng.NormFloat64(), rng.NormFloat64()}
			exclude := -1
			if rng.Intn(2) == 0 && n > 0 {
				exclude = rng.Intn(n)
			}
			got := tree.KNN(query, k, exclude)
			want := BruteKNN(pts, query, k, exclude)
			if len(got) != len(want) {
				t.Fatalf("trial %d: result sizes differ: %d vs %d", trial, len(got), len(want))
			}
			for i := range got {
				// Indices can legitimately differ on exact distance ties;
				// distances must agree.
				if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
					t.Fatalf("trial %d: neighbor %d dist %v vs brute %v", trial, i, got[i].Dist2, want[i].Dist2)
				}
			}
		}
	}
}

func TestKNNSelfExclusion(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 0}}
	tree := Build(pts)
	got := tree.KNN(pts[0], 2, 0)
	for _, nb := range got {
		if nb.Index == 0 {
			t.Fatal("excluded point returned")
		}
	}
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("unexpected neighbors %v", got)
	}
}

func TestKNNSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := randomPoints(rng, 200)
	tree := Build(pts)
	res := tree.KNN(Point{0.1, -0.2}, 15, -1)
	for i := 1; i < len(res); i++ {
		if res[i].Dist2 < res[i-1].Dist2 {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	empty := Build(nil)
	if res := empty.KNN(Point{}, 3, -1); res != nil {
		t.Error("empty tree should return nil")
	}
	if empty.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	one := Build([]Point{{1, 1}})
	if res := one.KNN(Point{}, 3, -1); len(res) != 1 || res[0].Index != 0 {
		t.Errorf("single-point tree: %v", res)
	}
	// k <= 0.
	if res := one.KNN(Point{}, 0, -1); res != nil {
		t.Error("k=0 should return nil")
	}
	// k larger than available points.
	three := Build([]Point{{0, 0}, {1, 1}, {2, 2}})
	if res := three.KNN(Point{}, 10, 1); len(res) != 2 {
		t.Errorf("expected 2 results, got %d", len(res))
	}
}

func TestKNNDuplicatePoints(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	tree := Build(pts)
	res := tree.KNN(Point{1, 1}, 3, 0)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Dist2 != 0 || res[1].Dist2 != 0 {
		t.Error("duplicate points should be at distance 0")
	}
}

func TestKNNPropertyQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		k := 1 + int(kRaw)%10
		pts := randomPoints(rng, n)
		tree := Build(pts)
		query := Point{rng.NormFloat64(), rng.NormFloat64()}
		got := tree.KNN(query, k, -1)
		want := BruteKNN(pts, query, k, -1)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 50)
	tree := Build(pts)
	if err := tree.Validate(); err != nil {
		t.Fatalf("fresh tree invalid: %v", err)
	}
	// Corrupt a point far outside its region; Validate must notice for at
	// least one corruption (the root's point can move freely, so corrupt a
	// leaf-ish point instead by scanning for a detectable one).
	detected := false
	for i := range pts {
		saved := pts[i]
		pts[i] = Point{X: 1e6, Y: -1e6}
		if tree.Validate() != nil {
			detected = true
		}
		pts[i] = saved
		if detected {
			break
		}
	}
	if !detected {
		t.Error("Validate never detected a corrupted point")
	}
}

func BenchmarkKNNTree1000(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	pts := randomPoints(rng, 1000)
	tree := Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(pts[i%len(pts)], 5, i%len(pts))
	}
}

func BenchmarkBruteKNN1000(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	pts := randomPoints(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteKNN(pts, pts[i%len(pts)], 5, i%len(pts))
	}
}
