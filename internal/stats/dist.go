// Package stats provides the probability distributions and samplers the
// GenClus reproduction needs: Gaussian and categorical component models for
// the attribute mixtures (paper §3.2), Dirichlet sampling (via the
// Marsaglia–Tsang gamma sampler) for soft-membership initialization and for
// the synthetic generators, and small descriptive-statistics helpers.
//
// All randomness flows through explicit *rand.Rand instances so that every
// experiment in the harness is reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Gaussian is a univariate normal distribution N(Mu, Sigma²).
type Gaussian struct {
	Mu    float64
	Sigma float64 // standard deviation, > 0
}

// PDF returns the density at x.
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF returns the log-density at x.
func (g Gaussian) LogPDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return -0.5*z*z - math.Log(g.Sigma) - 0.5*math.Log(2*math.Pi)
}

// Sample draws one value.
func (g Gaussian) Sample(rng *rand.Rand) float64 {
	return g.Mu + g.Sigma*rng.NormFloat64()
}

// FitGaussian returns the maximum-likelihood Gaussian for weighted
// observations: µ = Σwx/Σw, σ² = Σw(x−µ)²/Σw. The variance is floored at
// varFloor to keep mixture EM numerically safe when a component collapses
// onto a single point (the same guard the core package uses).
func FitGaussian(xs, weights []float64, varFloor float64) (Gaussian, error) {
	if len(xs) != len(weights) {
		return Gaussian{}, fmt.Errorf("stats: FitGaussian length mismatch %d vs %d", len(xs), len(weights))
	}
	var wSum, mean float64
	for i, x := range xs {
		w := weights[i]
		if w < 0 {
			return Gaussian{}, fmt.Errorf("stats: FitGaussian negative weight %v", w)
		}
		wSum += w
		mean += w * x
	}
	if wSum <= 0 {
		return Gaussian{}, fmt.Errorf("stats: FitGaussian zero total weight")
	}
	mean /= wSum
	var ss float64
	for i, x := range xs {
		d := x - mean
		ss += weights[i] * d * d
	}
	variance := ss / wSum
	if variance < varFloor {
		variance = varFloor
	}
	return Gaussian{Mu: mean, Sigma: math.Sqrt(variance)}, nil
}

// Categorical is a discrete distribution over {0, …, K−1}.
type Categorical struct {
	P []float64 // probabilities, sum to 1
}

// NewCategorical normalizes the given non-negative weights into a
// distribution. Errors if the weights are empty, negative, or all zero.
func NewCategorical(weights []float64) (Categorical, error) {
	if len(weights) == 0 {
		return Categorical{}, fmt.Errorf("stats: empty categorical")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return Categorical{}, fmt.Errorf("stats: invalid categorical weight %v", w)
		}
		sum += w
	}
	if sum <= 0 {
		return Categorical{}, fmt.Errorf("stats: categorical weights sum to zero")
	}
	p := make([]float64, len(weights))
	for i, w := range weights {
		p[i] = w / sum
	}
	return Categorical{P: p}, nil
}

// Sample draws an index according to P.
func (c Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, p := range c.P {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(c.P) - 1 // guard against floating-point shortfall
}

// SampleGamma draws from Gamma(shape, 1) using the Marsaglia–Tsang (2000)
// squeeze method, with the standard boost for shape < 1. The Go standard
// library has no gamma sampler; Dirichlet sampling needs one.
func SampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 || math.IsNaN(shape) {
		return math.NaN()
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return SampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SampleDirichlet draws a point on the simplex from Dirichlet(alpha) by
// normalizing independent gamma draws. All alpha entries must be positive.
func SampleDirichlet(rng *rand.Rand, alpha []float64) ([]float64, error) {
	if len(alpha) == 0 {
		return nil, fmt.Errorf("stats: empty Dirichlet parameter")
	}
	out := make([]float64, len(alpha))
	var sum float64
	for i, a := range alpha {
		if !(a > 0) {
			return nil, fmt.Errorf("stats: Dirichlet alpha[%d] = %v, want > 0", i, a)
		}
		g := SampleGamma(rng, a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Vanishingly unlikely; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out, nil
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// SampleSimplexUniform draws uniformly from the K-simplex (Dirichlet(1,…,1)).
func SampleSimplexUniform(rng *rand.Rand, k int) []float64 {
	alpha := make([]float64, k)
	for i := range alpha {
		alpha[i] = 1
	}
	v, _ := SampleDirichlet(rng, alpha)
	return v
}

// Normalize scales the slice in place so it sums to 1 and returns it. If the
// sum is zero or not finite the slice is set to the uniform distribution —
// the safe fallback inside EM iterations where a row can lose all mass.
func Normalize(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// FloorAndNormalize floors every entry at eps, then renormalizes. The core
// package applies this to every Θ row so that log θ (paper Eq. 6) is always
// finite.
func FloorAndNormalize(v []float64, eps float64) []float64 {
	for i := range v {
		if v[i] < eps || math.IsNaN(v[i]) {
			v[i] = eps
		}
	}
	return Normalize(v)
}

// WeightedMean returns Σwx/Σw; NaN if Σw is 0.
func WeightedMean(xs, ws []float64) float64 {
	var sw, swx float64
	for i, x := range xs {
		sw += ws[i]
		swx += ws[i] * x
	}
	if sw == 0 {
		return math.NaN()
	}
	return swx / sw
}

// ArgMax returns the index of the largest element (first on ties), or −1 for
// an empty slice. Used to harden soft memberships into cluster labels.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bestV := 0, v[0]
	for i := 1; i < len(v); i++ {
		if v[i] > bestV {
			best, bestV = i, v[i]
		}
	}
	return best
}
