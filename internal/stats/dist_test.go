package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianPDFIntegratesToOne(t *testing.T) {
	g := Gaussian{Mu: 1.5, Sigma: 0.7}
	// Trapezoid rule over ±8σ.
	const n = 20000
	lo, hi := g.Mu-8*g.Sigma, g.Mu+8*g.Sigma
	h := (hi - lo) / n
	var integral float64
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		integral += w * g.PDF(lo+float64(i)*h)
	}
	integral *= h
	if math.Abs(integral-1) > 1e-6 {
		t.Errorf("PDF integral = %v", integral)
	}
}

func TestGaussianLogPDFConsistent(t *testing.T) {
	f := func(mu, rawSigma, x float64) bool {
		sigma := math.Abs(math.Mod(rawSigma, 5)) + 0.1
		mu = math.Mod(mu, 100)
		x = math.Mod(x, 100)
		g := Gaussian{Mu: mu, Sigma: sigma}
		p := g.PDF(x)
		if p < 1e-300 {
			return true // log comparison meaningless near/below denormal range
		}
		return math.Abs(math.Log(p)-g.LogPDF(x)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := Gaussian{Mu: -2, Sigma: 3}
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := g.Sample(rng)
		sum += x
		ss += x * x
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-g.Mu) > 0.05 {
		t.Errorf("sample mean = %v, want %v", mean, g.Mu)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("sample variance = %v, want 9", variance)
	}
}

func TestFitGaussianRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	truth := Gaussian{Mu: 4.2, Sigma: 1.3}
	xs := make([]float64, 50000)
	ws := make([]float64, len(xs))
	for i := range xs {
		xs[i] = truth.Sample(rng)
		ws[i] = 1
	}
	fit, err := FitGaussian(xs, ws, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu) > 0.05 || math.Abs(fit.Sigma-truth.Sigma) > 0.05 {
		t.Errorf("fit = %+v, want %+v", fit, truth)
	}
}

func TestFitGaussianWeighted(t *testing.T) {
	// Two points with weights 3 and 1: mean = (3·0 + 1·4)/4 = 1.
	fit, err := FitGaussian([]float64{0, 4}, []float64{3, 1}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-1) > 1e-12 {
		t.Errorf("weighted mean = %v, want 1", fit.Mu)
	}
	// Var = (3·1 + 1·9)/4 = 3.
	if math.Abs(fit.Sigma*fit.Sigma-3) > 1e-9 {
		t.Errorf("weighted var = %v, want 3", fit.Sigma*fit.Sigma)
	}
}

func TestFitGaussianVarianceFloor(t *testing.T) {
	fit, err := FitGaussian([]float64{2, 2, 2}, []float64{1, 1, 1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Sigma*fit.Sigma < 1e-4-1e-15 {
		t.Errorf("variance %v below floor", fit.Sigma*fit.Sigma)
	}
}

func TestFitGaussianErrors(t *testing.T) {
	if _, err := FitGaussian([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitGaussian([]float64{1}, []float64{-1}, 0); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := FitGaussian([]float64{1}, []float64{0}, 0); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestNewCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Error("negative should error")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Error("all-zero should error")
	}
	c, err := NewCategorical([]float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.P[0]-0.25) > 1e-12 || math.Abs(c.P[1]-0.75) > 1e-12 {
		t.Errorf("normalization wrong: %v", c.P)
	}
}

func TestCategoricalSampleFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, _ := NewCategorical([]float64{1, 2, 7})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(rng)]++
	}
	for k, p := range c.P {
		got := float64(counts[k]) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("category %d frequency %v, want %v", k, got, p)
		}
	}
}

func TestSampleGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, shape := range []float64{0.5, 1, 2.5, 8} {
		const n = 100000
		var sum, ss float64
		for i := 0; i < n; i++ {
			x := SampleGamma(rng, shape)
			sum += x
			ss += x * x
		}
		mean := sum / n
		variance := ss/n - mean*mean
		// Gamma(shape,1): mean = shape, var = shape.
		if math.Abs(mean-shape) > 0.06*math.Max(1, shape) {
			t.Errorf("shape %v: mean = %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.12*math.Max(1, shape) {
			t.Errorf("shape %v: variance = %v", shape, variance)
		}
	}
}

func TestSampleGammaInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	if !math.IsNaN(SampleGamma(rng, 0)) || !math.IsNaN(SampleGamma(rng, -1)) {
		t.Error("non-positive shape should give NaN")
	}
}

func TestSampleDirichletProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	alpha := []float64{2, 3, 5}
	const n = 50000
	sums := make([]float64, 3)
	for i := 0; i < n; i++ {
		v, err := SampleDirichlet(rng, alpha)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for k, x := range v {
			if x < 0 {
				t.Fatal("negative component")
			}
			total += x
			sums[k] += x
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("not on simplex: sum = %v", total)
		}
	}
	// E[v_k] = alpha_k / Σalpha = 0.2, 0.3, 0.5.
	want := []float64{0.2, 0.3, 0.5}
	for k := range want {
		got := sums[k] / n
		if math.Abs(got-want[k]) > 0.01 {
			t.Errorf("component %d mean = %v, want %v", k, got, want[k])
		}
	}
}

func TestSampleDirichletInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	if _, err := SampleDirichlet(rng, nil); err == nil {
		t.Error("empty alpha should error")
	}
	if _, err := SampleDirichlet(rng, []float64{1, 0}); err == nil {
		t.Error("zero alpha entry should error")
	}
}

func TestSampleSimplexUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	v := SampleSimplexUniform(rng, 5)
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 || len(v) != 5 {
		t.Errorf("bad simplex sample %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float64{1, 3})
	if math.Abs(v[0]-0.25) > 1e-12 {
		t.Error("Normalize wrong")
	}
	// Degenerate input falls back to uniform.
	u := Normalize([]float64{0, 0, 0})
	for _, x := range u {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Error("zero-sum fallback not uniform")
		}
	}
	nanV := Normalize([]float64{math.NaN(), 1})
	for _, x := range nanV {
		if math.Abs(x-0.5) > 1e-12 {
			t.Error("NaN fallback not uniform")
		}
	}
}

func TestFloorAndNormalizeProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		v := []float64{math.Abs(math.Mod(a, 10)), math.Abs(math.Mod(b, 10)), math.Abs(math.Mod(c, 10))}
		out := FloorAndNormalize(v, 1e-9)
		var sum float64
		for _, x := range out {
			// Entries are floored at eps before normalizing; with the total
			// bounded by 30+3eps, every entry stays ≥ eps/31 > 3e-11.
			if x < 3e-11 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 5}, []float64{1, 3}); math.Abs(got-4) > 1e-12 {
		t.Errorf("WeightedMean = %v", got)
	}
	if !math.IsNaN(WeightedMean([]float64{1}, []float64{0})) {
		t.Error("zero weight should give NaN")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax([]float64{3, 3, 1}) != 0 {
		t.Error("ArgMax should pick first on ties")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
}

func BenchmarkSampleDirichletK4(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	alpha := []float64{1, 1, 1, 1}
	for i := 0; i < b.N; i++ {
		if _, err := SampleDirichlet(rng, alpha); err != nil {
			b.Fatal(err)
		}
	}
}
