package baselines

import (
	"math/rand"
	"testing"

	"genclus/internal/eval"
)

func TestPaperKMeansOptions(t *testing.T) {
	o := PaperKMeansOptions(4)
	if !o.RandomInit || o.Restarts != 1 || o.K != 4 {
		t.Errorf("PaperKMeansOptions = %+v", o)
	}
}

func TestKMeansRandomInitSeparatesEasyBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var points [][]float64
	var truth []int
	for i := 0; i < 90; i++ {
		blob := i % 3
		points = append(points, []float64{float64(blob*20) + rng.NormFloat64(), rng.NormFloat64()})
		truth = append(truth, blob)
	}
	opts := PaperKMeansOptions(3)
	opts.Restarts = 10 // random init needs restarts on easy-but-unlucky draws
	res, err := KMeans(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := eval.NMI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.95 {
		t.Errorf("random-init kmeans NMI = %v on trivially separable blobs", nmi)
	}
}

func TestKMeansRandomInitDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	var points [][]float64
	for i := 0; i < 80; i++ {
		points = append(points, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	opts := PaperKMeansOptions(4)
	opts.Seed = 5
	a, err := KMeans(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed should reproduce identical labels")
		}
	}
}
