package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"genclus/internal/hin"
)

// KMeansOptions configures the Lloyd's-algorithm baseline.
type KMeansOptions struct {
	K        int
	Iters    int
	Restarts int // independent restarts; best inertia wins
	Seed     int64
	// RandomInit picks initial centers uniformly from the points instead of
	// k-means++ seeding. The paper's 2011-era k-means baseline behaves this
	// way ("very sensitive to the number of observations… especially for
	// Setting 2"); the experiment harness sets it to reproduce that
	// sensitivity, while library users get k-means++ by default.
	RandomInit bool
}

// DefaultKMeansOptions mirrors the experiment defaults.
func DefaultKMeansOptions(k int) KMeansOptions {
	return KMeansOptions{K: k, Iters: 100, Restarts: 5, Seed: 1}
}

// PaperKMeansOptions reproduces the era-typical baseline the paper used:
// one random-initialized run.
func PaperKMeansOptions(k int) KMeansOptions {
	return KMeansOptions{K: k, Iters: 100, Restarts: 1, Seed: 1, RandomInit: true}
}

// KMeans clusters the points (rows) into K groups with k-means++
// initialization and Lloyd iterations, returning hard labels (wrapped into a
// one-hot Result for interface parity with the soft baselines).
func KMeans(points [][]float64, opts KMeansOptions) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("baselines: KMeans on empty point set")
	}
	if opts.K < 2 || opts.K > n {
		return nil, fmt.Errorf("baselines: KMeans K = %d out of range 2..%d", opts.K, n)
	}
	if opts.Iters < 1 || opts.Restarts < 1 {
		return nil, fmt.Errorf("baselines: KMeans needs positive Iters and Restarts")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("baselines: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	bestInertia := math.Inf(1)
	var bestLabels []int
	for restart := 0; restart < opts.Restarts; restart++ {
		labels, inertia := kmeansOnce(points, opts.K, opts.Iters, rng, opts.RandomInit)
		if inertia < bestInertia {
			bestInertia = inertia
			bestLabels = labels
		}
	}
	return &Result{Labels: bestLabels, Theta: oneHot(bestLabels, opts.K, 1e-9)}, nil
}

func kmeansOnce(points [][]float64, k, iters int, rng *rand.Rand, randomInit bool) ([]int, float64) {
	n := len(points)
	dim := len(points[0])
	var centers [][]float64
	if randomInit {
		centers = randomCenterInit(points, k, rng)
	} else {
		centers = kmeansPlusPlusInit(points, k, rng)
	}
	labels := make([]int, n)
	counts := make([]int, k)

	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dist2(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centers.
		for c := range centers {
			for d := 0; d < dim; d++ {
				centers[c][d] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers[c], points[rng.Intn(n)])
				continue
			}
			for d := 0; d < dim; d++ {
				centers[c][d] /= float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	var inertia float64
	for i, p := range points {
		inertia += dist2(p, centers[labels[i]])
	}
	return labels, inertia
}

func randomCenterInit(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = append([]float64(nil), points[rng.Intn(len(points))]...)
	}
	return centers
}

func kmeansPlusPlusInit(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	dim := len(points[0])
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := dist2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var chosen int
		if total == 0 {
			chosen = rng.Intn(n) // all points coincide with centers
		} else {
			u := rng.Float64() * total
			var cum float64
			chosen = n - 1
			for i, d := range d2 {
				cum += d
				if u < cum {
					chosen = i
					break
				}
			}
		}
		c := make([]float64, dim)
		copy(c, points[chosen])
		centers = append(centers, c)
	}
	return centers
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// InterpolateNumeric produces the "regular d-dimensional attribute" the
// paper feeds to k-means and spectral clustering (§5.2.1): attributes the
// object observes itself are summarized by the mean of its own
// observations; missing attributes are interpolated as the mean of the
// observations of its graph neighbors (both link directions), falling back
// to the attribute's global mean when the whole neighborhood is blind.
//
// Keeping the object's own dimension limited to its own observations is
// what makes this baseline "very sensitive to the number of observations"
// (§5.2.1): with a single observation per sensor, the own dimension is one
// noisy draw from the sensor's pattern mixture.
func InterpolateNumeric(net *hin.Network, attrNames []string) ([][]float64, error) {
	if net == nil {
		return nil, fmt.Errorf("baselines: nil network")
	}
	attrs := make([]int, 0, len(attrNames))
	for _, name := range attrNames {
		a, ok := net.AttrID(name)
		if !ok {
			return nil, fmt.Errorf("baselines: attribute %q not in network", name)
		}
		if net.Attr(a).Kind != hin.Numeric {
			return nil, fmt.Errorf("baselines: attribute %q is not numeric", name)
		}
		attrs = append(attrs, a)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("baselines: no attributes to interpolate")
	}
	n := net.NumObjects()
	out := make([][]float64, n)
	for v := range out {
		out[v] = make([]float64, len(attrs))
	}
	for d, a := range attrs {
		// Global mean fallback.
		var gSum float64
		var gCount int
		for v := 0; v < n; v++ {
			for _, x := range net.NumericObs(a, v) {
				gSum += x
				gCount++
			}
		}
		var globalMean float64
		if gCount > 0 {
			globalMean = gSum / float64(gCount)
		}
		for v := 0; v < n; v++ {
			var sum float64
			var count int
			add := func(obj int) {
				for _, x := range net.NumericObs(a, obj) {
					sum += x
					count++
				}
			}
			add(v)
			if count == 0 {
				// Missing attribute: interpolate from the neighborhood.
				for _, e := range net.OutEdges(v) {
					add(e.To)
				}
				from, _, _ := net.InLinks(v)
				for _, u := range from {
					add(u)
				}
			}
			if count > 0 {
				out[v][d] = sum / float64(count)
			} else {
				out[v][d] = globalMean
			}
		}
	}
	return out, nil
}

// Standardize z-scores each feature column in place (mean 0, stddev 1), as
// §5.2.1 describes for the spectral baseline, and returns the input.
// Constant columns are left centered at 0.
func Standardize(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return points
	}
	dim := len(points[0])
	n := float64(len(points))
	for d := 0; d < dim; d++ {
		var mean float64
		for _, p := range points {
			mean += p[d]
		}
		mean /= n
		var ss float64
		for _, p := range points {
			diff := p[d] - mean
			ss += diff * diff
		}
		std := math.Sqrt(ss / n)
		for _, p := range points {
			p[d] -= mean
			if std > 0 {
				p[d] /= std
			}
		}
	}
	return points
}
